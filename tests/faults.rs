//! Fault-domain integration tests: seeded fault injection over the
//! deterministic serving harness, exactly-once reply delivery under every
//! shed path, crash-safe checkpoint handling, and graceful shutdown.
//!
//! The contract under fault is the no-fault contract plus typed failure:
//! every submitted request still gets exactly one terminal outcome (a
//! panicking batch answers `WorkerPanicked`, an unreloadable model sheds at
//! admission), everything that *is* served stays bit-identical to the
//! unbatched reference, and a seeded fault scenario replayed twice produces
//! `==` reports — fault counters included.

use duet::core::{DuetConfig, DuetEstimator};
use duet::data::datasets::census_like;
use duet::query::{CardinalityEstimator, Query, WorkloadSpec};
use duet::serve::sim::{
    run_fault_scenario, ArrivalPattern, FaultPlan, HarnessConfig, RouterHarness, ScenarioConfig,
    SubmitResult, WireSim,
};
use duet::serve::wire::frame::{self, FrameView, Status};
use duet::serve::wire::ConnConfig;
use duet::serve::{DuetServer, ModelSlot, RouterConfig, ServeConfig, ServeError, ShedReason};
use std::sync::Arc;
use std::time::Duration;

/// Silence the default panic-hook output for injected faults (they are
/// expected and caught), while keeping every other panic loud. Installed
/// once per test binary so parallel tests cannot race hook swaps.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected model fault"))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains("injected model fault"));
            if !injected {
                default(info);
            }
        }));
    });
}

/// Train `n` small tables (distinct shapes and seeds) plus a query pool per
/// table.
fn trained_tables(n: usize) -> (Vec<(String, DuetEstimator)>, Vec<Vec<Query>>) {
    let cfg = DuetConfig::small().with_epochs(1);
    let mut tables = Vec::new();
    let mut workloads = Vec::new();
    for i in 0..n {
        let table = census_like(200 + 60 * i, 300 + i as u64);
        let estimator = DuetEstimator::train_data_only(&table, &cfg, 31 + i as u64);
        let queries = WorkloadSpec::random(&table, 10, 400 + i as u64).generate(&table);
        tables.push((format!("fault-table-{i}"), estimator));
        workloads.push(queries);
    }
    (tables, workloads)
}

/// A fresh subdirectory of the test-scoped target tmpdir (unique per test so
/// parallel tests never share spill files).
fn spill_dir(test: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(test);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("creating the test spill dir");
    dir
}

#[test]
fn a_seeded_fault_scenario_replays_identically_and_accounts_every_request() {
    quiet_injected_panics();
    let (tables, workloads) = trained_tables(3);
    let dir = spill_dir("fault-scenario-replay");
    let cfg = ScenarioConfig {
        seed: 4242,
        clients: 6,
        requests_per_client: 40,
        mean_gap: Duration::from_micros(60),
        service_every: Duration::from_micros(120),
        pattern: ArrivalPattern::Uniform,
        harness: HarnessConfig::default(),
    };
    let plan = FaultPlan {
        // Panic a handful of batches spread across the run.
        panic_batches: vec![2, 9, 23],
        // Damage table 1's spilled checkpoint a third of the way in, heal
        // it two thirds of the way in.
        corrupt_checkpoint_at: Some((80, 1)),
        restore_checkpoint_at: Some(160),
        spill_dir: Some(dir),
        ..FaultPlan::default()
    };

    let first = run_fault_scenario(&tables, &workloads, &cfg, &plan);
    let second = run_fault_scenario(&tables, &workloads, &cfg, &plan);
    assert_eq!(first, second, "a seeded fault scenario must replay identically");

    assert_eq!(
        first.accounted(),
        first.submitted,
        "every request gets exactly one terminal outcome, faults included"
    );
    assert_eq!(first.mismatches, 0, "everything served despite faults stays bit-identical");
    assert!(first.panics_caught >= 3, "each scripted panic batch is caught: {first:?}");
    assert_eq!(
        first.panics_caught, first.shard_restarts,
        "every caught panic respawns its worker exactly once"
    );
    assert!(first.shed_internal > 0, "panicked batches answer typed internal sheds");
    assert!(
        first.reload_failures > 0,
        "the corrupt checkpoint window must produce typed reload failures: {first:?}"
    );
    // The table healed: requests after the restore are served again.
    assert!(
        first.per_table_served[1] > 0,
        "the damaged table serves again after its checkpoint is restored: {first:?}"
    );
}

#[test]
fn a_truncated_checkpoint_sheds_typed_and_heals_on_restore() {
    quiet_injected_panics();
    let (tables, workloads) = trained_tables(2);
    let dir = spill_dir("fault-scenario-truncate");
    let cfg = ScenarioConfig {
        seed: 99,
        clients: 4,
        requests_per_client: 30,
        mean_gap: Duration::from_micros(50),
        service_every: Duration::from_micros(100),
        pattern: ArrivalPattern::Uniform,
        harness: HarnessConfig::default(),
    };
    let plan = FaultPlan {
        truncate_checkpoint_at: Some((30, 0)),
        restore_checkpoint_at: Some(80),
        spill_dir: Some(dir),
        ..FaultPlan::default()
    };
    let report = run_fault_scenario(&tables, &workloads, &cfg, &plan);
    assert_eq!(report, run_fault_scenario(&tables, &workloads, &cfg, &plan));
    assert_eq!(report.accounted(), report.submitted);
    assert_eq!(report.mismatches, 0);
    assert!(report.reload_failures > 0, "truncation is caught by frame validation: {report:?}");
    assert!(report.per_table_served[0] > 0, "the table heals after restore");
}

#[test]
fn spill_io_errors_keep_models_resident_and_serving() {
    quiet_injected_panics();
    let (tables, workloads) = trained_tables(3);
    let dir = spill_dir("fault-scenario-spill-io");
    // A budget one byte below the resident total forces eviction pressure.
    let resident_total: usize = tables.iter().map(|(_, e)| e.model().size_bytes()).sum();
    let cfg = ScenarioConfig {
        seed: 7,
        clients: 4,
        requests_per_client: 30,
        mean_gap: Duration::from_micros(50),
        service_every: Duration::from_micros(100),
        pattern: ArrivalPattern::Uniform,
        harness: HarnessConfig {
            model_budget_bytes: resident_total - 1,
            ..HarnessConfig::default()
        },
    };
    let plan = FaultPlan {
        // The spill directory is blocked from the first event and repaired
        // halfway: evictions fail (visibly) during the window, resume after.
        break_spill_dir_at: Some(0),
        fix_spill_dir_at: Some(60),
        spill_dir: Some(dir),
        ..FaultPlan::default()
    };
    let report = run_fault_scenario(&tables, &workloads, &cfg, &plan);
    assert_eq!(report, run_fault_scenario(&tables, &workloads, &cfg, &plan));
    assert_eq!(
        report.accounted(),
        report.submitted,
        "spill failures never cost a request: the victim stays resident"
    );
    assert_eq!(report.mismatches, 0);
    assert!(report.spill_failures > 0, "blocked spill dir must surface IO errors: {report:?}");
    assert!(report.model_evictions > 0, "evictions resume after the spill dir is repaired");
}

#[test]
fn a_panicking_batch_sheds_typed_then_the_respawned_worker_serves_bit_identically() {
    quiet_injected_panics();
    let (tables, workloads) = trained_tables(1);
    let expected: Vec<f64> = {
        let mut reference = tables[0].1.clone();
        workloads[0].iter().map(|q| reference.estimate(q)).collect()
    };
    let mut harness = RouterHarness::new(tables, HarnessConfig::default());
    // The very first batch panics; everything after runs clean.
    harness.arm_panic_batches(&[0]);

    for (i, query) in workloads[0].iter().enumerate() {
        assert!(matches!(harness.submit_query(0, query, i as u64), SubmitResult::Queued { .. }));
    }
    harness.drain();
    let first_round = harness.outcomes().to_vec();
    assert!(!first_round.is_empty());
    // The panicked batch is the first popped batch: all of its requests come
    // back typed, none hang, none are dropped silently.
    let panicked =
        first_round.iter().filter(|(_, o)| matches!(o, Err(ShedReason::WorkerPanicked))).count();
    assert!(panicked > 0, "the injected panic answers its whole batch typed");
    assert_eq!(
        first_round.len(),
        workloads[0].len(),
        "every submitted request has exactly one outcome"
    );

    // The worker respawned: the same queries now serve, bit-identical.
    harness.clear_outcomes();
    for (i, query) in workloads[0].iter().enumerate() {
        harness.submit_query(0, query, i as u64);
    }
    harness.drain();
    for (ticket, outcome) in harness.outcomes() {
        let value = outcome.expect("the respawned worker serves cleanly");
        assert_eq!(
            value.to_bits(),
            expected[*ticket as usize].to_bits(),
            "post-respawn estimates are bit-identical"
        );
    }
    let snapshot = harness.metrics_snapshot();
    assert_eq!(snapshot.panics_caught, 1);
    assert_eq!(snapshot.shard_restarts, 1);
    assert_eq!(snapshot.shed_internal as usize, panicked);
}

#[test]
fn every_shed_path_delivers_exactly_one_terminal_reply() {
    quiet_injected_panics();
    let (tables, workloads) = trained_tables(2);
    // A deliberately hostile configuration: tiny queues (overload sheds), a
    // tight deadline budget (deadline sheds after a clock jump), and an
    // injected panic (internal sheds).
    let harness_cfg = HarnessConfig {
        router: RouterConfig {
            queue_capacity: 4,
            default_deadline: Some(Duration::from_micros(200)),
            ..RouterConfig::default()
        },
        ..HarnessConfig::default()
    };
    let mut harness = RouterHarness::new(tables, harness_cfg);
    harness.arm_panic_batches(&[1]);

    let mut submitted = 0u64;
    let mut immediate_terminal = 0u64; // cached or shed at admission
    let mut ticket = 0u64;
    for round in 0..12 {
        for (table, workload) in workloads.iter().enumerate() {
            for query in workload {
                submitted += 1;
                match harness.submit_query(table, query, ticket) {
                    SubmitResult::Cached(_) | SubmitResult::Shed { .. } => immediate_terminal += 1,
                    SubmitResult::Queued { .. } => {}
                }
                ticket += 1;
            }
        }
        if round % 3 == 0 {
            // Jump the clock past the deadline budget: everything queued
            // triages to a deadline shed at the next turn.
            harness.clock().advance(Duration::from_millis(1));
        }
        harness.turn();
    }
    harness.drain();

    let outcomes = harness.outcomes();
    assert_eq!(
        immediate_terminal + outcomes.len() as u64,
        submitted,
        "exactly one terminal reply per submitted request, across every shed path"
    );
    // No ticket is ever answered twice.
    let mut seen: Vec<u64> = outcomes.iter().map(|(t, _)| *t).collect();
    seen.sort_unstable();
    let before = seen.len();
    seen.dedup();
    assert_eq!(seen.len(), before, "no request is answered twice");
    // All three shed reasons actually occurred.
    let sheds: Vec<&ShedReason> = outcomes.iter().filter_map(|(_, o)| o.as_ref().err()).collect();
    assert!(
        sheds.iter().any(|s| matches!(s, ShedReason::DeadlineExpired)),
        "the clock jumps must produce deadline sheds"
    );
    assert!(
        sheds.iter().any(|s| matches!(s, ShedReason::WorkerPanicked)),
        "the injected panic must produce internal sheds"
    );
}

#[test]
fn a_mid_frame_disconnect_is_contained_to_its_connection() {
    quiet_injected_panics();
    let (tables, workloads) = trained_tables(1);
    let expected = {
        let mut reference = tables[0].1.clone();
        reference.estimate(&workloads[0][0])
    };
    let mut sim = WireSim::new(tables, HarnessConfig::default(), ConnConfig::default(), 2);

    // Connection 0: preamble, one complete request, then HALF of a second
    // request frame — and the peer vanishes mid-frame.
    let schema = sim.harness().estimator(0).schema().clone();
    let preds = duet::core::query_to_id_predicates(&schema, &workloads[0][0]);
    let intervals = workloads[0][0].column_intervals(&schema);
    let mut bytes = Vec::new();
    frame::encode_preamble(&mut bytes);
    frame::encode_request(&mut bytes, 1, 0, 0, &preds, &intervals);
    sim.feed(0, &bytes);
    sim.pump(0).expect("valid protocol bytes");
    let mut half = Vec::new();
    frame::encode_request(&mut half, 2, 0, 0, &preds, &intervals);
    sim.feed(0, &half[..half.len() / 2]);
    sim.pump(0).expect("a partial frame just waits for more bytes");
    assert_eq!(sim.inflight(0), 1, "one complete request admitted before the drop");

    sim.disconnect(0);
    assert_eq!(sim.conn_drops(), 1);

    // The admitted request still executes — into the orphaned outbox, never
    // crashing the worker — and connection 1 is entirely unaffected.
    sim.clock().advance(Duration::from_micros(100));
    sim.turn();

    let mut bytes = Vec::new();
    frame::encode_preamble(&mut bytes);
    frame::encode_request(&mut bytes, 7, 0, 0, &preds, &intervals);
    sim.feed(1, &bytes);
    sim.pump(1).expect("valid protocol bytes");
    sim.clock().advance(Duration::from_micros(100));
    sim.turn();
    sim.pump(1).expect("pump after turn");
    let (view, _) = frame::next_frame(sim.output(1), frame::DEFAULT_MAX_FRAME_LEN)
        .expect("well-formed response")
        .expect("a complete response frame");
    match view {
        FrameView::Response(response) => {
            assert_eq!(response.request_id, 7);
            assert_eq!(response.status, Status::Ok);
            assert_eq!(response.value.to_bits(), expected.to_bits());
        }
        other => panic!("expected a response frame, got {other:?}"),
    }

    // The replacement connection 0 starts from scratch: it must re-send the
    // preamble (the half frame from the dead peer is gone).
    let mut bytes = Vec::new();
    frame::encode_preamble(&mut bytes);
    frame::encode_request(&mut bytes, 9, 0, 0, &preds, &intervals);
    sim.feed(0, &bytes);
    sim.pump(0).expect("the fresh connection accepts a new preamble");
    sim.clock().advance(Duration::from_micros(100));
    sim.turn();
    sim.pump(0).expect("pump after turn");
    assert!(!sim.output(0).is_empty(), "the fresh connection serves normally");
}

#[test]
fn a_corrupt_spilled_checkpoint_is_a_typed_error_and_a_hot_swap_heals_it() {
    let table = census_like(240, 611);
    let cfg = DuetConfig::small().with_epochs(1);
    let est = DuetEstimator::train_data_only(&table, &cfg, 5);
    let queries = WorkloadSpec::random(&table, 8, 77).generate(&table);
    let expected: Vec<f64> = {
        let mut reference = est.clone();
        queries.iter().map(|q| reference.estimate(q)).collect()
    };

    let dir = spill_dir("corrupt-spill-hot-swap-heals");
    let slot = ModelSlot::new(est.clone());
    slot.evict(Some(&dir)).expect("spill");
    let file = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
    let mut bytes = std::fs::read(&file).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    std::fs::write(&file, &bytes).unwrap();

    // Every access is a typed failure — never a panic, never garbage
    // weights — and the store is kept so later attempts can retry.
    for _ in 0..3 {
        assert!(slot.try_current_versioned().is_err(), "corrupt checkpoint is typed");
    }
    assert!(slot.reload_failures() >= 3);

    // Publishing a fresh model through the hot-swap path heals the slot
    // without ever reading the corrupt bytes.
    slot.swap(est).expect("hot-swap onto a wedged slot");
    let healed = slot.current();
    let served = healed.estimate_batch(&queries);
    for (v, e) in served.iter().zip(&expected) {
        assert_eq!(v.to_bits(), e.to_bits(), "healed slot serves bit-identically");
    }
}

#[test]
fn graceful_shutdown_answers_every_in_flight_request() {
    quiet_injected_panics();
    let table = census_like(300, 612);
    let cfg = DuetConfig::small().with_epochs(1);
    let est = DuetEstimator::train_data_only(&table, &cfg, 6);
    let queries = Arc::new(WorkloadSpec::random(&table, 20, 78).generate(&table));

    let server = Arc::new(DuetServer::new(ServeConfig::default()));
    server.register("census", est);

    // Clients keep submitting while the server shuts down; every call must
    // return a terminal result (estimate or typed error), never hang.
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let (server, queries) = (server.clone(), queries.clone());
            std::thread::spawn(move || {
                let mut terminal = 0usize;
                for _ in 0..5 {
                    for q in queries.iter() {
                        match server.estimate("census", q) {
                            Ok(v) => assert!(v.is_finite()),
                            Err(e) => {
                                // Typed shutdown-era errors are fine; the
                                // call just must not hang or panic.
                                let _ = matches!(
                                    e,
                                    ServeError::Overloaded { .. }
                                        | ServeError::DeadlineExceeded { .. }
                                        | ServeError::Internal(_)
                                );
                            }
                        }
                        terminal += 1;
                    }
                }
                terminal
            })
        })
        .collect();

    // Give the clients a head start, then drain.
    std::thread::sleep(Duration::from_millis(20));
    let drained = server.shutdown(Duration::from_secs(10));
    assert!(drained, "shutdown must drain queued work within a generous deadline");

    let expected_calls = 5 * queries.len();
    for thread in threads {
        let terminal = thread.join().expect("client threads never panic");
        assert_eq!(terminal, expected_calls, "every estimate call returned a terminal result");
    }
    // Shutdown is idempotent.
    assert!(server.shutdown(Duration::from_secs(1)));
}

#[test]
fn the_virtual_clock_fault_replay_is_independent_of_wall_time() {
    quiet_injected_panics();
    // Two replays separated by a real sleep: the virtual clock, not wall
    // time, drives deadline expiry — the reports must still be identical.
    let (tables, workloads) = trained_tables(2);
    let cfg = ScenarioConfig {
        seed: 31337,
        clients: 3,
        requests_per_client: 25,
        mean_gap: Duration::from_micros(40),
        service_every: Duration::from_micros(90),
        pattern: ArrivalPattern::Bursty { burst_size: 8 },
        harness: HarnessConfig {
            router: RouterConfig { queue_capacity: 8, ..RouterConfig::default() },
            ..HarnessConfig::default()
        },
    };
    let plan = FaultPlan { panic_batches: vec![1, 4], ..FaultPlan::default() };
    let first = run_fault_scenario(&tables, &workloads, &cfg, &plan);
    std::thread::sleep(Duration::from_millis(30));
    let second = run_fault_scenario(&tables, &workloads, &cfg, &plan);
    assert_eq!(first, second);
    assert!(first.panics_caught >= 2);
    assert_eq!(first.accounted(), first.submitted);
}
