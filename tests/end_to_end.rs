//! Cross-crate integration tests: train Duet end-to-end on synthetic data and
//! check the paper's qualitative claims on a small scale — determinism,
//! accuracy better than the independence baseline, hybrid training improving
//! the in-workload tail, and O(1) latency scaling.

use duet::baselines::IndependenceEstimator;
use duet::core::{DuetConfig, DuetEstimator};
use duet::data::datasets::{census_like, kddcup98_like};
use duet::query::{
    exact_cardinality, label_workload, CardinalityEstimator, QErrorSummary, Query, WorkloadSpec,
};

fn summary(est: &mut dyn CardinalityEstimator, queries: &[Query], cards: &[u64]) -> QErrorSummary {
    let estimates: Vec<f64> = queries.iter().map(|q| est.estimate(q)).collect();
    QErrorSummary::from_estimates(&estimates, cards)
}

#[test]
fn duet_beats_independence_on_correlated_data() {
    let table = census_like(4_000, 11);
    let cfg = DuetConfig::small().with_epochs(10);
    let mut duet = DuetEstimator::train_data_only(&table, &cfg, 1);
    let mut indep = IndependenceEstimator::new(&table);

    let queries = WorkloadSpec::random(&table, 150, 1234).generate(&table);
    let cards = label_workload(&table, &queries);
    let duet_summary = summary(&mut duet, &queries, &cards);
    let indep_summary = summary(&mut indep, &queries, &cards);
    assert!(
        duet_summary.mean < indep_summary.mean,
        "Duet mean Q-Error ({:.2}) should beat independence ({:.2})",
        duet_summary.mean,
        indep_summary.mean
    );
}

#[test]
fn duet_estimates_are_deterministic_across_repeated_calls() {
    let table = census_like(1_500, 12);
    let mut duet = DuetEstimator::train_data_only(&table, &DuetConfig::small().with_epochs(2), 3);
    let queries = WorkloadSpec::random(&table, 50, 7).generate(&table);
    for q in &queries {
        let first = duet.estimate(q);
        for _ in 0..3 {
            assert_eq!(duet.estimate(q), first, "repeated estimates must be identical");
        }
    }
}

#[test]
fn hybrid_training_does_not_regress_random_queries_catastrophically() {
    let table = census_like(3_000, 13);
    let cfg = DuetConfig::small().with_epochs(5);
    let train = WorkloadSpec::in_workload(&table, 500, 42).generate(&table);
    let train_cards = label_workload(&table, &train);

    let mut duet_d = DuetEstimator::train_data_only(&table, &cfg, 2);
    let mut duet = DuetEstimator::train_hybrid(&table, &train, &train_cards, &cfg, 2);

    let rand_q = WorkloadSpec::random(&table, 150, 1234).generate(&table);
    let rand_cards = label_workload(&table, &rand_q);
    let s_d = summary(&mut duet_d, &rand_q, &rand_cards);
    let s_h = summary(&mut duet, &rand_q, &rand_cards);
    // The paper's claim: hybrid training keeps (or improves) random-workload
    // accuracy because the data loss dominates. Allow generous slack since
    // these runs are tiny.
    assert!(
        s_h.median <= s_d.median * 3.0 + 1.0,
        "hybrid median ({:.2}) should stay comparable to data-only ({:.2})",
        s_h.median,
        s_d.median
    );
}

#[test]
fn estimation_latency_is_flat_in_the_number_of_constrained_columns() {
    // O(1) claim: the number of network evaluations does not depend on how
    // many columns the query constrains. We check latency on a 100-column
    // table stays within a small factor between 2-column and 60-column
    // queries (wall-clock is noisy, the factor is generous).
    let table = kddcup98_like(1_500, 14);
    let cfg = DuetConfig::small().with_epochs(1);
    let duet = DuetEstimator::train_data_only(&table, &cfg, 3);

    let narrow = WorkloadSpec::random(&table, 30, 5).with_max_columns(2).generate(&table);
    let wide = WorkloadSpec::random(&table, 30, 6).with_max_columns(60).generate(&table);
    let time = |queries: &[Query]| {
        let start = std::time::Instant::now();
        for q in queries {
            let _ = duet.estimate_with_breakdown(q);
        }
        start.elapsed().as_secs_f64() / queries.len() as f64
    };
    // Warm up, then measure.
    let _ = time(&narrow);
    let narrow_t = time(&narrow);
    let wide_t = time(&wide);
    assert!(
        wide_t < narrow_t * 6.0,
        "per-query latency should not blow up with constrained columns: {narrow_t:.6}s vs {wide_t:.6}s"
    );
}

#[test]
fn estimates_are_bounded_by_zero_and_table_size() {
    let table = census_like(2_000, 15);
    let mut duet = DuetEstimator::train_data_only(&table, &DuetConfig::small().with_epochs(2), 9);
    for q in WorkloadSpec::random(&table, 100, 21).generate(&table) {
        let e = duet.estimate(&q);
        assert!(e >= 0.0);
        assert!(e <= table.num_rows() as f64 + 1e-6);
    }
    // Sanity: unconstrained query ~ full table, contradictions ~ 0.
    assert!((duet.estimate(&Query::all()) - table.num_rows() as f64).abs() < 1e-6);
}

#[test]
fn training_workload_labels_match_exact_evaluation() {
    let table = census_like(1_000, 16);
    let queries = WorkloadSpec::in_workload(&table, 100, 42).generate(&table);
    let labels = label_workload(&table, &queries);
    for (q, &l) in queries.iter().zip(&labels) {
        assert_eq!(l, exact_cardinality(&table, q));
    }
}
