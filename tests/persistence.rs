//! Integration tests for model persistence and the CSV data path: a trained
//! estimator survives a save/load round trip, and a table written to CSV and
//! read back produces identical ground truth.

use duet::core::{load_weights, save_weights, DuetConfig, DuetEstimator, DuetModel};
use duet::data::csv::{read_csv, write_csv};
use duet::data::datasets::census_like;
use duet::query::{exact_cardinality, CardinalityEstimator, WorkloadSpec};

#[test]
fn checkpoint_round_trip_preserves_every_estimate() {
    let table = census_like(1_200, 91);
    let cfg = DuetConfig::small().with_epochs(3);
    let mut trained = DuetEstimator::train_data_only(&table, &cfg, 4);
    let queries = WorkloadSpec::random(&table, 40, 17).generate(&table);
    let expected: Vec<f64> = queries.iter().map(|q| trained.estimate(q)).collect();

    let checkpoint = save_weights(&mut trained);
    let mut restored =
        DuetEstimator::from_model(DuetModel::new(&table, &cfg, 12345), &table, "restored");
    load_weights(&mut restored, &checkpoint).expect("loading the checkpoint should succeed");
    let actual: Vec<f64> = queries.iter().map(|q| restored.estimate(q)).collect();
    assert_eq!(expected, actual);
}

#[test]
fn corrupted_checkpoints_are_rejected_without_panicking() {
    let table = census_like(400, 92);
    let cfg = DuetConfig::small().with_epochs(1);
    let mut est = DuetEstimator::train_data_only(&table, &cfg, 1);
    let checkpoint = save_weights(&mut est);
    // Truncated buffer.
    assert!(load_weights(&mut est, &checkpoint[..checkpoint.len() / 2]).is_err());
    // Garbage buffer.
    assert!(load_weights(&mut est, b"not a checkpoint at all").is_err());
    // The estimator still works after the failed loads.
    let q = WorkloadSpec::random(&table, 1, 3).generate(&table).remove(0);
    assert!(est.estimate(&q).is_finite());
}

#[test]
fn csv_round_trip_preserves_ground_truth() {
    let table = census_like(500, 93);
    let mut buffer = Vec::new();
    write_csv(&table, &mut buffer).expect("write");
    let reloaded = read_csv("census_reload", buffer.as_slice()).expect("read");
    assert_eq!(reloaded.num_rows(), table.num_rows());
    assert_eq!(reloaded.num_columns(), table.num_columns());
    for q in WorkloadSpec::random(&table, 30, 5).generate(&table) {
        assert_eq!(exact_cardinality(&table, &q), exact_cardinality(&reloaded, &q));
    }
}

#[test]
fn estimators_trained_on_csv_loaded_data_work() {
    let table = census_like(800, 94);
    let mut buffer = Vec::new();
    write_csv(&table, &mut buffer).expect("write");
    let reloaded = read_csv("census_reload", buffer.as_slice()).expect("read");
    let mut est = DuetEstimator::train_data_only(&reloaded, &DuetConfig::small().with_epochs(1), 3);
    let q = WorkloadSpec::random(&reloaded, 1, 9).generate(&reloaded).remove(0);
    let e = est.estimate(&q);
    assert!(e >= 0.0 && e <= reloaded.num_rows() as f64);
}
