//! Integration tests for model persistence and the CSV data path: a trained
//! estimator survives a save/load round trip, and a table written to CSV and
//! read back produces identical ground truth.

use duet::core::{
    load_weights, save_weights, verify_checkpoint, DuetConfig, DuetEstimator, DuetModel,
};
use duet::data::csv::{read_csv, write_csv};
use duet::data::datasets::census_like;
use duet::data::Table;
use duet::query::{exact_cardinality, CardinalityEstimator, WorkloadSpec};
use proptest::prelude::*;

#[test]
fn checkpoint_round_trip_preserves_every_estimate() {
    let table = census_like(1_200, 91);
    let cfg = DuetConfig::small().with_epochs(3);
    let mut trained = DuetEstimator::train_data_only(&table, &cfg, 4);
    let queries = WorkloadSpec::random(&table, 40, 17).generate(&table);
    let expected: Vec<f64> = queries.iter().map(|q| trained.estimate(q)).collect();

    let checkpoint = save_weights(&mut trained);
    let mut restored =
        DuetEstimator::from_model(DuetModel::new(&table, &cfg, 12345), &table, "restored");
    load_weights(&mut restored, &checkpoint).expect("loading the checkpoint should succeed");
    let actual: Vec<f64> = queries.iter().map(|q| restored.estimate(q)).collect();
    assert_eq!(expected, actual);
}

#[test]
fn corrupted_checkpoints_are_rejected_without_panicking() {
    let table = census_like(400, 92);
    let cfg = DuetConfig::small().with_epochs(1);
    let mut est = DuetEstimator::train_data_only(&table, &cfg, 1);
    let checkpoint = save_weights(&mut est);
    // Truncated buffer.
    assert!(load_weights(&mut est, &checkpoint[..checkpoint.len() / 2]).is_err());
    // Garbage buffer.
    assert!(load_weights(&mut est, b"not a checkpoint at all").is_err());
    // The estimator still works after the failed loads.
    let q = WorkloadSpec::random(&table, 1, 3).generate(&table).remove(0);
    assert!(est.estimate(&q).is_finite());
}

#[test]
fn csv_round_trip_preserves_ground_truth() {
    let table = census_like(500, 93);
    let mut buffer = Vec::new();
    write_csv(&table, &mut buffer).expect("write");
    let reloaded = read_csv("census_reload", buffer.as_slice()).expect("read");
    assert_eq!(reloaded.num_rows(), table.num_rows());
    assert_eq!(reloaded.num_columns(), table.num_columns());
    for q in WorkloadSpec::random(&table, 30, 5).generate(&table) {
        assert_eq!(exact_cardinality(&table, &q), exact_cardinality(&reloaded, &q));
    }
}

/// One trained, sealed checkpoint shared by every property case below.
/// Training is the expensive part; the cases only mutate bytes, so the
/// fixture is built once and each case clones the byte vector.
fn checkpoint_fixture() -> &'static (Table, usize, DuetConfig, Vec<u8>) {
    static FIXTURE: std::sync::OnceLock<(Table, usize, DuetConfig, Vec<u8>)> =
        std::sync::OnceLock::new();
    FIXTURE.get_or_init(|| {
        let table = census_like(300, 95);
        let cfg = DuetConfig::small().with_epochs(1);
        let mut est = DuetEstimator::train_data_only(&table, &cfg, 9);
        let bytes = save_weights(&mut est).to_vec();
        (table.schema_only(), table.num_rows(), cfg, bytes)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flipping any bits of any byte of a sealed checkpoint is a typed
    /// `CheckpointError` from both the frame verifier and the full rebuild
    /// path — never a panic, never silently loaded garbage weights. Every
    /// byte of the frame is covered: the magic and length header are
    /// validated structurally and the payload (plus the checksum field
    /// itself) by the FNV-1a checksum.
    #[test]
    fn corrupting_any_checkpoint_byte_is_a_typed_rebuild_error(
        index_frac in 0.0f64..1.0,
        mask in 1u8..=255,
    ) {
        let (schema, num_rows, cfg, bytes) = checkpoint_fixture();
        let mut mutated = bytes.clone();
        let index = (((mutated.len() - 1) as f64) * index_frac) as usize;
        mutated[index] ^= mask;
        prop_assert!(verify_checkpoint(&mutated).is_err());
        let rebuilt =
            DuetEstimator::rebuild_from_checkpoint(schema, *num_rows, cfg, "fuzz", &mutated);
        prop_assert!(rebuilt.is_err());
    }

    /// Any strict prefix of a sealed checkpoint (a torn write) is a typed
    /// error, never a panic or an out-of-bounds read.
    #[test]
    fn truncating_a_checkpoint_is_a_typed_rebuild_error(len_frac in 0.0f64..1.0) {
        let (schema, num_rows, cfg, bytes) = checkpoint_fixture();
        let keep = (((bytes.len() - 1) as f64) * len_frac) as usize;
        prop_assert!(verify_checkpoint(&bytes[..keep]).is_err());
        let rebuilt =
            DuetEstimator::rebuild_from_checkpoint(schema, *num_rows, cfg, "fuzz", &bytes[..keep]);
        prop_assert!(rebuilt.is_err());
    }

    /// Arbitrary bytes that never were a checkpoint exercise the decode
    /// paths without panicking; the pristine fixture still rebuilds
    /// afterwards, so the failed attempts leave no poisoned state behind.
    #[test]
    fn arbitrary_bytes_never_panic_the_rebuild_path(
        garbage in prop::collection::vec(0u8..=255, 0..96),
    ) {
        let (schema, num_rows, cfg, bytes) = checkpoint_fixture();
        let _ = verify_checkpoint(&garbage);
        let _ = DuetEstimator::rebuild_from_checkpoint(schema, *num_rows, cfg, "fuzz", &garbage);
        let pristine =
            DuetEstimator::rebuild_from_checkpoint(schema, *num_rows, cfg, "fuzz", bytes);
        prop_assert!(pristine.is_ok());
    }
}

#[test]
fn estimators_trained_on_csv_loaded_data_work() {
    let table = census_like(800, 94);
    let mut buffer = Vec::new();
    write_csv(&table, &mut buffer).expect("write");
    let reloaded = read_csv("census_reload", buffer.as_slice()).expect("read");
    let mut est = DuetEstimator::train_data_only(&reloaded, &DuetConfig::small().with_epochs(1), 3);
    let q = WorkloadSpec::random(&reloaded, 1, 9).generate(&reloaded).remove(0);
    let e = est.estimate(&q);
    assert!(e >= 0.0 && e <= reloaded.num_rows() as f64);
}
