//! Integration tests of the `duet-serve` subsystem: batched serving is
//! bit-identical to direct estimation, concurrent clients are deterministic,
//! cache hits return the exact miss value, and hot-swap round-trips
//! checkpointed estimates without downtime.

use duet::core::{save_weights, DuetConfig, DuetEstimator};
use duet::data::datasets::census_like;
use duet::data::Table;
use duet::query::{CardinalityEstimator, Query, WorkloadSpec};
use duet::serve::{BatchConfig, DuetServer, ServeConfig, ServeError};
use std::sync::Arc;

fn trained(rows: usize, seed: u64) -> (Table, DuetEstimator) {
    let table = census_like(rows, 77);
    let cfg = DuetConfig::small().with_epochs(2);
    let est = DuetEstimator::train_data_only(&table, &cfg, seed);
    (table, est)
}

fn no_cache_config() -> ServeConfig {
    ServeConfig { cache_capacity: 0, ..ServeConfig::default() }
}

#[test]
fn served_estimates_match_direct_estimates_exactly() {
    let (table, est) = trained(800, 1);
    let queries = WorkloadSpec::random(&table, 60, 5).generate(&table);
    let mut direct = est.clone();
    let expected: Vec<f64> = queries.iter().map(|q| direct.estimate(q)).collect();

    // Exercise both the cached and the uncached serving paths.
    for config in [ServeConfig::default(), no_cache_config()] {
        let server = DuetServer::new(config);
        server.register("census", est.clone());
        let served: Vec<f64> =
            queries.iter().map(|q| server.estimate("census", q).unwrap()).collect();
        assert_eq!(served, expected, "serving must be bit-identical to direct estimation");
        let many = server.estimate_many("census", &queries).unwrap();
        assert_eq!(many, expected);
    }
}

#[test]
fn concurrent_clients_get_deterministic_results() {
    let (table, est) = trained(800, 2);
    let queries = WorkloadSpec::random(&table, 40, 9).generate(&table);
    let mut direct = est.clone();
    let expected: Vec<f64> = queries.iter().map(|q| direct.estimate(q)).collect();

    let server = Arc::new(DuetServer::new(no_cache_config()));
    server.register("census", est);

    // 8 clients hammer the same workload in different orders; every client
    // must see exactly the direct estimates regardless of how requests
    // interleave into batches.
    let handles: Vec<_> = (0..8)
        .map(|client| {
            let server = server.clone();
            let queries = queries.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                for round in 0..3 {
                    for i in 0..queries.len() {
                        let i = (i * 7 + client * 3 + round) % queries.len();
                        let got = server.estimate("census", &queries[i]).unwrap();
                        assert_eq!(
                            got, expected[i],
                            "client {client} round {round} query {i} diverged"
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let m = server.metrics();
    assert_eq!(m.requests, 8 * 3 * 40);
    assert!(m.batches > 0);
    assert!(m.mean_batch_size >= 1.0);
}

#[test]
fn cache_hit_returns_exactly_the_miss_value() {
    let (table, est) = trained(600, 3);
    let queries = WorkloadSpec::random(&table, 30, 11).generate(&table);

    let server = DuetServer::new(ServeConfig { cache_capacity: 1024, ..ServeConfig::default() });
    server.register("census", est);

    let misses: Vec<f64> = queries.iter().map(|q| server.estimate("census", q).unwrap()).collect();
    let before = server.metrics();
    let hits: Vec<f64> = queries.iter().map(|q| server.estimate("census", q).unwrap()).collect();
    let after = server.metrics();

    assert_eq!(hits, misses, "a cache hit must return the exact value the miss computed");
    assert_eq!(
        after.cache_hits - before.cache_hits,
        queries.len() as u64,
        "second pass must be served from cache"
    );
    assert!(after.cache_hit_rate > 0.0);
}

#[test]
fn hot_swap_round_trips_checkpointed_estimates() {
    let (table, est_a) = trained(700, 4);
    let (_, mut est_b) = trained(700, 99);
    let queries = WorkloadSpec::random(&table, 30, 13).generate(&table);
    let expected_a: Vec<f64> = {
        let mut e = est_a.clone();
        queries.iter().map(|q| e.estimate(q)).collect()
    };
    let expected_b: Vec<f64> = queries.iter().map(|q| est_b.estimate(q)).collect();
    assert_ne!(expected_a, expected_b, "differently seeded models should disagree");

    let server = DuetServer::new(ServeConfig::default());
    server.register("census", est_a);
    assert_eq!(server.generation("census"), Some(0));

    // Warm the cache on generation 0, then swap to model B's weights.
    let served_a: Vec<f64> =
        queries.iter().map(|q| server.estimate("census", q).unwrap()).collect();
    assert_eq!(served_a, expected_a);

    let checkpoint = save_weights(&mut est_b);
    server.hot_swap("census", &checkpoint).unwrap();
    assert_eq!(server.generation("census"), Some(1));

    let served_b: Vec<f64> =
        queries.iter().map(|q| server.estimate("census", q).unwrap()).collect();
    assert_eq!(
        served_b, expected_b,
        "after a hot-swap the served estimates must round-trip the checkpoint"
    );

    // Swapping back restores the original estimates (and a new generation).
    let mut est_a_again = {
        let (_, e) = trained(700, 4);
        e
    };
    let checkpoint_a = save_weights(&mut est_a_again);
    server.hot_swap("census", &checkpoint_a).unwrap();
    assert_eq!(server.generation("census"), Some(2));
    let served_a_again: Vec<f64> =
        queries.iter().map(|q| server.estimate("census", q).unwrap()).collect();
    assert_eq!(served_a_again, expected_a);
}

#[test]
fn hot_swap_replays_hot_keys_into_the_fresh_cache() {
    let (table, est_a) = trained(700, 6);
    let (_, mut est_b) = trained(700, 77);
    let queries = WorkloadSpec::random(&table, 12, 19).generate(&table);
    let expected_b: Vec<f64> = queries.iter().map(|q| est_b.estimate(q)).collect();

    let server = DuetServer::new(ServeConfig::default());
    server.register("census", est_a);

    // Make the workload hot: several passes so every key accumulates counts.
    for _ in 0..3 {
        for q in &queries {
            server.estimate("census", q).unwrap();
        }
    }

    let checkpoint = save_weights(&mut est_b);
    server.hot_swap("census", &checkpoint).unwrap();

    // The replay must have re-seeded the new generation's cache: the first
    // post-swap pass over the hot workload is all cache hits, and every hit
    // returns exactly what the new model would compute.
    let hits_before = server.metrics().cache_hits;
    let served: Vec<f64> = queries.iter().map(|q| server.estimate("census", q).unwrap()).collect();
    assert_eq!(served, expected_b, "replayed entries must carry new-model values");
    assert_eq!(
        server.metrics().cache_hits - hits_before,
        queries.len() as u64,
        "the hot workload must not miss after the swap replay"
    );
}

#[test]
fn hot_swap_under_concurrent_load_never_drops_requests() {
    let (table, est_a) = trained(600, 5);
    let (_, mut est_b) = trained(600, 55);
    let queries = WorkloadSpec::random(&table, 25, 17).generate(&table);
    let expected_a: Vec<f64> = {
        let mut e = est_a.clone();
        queries.iter().map(|q| e.estimate(q)).collect()
    };
    let expected_b: Vec<f64> = queries.iter().map(|q| est_b.estimate(q)).collect();
    let checkpoint = save_weights(&mut est_b);

    let server = Arc::new(DuetServer::new(ServeConfig::default()));
    server.register("census", est_a);

    let clients: Vec<_> = (0..6)
        .map(|client| {
            let server = server.clone();
            let queries = queries.clone();
            let (ea, eb) = (expected_a.clone(), expected_b.clone());
            std::thread::spawn(move || {
                for round in 0..20 {
                    let i = (client + round * 5) % queries.len();
                    let got = server.estimate("census", &queries[i]).unwrap();
                    // Every answer is from model A or model B — never an
                    // error, never a torn in-between state.
                    assert!(
                        got == ea[i] || got == eb[i],
                        "request served by neither model: {got} vs {} / {}",
                        ea[i],
                        eb[i]
                    );
                }
            })
        })
        .collect();

    server.hot_swap("census", &checkpoint).unwrap();
    for c in clients {
        c.join().unwrap();
    }

    // After the swap settles, everything is served by model B.
    let served: Vec<f64> = queries.iter().map(|q| server.estimate("census", q).unwrap()).collect();
    assert_eq!(served, expected_b);
}

#[test]
fn unknown_tables_and_multi_table_routing() {
    let (table_a, est_a) = trained(400, 6);
    let (_, est_b) = trained(400, 7);

    let server =
        DuetServer::new(ServeConfig { batch: BatchConfig::default(), ..ServeConfig::default() });
    server.register("alpha", est_a.clone());
    server.register("beta", est_b.clone());
    let mut tables = server.tables();
    tables.sort();
    assert_eq!(tables, vec!["alpha".to_string(), "beta".to_string()]);

    let q = WorkloadSpec::random(&table_a, 1, 3).generate(&table_a).remove(0);
    let (mut a, mut b) = (est_a, est_b);
    assert_eq!(server.estimate("alpha", &q).unwrap(), a.estimate(&q));
    assert_eq!(server.estimate("beta", &q).unwrap(), b.estimate(&q));

    match server.estimate("gamma", &q) {
        Err(ServeError::UnknownTable(t)) => assert_eq!(t, "gamma"),
        other => panic!("expected UnknownTable, got {other:?}"),
    }
    assert!(server.hot_swap("gamma", b"junk").is_err());
    assert_eq!(server.estimate("alpha", &Query::all()).unwrap(), 400.0);
}
