//! End-to-end parity of the compressed f16 warm tier: serving with
//! `WeightMode::Half` (f16-stored panels, f32 accumulate) must agree with
//! the bit-exact `WeightMode::Full` default on a real workload — bounded
//! per-estimate relative drift, and a mean q-error that moves by well under
//! 0.1%, the gate for keeping a model in the compressed tier.

use duet::core::{query_to_id_predicates, DuetConfig, DuetEstimator, DuetWorkspace, WeightMode};
use duet::data::datasets::census_like;
use duet::nn::q_error;
use duet::query::{exact_cardinality, WorkloadSpec};

/// Per-query id-space predicate rows.
type EncodedRows = Vec<Vec<Vec<duet::core::IdPredicate>>>;
/// Per-query valid-id intervals.
type EncodedIntervals = Vec<Vec<(u32, u32)>>;

/// One trained estimator plus an encoded census workload.
fn setup() -> (DuetEstimator, EncodedRows, EncodedIntervals, Vec<u64>) {
    let table = census_like(2_000, 11);
    let cfg = DuetConfig::small().with_epochs(2);
    let est = DuetEstimator::train_data_only(&table, &cfg, 5);
    let queries = WorkloadSpec::random(&table, 64, 321).generate(&table);
    let rows: Vec<_> = queries.iter().map(|q| query_to_id_predicates(est.schema(), q)).collect();
    let intervals: Vec<_> = queries.iter().map(|q| q.column_intervals(est.schema())).collect();
    let truths: Vec<u64> = queries.iter().map(|q| exact_cardinality(&table, q)).collect();
    (est, rows, intervals, truths)
}

#[test]
fn half_and_full_estimates_agree_within_the_compression_envelope() {
    let (est, rows, intervals, truths) = setup();

    let mut ws = DuetWorkspace::new();
    assert_eq!(ws.weight_mode, WeightMode::Full, "Full is the bit-exact default");
    let mut full = Vec::new();
    est.estimate_encoded_batch_with(&rows, &intervals, &mut ws, &mut full);

    ws.weight_mode = WeightMode::Half;
    let mut half = Vec::new();
    est.estimate_encoded_batch_with(&rows, &intervals, &mut ws, &mut half);

    // Per-estimate: each f16-rounded weight carries <= 2^-11 relative error;
    // composed through the network and the per-column product the drift
    // stays around 1e-3 on this workload — 1e-2 leaves a stable margin
    // while still being far below model error (q-errors are 1.x-10x).
    for (i, (h, f)) in half.iter().zip(full.iter()).enumerate() {
        let rel = if *f > 0.0 { (h - f).abs() / f } else { (h - f).abs() };
        assert!(rel <= 1e-2, "query {i}: half {h} vs full {f} (rel {rel})");
    }

    // The tier gate: accuracy judged by mean q-error must move by <= 0.1%
    // before a model is allowed to stay in the compressed warm tier.
    let q = |ests: &[f64]| -> f64 {
        ests.iter()
            .zip(truths.iter())
            .map(|(&est, &truth)| q_error(est, truth as f64, 1.0))
            .sum::<f64>()
            / ests.len() as f64
    };
    let (q_half, q_full) = (q(&half), q(&full));
    assert!(
        (q_half - q_full).abs() <= 1e-3 * q_full,
        "mean q-error drift must stay under 0.1%: half {q_half} vs full {q_full}"
    );
}

#[test]
fn half_mode_is_deterministic_and_rebatching_stays_in_the_envelope() {
    let (est, rows, intervals, _) = setup();

    // Determinism: within a mode, re-running the same batch is bitwise.
    for mode in [WeightMode::Full, WeightMode::Half] {
        let mut ws = DuetWorkspace::new();
        ws.weight_mode = mode;
        let mut all = Vec::new();
        est.estimate_encoded_batch_with(&rows, &intervals, &mut ws, &mut all);
        let mut rerun = Vec::new();
        est.estimate_encoded_batch_with(&rows, &intervals, &mut ws, &mut rerun);
        assert_eq!(all, rerun, "{mode:?} must be deterministic");
    }

    // Re-batching: Full is bit-invariant (the kernel contract). Half is a
    // *storage* tier for the batched hot loop — small chunks legitimately
    // fall back to the exact f32 kernels (see `MaskedLinear::
    // infer_with_entry_mode`), so chunked results may flip between the half
    // and exact paths. Every path stays inside the compression envelope, so
    // the chunked run must stay within it too.
    let mut ws = DuetWorkspace::new();
    let mut full = Vec::new();
    est.estimate_encoded_batch_with(&rows, &intervals, &mut ws, &mut full);

    ws.weight_mode = WeightMode::Half;
    let mut chunked = Vec::new();
    let mut out = Vec::new();
    for (r, i) in rows.chunks(7).zip(intervals.chunks(7)) {
        est.estimate_encoded_batch_with(r, i, &mut ws, &mut out);
        chunked.extend_from_slice(&out);
    }
    assert_eq!(chunked.len(), full.len());
    for (i, (h, f)) in chunked.iter().zip(full.iter()).enumerate() {
        let rel = if *f > 0.0 { (h - f).abs() / f } else { (h - f).abs() };
        assert!(rel <= 1e-2, "chunked query {i}: half {h} vs full {f} (rel {rel})");
    }
}
