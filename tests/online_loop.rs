//! The closed hybrid loop, end to end: ingest-driven drift detection, the
//! background retrain, and the zero-downtime publish (hot-swap + hot-set
//! replay), proven by seeded train-while-serving simulations.
//!
//! Four angles:
//!
//! * **Determinism** — `sim::run_drift_scenario` replays a seeded
//!   distribution shift (warm traffic → skewed ingest burst → trainer ticks
//!   → post traffic) twice per seed and the two `ScenarioReport`s must be
//!   identical, generation bumps and retrain counters included;
//! * **Quality** — after a seeded drift and retrain, the published model's
//!   mean q-error on a workload over the drifted table must beat the stale
//!   pre-drift model's;
//! * **Warm publish** — the hot set replayed after an online swap must leave
//!   zero cache misses for the hot queries (every post-swap submission is
//!   answered from the cache);
//! * **Safety** — a table mid-retrain is pinned and never evicted by the
//!   model tier even under a budget nothing fits in, and feedback stamped
//!   against a stale registration is rejected, not silently trained on.

use duet::core::{DuetConfig, DuetEstimator};
use duet::data::datasets::census_like;
use duet::data::Table;
use duet::query::{exact_cardinality, q_error, CardinalityEstimator, WorkloadSpec};
use duet::serve::sim::{
    run_drift_scenario, DriftScenarioConfig, HarnessConfig, RouterHarness, SubmitResult,
};
use duet::serve::{DuetServer, OnlineConfig, ServeConfig, ServeError};
use std::sync::Arc;

/// A row taking every column's last dictionary id — the most extreme
/// in-dictionary shift a single row can contribute.
fn last_id_row(table: &Table) -> Vec<u32> {
    (0..table.num_columns()).map(|c| (table.column(c).ndv() as u32).saturating_sub(1)).collect()
}

#[test]
fn drift_scenario_replays_bit_identically() {
    let table = census_like(400, 51);
    let estimator = DuetEstimator::train_data_only(&table, &DuetConfig::small().with_epochs(1), 51);
    let workload = WorkloadSpec::random(&table, 32, 52).generate(&table);

    for seed in [3u64, 9] {
        let cfg = DriftScenarioConfig {
            seed,
            warm_queries: 48,
            shift_rows: 400,
            post_queries: 48,
            tick_every: 8,
            feedback_every: 4,
            hot_keys: 16,
            online: OnlineConfig {
                drift_threshold: 0.05,
                drift_hysteresis: 2,
                retrain_steps: 4,
                train_batch_size: 8,
                ..OnlineConfig::default()
            },
            harness: HarnessConfig { cache_capacity: 128, ..HarnessConfig::default() },
        };
        let first = run_drift_scenario(&table, &estimator, &workload, &cfg);
        let second = run_drift_scenario(&table, &estimator, &workload, &cfg);
        assert_eq!(first, second, "seed {seed}: the drift scenario must replay bit-identically");

        assert_eq!(first.accounted(), first.submitted, "every request accounted exactly once");
        assert_eq!(first.mismatches, 0);
        assert_eq!(first.ingested_rows, 400, "the whole shift burst must be ingested");
        assert!(first.drift_detections >= 1, "the skewed burst must be detected as drift");
        assert!(first.retrains >= 1 && first.swaps_published >= 1, "drift must publish a retrain");
        assert!(first.post_swap_served > 0, "serving must continue across the swap");
        assert_eq!(first.feedback_rejected, 0, "in-run feedback is never stale");
    }
}

#[test]
fn retrain_beats_stale_model_on_drifted_workload() {
    let table = census_like(400, 61);
    let model_cfg = DuetConfig::small().with_epochs(2);
    let estimator = DuetEstimator::train_data_only(&table, &model_cfg, 61);
    let stale = estimator.clone();

    let mut harness =
        RouterHarness::new(vec![("drift".into(), estimator)], HarnessConfig::default());
    harness.enable_hot_set(0, 8);
    let online = harness.enable_online(
        0,
        table.clone(),
        OnlineConfig {
            drift_threshold: 0.05,
            drift_hysteresis: 1,
            retrain_steps: 64,
            train_batch_size: 32,
            recent_fraction: 0.7,
            ..OnlineConfig::default()
        },
    );

    // An extreme shift: 3x the original row count, all mass on each
    // column's last id. The stale model both mis-scales (its snapshot says
    // 400 rows; the table now has 1600) and mis-shapes (it never saw the
    // skew), so the retrained-and-published model must do better.
    let grown = {
        let mut guard = online.lock().unwrap();
        let skew = last_id_row(&table);
        for _ in 0..1200 {
            guard.ingest_row(&skew).unwrap();
        }
        let tick = guard.tick();
        assert!(tick.drift && tick.retrained && tick.swapped, "the shift must publish");
        guard.table().clone()
    };
    let published = harness.estimator(0);
    assert_eq!(published.num_rows(), grown.num_rows(), "published model carries the grown count");

    let drifted_workload = WorkloadSpec::random(&grown, 24, 62).generate(&grown);
    let mut stale_model = stale;
    let mut retrained = (*published).clone();
    let (mut stale_err, mut retrained_err) = (0.0f64, 0.0f64);
    for query in &drifted_workload {
        let actual = exact_cardinality(&grown, query) as f64;
        stale_err += q_error(stale_model.estimate(query), actual);
        retrained_err += q_error(retrained.estimate(query), actual);
    }
    let n = drifted_workload.len() as f64;
    assert!(
        retrained_err / n < stale_err / n,
        "retrained model must beat the stale one on the drifted workload \
         (stale mean q-error {:.3}, retrained {:.3})",
        stale_err / n,
        retrained_err / n,
    );
}

#[test]
fn hot_set_replay_leaves_zero_post_swap_cache_misses() {
    let table = census_like(300, 71);
    let estimator = DuetEstimator::train_data_only(&table, &DuetConfig::small().with_epochs(1), 71);
    let mut harness = RouterHarness::new(
        vec![("hot".into(), estimator)],
        HarnessConfig { cache_capacity: 64, ..HarnessConfig::default() },
    );
    harness.enable_hot_set(0, 32);
    let online = harness.enable_online(
        0,
        table.clone(),
        OnlineConfig {
            drift_threshold: 0.05,
            drift_hysteresis: 1,
            retrain_steps: 4,
            train_batch_size: 8,
            ..OnlineConfig::default()
        },
    );

    // Warm phase: every query is observed by the hot set on first sight and
    // cached after its batch executes; the second pass must be all hits.
    let workload = WorkloadSpec::random(&table, 16, 72).generate(&table);
    for (i, query) in workload.iter().enumerate() {
        harness.submit_query(0, query, i as u64);
        harness.drain();
    }
    for (i, query) in workload.iter().enumerate() {
        match harness.submit_query(0, query, 100 + i as u64) {
            SubmitResult::Cached(_) => {}
            other => panic!("warm query {i} must be served from cache, got {other:?}"),
        }
    }

    // Drift and publish: the swap bumps the generation (stale keys become
    // unreachable) and the replay re-seeds the hottest keys in one batched
    // pass under the new model.
    let tick = {
        let mut guard = online.lock().unwrap();
        let skew = last_id_row(&table);
        for _ in 0..400 {
            guard.ingest_row(&skew).unwrap();
        }
        guard.tick()
    };
    assert!(tick.swapped, "the drift burst must publish a new model");
    assert!(tick.replayed > 0, "the warm phase must have populated the hot set");

    let misses_before = harness.metrics_snapshot().cache_misses;
    for (i, query) in workload.iter().enumerate() {
        match harness.submit_query(0, query, 200 + i as u64) {
            SubmitResult::Cached(_) => {}
            other => panic!("post-swap query {i} must hit the replayed cache, got {other:?}"),
        }
    }
    assert_eq!(
        harness.metrics_snapshot().cache_misses,
        misses_before,
        "hot-set replay must leave zero post-swap cache misses"
    );
}

#[test]
fn mid_retrain_table_is_never_evicted_by_the_tier() {
    let table_a = census_like(300, 81);
    let table_b = census_like(200, 82);
    let cfg = DuetConfig::small().with_epochs(1);
    let est_a = DuetEstimator::train_data_only(&table_a, &cfg, 81);
    let est_b = DuetEstimator::train_data_only(&table_b, &cfg, 82);

    // A budget nothing fits in: every executed batch asks the tier to evict
    // everything except the active and pinned tables. The result cache is
    // off so every estimate reaches a worker (a cache hit would skip the
    // tier's enforce pass and exert no pressure).
    let server = Arc::new(DuetServer::new(ServeConfig {
        model_budget_bytes: 1,
        cache_capacity: 0,
        ..ServeConfig::default()
    }));
    server.register("a", est_a);
    server.register("b", est_b);
    server
        .enable_online(
            "a",
            table_a.clone(),
            OnlineConfig {
                drift_threshold: 0.05,
                drift_hysteresis: 1,
                // A long retrain widens the window the pin must cover.
                retrain_steps: 600,
                train_batch_size: 16,
                ..OnlineConfig::default()
            },
        )
        .unwrap();
    let skew = last_id_row(&table_a);
    for _ in 0..400 {
        server.ingest("a", &skew).unwrap();
    }

    let queries_b = WorkloadSpec::random(&table_b, 8, 83).generate(&table_b);
    let trainer = {
        let server = server.clone();
        std::thread::spawn(move || server.maintain_online("a").unwrap())
    };

    // `tick` pins before bumping `retrains` and unpins only after
    // `swaps_published` is bumped, so once `retrains` is visible the pin is
    // guaranteed held until `swaps_published` becomes visible.
    while server.metrics().retrains == 0 && !trainer.is_finished() {
        std::thread::yield_now();
    }

    let mut windows_checked = 0u32;
    while !trainer.is_finished() {
        for query in &queries_b {
            server.estimate("b", query).unwrap();
        }
        let snap = server.metrics();
        if snap.swaps_published == 0 {
            assert_eq!(
                snap.model_evictions, 0,
                "the tier must never evict the table mid-retrain (pin violated)"
            );
            assert!(server.model_tier().is_pinned(0), "table a must be pinned mid-retrain");
            windows_checked += 1;
        }
    }
    let report = trainer.join().unwrap();
    assert!(report.retrained && report.swapped, "the seeded drift must retrain and publish");
    assert!(
        windows_checked > 0,
        "the serving pressure must overlap the retrain window at least once"
    );
    assert!(!server.model_tier().is_pinned(0), "the pin must be released after the publish");

    // The pressure was real: with the pin released, the same traffic now
    // evicts the cold table.
    for query in &queries_b {
        server.estimate("b", query).unwrap();
    }
    assert!(
        server.metrics().model_evictions >= 1,
        "once unpinned, the over-budget tier must evict the cold table"
    );
}

#[test]
fn feedback_against_a_reregistered_table_is_rejected_as_stale() {
    let table = census_like(300, 91);
    let cfg = DuetConfig::small().with_epochs(1);
    let estimator = DuetEstimator::train_data_only(&table, &cfg, 91);
    let server = DuetServer::new(ServeConfig::default());
    server.register("t", estimator.clone());
    server.enable_online("t", table.clone(), OnlineConfig::default()).unwrap();

    let query = WorkloadSpec::random(&table, 1, 92).generate(&table).remove(0);
    server.feedback("t", &query, 10.0).unwrap();

    // Re-registering mints a new slot uid; the online state is still bound
    // to the old registration, so its observations describe a model that no
    // longer serves and must not be trained on.
    server.register("t", estimator);
    match server.feedback("t", &query, 10.0) {
        Err(ServeError::StaleRegistration(t)) => assert_eq!(t, "t"),
        other => panic!("stale feedback must be rejected, got {other:?}"),
    }
    assert_eq!(server.metrics().feedback_rejected, 1);

    // Invalid cardinalities are rejected too (and counted), re-registered
    // or not.
    match server.feedback("t", &query, f64::NEG_INFINITY) {
        Err(ServeError::StaleRegistration(_)) => {} // still stale: checked first
        Err(ServeError::Rejected { .. }) => {}
        other => panic!("invalid feedback must be rejected, got {other:?}"),
    }
    assert_eq!(server.metrics().feedback_rejected, 2);
}
