//! Deterministic serving-harness tests: scripted multi-client arrival
//! patterns (uniform, bursty, hot-table-skewed) replayed through the real
//! router/worker code on a virtual clock.
//!
//! The core assertion style is *replay equality*: running a scenario twice
//! with the same seed must produce identical [`ScenarioReport`]s — shed
//! counts, served counts, batch counts, everything. That makes overload and
//! deadline behavior regression-testable instead of timing-dependent. Every
//! scenario also checks conservation (each submitted request is served or
//! shed exactly once) and bit-identity (a routed, batched answer equals the
//! unbatched per-query estimate).
//!
//! A second group drives the production [`DuetServer`] (real threads, system
//! clock) through the deterministic corners of the same admission-control
//! surface: typed `Overloaded` rejections and `DeadlineExceeded` failures.

use duet::core::{DuetConfig, DuetEstimator};
use duet::data::datasets::census_like;
use duet::query::{CardinalityEstimator, Query, WorkloadSpec};
use duet::serve::sim::{
    run_scenario, ArrivalPattern, HarnessConfig, RouterHarness, ScenarioConfig, SubmitResult,
};
use duet::serve::{shard_for, DuetServer, RouterConfig, ServeConfig, ServeError, ShedReason};
use std::sync::Arc;
use std::time::Duration;

/// Train `n` small tables (distinct shapes and seeds) plus a query pool per
/// table. The names `table-0..3` spread over all 4 default shards (FNV), so
/// skew scenarios genuinely isolate shards.
fn trained_tables(n: usize) -> (Vec<(String, DuetEstimator)>, Vec<Vec<Query>>) {
    let cfg = DuetConfig::small().with_epochs(1);
    let mut tables = Vec::new();
    let mut workloads = Vec::new();
    for i in 0..n {
        let table = census_like(200 + 60 * i, 40 + i as u64);
        let estimator = DuetEstimator::train_data_only(&table, &cfg, 7 + i as u64);
        let queries = WorkloadSpec::random(&table, 10, 100 + i as u64).generate(&table);
        tables.push((format!("table-{i}"), estimator));
        workloads.push(queries);
    }
    (tables, workloads)
}

#[test]
fn uniform_arrivals_serve_everything_bit_identically() {
    let (tables, workloads) = trained_tables(3);
    let cfg = ScenarioConfig {
        seed: 42,
        clients: 4,
        requests_per_client: 30,
        mean_gap: Duration::from_micros(100),
        service_every: Duration::from_micros(300),
        pattern: ArrivalPattern::Uniform,
        harness: HarnessConfig::default(),
    };
    let report = run_scenario(&tables, &workloads, &cfg);
    assert_eq!(report.submitted, 4 * 30);
    assert_eq!(report.served, report.submitted, "ample queues must serve everything");
    assert_eq!(report.shed_overload, 0);
    assert_eq!(report.shed_deadline, 0);
    assert_eq!(report.mismatches, 0, "routed answers must be bit-identical to unbatched");
    assert_eq!(report.accounted(), report.submitted);
    assert!(report.batches > 0 && report.batches <= report.submitted);
    // Replay equality: the same seed reproduces the report exactly.
    assert_eq!(report, run_scenario(&tables, &workloads, &cfg));
    // A different seed still conserves and serves everything.
    let other = run_scenario(&tables, &workloads, &ScenarioConfig { seed: 43, ..cfg.clone() });
    assert_eq!(other.served, other.submitted);
    assert_eq!(other.mismatches, 0);
}

#[test]
fn bursty_overload_sheds_instead_of_queueing_unboundedly() {
    let (tables, workloads) = trained_tables(2);
    let queue_capacity = 4;
    let cfg = ScenarioConfig {
        seed: 7,
        clients: 4,
        requests_per_client: 32,
        mean_gap: Duration::from_micros(50),
        // Service is far slower than the bursts arrive: without admission
        // control the queues would grow without bound.
        service_every: Duration::from_millis(5),
        pattern: ArrivalPattern::Bursty { burst_size: 16 },
        harness: HarnessConfig {
            router: RouterConfig { num_shards: 2, queue_capacity, default_deadline: None },
            ..HarnessConfig::default()
        },
    };
    let report = run_scenario(&tables, &workloads, &cfg);
    assert!(report.shed_overload > 0, "bursts over a tiny queue must shed: {report:?}");
    assert!(report.served > 0, "admitted requests must still be served: {report:?}");
    assert!(
        report.max_shard_depth <= queue_capacity,
        "queue depth {} must never exceed the bound {queue_capacity}",
        report.max_shard_depth
    );
    assert_eq!(report.accounted(), report.submitted, "every request served or shed exactly once");
    assert_eq!(report.mismatches, 0, "overload must not change any served answer");
    // Identical shed/served counts on replay — the acceptance criterion.
    assert_eq!(report, run_scenario(&tables, &workloads, &cfg));
}

#[test]
fn hot_table_skew_cannot_starve_tables_on_other_shards() {
    let (tables, workloads) = trained_tables(4);
    // table-0..3 spread over all 4 shards (precondition of the isolation
    // claim; FNV assignment is stable, so assert it outright).
    let shards: Vec<usize> = (0..4).map(|i| shard_for(&format!("table-{i}"), 4)).collect();
    let hot_shard = shards[0];
    assert!(
        shards.iter().skip(1).all(|&s| s != hot_shard),
        "test precondition: hot table must be alone on its shard, got {shards:?}"
    );

    // ~85% of traffic hits table-0: between two service turns its shard
    // receives far more than its queue bound and must shed, while each cold
    // table sees only a couple of arrivals per turn and never overflows.
    let cfg = ScenarioConfig {
        seed: 11,
        clients: 6,
        requests_per_client: 40,
        mean_gap: Duration::from_micros(50),
        service_every: Duration::from_micros(250),
        pattern: ArrivalPattern::HotTable { hot_table: 0, hot_permille: 850 },
        harness: HarnessConfig {
            router: RouterConfig { num_shards: 4, queue_capacity: 6, default_deadline: None },
            ..HarnessConfig::default()
        },
    };
    let report = run_scenario(&tables, &workloads, &cfg);
    assert!(
        report.per_table_submitted[0] > report.submitted / 2,
        "skew precondition: the hot table should dominate traffic: {report:?}"
    );
    assert!(report.per_table_shed[0] > 0, "the hot shard must shed under overload: {report:?}");
    for (t, &shard) in shards.iter().enumerate().skip(1) {
        assert_eq!(
            report.per_table_shed[t], 0,
            "table {t} (shard {shard}) must not shed for the hot table's overload: {report:?}"
        );
        assert_eq!(
            report.per_table_served[t], report.per_table_submitted[t],
            "table {t} must be fully served despite the hot table: {report:?}"
        );
    }
    assert_eq!(report.mismatches, 0);
    assert_eq!(report.accounted(), report.submitted);
    // Identical shed/served counts on replay — the acceptance criterion.
    assert_eq!(report, run_scenario(&tables, &workloads, &cfg));
}

#[test]
fn deadline_budgets_expire_at_dequeue_deterministically() {
    let (tables, workloads) = trained_tables(2);
    let cfg = ScenarioConfig {
        seed: 23,
        clients: 4,
        requests_per_client: 40,
        mean_gap: Duration::from_micros(50),
        // Workers run every 2ms but budgets are 500µs: requests queued more
        // than one cadence before their service turn expire at dequeue.
        service_every: Duration::from_millis(2),
        pattern: ArrivalPattern::Uniform,
        harness: HarnessConfig {
            router: RouterConfig {
                num_shards: 2,
                queue_capacity: 4096,
                default_deadline: Some(Duration::from_micros(500)),
            },
            ..HarnessConfig::default()
        },
    };
    let report = run_scenario(&tables, &workloads, &cfg);
    assert!(report.shed_deadline > 0, "stale requests must be dropped at dequeue: {report:?}");
    assert_eq!(report.shed_overload, 0, "queues are ample; only deadlines shed here");
    assert_eq!(report.accounted(), report.submitted);
    assert_eq!(report.mismatches, 0, "every served answer must still be bit-identical");
    assert_eq!(report, run_scenario(&tables, &workloads, &cfg));
}

#[test]
fn harness_single_steps_admission_deadline_and_metrics() {
    let (tables, workloads) = trained_tables(1);
    let mut harness = RouterHarness::new(
        tables,
        HarnessConfig {
            router: RouterConfig {
                num_shards: 1,
                queue_capacity: 2,
                default_deadline: Some(Duration::from_millis(1)),
            },
            ..HarnessConfig::default()
        },
    );
    let query = &workloads[0][0];
    assert_eq!(harness.submit_query(0, query, 0), SubmitResult::Queued { depth: 1 });
    assert_eq!(harness.submit_query(0, query, 1), SubmitResult::Queued { depth: 2 });
    assert!(
        matches!(harness.submit_query(0, query, 2), SubmitResult::Shed { depth: 2 }),
        "third request must be rejected by the bounded queue"
    );

    // Let both queued budgets lapse, then run the worker: both are dropped
    // at dequeue without a forward pass.
    harness.clock().advance(Duration::from_millis(2));
    harness.turn();
    assert_eq!(harness.outcomes().len(), 2);
    assert!(harness
        .outcomes()
        .iter()
        .all(|(_, outcome)| *outcome == Err(ShedReason::DeadlineExpired)));
    let snapshot = harness.metrics_snapshot();
    assert_eq!(snapshot.shed_overload, 1);
    assert_eq!(snapshot.shed_deadline, 2);
    assert_eq!(snapshot.queue_depth, 0);
    assert_eq!(snapshot.batches, 0, "no forward pass ran for expired requests");

    // A fresh request inside its budget is served normally.
    harness.clear_outcomes();
    assert_eq!(harness.submit_query(0, query, 3), SubmitResult::Queued { depth: 1 });
    harness.turn();
    let mut reference = (*harness.estimator(0)).clone();
    assert_eq!(harness.outcomes(), &[(3u64, Ok(reference.estimate(query)))]);
}

// ---------------------------------------------------------------------------
// Production-path admission control (real threads, system clock)
// ---------------------------------------------------------------------------

fn small_served_table(seed: u64) -> (duet::data::Table, DuetEstimator, Vec<Query>) {
    let table = census_like(300, 77);
    let cfg = DuetConfig::small().with_epochs(1);
    let estimator = DuetEstimator::train_data_only(&table, &cfg, seed);
    let queries = WorkloadSpec::random(&table, 8, 5).generate(&table);
    (table, estimator, queries)
}

#[test]
fn production_server_sheds_typed_overloaded_at_zero_capacity() {
    let (_, estimator, queries) = small_served_table(1);
    let server = DuetServer::new(ServeConfig {
        router: RouterConfig { queue_capacity: 0, ..RouterConfig::default() },
        cache_capacity: 0,
        ..ServeConfig::default()
    });
    server.register("census", estimator);
    let expected_shard = server.shard_of("census");
    match server.estimate("census", &queries[0]) {
        Err(ServeError::Overloaded { table, shard, depth }) => {
            assert_eq!(table, "census");
            assert_eq!(shard, expected_shard);
            assert_eq!(depth, 0);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let metrics = server.metrics();
    assert_eq!(metrics.shed_overload, 1);
    assert_eq!(metrics.requests, 0, "a shed request never completes");
}

#[test]
fn production_server_enforces_expired_deadlines() {
    let (_, estimator, queries) = small_served_table(2);
    let server = DuetServer::new(ServeConfig {
        router: RouterConfig { default_deadline: Some(Duration::ZERO), ..RouterConfig::default() },
        cache_capacity: 0,
        ..ServeConfig::default()
    });
    server.register("census", estimator);
    // A zero budget is expired by the time any worker can dequeue it.
    match server.estimate("census", &queries[0]) {
        Err(ServeError::DeadlineExceeded(table)) => assert_eq!(table, "census"),
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert!(server.metrics().shed_deadline >= 1);
}

#[test]
fn production_shared_pool_routes_many_tables_bit_identically() {
    // More tables than shards: the shared pool multiplexes them, and every
    // answer must still match the direct per-query estimate.
    let (tables, workloads) = trained_tables(4);
    let expected: Vec<Vec<f64>> = tables
        .iter()
        .zip(&workloads)
        .map(|((_, est), qs)| {
            let mut reference = est.clone();
            qs.iter().map(|q| reference.estimate(q)).collect()
        })
        .collect();

    let server = Arc::new(DuetServer::new(ServeConfig {
        router: RouterConfig { num_shards: 2, ..RouterConfig::default() },
        cache_capacity: 0,
        ..ServeConfig::default()
    }));
    for (name, est) in &tables {
        server.register(name.clone(), est.clone());
    }

    let handles: Vec<_> = (0..6)
        .map(|client| {
            let server = server.clone();
            let tables: Vec<String> = tables.iter().map(|(n, _)| n.clone()).collect();
            let workloads = workloads.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                for round in 0..3 {
                    for t in 0..tables.len() {
                        let t = (t + client) % tables.len();
                        for (i, q) in workloads[t].iter().enumerate() {
                            let _ = round;
                            let got = server.estimate(&tables[t], q).unwrap();
                            assert_eq!(got, expected[t][i], "table {t} query {i} diverged");
                        }
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let metrics = server.metrics();
    assert_eq!(metrics.requests, 6 * 3 * 4 * 10);
    assert_eq!(metrics.shed_overload + metrics.shed_deadline, 0);
    assert!(metrics.batches > 0);
}

#[test]
fn scenario_with_result_cache_still_conserves_and_matches() {
    // With a per-table cache on, repeats are served from cache; everything
    // still conserves and stays bit-identical (a hit returns the exact miss
    // value), and the replay stays deterministic.
    let (tables, workloads) = trained_tables(2);
    let cfg = ScenarioConfig {
        seed: 5,
        clients: 3,
        requests_per_client: 40, // far more requests than distinct queries
        mean_gap: Duration::from_micros(80),
        service_every: Duration::from_micros(160),
        pattern: ArrivalPattern::Uniform,
        harness: HarnessConfig { cache_capacity: 256, cache_shards: 2, ..HarnessConfig::default() },
    };
    let report = run_scenario(&tables, &workloads, &cfg);
    assert_eq!(report.served, report.submitted);
    assert_eq!(report.mismatches, 0);
    assert!(report.batches < report.submitted, "cache hits must spare forward batches: {report:?}");
    assert_eq!(report, run_scenario(&tables, &workloads, &cfg));
}
