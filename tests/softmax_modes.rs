//! End-to-end parity of the softmax modes: `SoftmaxMode::Fast` (the
//! inference default, polynomial exp) must agree with `SoftmaxMode::Exact`
//! (libm exp) to within noise on a real workload — per-estimate relative
//! error far below model error, and q-error distributions that match to
//! high precision.

use duet::core::{query_to_id_predicates, DuetConfig, DuetEstimator, DuetWorkspace, SoftmaxMode};
use duet::data::datasets::census_like;
use duet::nn::q_error;
use duet::query::{exact_cardinality, WorkloadSpec};

/// Per-query id-space predicate rows.
type EncodedRows = Vec<Vec<Vec<duet::core::IdPredicate>>>;
/// Per-query valid-id intervals.
type EncodedIntervals = Vec<Vec<(u32, u32)>>;

/// One trained estimator plus an encoded census workload.
fn setup() -> (DuetEstimator, EncodedRows, EncodedIntervals, Vec<u64>) {
    let table = census_like(2_000, 11);
    let cfg = DuetConfig::small().with_epochs(2);
    let est = DuetEstimator::train_data_only(&table, &cfg, 5);
    let queries = WorkloadSpec::random(&table, 64, 321).generate(&table);
    let rows: Vec<_> = queries.iter().map(|q| query_to_id_predicates(est.schema(), q)).collect();
    let intervals: Vec<_> = queries.iter().map(|q| q.column_intervals(est.schema())).collect();
    let truths: Vec<u64> = queries.iter().map(|q| exact_cardinality(&table, q)).collect();
    (est, rows, intervals, truths)
}

#[test]
fn fast_and_exact_estimates_agree_within_noise() {
    let (est, rows, intervals, truths) = setup();

    let mut ws = DuetWorkspace::new();
    assert_eq!(ws.softmax_mode, SoftmaxMode::Fast, "Fast is the inference default");
    let mut fast = Vec::new();
    est.estimate_encoded_batch_with(&rows, &intervals, &mut ws, &mut fast);

    ws.softmax_mode = SoftmaxMode::Exact;
    let mut exact = Vec::new();
    est.estimate_encoded_batch_with(&rows, &intervals, &mut ws, &mut exact);

    // Per-estimate: the fast path's 1e-6 exp error composes across at most
    // ~14 constrained columns — relative error stays microscopic next to
    // model error (q-errors are typically 1.x-10x).
    for (i, (f, e)) in fast.iter().zip(exact.iter()).enumerate() {
        let rel = if *e > 0.0 { (f - e).abs() / e } else { (f - e).abs() };
        assert!(rel <= 1e-4, "query {i}: fast {f} vs exact {e} (rel {rel})");
    }

    // Q-error parity: both modes judge the workload identically to well
    // under the measurement noise of any accuracy experiment.
    let q = |ests: &[f64]| -> f64 {
        ests.iter()
            .zip(truths.iter())
            .map(|(&est, &truth)| q_error(est, truth as f64, 1.0))
            .sum::<f64>()
            / ests.len() as f64
    };
    let (q_fast, q_exact) = (q(&fast), q(&exact));
    assert!(
        (q_fast - q_exact).abs() <= 1e-3 * q_exact,
        "mean q-error must match within noise: fast {q_fast} vs exact {q_exact}"
    );
}

#[test]
fn each_mode_is_deterministic_and_batch_invariant() {
    let (est, rows, intervals, _) = setup();
    for mode in [SoftmaxMode::Fast, SoftmaxMode::Exact] {
        let mut ws = DuetWorkspace::new();
        ws.softmax_mode = mode;
        let mut all = Vec::new();
        est.estimate_encoded_batch_with(&rows, &intervals, &mut ws, &mut all);

        // Re-running and re-batching must be bit-identical within a mode.
        let mut rerun = Vec::new();
        est.estimate_encoded_batch_with(&rows, &intervals, &mut ws, &mut rerun);
        assert_eq!(all, rerun, "{mode:?} must be deterministic");

        let mut chunked = Vec::new();
        let mut out = Vec::new();
        for (r, i) in rows.chunks(7).zip(intervals.chunks(7)) {
            est.estimate_encoded_batch_with(r, i, &mut ws, &mut out);
            chunked.extend_from_slice(&out);
        }
        assert_eq!(all, chunked, "{mode:?} must be batch-invariant");
    }
}
