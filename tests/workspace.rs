//! Integration tests for the allocation-free inference path: batched
//! estimation through a caller-owned [`DuetWorkspace`] must be bit-identical
//! to per-query estimation, for every MPSN variant, across workspace reuse
//! with changing batch shapes, and through the serving layer.

use duet::core::{query_to_id_predicates, DuetConfig, DuetEstimator, DuetWorkspace, MpsnKind};
use duet::data::datasets::census_like;
use duet::query::{CardinalityEstimator, WorkloadSpec};

#[test]
fn workspace_batches_match_per_query_estimates_exactly() {
    let table = census_like(500, 19);
    let cfg = DuetConfig::small().with_epochs(2);
    let mut est = DuetEstimator::train_data_only(&table, &cfg, 7);
    let queries = WorkloadSpec::random(&table, 41, 23).generate(&table);

    // One workspace, many batch shapes: 1, then uneven chunks, then all.
    let mut ws = DuetWorkspace::new();
    let mut out = Vec::new();
    for chunk_size in [1usize, 7, 41] {
        for chunk in queries.chunks(chunk_size) {
            est.estimate_batch_with(chunk, &mut ws, &mut out);
            assert_eq!(out.len(), chunk.len());
            for (q, &batched) in chunk.iter().zip(&out) {
                assert_eq!(
                    est.estimate(q),
                    batched,
                    "workspace-batched estimate must be bit-identical (chunk {chunk_size})"
                );
            }
        }
    }
}

#[test]
fn workspace_estimates_are_bit_identical_for_every_mpsn_kind() {
    for kind in [MpsnKind::None, MpsnKind::Mlp, MpsnKind::Recurrent, MpsnKind::Recursive] {
        let table = census_like(200, 8);
        let mut cfg = DuetConfig::small().with_epochs(1);
        if kind != MpsnKind::None {
            cfg = cfg.with_mpsn(kind, 2);
        }
        let mut est = DuetEstimator::train_data_only(&table, &cfg, 5);
        let queries = WorkloadSpec::random(&table, 10, 21).generate(&table);

        let mut ws = DuetWorkspace::new();
        let mut out = Vec::new();
        est.estimate_batch_with(&queries, &mut ws, &mut out);
        let alloc = est.estimate_batch(&queries);
        assert_eq!(out, alloc, "workspace path must match allocating path ({kind:?})");
        for (q, &batched) in queries.iter().zip(&out) {
            assert_eq!(est.estimate(q), batched, "must match per-query estimate ({kind:?})");
        }
    }
}

#[test]
fn workspace_survives_model_switches() {
    // A workspace is scratch only: reusing it across differently-shaped
    // models must not change any result.
    let mut ws = DuetWorkspace::new();
    let mut out = Vec::new();
    for (rows, cols_seed) in [(300usize, 3u64), (200, 4), (400, 5)] {
        let table = census_like(rows, cols_seed);
        let cfg = DuetConfig::small().with_epochs(1);
        let mut est = DuetEstimator::train_data_only(&table, &cfg, cols_seed);
        let queries = WorkloadSpec::random(&table, 8, cols_seed).generate(&table);
        est.estimate_batch_with(&queries, &mut ws, &mut out);
        for (q, &batched) in queries.iter().zip(&out) {
            assert_eq!(est.estimate(q), batched);
        }
    }
}

#[test]
fn workspace_masked_cache_invalidates_on_weight_mutation() {
    // The workspace memoizes masked effective weights keyed by the layers'
    // WeightKeys. Mutating the weights in place (an optimizer step routes
    // through visit_params, exactly like checkpoint loading does) must
    // invalidate those memos: the reused workspace has to produce the same
    // estimates as a fresh one at every step.
    let table = census_like(300, 9);
    let cfg = DuetConfig::small().with_epochs(1);
    let mut est = DuetEstimator::train_data_only(&table, &cfg, 13);
    let queries = WorkloadSpec::random(&table, 12, 3).generate(&table);

    let mut reused = DuetWorkspace::new();
    let mut out_reused = Vec::new();
    let mut out_fresh = Vec::new();
    let mut previous: Option<Vec<f64>> = None;
    for step in 0..3 {
        est.estimate_batch_with(&queries, &mut reused, &mut out_reused);
        est.estimate_batch_with(&queries, &mut DuetWorkspace::new(), &mut out_fresh);
        assert_eq!(out_reused, out_fresh, "reused workspace must match a fresh one (step {step})");
        if let Some(previous) = &previous {
            assert_ne!(
                previous, &out_reused,
                "perturbed weights must actually change estimates (step {step})"
            );
        }
        previous = Some(out_reused.clone());

        // Perturb every parameter through the only mutable route the
        // optimizer has; stale cached masked weights would now be wrong.
        est.model_mut().visit_params(&mut |p| {
            for v in p.data.as_mut_slice() {
                *v += 0.01;
            }
        });
    }
}

#[test]
fn workspace_masked_cache_invalidates_on_checkpoint_hot_swap() {
    // A serving worker's long-lived workspace must follow a hot-swap: the
    // swap loads a checkpoint into a *clone* of the running model, and the
    // clone's fresh weight identities invalidate every cached masked weight.
    let table = census_like(300, 10);
    let cfg = DuetConfig::small().with_epochs(1);
    let est_a = DuetEstimator::train_data_only(&table, &cfg, 1);
    let mut est_b = DuetEstimator::train_data_only(&table, &cfg, 2);
    let queries = WorkloadSpec::random(&table, 10, 4).generate(&table);
    let expected_b = est_b.estimate_batch(&queries);

    let mut ws = DuetWorkspace::new();
    let mut out = Vec::new();
    est_a.estimate_batch_with(&queries, &mut ws, &mut out);
    assert_ne!(out, expected_b, "differently seeded models should disagree");

    // The registry's hot-swap path: clone the serving model, load weights.
    let checkpoint = duet::core::save_weights(&mut est_b);
    let mut swapped = est_a.clone();
    duet::core::load_weights(&mut swapped, &checkpoint).expect("checkpoint should load");
    swapped.estimate_batch_with(&queries, &mut ws, &mut out);
    assert_eq!(out, expected_b, "swapped weights must serve through the reused workspace");
}

#[test]
fn encoded_batch_with_matches_public_wrappers() {
    let table = census_like(300, 31);
    let cfg = DuetConfig::small().with_epochs(1);
    let est = DuetEstimator::train_data_only(&table, &cfg, 11);
    let queries = WorkloadSpec::random(&table, 16, 5).generate(&table);
    let rows: Vec<_> = queries.iter().map(|q| query_to_id_predicates(est.schema(), q)).collect();
    let intervals: Vec<_> = queries.iter().map(|q| q.column_intervals(est.schema())).collect();

    let mut ws = DuetWorkspace::new();
    let mut out = Vec::new();
    est.estimate_encoded_batch_with(&rows, &intervals, &mut ws, &mut out);
    assert_eq!(out, est.estimate_encoded_batch(&rows, &intervals));
    assert_eq!(out, est.estimate_batch(&queries));

    // Empty batches are a no-op that clears the output (the generic
    // row/interval holders need naming when the slice is empty).
    let no_rows: &[Vec<Vec<duet::core::IdPredicate>>] = &[];
    let no_intervals: &[Vec<(u32, u32)>] = &[];
    est.estimate_encoded_batch_with(no_rows, no_intervals, &mut ws, &mut out);
    assert!(out.is_empty());
}
