//! Property-based tests (proptest) over the core invariants: predicate
//! semantics vs ground truth, Q-Error bounds, sampler consistency, the
//! autoregressive masking of the Duet model, and the serving cache's
//! epoch-tagged insert protocol around hot-swaps.

use duet::core::{query_to_id_predicates, sample_predicate, DuetConfig, DuetEstimator, DuetModel};
use duet::data::datasets::census_like;
use duet::data::{Column, Table, Value};
use duet::nn::seeded_rng;
use duet::query::{exact_cardinality, q_error, CardinalityEstimator, PredOp, Query};
use proptest::prelude::*;

/// Build a small random table from proptest-generated cell values.
fn table_from_cells(cells: &[Vec<i64>]) -> Table {
    let ncols = cells[0].len();
    let columns: Vec<Column> = (0..ncols)
        .map(|c| {
            let values: Vec<Value> = cells.iter().map(|row| Value::Int(row[c])).collect();
            Column::from_values(format!("c{c}"), &values)
        })
        .collect();
    Table::new("prop", columns)
}

fn op_from_index(i: usize) -> PredOp {
    PredOp::ALL[i % PredOp::ALL.len()]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The exact evaluator agrees with a naive per-row predicate check for any
    /// random table and conjunctive query.
    #[test]
    fn exact_cardinality_matches_naive_scan(
        cells in prop::collection::vec(prop::collection::vec(0i64..8, 3), 1..60),
        ops in prop::collection::vec(0usize..5, 1..4),
        lits in prop::collection::vec(0i64..8, 1..4),
        cols in prop::collection::vec(0usize..3, 1..4),
    ) {
        let table = table_from_cells(&cells);
        let mut query = Query::all();
        for ((&op, &lit), &col) in ops.iter().zip(&lits).zip(&cols) {
            query = query.and(col % 3, op_from_index(op), Value::Int(lit));
        }
        let naive = (0..table.num_rows())
            .filter(|&r| query.matches_row(&table, r))
            .count() as u64;
        prop_assert_eq!(exact_cardinality(&table, &query), naive);
    }

    /// Q-Error is symmetric and always at least 1.
    #[test]
    fn q_error_is_symmetric_and_at_least_one(a in 0.0f64..1e9, b in 0.0f64..1e9) {
        let e1 = q_error(a, b);
        let e2 = q_error(b, a);
        prop_assert!((e1 - e2).abs() < 1e-9);
        prop_assert!(e1 >= 1.0);
    }

    /// Algorithm 1's per-predicate sampler always returns a predicate the
    /// anchor value satisfies, with a literal inside the domain.
    #[test]
    fn sampled_predicates_are_satisfied_by_their_anchor(
        ndv in 1u32..500,
        anchor_frac in 0.0f64..1.0,
        seed in 0u64..1_000,
    ) {
        let anchor = ((ndv as f64 - 1.0) * anchor_frac).round() as u32;
        let mut rng = seeded_rng(seed);
        let pred = sample_predicate(anchor, ndv, &mut rng);
        prop_assert!(pred.value_id < ndv);
        let satisfied = match pred.op {
            PredOp::Eq => anchor == pred.value_id,
            PredOp::Gt => anchor > pred.value_id,
            PredOp::Lt => anchor < pred.value_id,
            PredOp::Ge => anchor >= pred.value_id,
            PredOp::Le => anchor <= pred.value_id,
        };
        prop_assert!(satisfied);
    }

    /// Column id intervals always agree with direct predicate evaluation over
    /// the dictionary.
    #[test]
    fn id_intervals_agree_with_predicate_semantics(
        dict_size in 1usize..40,
        op_idx in 0usize..5,
        lit in -5i64..45,
    ) {
        let values: Vec<Value> = (0..dict_size as i64).map(Value::Int).collect();
        let column = Column::from_values("c", &values);
        let pred = duet::query::ColumnPredicate::new(0, op_from_index(op_idx), Value::Int(lit));
        let (lo, hi) = pred.id_interval(&column);
        for id in 0..dict_size as u32 {
            let in_interval = id >= lo && id < hi;
            let matches = pred.matches(column.value_of_id(id));
            prop_assert_eq!(in_interval, matches);
        }
    }
}

proptest! {
    // The model-level properties are more expensive; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Even an untrained Duet model always produces selectivities in [0, 1]
    /// and deterministic results.
    #[test]
    fn untrained_model_estimates_are_probabilities(
        seed in 0u64..50,
        col_a in 0usize..14,
        col_b in 0usize..14,
        lit_a in 0i64..60,
        lit_b in 0i64..60,
        op_a in 0usize..5,
        op_b in 0usize..5,
    ) {
        let table = census_like(300, 77);
        let model = DuetModel::new(&table, &DuetConfig::small(), seed);
        let query = Query::all()
            .and(col_a, op_from_index(op_a), Value::Int(lit_a))
            .and(col_b, op_from_index(op_b), Value::Int(lit_b));
        let preds = query_to_id_predicates(&table, &query);
        let intervals = query.column_intervals(&table);
        let sel = model.estimate_selectivity(&preds, &intervals);
        prop_assert!((0.0..=1.0).contains(&sel));
        prop_assert_eq!(sel, model.estimate_selectivity(&preds, &intervals));
    }

    /// A trained estimator never exceeds the table size and treats an
    /// unconstrained query as the full relation.
    #[test]
    fn estimator_respects_global_bounds(seed in 0u64..20) {
        let table = census_like(400, 78);
        let mut duet = DuetEstimator::train_data_only(
            &table,
            &DuetConfig::small().with_epochs(1),
            seed,
        );
        let q = Query::all().and((seed % 14) as usize, PredOp::Ge, Value::Int(1));
        let e = duet.estimate(&q);
        prop_assert!(e >= 0.0 && e <= table.num_rows() as f64 + 1e-6);
        prop_assert!((duet.estimate(&Query::all()) - table.num_rows() as f64).abs() < 1e-6);
    }
}

// ---------------------------------------------------------------------------
// Allocation-free kernel / workspace bit-identity
// ---------------------------------------------------------------------------

use duet::nn::{
    rowvec_matmul_into, Activation, ForwardWorkspace, InferLayer, Layer, Made, MadeConfig, Matrix,
};

/// Deterministic pseudo-random matrix (LCG, no `rand` dependency).
fn lcg_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    Matrix::from_fn(rows, cols, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every `_into` matmul kernel writes results bit-identical to its
    /// allocating wrapper, even into a dirty, wrongly-shaped reused buffer.
    #[test]
    fn matmul_into_kernels_are_bit_identical(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        seed in 0u64..1_000,
    ) {
        let a = lcg_matrix(m, k, seed);
        let b = lcg_matrix(k, n, seed ^ 1);
        let bt = lcg_matrix(n, k, seed ^ 2);
        let at = lcg_matrix(k, m, seed ^ 3);

        let mut out = lcg_matrix(7, 3, 99); // deliberately dirty and mis-shaped
        a.matmul_into(&b, &mut out);
        prop_assert_eq!(out.shape(), (m, n));
        prop_assert_eq!(out.as_slice(), a.matmul(&b).as_slice());

        a.matmul_nt_into(&bt, &mut out);
        prop_assert_eq!(out.as_slice(), a.matmul_nt(&bt).as_slice());

        at.matmul_tn_into(&b, &mut out);
        prop_assert_eq!(out.as_slice(), at.matmul_tn(&b).as_slice());
    }

    /// The fused matmul + bias + activation kernel is bit-identical to the
    /// unfused `matmul` / `add_row_vector` / clamp pipeline, and the row
    /// vector kernel matches a `1 x k` matmul.
    #[test]
    fn fused_addmm_is_bit_identical(
        m in 1usize..16,
        k in 1usize..16,
        n in 1usize..16,
        seed in 0u64..1_000,
    ) {
        let x = lcg_matrix(m, k, seed);
        let w = lcg_matrix(k, n, seed ^ 7);
        let bias = lcg_matrix(1, n, seed ^ 8).into_vec();

        let mut unfused = x.matmul(&w);
        unfused.add_row_vector(&bias);
        let mut fused = lcg_matrix(2, 2, 1); // dirty
        x.addmm_bias_act_into(&w, Some(&bias), Activation::Identity, &mut fused);
        prop_assert_eq!(fused.as_slice(), unfused.as_slice());

        unfused.as_mut_slice().iter_mut().for_each(|v| {
            if *v < 0.0 {
                *v = 0.0;
            }
        });
        x.addmm_bias_act_into(&w, Some(&bias), Activation::Relu, &mut fused);
        prop_assert_eq!(fused.as_slice(), unfused.as_slice());

        let xr = lcg_matrix(1, k, seed ^ 9);
        let mut out_v = vec![9.0f32; n];
        rowvec_matmul_into(xr.row(0), &w, &mut out_v);
        prop_assert_eq!(&out_v[..], xr.matmul(&w).as_slice());
    }

    /// A workspace-threaded MADE inference pass is bit-identical to the
    /// caching training forward, including across reuses of one workspace
    /// for different batch sizes (both plain MADE and ResMADE).
    #[test]
    fn made_infer_into_matches_training_forward(
        batch in 1usize..8,
        hidden in 2usize..24,
        residual in 0usize..2,
        seed in 0u64..500,
    ) {
        let config = MadeConfig {
            input_block_sizes: vec![3, 2, 4],
            output_block_sizes: vec![4, 2, 3],
            hidden_sizes: vec![hidden, hidden],
            residual: residual == 1,
        };
        let mut rng = seeded_rng(seed);
        let mut made = Made::new(config, &mut rng);
        let mut ws = ForwardWorkspace::new();
        for round in 0..3u64 {
            let rows = 1 + (batch + round as usize) % 8;
            let x = lcg_matrix(rows, 9, seed ^ round);
            let trained = made.forward(&x);
            let inferred = made.infer_into(&x, &mut ws);
            prop_assert_eq!(inferred.as_slice(), trained.as_slice());
        }
    }
}

// ---------------------------------------------------------------------------
// ShardedCache epoch tagging around hot-swaps
// ---------------------------------------------------------------------------

use duet::serve::{canonical_key_from_parts, CacheKey, ShardedCache};

/// A distinct cache key per `n` against a minimal schema: with no
/// constrained columns the canonical layout is just the generation word, so
/// varying it yields arbitrarily many distinct keys.
fn key_number(schema: &Table, n: u64) -> CacheKey {
    let preds: Vec<Vec<duet::core::IdPredicate>> = vec![Vec::new(); schema.num_columns()];
    let intervals: Vec<(u32, u32)> =
        (0..schema.num_columns()).map(|c| (0, schema.column(c).ndv() as u32)).collect();
    canonical_key_from_parts(schema, n, &preds, &intervals)
}

fn tiny_schema() -> Table {
    let values: Vec<Value> = (0..4i64).map(Value::Int).collect();
    Table::new("k", vec![Column::from_values("c", &values)])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Epoch-tagged inserts can never resurrect entries from before a
    /// hot-swap invalidation, under *any* interleaving of batch-worker
    /// activity (snapshot → inserts) with invalidations.
    ///
    /// The interpreter below replays a random interleaving of 4 simulated
    /// batch workers and the invalidator as one serialized history — which
    /// is exactly the set of behaviors the real mutex+atomic protocol
    /// linearizes to (`insert_tagged` re-checks the epoch under the shard
    /// lock) — and checks the cache against an exact model of what must
    /// survive.
    #[test]
    fn epoch_tagged_inserts_never_resurrect_stale_entries(
        ops in prop::collection::vec(0u8..=8, 4..60),
    ) {
        let schema = tiny_schema();
        let cache = ShardedCache::new(256, 4);
        // Per-worker batch state: the epoch snapshotted at batch start.
        let mut snapshots: [Option<u64>; 4] = [None; 4];
        let mut next_key = 0u64;
        let mut invalidations = 0u64;
        // (key, snapshot epoch, epoch at insert, invalidations at insert)
        let mut inserted: Vec<(CacheKey, u64, u64, u64)> = Vec::new();

        for op in ops {
            match op {
                // Ops 0..=3: worker `op` takes its batch's epoch snapshot
                // (re-snapshotting starts a new batch).
                0..=3 => snapshots[op as usize] = Some(cache.epoch()),
                // Ops 4..=7: worker `op - 4` inserts a result tagged with
                // its snapshot — possibly long after an invalidation.
                4..=7 => {
                    let worker = (op - 4) as usize;
                    if let Some(snapshot) = snapshots[worker] {
                        let key = key_number(&schema, next_key);
                        next_key += 1;
                        cache.insert_tagged(key.clone(), 1.0, snapshot);
                        inserted.push((key, snapshot, cache.epoch(), invalidations));
                    }
                }
                // Op 8: a hot-swap lands — bump the epoch and purge.
                _ => {
                    cache.invalidate();
                    invalidations += 1;
                }
            }
        }

        // Exact model: an entry survives iff its tag matched the epoch at
        // insert time (otherwise `insert_tagged` dropped it) AND no
        // invalidation ran after the insert (otherwise the purge removed
        // it). `contains` leaves LRU order and counters untouched.
        let final_epoch = cache.epoch();
        let mut expected_live = 0usize;
        for (key, snapshot, epoch_at_insert, invals_at_insert) in &inserted {
            let should_live =
                snapshot == epoch_at_insert && *invals_at_insert == invalidations;
            prop_assert_eq!(
                cache.contains(key),
                should_live,
                "key tagged {} inserted at epoch {} ({} invalidations since)",
                snapshot,
                epoch_at_insert,
                invalidations - invals_at_insert
            );
            if should_live {
                expected_live += 1;
                // Corollary: everything that survived was inserted in the
                // current epoch — no stale-generation entry outlives a swap.
                prop_assert_eq!(*snapshot, final_epoch);
            }
        }
        prop_assert_eq!(cache.len(), expected_live);
    }
}

/// The same protocol under real concurrency: inserter threads hammer
/// `insert_tagged` with a pre-swap epoch snapshot while the main thread
/// invalidates midway. Whatever the interleaving, no stale-tagged entry may
/// survive — inserts that raced ahead of the bump are purged, inserts after
/// it are rejected.
#[test]
fn concurrent_stale_epoch_inserts_never_survive_invalidation() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Barrier};

    let schema = tiny_schema();
    let cache = Arc::new(ShardedCache::new(4096, 8));
    let stale_epoch = cache.epoch();
    let start = Arc::new(Barrier::new(5));
    let swapped = Arc::new(AtomicBool::new(false));

    let inserters: Vec<_> = (0..4u64)
        .map(|worker| {
            let (cache, start, swapped) = (cache.clone(), start.clone(), swapped.clone());
            let schema = schema.clone();
            std::thread::spawn(move || {
                start.wait();
                for i in 0..300u64 {
                    let key = key_number(&schema, worker * 1_000 + i);
                    cache.insert_tagged(key, 0.5, stale_epoch);
                    if i == 150 {
                        // Give the invalidator a chance to land mid-stream.
                        while !swapped.load(Ordering::Acquire) {
                            std::thread::yield_now();
                        }
                    }
                }
            })
        })
        .collect();

    start.wait();
    cache.invalidate(); // the hot-swap
    swapped.store(true, Ordering::Release);
    for t in inserters {
        t.join().unwrap();
    }

    assert_eq!(
        cache.len(),
        0,
        "every stale-tagged insert must be either purged or rejected; none may survive"
    );
    // A current-epoch insert still lands, so the cache is not bricked.
    cache.insert_tagged(key_number(&schema, 9_999), 1.0, cache.epoch());
    assert_eq!(cache.len(), 1);
}
