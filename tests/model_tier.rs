//! Fleet-scale model tiering under pressure: a registry-wide memory budget
//! smaller than the resident total must still serve **every** request
//! correctly — cold models are evicted to checkpoint bytes (in memory or
//! spilled to disk) and lazily reloaded, bit-identically, when traffic
//! returns to them.
//!
//! Three layers are covered: the slot-level evict→reload round trip with a
//! spilled (on-disk) checkpoint, seeded budget-pressure scenarios through
//! the deterministic harness (replay equality + bit-identity + eviction
//! accounting), and the production [`DuetServer`] with a configured
//! [`ServeConfig::model_budget_bytes`].

use duet::core::{DuetConfig, DuetEstimator};
use duet::data::datasets::census_like;
use duet::query::{Query, WorkloadSpec};
use duet::serve::sim::{run_scenario, ArrivalPattern, HarnessConfig, ScenarioConfig};
use duet::serve::{DuetServer, ModelSlot, ServeConfig};
use std::time::Duration;

/// Train `n` small tables (distinct shapes and seeds) plus a query pool per
/// table.
fn trained_tables(n: usize) -> (Vec<(String, DuetEstimator)>, Vec<Vec<Query>>) {
    let cfg = DuetConfig::small().with_epochs(1);
    let mut tables = Vec::new();
    let mut workloads = Vec::new();
    for i in 0..n {
        let table = census_like(200 + 60 * i, 80 + i as u64);
        let estimator = DuetEstimator::train_data_only(&table, &cfg, 17 + i as u64);
        let queries = WorkloadSpec::random(&table, 10, 200 + i as u64).generate(&table);
        tables.push((format!("table-{i}"), estimator));
        workloads.push(queries);
    }
    (tables, workloads)
}

/// A fresh subdirectory of the test-scoped target tmpdir (unique per test so
/// parallel tests never share spill files).
fn spill_dir(test: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(test);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn spilled_eviction_reloads_bit_identically() {
    let table = census_like(300, 81);
    let cfg = DuetConfig::small().with_epochs(1);
    let est = DuetEstimator::train_data_only(&table, &cfg, 21);
    let queries = WorkloadSpec::random(&table, 24, 7).generate(&table);
    let expected = est.estimate_batch(&queries);
    let weight_bytes = est.model().size_bytes();

    let dir = spill_dir("spilled-evict-reload");
    let slot = ModelSlot::new(est);
    let freed = slot.evict(Some(&dir)).expect("spill to target tmpdir");
    assert_eq!(freed, weight_bytes, "eviction frees exactly the resident weight bytes");
    assert!(!slot.is_resident());
    let spilled: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
    assert_eq!(spilled.len(), 1, "one checkpoint file per evicted model");

    // The next access transparently reloads from the spilled checkpoint and
    // must reproduce every estimate bit-for-bit.
    let reloaded = slot.current();
    assert!(slot.is_resident());
    let after = reloaded.estimate_batch(&queries);
    for (a, e) in after.iter().zip(expected.iter()) {
        assert_eq!(a.to_bits(), e.to_bits(), "reloaded model must be bit-identical");
    }
    assert_eq!((slot.evictions(), slot.reloads()), (1, 1));
    let remaining: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
    assert!(remaining.is_empty(), "the spill file is discarded after a successful reload");
}

#[test]
fn budget_pressure_scenario_serves_everything_and_replays_identically() {
    let (tables, workloads) = trained_tables(3);
    // A budget one byte below the resident total: the three models never fit
    // together, so serving the cold tables keeps forcing evict/reload cycles.
    let resident_total: usize = tables.iter().map(|(_, e)| e.model().size_bytes()).sum();
    let cfg = ScenarioConfig {
        seed: 91,
        clients: 4,
        requests_per_client: 40,
        mean_gap: Duration::from_micros(100),
        service_every: Duration::from_micros(300),
        // Heavy skew: table 0 stays hot, tables 1/2 go cold and become the
        // eviction victims until their next request reloads them.
        pattern: ArrivalPattern::HotTable { hot_table: 0, hot_permille: 800 },
        harness: HarnessConfig { model_budget_bytes: resident_total - 1, ..Default::default() },
    };

    let report = run_scenario(&tables, &workloads, &cfg);
    assert_eq!(report.submitted, 4 * 40);
    assert_eq!(report.served, report.submitted, "a tight budget must not drop requests");
    assert_eq!(report.accounted(), report.submitted);
    assert_eq!(report.mismatches, 0, "evict/reload cycles must never change an answer");
    assert!(report.model_evictions > 0, "the budget must actually force evictions");
    assert!(report.model_reloads > 0, "cold tables must reload when traffic returns");

    // Replay equality: the tier's heat/victim policy is a pure function of
    // the executed batch sequence, so the same seed reproduces the same
    // eviction/reload counts (and everything else) exactly.
    let replay = run_scenario(&tables, &workloads, &cfg);
    assert_eq!(replay, report, "same seed must replay identical eviction behavior");
}

#[test]
fn budget_pressure_with_a_different_seed_still_conserves_requests() {
    let (tables, workloads) = trained_tables(3);
    let resident_total: usize = tables.iter().map(|(_, e)| e.model().size_bytes()).sum();
    // Budget fits two of the three models (generously), uniform traffic.
    let max_model = tables.iter().map(|(_, e)| e.model().size_bytes()).max().unwrap();
    let cfg = ScenarioConfig {
        seed: 1234,
        clients: 3,
        requests_per_client: 30,
        mean_gap: Duration::from_micros(120),
        service_every: Duration::from_micros(250),
        pattern: ArrivalPattern::Uniform,
        harness: HarnessConfig {
            model_budget_bytes: resident_total - max_model / 2,
            ..Default::default()
        },
    };
    let report = run_scenario(&tables, &workloads, &cfg);
    assert_eq!(report.served, report.submitted);
    assert_eq!(report.mismatches, 0);
    assert!(report.model_evictions > 0);
    assert_eq!(run_scenario(&tables, &workloads, &cfg), report);
}

#[test]
fn server_with_model_budget_serves_correct_estimates_under_eviction() {
    let (tables, workloads) = trained_tables(3);
    let resident_total: usize = tables.iter().map(|(_, e)| e.model().size_bytes()).sum();
    let expected: Vec<Vec<f64>> =
        tables.iter().zip(&workloads).map(|((_, e), qs)| e.estimate_batch(qs)).collect();

    let server = DuetServer::new(ServeConfig {
        // Caching off so every request actually exercises the worker path
        // (and with it the tier's eviction/reload machinery).
        cache_capacity: 0,
        model_budget_bytes: resident_total - 1,
        ..ServeConfig::default()
    });
    server.set_model_spill_dir(spill_dir("server-budget"));
    for (name, est) in &tables {
        server.register(name.clone(), est.clone());
    }

    // Round-robin the tables a few times: each round re-warms models the
    // previous rounds' traffic evicted.
    for _ in 0..3 {
        for (i, (name, _)) in tables.iter().enumerate() {
            let got = server.estimate_many(name, &workloads[i]).expect("served under budget");
            for (g, e) in got.iter().zip(expected[i].iter()) {
                assert_eq!(g.to_bits(), e.to_bits(), "estimates must survive evict/reload");
            }
        }
    }
    let snapshot = server.metrics();
    assert!(snapshot.model_evictions > 0, "the budget must force evictions");
    assert!(snapshot.model_reloads > 0, "evicted models must reload on demand");
}
