//! Integration tests of the baseline estimators against ground truth,
//! checking the qualitative orderings the paper's Table II relies on.

use duet::baselines::{
    DeepDbConfig, DeepDbEstimator, IndependenceEstimator, MHist, MscnConfig, MscnEstimator,
    NaruConfig, NaruEstimator, SamplingEstimator,
};
use duet::data::datasets::census_like;
use duet::query::{label_workload, CardinalityEstimator, QErrorSummary, Query, WorkloadSpec};

fn eval(est: &mut dyn CardinalityEstimator, queries: &[Query], cards: &[u64]) -> QErrorSummary {
    let estimates: Vec<f64> = queries.iter().map(|q| est.estimate(q)).collect();
    QErrorSummary::from_estimates(&estimates, cards)
}

#[test]
fn every_estimator_produces_finite_bounded_estimates() {
    let table = census_like(2_500, 31);
    let train = WorkloadSpec::in_workload(&table, 300, 42).generate(&table);
    let train_cards = label_workload(&table, &train);
    let queries = WorkloadSpec::random(&table, 60, 1234).generate(&table);

    let mut estimators: Vec<Box<dyn CardinalityEstimator>> = vec![
        Box::new(SamplingEstimator::new(&table, 0.05, 1)),
        Box::new(IndependenceEstimator::new(&table)),
        Box::new(MHist::new(&table, 128)),
        Box::new(DeepDbEstimator::build(&table, &DeepDbConfig::default_config())),
        Box::new(MscnEstimator::train(&table, &train, &train_cards, &MscnConfig::small(), 1)),
        Box::new(NaruEstimator::train(
            &table,
            &NaruConfig::small().with_epochs(2).with_samples(64),
            1,
        )),
    ];
    for est in estimators.iter_mut() {
        for q in &queries {
            let e = est.estimate(q);
            assert!(e.is_finite(), "{} produced a non-finite estimate", est.name());
            assert!(e >= 0.0, "{} produced a negative estimate", est.name());
        }
        assert!(est.size_bytes() > 0, "{} reports no size", est.name());
    }
}

#[test]
fn learned_data_driven_methods_beat_naive_traditional_ones() {
    let table = census_like(4_000, 32);
    let queries = WorkloadSpec::random(&table, 120, 1234).generate(&table);
    let cards = label_workload(&table, &queries);

    let mut naru =
        NaruEstimator::train(&table, &NaruConfig::small().with_epochs(4).with_samples(100), 2);
    let mut mhist = MHist::new(&table, 64);
    let naru_summary = eval(&mut naru, &queries, &cards);
    let mhist_summary = eval(&mut mhist, &queries, &cards);
    assert!(
        naru_summary.median <= mhist_summary.median * 2.0,
        "Naru ({:.2}) should be competitive with MHist ({:.2}) at the median",
        naru_summary.median,
        mhist_summary.median
    );
}

#[test]
fn sampling_estimator_is_accurate_for_frequent_values_only() {
    let table = census_like(5_000, 33);
    let mut sampling = SamplingEstimator::new(&table, 0.02, 5);
    let queries = WorkloadSpec::random(&table, 100, 99).generate(&table);
    let cards = label_workload(&table, &queries);
    let s = eval(&mut sampling, &queries, &cards);
    // Sampling is fine on average but its tail (max) is much worse than its
    // median — the classic failure mode the paper reports.
    assert!(s.max > s.median * 2.0, "expected a heavy tail, got {s:?}");
}

#[test]
fn mscn_is_query_driven_and_depends_on_its_training_workload() {
    let table = census_like(3_000, 34);
    let train = WorkloadSpec::in_workload(&table, 400, 42).generate(&table);
    let train_cards = label_workload(&table, &train);
    let mut mscn = MscnEstimator::train(&table, &train, &train_cards, &MscnConfig::small(), 3);

    let in_q = &train[..100];
    let in_cards = &train_cards[..100];
    let rand_q = WorkloadSpec::random(&table, 100, 1234).generate(&table);
    let rand_cards = label_workload(&table, &rand_q);

    let s_in = eval(&mut mscn, in_q, in_cards);
    let s_rand = eval(&mut mscn, &rand_q, &rand_cards);
    assert!(
        s_rand.p99 >= s_in.p99 * 0.5,
        "drifted workload should not be dramatically easier: in {:.2} vs rand {:.2}",
        s_in.p99,
        s_rand.p99
    );
}

#[test]
fn deepdb_structure_scales_with_table_complexity() {
    let small = census_like(600, 35);
    let large = census_like(6_000, 35);
    let spn_small = DeepDbEstimator::build(&small, &DeepDbConfig::default_config());
    let spn_large = DeepDbEstimator::build(&large, &DeepDbConfig::default_config());
    assert!(spn_large.num_nodes() >= spn_small.num_nodes());
}
