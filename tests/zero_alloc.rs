//! Proof of the zero-allocation property: a counting global allocator wraps
//! the system allocator, and the workspace-backed batched estimation path is
//! measured after warm-up — the steady-state serving hot loop must perform
//! **zero** heap allocations (and zero frees).
//!
//! Nine phases: the raw batched estimation path (full and shrinking
//! batches), the **routed multi-table hot loop** — admission into a
//! bounded shard queue, same-table batch formation at dequeue, deadline
//! triage, and per-table-workspace batch execution across two
//! differently-shaped tables, driven through the deterministic harness with
//! one fixed request set recycled through the router — the
//! **pooled large-batch path**: a batch big enough to cross the kernels'
//! parallelism threshold, so the forward pass fans row blocks out over a
//! `duet_nn::ComputePool` (the pool's parked workers are woken per job with
//! no allocation anywhere on the submit/execute/wait path; this is exactly
//! what the pool replaced `std::thread::scope` for — scoped spawning
//! allocated on every large matmul) — the **steady-state training
//! forward**: `zero_grad` + the data-driven forward (encode, checkpointing
//! backbone forward, grouped cross-entropy gradient staging) + the
//! supervised Q-Error forward (per-column softmax into flat staging), for
//! both MADE and ResMADE, through one reused `TrainStepScratch` — the
//! **full training step**: forward + the gradient-ping-pong scratch
//! backward (fused sparse first layer included) + the Adam update, again
//! for both backbone variants — the **wire hot loop**: protocol-frame
//! decode, admission, batch execution, and response encode on a warmed
//! simulated connection, with request structs recycled through the
//! connection's outbox pool — and the **budgeted-tier hot loop**: the
//! routed loop again under a positive model-memory budget, so every batch
//! additionally passes through the tier's heat accounting and budget check
//! (`ModelTier::observe`/`enforce`), which must also be allocation-free
//! while the directory fits the budget (no eviction fires) — and the
//! **trainer tick interleaved with serving**: the online trainer's
//! steady-state body (the `DriftMonitor` histogram-distance check plus one
//! full `train_step` over a pre-staged batch) alternating with budgeted
//! routed serving rounds, proving that a background trainer sharing the
//! process with the hot loop adds no steady-state allocations of its own —
//! and the **supervised fault hot loop**: the routed loop with an armed
//! fault hook and `catch_unwind` supervision around every batch, proving
//! that the fault-domain machinery (the unwind guard plus the hook's
//! disarmed atomic check) is free on the happy path; the one injected
//! panic, the typed batch failure, and the worker respawn all happen
//! during warm-up.
//!
//! Ten phases in all. This lives in its own integration-test binary so the
//! global allocator and the single-threaded measurement cannot interfere
//! with other tests.

use duet::core::{
    data_forward, query_forward, query_to_id_predicates, sample_virtual_batch, train_step,
    DuetConfig, DuetEstimator, DuetModel, DuetWorkspace, PreparedQuery, SamplerConfig,
    TrainStepScratch,
};
use duet::data::datasets::census_like;
use duet::data::table_stats;
use duet::nn::{seeded_rng, with_pool, Adam, ComputePool};
use duet::query::{exact_cardinality, WorkloadSpec};
use duet::serve::sim::{HarnessConfig, PreparedRequest, RouterHarness, WireSim};
use duet::serve::wire::{frame, ConnConfig};
use duet::serve::{BatchConfig, DriftMonitor, RouterConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        FREES.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

// One #[test] drives all phases: the counters are process-global, so two
// tests running on parallel test threads would pollute each other's windows.
#[test]
fn steady_state_batched_inference_is_allocation_free() {
    full_batch_phase();
    shrinking_batch_phase();
    routed_multi_table_phase();
    pooled_large_batch_phase();
    training_step_phase();
    full_train_step_phase();
    wire_phase();
    budgeted_tier_phase();
    trainer_tick_phase();
    supervised_fault_phase();
}

fn full_batch_phase() {
    let table = census_like(400, 5);
    let cfg = DuetConfig::small().with_epochs(1);
    let est = DuetEstimator::train_data_only(&table, &cfg, 3);
    let queries = WorkloadSpec::random(&table, 32, 9).generate(&table);
    let rows: Vec<_> = queries.iter().map(|q| query_to_id_predicates(est.schema(), q)).collect();
    let intervals: Vec<_> = queries.iter().map(|q| q.column_intervals(est.schema())).collect();

    let mut ws = DuetWorkspace::new();
    let mut out = Vec::new();
    // Warm-up: every workspace buffer grows to the batch shape.
    for _ in 0..2 {
        est.estimate_encoded_batch_with(&rows, &intervals, &mut ws, &mut out);
    }
    let expected = out.clone();

    let (allocs_before, frees_before) =
        (ALLOCS.load(Ordering::Relaxed), FREES.load(Ordering::Relaxed));
    for _ in 0..10 {
        est.estimate_encoded_batch_with(&rows, &intervals, &mut ws, &mut out);
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    let frees = FREES.load(Ordering::Relaxed) - frees_before;

    assert_eq!(allocs, 0, "steady-state batched inference must not allocate");
    assert_eq!(frees, 0, "steady-state batched inference must not free");
    assert_eq!(out, expected, "reused workspace must not change results");
}

fn shrinking_batch_phase() {
    let table = census_like(300, 6);
    let cfg = DuetConfig::small().with_epochs(1);
    let est = DuetEstimator::train_data_only(&table, &cfg, 4);
    let queries = WorkloadSpec::random(&table, 16, 11).generate(&table);
    let rows: Vec<_> = queries.iter().map(|q| query_to_id_predicates(est.schema(), q)).collect();
    let intervals: Vec<_> = queries.iter().map(|q| q.column_intervals(est.schema())).collect();

    let mut ws = DuetWorkspace::new();
    let mut out = Vec::new();
    // Warm on the full batch; then any batch size up to it fits the buffers.
    est.estimate_encoded_batch_with(&rows, &intervals, &mut ws, &mut out);

    let before = ALLOCS.load(Ordering::Relaxed);
    for take in [1usize, 3, 8, 16] {
        est.estimate_encoded_batch_with(&rows[..take], &intervals[..take], &mut ws, &mut out);
        assert_eq!(out.len(), take);
    }
    assert_eq!(
        ALLOCS.load(Ordering::Relaxed) - before,
        0,
        "shrinking batches on a warm workspace must not allocate"
    );
}

fn routed_multi_table_phase() {
    // Two differently-shaped tables multiplexed through one shard pool: the
    // worker's per-table workspaces must absorb the alternation without
    // re-growing buffers, and the queue/admission machinery must be free of
    // allocations of its own.
    let cfg = DuetConfig::small().with_epochs(1);
    let table_a = census_like(300, 7);
    let table_b = census_like(200, 9);
    let est_a = DuetEstimator::train_data_only(&table_a, &cfg, 5);
    let est_b = DuetEstimator::train_data_only(&table_b, &cfg, 6);
    let queries_a = WorkloadSpec::random(&table_a, 8, 11).generate(&table_a);
    let queries_b = WorkloadSpec::random(&table_b, 8, 12).generate(&table_b);

    let mut harness = RouterHarness::new(
        vec![("alpha".into(), est_a), ("beta".into(), est_b)],
        HarnessConfig {
            router: RouterConfig { num_shards: 2, queue_capacity: 64, default_deadline: None },
            batch: BatchConfig::default(),
            cache_capacity: 0,
            cache_shards: 1,
            model_budget_bytes: 0,
        },
    );

    // One fixed request set, interleaving the two tables; outcomes are
    // discarded (no channels, no ticket log) so the loop can recycle the
    // requests — their encodings included — indefinitely.
    let mut stash: Vec<PreparedRequest> = Vec::new();
    for i in 0..8 {
        stash.push(harness.prepare(0, &queries_a[i], None));
        stash.push(harness.prepare(1, &queries_b[i], None));
    }
    let mut returned: Vec<PreparedRequest> = Vec::with_capacity(stash.len());

    let mut round = |stash: &mut Vec<PreparedRequest>, returned: &mut Vec<PreparedRequest>| {
        for request in stash.drain(..) {
            harness.submit_prepared(request).unwrap_or_else(|_| panic!("queue overflow"));
        }
        while harness.queue_depth() > 0 {
            harness.turn_recycling(returned);
        }
        std::mem::swap(stash, returned);
    };

    // Warm-up: queues, batch containers, and both tables' workspaces grow
    // to their steady-state shapes.
    for _ in 0..2 {
        round(&mut stash, &mut returned);
    }

    let (allocs_before, frees_before) =
        (ALLOCS.load(Ordering::Relaxed), FREES.load(Ordering::Relaxed));
    for _ in 0..10 {
        round(&mut stash, &mut returned);
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    let frees = FREES.load(Ordering::Relaxed) - frees_before;

    assert_eq!(allocs, 0, "steady-state routed multi-table serving must not allocate");
    assert_eq!(frees, 0, "steady-state routed multi-table serving must not free");
    assert_eq!(stash.len(), 16, "all requests recycled each round");
    let snapshot = harness.metrics_snapshot();
    assert_eq!(snapshot.shed_overload + snapshot.shed_deadline, 0);
    assert!(snapshot.batches >= 24, "12 rounds x 2 tables of batches, got {}", snapshot.batches);
}

fn training_step_phase() {
    // The steady-state training step's forward work — zero_grad (which
    // bumps every weight key, forcing the masked-weight memo to
    // re-materialize in place, exactly as a real optimizer step does),
    // input encoding, the checkpointing training forward, the grouped
    // cross-entropy gradient staging, and the supervised Q-Error pass with
    // its flat probability staging — must be allocation-free once the
    // scratch is warm. Backward and Adam are exercised separately by
    // `full_train_step_phase` below; this phase keeps the forward-only
    // window so a regression can be localized. Both backbone variants are
    // covered: plain MADE and ResMADE (residual blocks).
    let table = census_like(400, 9);
    for residual in [false, true] {
        let mut cfg = DuetConfig::small();
        cfg.residual = residual;
        let mut model = DuetModel::new(&table, &cfg, 13);
        let mut rng = seeded_rng(31);
        let sampler =
            SamplerConfig { expand_mu: 2, wildcard_prob: 0.3, max_predicates_per_column: 1 };
        let anchor_rows: Vec<usize> = (0..32).collect();
        let batch = sample_virtual_batch(&table, &anchor_rows, &sampler, &mut rng);
        let queries = WorkloadSpec::random(&table, 16, 21).generate(&table);
        let prepared: Vec<PreparedQuery> = queries
            .iter()
            .map(|q| PreparedQuery::prepare(&table, q, exact_cardinality(&table, q)))
            .collect();
        let num_rows = table.num_rows() as f64;

        let mut scratch = TrainStepScratch::new();
        let step = |model: &mut DuetModel, scratch: &mut TrainStepScratch| {
            model.zero_grad();
            let data_loss = data_forward(model, &batch, scratch);
            let (query_loss, mean_q) = query_forward(model, &prepared, num_rows, 0.1, scratch);
            (data_loss, query_loss, mean_q)
        };

        // Warm-up: scratch activations, gradient staging, probability
        // staging, and the masked-weight memo all grow to shape.
        step(&mut model, &mut scratch);
        let expected = step(&mut model, &mut scratch);

        let (allocs_before, frees_before) =
            (ALLOCS.load(Ordering::Relaxed), FREES.load(Ordering::Relaxed));
        for _ in 0..10 {
            let got = step(&mut model, &mut scratch);
            assert_eq!(got, expected, "scratch reuse must not change training losses");
        }
        let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
        let frees = FREES.load(Ordering::Relaxed) - frees_before;
        assert_eq!(
            allocs, 0,
            "steady-state training forward must not allocate (residual={residual})"
        );
        assert_eq!(frees, 0, "steady-state training forward must not free (residual={residual})");
    }
}

fn full_train_step_phase() {
    // The complete training step — zero_grad, the data-driven forward, the
    // gradient-ping-pong scratch backward (taking the fused sparse
    // first-layer path: the one-hot training input is far above the sparse
    // dispatch threshold), the supervised Q-Error pass and its backward, and
    // the Adam parameter update — must be allocation-free once the scratch,
    // the sparse capture, and Adam's moment buffers are warm. Both backbone
    // variants are covered: plain MADE and ResMADE (residual blocks).
    let table = census_like(400, 9);
    for residual in [false, true] {
        let mut cfg = DuetConfig::small();
        cfg.residual = residual;
        let mut model = DuetModel::new(&table, &cfg, 13);
        let mut rng = seeded_rng(31);
        let sampler =
            SamplerConfig { expand_mu: 2, wildcard_prob: 0.3, max_predicates_per_column: 1 };
        let anchor_rows: Vec<usize> = (0..32).collect();
        let batch = sample_virtual_batch(&table, &anchor_rows, &sampler, &mut rng);
        let queries = WorkloadSpec::random(&table, 16, 21).generate(&table);
        let prepared: Vec<PreparedQuery> = queries
            .iter()
            .map(|q| PreparedQuery::prepare(&table, q, exact_cardinality(&table, q)))
            .collect();
        let num_rows = table.num_rows() as f64;

        let mut scratch = TrainStepScratch::new();
        let mut adam = Adam::new(1e-3);

        // Warm-up: scratch activations, gradient ping-pong buffers, the
        // sparse input capture, the masked-weight memo, and Adam's
        // first-step moment buffers all grow to shape.
        for _ in 0..2 {
            train_step(&mut model, &mut adam, &batch, &prepared, num_rows, 0.1, &mut scratch);
        }

        let (allocs_before, frees_before) =
            (ALLOCS.load(Ordering::Relaxed), FREES.load(Ordering::Relaxed));
        for _ in 0..10 {
            let (data_loss, query_loss, mean_q) =
                train_step(&mut model, &mut adam, &batch, &prepared, num_rows, 0.1, &mut scratch);
            // Weights evolve each step, so losses drift; they must stay
            // finite (the step is actually learning, not diverging).
            assert!(data_loss.is_finite(), "data loss diverged (residual={residual})");
            assert!(query_loss.is_finite(), "query loss diverged (residual={residual})");
            assert!(mean_q.is_finite() && mean_q >= 1.0, "mean Q-Error out of range");
        }
        let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
        let frees = FREES.load(Ordering::Relaxed) - frees_before;
        assert_eq!(
            allocs, 0,
            "steady-state full train step must not allocate (residual={residual})"
        );
        assert_eq!(frees, 0, "steady-state full train step must not free (residual={residual})");
    }
}

fn wire_phase() {
    // The full wire hot loop on a warmed connection: frame decode →
    // admission → batch execution → response encode, with the request
    // structs recycled through the connection's outbox pool. One fixed blob
    // of pre-encoded request frames is replayed each round; after warm-up,
    // a round must not touch the heap at all.
    let table = census_like(300, 8);
    let cfg = DuetConfig::small().with_epochs(1);
    let est = DuetEstimator::train_data_only(&table, &cfg, 5);
    let queries = WorkloadSpec::random(&table, 16, 13).generate(&table);

    let mut sim = WireSim::new(
        vec![("wire".into(), est.clone())],
        HarnessConfig {
            router: RouterConfig { num_shards: 1, queue_capacity: 64, default_deadline: None },
            batch: BatchConfig::default(),
            cache_capacity: 0,
            cache_shards: 1,
            model_budget_bytes: 0,
        },
        ConnConfig::default(),
        1,
    );

    // Handshake, then pre-encode the round's 16 request frames once.
    let mut blob = Vec::new();
    frame::encode_preamble(&mut blob);
    sim.feed(0, &blob);
    sim.pump(0).expect("preamble is valid");
    blob.clear();
    for (i, query) in queries.iter().enumerate() {
        let preds = query_to_id_predicates(est.schema(), query);
        let intervals = query.column_intervals(est.schema());
        frame::encode_request(&mut blob, i as u64, 0, 0, &preds, &intervals);
    }

    let requests = queries.len();
    let round = |sim: &mut WireSim| {
        sim.feed(0, &blob);
        sim.pump(0).expect("requests decode"); // decode + admit
        while sim.harness().queue_depth() > 0 {
            sim.turn(); // execute; completions land in the outbox
        }
        sim.pump(0).expect("responses encode"); // encode response frames
        let produced = sim.output(0).len();
        assert_eq!(produced, requests * (4 + frame::RESPONSE_BODY_LEN));
        sim.consume_output(0, produced);
        assert_eq!(sim.inflight(0), 0, "every request answered each round");
    };

    // Warm-up: connection buffers, the outbox pool, queue, and workspace
    // all grow to their steady-state shapes.
    for _ in 0..2 {
        round(&mut sim);
    }

    let (allocs_before, frees_before) =
        (ALLOCS.load(Ordering::Relaxed), FREES.load(Ordering::Relaxed));
    for _ in 0..10 {
        round(&mut sim);
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    let frees = FREES.load(Ordering::Relaxed) - frees_before;
    assert_eq!(allocs, 0, "steady-state wire serving must not allocate");
    assert_eq!(frees, 0, "steady-state wire serving must not free");
}

fn budgeted_tier_phase() {
    // The routed hot loop again, but with a positive model-memory budget:
    // every executed batch now also runs the tier's heat accounting
    // (`ModelTier::observe`) and the budget check (`ModelTier::enforce`'s
    // resident-bytes sum). With a budget generous enough to keep both
    // models resident, the added bookkeeping must not touch the heap —
    // the heat vector grows once during warm-up and is reused forever.
    let cfg = DuetConfig::small().with_epochs(1);
    let table_a = census_like(300, 17);
    let table_b = census_like(200, 19);
    let est_a = DuetEstimator::train_data_only(&table_a, &cfg, 15);
    let est_b = DuetEstimator::train_data_only(&table_b, &cfg, 16);
    let queries_a = WorkloadSpec::random(&table_a, 8, 31).generate(&table_a);
    let queries_b = WorkloadSpec::random(&table_b, 8, 32).generate(&table_b);

    let mut harness = RouterHarness::new(
        vec![("gamma".into(), est_a), ("delta".into(), est_b)],
        HarnessConfig {
            router: RouterConfig { num_shards: 2, queue_capacity: 64, default_deadline: None },
            batch: BatchConfig::default(),
            cache_capacity: 0,
            cache_shards: 1,
            // Generous: both models fit, so the tier observes and checks
            // every batch but never has to evict.
            model_budget_bytes: 1 << 40,
        },
    );

    let mut stash: Vec<PreparedRequest> = Vec::new();
    for i in 0..8 {
        stash.push(harness.prepare(0, &queries_a[i], None));
        stash.push(harness.prepare(1, &queries_b[i], None));
    }
    let mut returned: Vec<PreparedRequest> = Vec::with_capacity(stash.len());

    let mut round = |stash: &mut Vec<PreparedRequest>, returned: &mut Vec<PreparedRequest>| {
        for request in stash.drain(..) {
            harness.submit_prepared(request).unwrap_or_else(|_| panic!("queue overflow"));
        }
        while harness.queue_depth() > 0 {
            harness.turn_recycling(returned);
        }
        std::mem::swap(stash, returned);
    };

    for _ in 0..2 {
        round(&mut stash, &mut returned);
    }

    let (allocs_before, frees_before) =
        (ALLOCS.load(Ordering::Relaxed), FREES.load(Ordering::Relaxed));
    for _ in 0..10 {
        round(&mut stash, &mut returned);
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    let frees = FREES.load(Ordering::Relaxed) - frees_before;

    assert_eq!(allocs, 0, "budgeted-tier serving within budget must not allocate");
    assert_eq!(frees, 0, "budgeted-tier serving within budget must not free");
    let snapshot = harness.metrics_snapshot();
    assert_eq!(snapshot.model_evictions, 0, "a generous budget must never evict");
    assert_eq!(snapshot.model_reloads, 0);
    assert!(harness.tier().heat_of(0) > 0 && harness.tier().heat_of(1) > 0);
}

fn trainer_tick_phase() {
    // The ninth phase: the online trainer's steady-state tick shares the
    // process with the serving hot loop, so its per-tick body must be as
    // allocation-clean as the loop it rides along with. Each measured round
    // interleaves (a) a budgeted routed serving round with a recycled
    // request set and (b) one trainer tick: the drift monitor's
    // histogram-distance check (allocation-free by construction) plus one
    // full `train_step` on a pre-staged virtual-tuple batch. Everything
    // that allocates — sampling the batch, preparing feedback queries,
    // growing the scratch and Adam moments — happens before the window.
    let cfg = DuetConfig::small().with_epochs(1);
    let table = census_like(300, 21);
    let est = DuetEstimator::train_data_only(&table, &cfg, 22);
    let queries = WorkloadSpec::random(&table, 8, 33).generate(&table);

    let mut harness = RouterHarness::new(
        vec![("online".into(), est)],
        HarnessConfig {
            router: RouterConfig { num_shards: 1, queue_capacity: 64, default_deadline: None },
            batch: BatchConfig::default(),
            cache_capacity: 0,
            cache_shards: 1,
            model_budget_bytes: 1 << 40,
        },
    );
    let mut stash: Vec<PreparedRequest> =
        queries.iter().map(|q| harness.prepare(0, q, None)).collect();
    let mut returned: Vec<PreparedRequest> = Vec::with_capacity(stash.len());

    // Trainer state, all staged before the measured window.
    let live = table_stats(&table);
    let mut monitor = DriftMonitor::new(live.clone(), 0.15, 2);
    let mut model = DuetModel::new(&table, &cfg, 23);
    let mut rng = seeded_rng(41);
    let sampler = SamplerConfig { expand_mu: 2, wildcard_prob: 0.3, max_predicates_per_column: 1 };
    let anchor_rows: Vec<usize> = (0..16).collect();
    let batch = sample_virtual_batch(&table, &anchor_rows, &sampler, &mut rng);
    let prepared: Vec<PreparedQuery> = queries
        .iter()
        .map(|q| PreparedQuery::prepare(&table, q, exact_cardinality(&table, q)))
        .collect();
    let num_rows = table.num_rows() as f64;
    let mut scratch = TrainStepScratch::new();
    let mut adam = Adam::new(1e-3);

    let mut round = |stash: &mut Vec<PreparedRequest>,
                     returned: &mut Vec<PreparedRequest>,
                     monitor: &mut DriftMonitor,
                     model: &mut DuetModel,
                     adam: &mut Adam,
                     scratch: &mut TrainStepScratch| {
        // Serving half: the budgeted routed hot loop.
        for request in stash.drain(..) {
            harness.submit_prepared(request).unwrap_or_else(|_| panic!("queue overflow"));
        }
        while harness.queue_depth() > 0 {
            harness.turn_recycling(returned);
        }
        std::mem::swap(stash, returned);
        // Trainer half: one tick. The stats have not moved (serving does
        // not ingest), so the check stays quiet — which is exactly the
        // steady state a background trainer spends most of its life in.
        assert!(!monitor.check(&live), "identical stats must not drift");
        let (data_loss, query_loss, _) =
            train_step(model, adam, &batch, &prepared, num_rows, 0.1, scratch);
        assert!(data_loss.is_finite() && query_loss.is_finite(), "trainer tick diverged");
    };

    // Warm-up: queue, workspaces, scratch, and Adam moments grow to shape.
    for _ in 0..2 {
        round(&mut stash, &mut returned, &mut monitor, &mut model, &mut adam, &mut scratch);
    }

    let (allocs_before, frees_before) =
        (ALLOCS.load(Ordering::Relaxed), FREES.load(Ordering::Relaxed));
    for _ in 0..10 {
        round(&mut stash, &mut returned, &mut monitor, &mut model, &mut adam, &mut scratch);
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    let frees = FREES.load(Ordering::Relaxed) - frees_before;

    assert_eq!(allocs, 0, "trainer tick interleaved with serving must not allocate");
    assert_eq!(frees, 0, "trainer tick interleaved with serving must not free");
}

fn supervised_fault_phase() {
    // The tenth phase: the supervision wrapper itself. Every batch in the
    // routed hot loop runs under `catch_unwind` with a fault hook armed on
    // the worker — in steady state the hook is one disarmed atomic check.
    // During warm-up the hook actually fires once: the panic is caught,
    // the batch is failed typed, and the worker respawns with a fresh
    // workspace pool that regrows over the remaining warm rounds. The
    // measured window then proves the fault-domain machinery (unwind-guard
    // entry/exit plus the hook check) adds zero steady-state allocations
    // on top of the bare routed loop.
    let cfg = DuetConfig::small().with_epochs(1);
    let table = census_like(300, 23);
    let est = DuetEstimator::train_data_only(&table, &cfg, 24);
    let queries = WorkloadSpec::random(&table, 8, 35).generate(&table);

    let mut harness = RouterHarness::new(
        vec![("supervised".into(), est)],
        HarnessConfig {
            router: RouterConfig { num_shards: 1, queue_capacity: 64, default_deadline: None },
            batch: BatchConfig::default(),
            cache_capacity: 0,
            cache_shards: 1,
            model_budget_bytes: 0,
        },
    );
    let armed = Arc::new(AtomicBool::new(false));
    let flag = armed.clone();
    harness.arm_fault(Arc::new(move || {
        if flag.load(Ordering::Relaxed) {
            panic!("injected model fault (zero-alloc warm-up)");
        }
    }));

    let mut stash: Vec<PreparedRequest> =
        queries.iter().map(|q| harness.prepare(0, q, None)).collect();
    let mut returned: Vec<PreparedRequest> = Vec::with_capacity(stash.len());

    let mut round = |stash: &mut Vec<PreparedRequest>, returned: &mut Vec<PreparedRequest>| {
        for request in stash.drain(..) {
            harness.submit_prepared(request).unwrap_or_else(|_| panic!("queue overflow"));
        }
        while harness.queue_depth() > 0 {
            harness.turn_recycling(returned);
        }
        std::mem::swap(stash, returned);
    };

    // Quiet the injected warm-up panic; everything else still prints.
    let previous_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("injected model fault"));
        if !injected {
            previous_hook(info);
        }
    }));

    // Warm-up: one clean round, then the armed round — the panic unwinds
    // through `catch_unwind`, the worker respawns — then two more clean
    // rounds so the respawned worker's fresh pool regrows to shape.
    round(&mut stash, &mut returned);
    armed.store(true, Ordering::Relaxed);
    round(&mut stash, &mut returned);
    armed.store(false, Ordering::Relaxed);
    for _ in 0..2 {
        round(&mut stash, &mut returned);
    }

    let (allocs_before, frees_before) =
        (ALLOCS.load(Ordering::Relaxed), FREES.load(Ordering::Relaxed));
    for _ in 0..10 {
        round(&mut stash, &mut returned);
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    let frees = FREES.load(Ordering::Relaxed) - frees_before;

    assert_eq!(allocs, 0, "supervised routed serving must not allocate in steady state");
    assert_eq!(frees, 0, "supervised routed serving must not free in steady state");
    assert_eq!(stash.len(), queries.len(), "every request recycled each round");
    let snapshot = harness.metrics_snapshot();
    assert!(snapshot.panics_caught >= 1, "the warm-up fault must actually fire");
    assert_eq!(
        snapshot.panics_caught, snapshot.shard_restarts,
        "every caught panic respawns its worker exactly once"
    );
}

fn pooled_large_batch_phase() {
    // A batch large enough that the forward pass crosses the kernels'
    // parallelism threshold and fans out over the compute pool. A scoped
    // 2-worker pool (rather than the machine-sized global one) makes the
    // test exercise the pooled path even on a single-core runner. Pool
    // threads are spawned at construction — before the measured window —
    // and each job afterwards is a park/wake cycle with no allocation.
    let table = census_like(400, 5);
    let cfg = DuetConfig::small().with_epochs(1);
    let est = DuetEstimator::train_data_only(&table, &cfg, 7);
    let queries = WorkloadSpec::random(&table, 1024, 17).generate(&table);
    let rows: Vec<_> = queries.iter().map(|q| query_to_id_predicates(est.schema(), q)).collect();
    let intervals: Vec<_> = queries.iter().map(|q| q.column_intervals(est.schema())).collect();

    let pool = ComputePool::new(2);
    with_pool(&pool, || {
        let mut ws = DuetWorkspace::new();
        let mut out = Vec::new();
        for _ in 0..2 {
            est.estimate_encoded_batch_with(&rows, &intervals, &mut ws, &mut out);
        }
        let expected = out.clone();
        let jobs_before = pool.dispatched_jobs();

        let (allocs_before, frees_before) =
            (ALLOCS.load(Ordering::Relaxed), FREES.load(Ordering::Relaxed));
        for _ in 0..5 {
            est.estimate_encoded_batch_with(&rows, &intervals, &mut ws, &mut out);
        }
        let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
        let frees = FREES.load(Ordering::Relaxed) - frees_before;

        assert_eq!(allocs, 0, "pooled large-batch inference must not allocate");
        assert_eq!(frees, 0, "pooled large-batch inference must not free");
        assert!(
            pool.dispatched_jobs() > jobs_before,
            "the batch must be large enough to dispatch kernel jobs to the pool"
        );
        assert_eq!(out, expected, "pooled runs must be bit-identical to the warm-up runs");
    });
}
