//! Minimal wire-protocol client: connect to a running Duet wire listener,
//! resolve the `census` table, pipeline 100 range requests in one write
//! burst, and drain the (possibly out-of-order) responses.
//!
//! Start the server first, then run the client:
//!
//! ```text
//! cargo run --release --example serving -- --listen
//! cargo run --release --example wire_client            # other terminal
//! ```
//!
//! An explicit address works too: `... --example wire_client -- host:port`.

use duet::core::IdPredicate;
use duet::serve::wire::{Status, WireClient};
use std::time::Instant;

const REQUESTS: u64 = 100;

fn main() {
    let addr = std::env::args().nth(1).unwrap_or_else(|| "127.0.0.1:7878".to_string());
    println!("connecting to {addr} ...");
    let mut client = WireClient::connect(&addr)
        .expect("connect failed — is `--example serving -- --listen` running?");

    let spec = client
        .resolve("census")
        .expect("resolve I/O failed")
        .expect("server has no table named 'census'");
    println!("resolved table 'census': id={} with {} columns", spec.id, spec.ndvs.len());

    // Pipeline 100 id-space range requests in one burst. Deterministic
    // pseudo-random intervals keep the example dependency-free.
    let started = Instant::now();
    let empty_preds: Vec<Vec<IdPredicate>> = vec![Vec::new(); spec.ndvs.len()];
    for i in 0..REQUESTS {
        let intervals: Vec<(u32, u32)> = spec
            .ndvs
            .iter()
            .enumerate()
            .map(|(col, &ndv)| {
                let ndv = ndv.max(1);
                let lo = (i as u32).wrapping_mul(7 * col as u32 + 3) % ndv;
                (lo, ndv - 1)
            })
            .collect();
        client.submit_request(i, spec.id, 0, &empty_preds, &intervals);
    }
    client.flush().expect("flush failed");

    let mut ok = 0u64;
    let mut shed = 0u64;
    let mut sum = 0.0f64;
    for _ in 0..REQUESTS {
        let response = client.recv().expect("response stream ended early");
        match response.status {
            Status::Ok => {
                ok += 1;
                sum += response.value;
            }
            Status::Overloaded | Status::DeadlineExceeded | Status::Internal => shed += 1,
            Status::UnknownTable => panic!("server forgot the table mid-stream"),
            Status::Rejected => panic!("estimate requests are never rejected as malformed"),
        }
    }
    let wall = started.elapsed();

    println!("pipelined {REQUESTS} requests, drained {REQUESTS} responses in {wall:.2?}");
    println!("ok={ok} shed={shed} mean estimate={:.2}", sum / ok.max(1) as f64);
}
