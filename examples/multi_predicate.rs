//! Multiple predicates per column: enable the MPSN (§IV-F) and estimate
//! queries such as `10 <= age AND age <= 40 AND age != ...` that place several
//! predicates on the same column, then persist and restore the model.
//!
//! Run with `cargo run --release --example multi_predicate`.

use duet::core::{load_weights, save_weights, DuetConfig, DuetEstimator, MpsnKind};
use duet::data::datasets::census_like;
use duet::data::Value;
use duet::query::{exact_cardinality, q_error, CardinalityEstimator, PredOp, Query, WorkloadSpec};

fn main() {
    let table = census_like(8_000, 42);

    // An MLP MPSN embeds a variable number of predicates per column into the
    // fixed per-column input block.
    let config = DuetConfig::small().with_epochs(4).with_mpsn(MpsnKind::Mlp, 3);
    println!("training Duet with an MLP MPSN (up to 3 predicates per column) ...");
    let train =
        WorkloadSpec::in_workload(&table, 1_000, 42).with_multi_predicates(3).generate(&table);
    let cards: Vec<u64> = train.iter().map(|q| exact_cardinality(&table, q)).collect();
    let mut duet = DuetEstimator::train_hybrid(&table, &train, &cards, &config, 42);

    // A hand-written query with a two-sided range on `age` plus a point
    // predicate on `sex`.
    let query = Query::all()
        .and(0, PredOp::Ge, Value::Int(10))
        .and(0, PredOp::Le, Value::Int(40))
        .and(9, PredOp::Eq, Value::Int(1));
    let estimate = duet.estimate(&query);
    let actual = exact_cardinality(&table, &query);
    println!("\nquery: {query}");
    println!(
        "estimate = {estimate:.1}, actual = {actual}, q-error = {:.2}",
        q_error(estimate, actual as f64)
    );

    // Persist the trained weights and restore them into a fresh estimator.
    let checkpoint = save_weights(&mut duet);
    println!("\ncheckpoint size: {} KiB", checkpoint.len() / 1024);
    let fresh_model = duet::core::DuetModel::new(&table, &config, 7);
    let mut restored = DuetEstimator::from_model(fresh_model, &table, "restored");
    load_weights(&mut restored, &checkpoint).expect("restore should succeed");
    assert_eq!(restored.estimate(&query), estimate);
    println!("restored estimator reproduces the estimate exactly: {}", restored.estimate(&query));
}
