//! Hybrid training: use a historical query workload as an additional
//! supervised signal (`L = L_data + λ·log2(QError+1)`), then compare the
//! resulting accuracy against the purely data-driven DuetD on both
//! in-workload and random test queries — the ablation behind Table II.
//!
//! Run with `cargo run --release --example hybrid_training`.

use duet::core::{DuetConfig, DuetEstimator};
use duet::data::datasets::census_like;
use duet::query::{label_workload, CardinalityEstimator, QErrorSummary, Query, WorkloadSpec};

fn evaluate(name: &str, est: &mut dyn CardinalityEstimator, queries: &[Query], cards: &[u64]) {
    let estimates: Vec<f64> = queries.iter().map(|q| est.estimate(q)).collect();
    let summary = QErrorSummary::from_estimates(&estimates, cards);
    println!("  {name:<8} {}", summary.to_row());
}

fn main() {
    let table = census_like(10_000, 42);
    let config = DuetConfig::small().with_epochs(5);

    // Historical workload with temporal locality: bounded column + skewed
    // predicate counts, seed 42 (the paper's training workload protocol).
    println!("generating and labelling the training workload ...");
    let train = WorkloadSpec::in_workload(&table, 2_000, 42).generate(&table);
    let train_cards = label_workload(&table, &train);

    println!("training DuetD (data only) and Duet (hybrid) ...");
    let mut duet_d = DuetEstimator::train_data_only(&table, &config, 7);
    let mut duet = DuetEstimator::train_hybrid(&table, &train, &train_cards, &config, 7);

    // Evaluate on queries drawn from the same distribution as the history
    // (In-Q) and on a completely random workload (Rand-Q).
    for (label, spec) in [
        ("In-Workload queries", WorkloadSpec::in_workload(&table, 300, 42)),
        ("Random queries", WorkloadSpec::random(&table, 300, 1234)),
    ] {
        let queries = spec.generate(&table);
        let cards = label_workload(&table, &queries);
        println!("\n{label}:");
        evaluate("DuetD", &mut duet_d, &queries, &cards);
        evaluate("Duet", &mut duet, &queries, &cards);
    }
    println!(
        "\nHybrid training typically tightens the tail (p99/max) on in-workload queries\n\
         without giving up the data-driven robustness on random queries."
    );
}
