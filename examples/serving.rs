//! Serving demo: train a Duet model on a census-like table, stand up a
//! `DuetServer`, hammer it from 8 concurrent client threads, hot-swap the
//! model mid-traffic, and print the serving metrics.
//!
//! Run with: `cargo run --release --example serving`
//!
//! With `--listen [addr]` the demo instead opens the TCP wire front door
//! (default `127.0.0.1:7878`) and serves the binary protocol until killed —
//! pair it with the `wire_client` example:
//!
//! ```text
//! cargo run --release --example serving -- --listen
//! cargo run --release --example wire_client            # other terminal
//! ```

use duet::core::{save_weights, DuetConfig, DuetEstimator};
use duet::data::datasets::census_like;
use duet::query::{CardinalityEstimator, WorkloadSpec};
use duet::serve::{DuetServer, ServeConfig, WireConfig};
use std::sync::Arc;
use std::time::Instant;

const CLIENTS: usize = 8;
const ROUNDS: usize = 20;

fn main() {
    println!("== duet-serve demo ==");
    let table = census_like(8_000, 42);
    let config = DuetConfig::small().with_epochs(4);

    println!("training generation-0 model on {} rows ...", table.num_rows());
    let est_v0 = DuetEstimator::train_data_only(&table, &config, 1);
    println!("training refreshed model (different seed) for the hot-swap ...");
    let mut est_v1 = DuetEstimator::train_data_only(&table, &config, 2);
    let checkpoint = save_weights(&mut est_v1);

    let server = Arc::new(DuetServer::new(ServeConfig::default()));
    server.register("census", est_v0);

    // `--listen [addr]`: open the wire front door and serve until killed.
    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--listen") {
        let addr = args.get(pos + 1).cloned().unwrap_or_else(|| "127.0.0.1:7878".to_string());
        let handle = server.serve_wire(&addr, WireConfig::default()).expect("bind wire listener");
        println!("wire listener on {}", handle.addr());
        println!("try: cargo run --release --example wire_client -- {}", handle.addr());
        loop {
            std::thread::sleep(std::time::Duration::from_secs(5));
            println!("{}", server.metrics());
        }
    }

    let queries = WorkloadSpec::random(&table, 200, 1234).generate(&table);
    println!("serving {} distinct queries from {CLIENTS} client threads ...", queries.len());

    let started = Instant::now();
    let clients: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let server = server.clone();
            let queries = queries.clone();
            std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    for (i, q) in queries.iter().enumerate() {
                        let est = server.estimate("census", q).expect("serving should never fail");
                        // Touch the result so the loop cannot be optimized out.
                        assert!(est.is_finite());
                        let _ = (client, round, i);
                    }
                }
            })
        })
        .collect();

    // Refresh the model while traffic is flowing: requests in flight finish
    // on the old weights, later ones see the new model, nobody errors.
    std::thread::sleep(std::time::Duration::from_millis(50));
    server.hot_swap("census", &checkpoint).expect("hot-swap should succeed");
    println!(
        "hot-swapped to generation {} while clients were running",
        server.generation("census").unwrap()
    );

    for c in clients {
        c.join().unwrap();
    }
    let wall = started.elapsed();

    let m = server.metrics();
    println!("\n== results ==");
    println!("wall time            {:.2?}", wall);
    println!("requests             {}", m.requests);
    println!("throughput           {:.0} estimates/s", m.requests as f64 / wall.as_secs_f64());
    println!("p50 / p99 latency    {:.1} us / {:.1} us", m.p50_latency_us, m.p99_latency_us);
    println!("forward batches      {} (mean size {:.2})", m.batches, m.mean_batch_size);
    println!("cache hit rate       {:.1}%", m.cache_hit_rate * 100.0);
    print!("batch-size histogram ");
    for (bound, count) in &m.batch_size_histogram {
        if *count == 0 {
            continue;
        }
        if *bound == usize::MAX {
            print!(" >128:{count}");
        } else {
            print!(" <={bound}:{count}");
        }
    }
    println!();

    // Sanity: the served answers match direct estimation on the new model.
    let q = &queries[0];
    let direct = est_v1.estimate(q);
    let served = server.estimate("census", q).unwrap();
    assert_eq!(direct, served, "served estimate must equal direct estimate");
    println!("\nspot check: direct={direct:.3} served={served:.3} (bit-identical)");
}
