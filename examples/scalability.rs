//! Scalability: the motivation for Duet's O(1) inference. Train Duet and Naru
//! on a 100-column Kddcup98-like table and compare per-query latency as the
//! number of constrained columns grows (a runnable miniature of Figure 6).
//!
//! Run with `cargo run --release --example scalability`.

use duet::baselines::{NaruConfig, NaruEstimator};
use duet::core::{DuetConfig, DuetEstimator};
use duet::data::datasets::kddcup98_like;
use duet::query::{CardinalityEstimator, WorkloadSpec};
use std::time::Instant;

fn main() {
    let table = kddcup98_like(4_000, 42);
    println!("table: {} rows x {} columns", table.num_rows(), table.num_columns());

    println!("training Duet (ResMADE backbone) ...");
    let duet_cfg = DuetConfig::paper_resmade().with_epochs(2);
    let mut duet = DuetEstimator::train_data_only(&table, &duet_cfg, 3);

    println!("training Naru (progressive sampling, 200 samples) ...");
    let naru_cfg = NaruConfig::paper_resmade().with_epochs(2).with_samples(200);
    let mut naru = NaruEstimator::train(&table, &naru_cfg, 3);

    println!("\n{:>10} {:>16} {:>16} {:>10}", "columns", "duet ms/query", "naru ms/query", "ratio");
    for ncols in [2usize, 8, 32, 100] {
        let queries = WorkloadSpec::random(&table, 10, 1234 + ncols as u64)
            .with_max_columns(ncols)
            .generate(&table);
        let t0 = Instant::now();
        for q in &queries {
            let _ = duet.estimate(q);
        }
        let duet_ms = t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;
        let t1 = Instant::now();
        for q in &queries {
            let _ = naru.estimate(q);
        }
        let naru_ms = t1.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;
        println!(
            "{ncols:>10} {duet_ms:>16.3} {naru_ms:>16.3} {:>9.1}x",
            naru_ms / duet_ms.max(1e-9)
        );
    }
    println!(
        "\nDuet runs a single forward pass per query regardless of how many columns are\n\
         constrained; Naru pays one forward pass (over its sample batch) per constrained column."
    );
}
