//! Quickstart: train a small Duet estimator on a synthetic Census-like table
//! and compare a few estimates against the exact cardinalities.
//!
//! Run with `cargo run --release --example quickstart`.

use duet::core::{DuetConfig, DuetEstimator};
use duet::data::datasets::census_like;
use duet::query::{exact_cardinality, q_error, CardinalityEstimator, WorkloadSpec};

fn main() {
    // 1. Data: a 14-column Census-like table (replace with `csv::read_csv` to
    //    use a real dataset).
    let table = census_like(10_000, 42);
    println!(
        "table `{}`: {} rows x {} columns, NDVs {:?}",
        table.name(),
        table.num_rows(),
        table.num_columns(),
        table.ndvs()
    );

    // 2. Train Duet purely from the data (no workload needed).
    let config = DuetConfig::small().with_epochs(5);
    println!("training DuetD ({} epochs) ...", config.epochs);
    let mut duet = DuetEstimator::train_data_only(&table, &config, 42);
    println!(
        "model `{}` with {:.2} MB of parameters",
        duet.name(),
        duet.size_bytes() as f64 / (1024.0 * 1024.0)
    );

    // 3. Estimate a random workload and report Q-Errors.
    let workload = WorkloadSpec::random(&table, 10, 1234).generate(&table);
    println!("\n{:<60} {:>10} {:>10} {:>8}", "query", "estimate", "actual", "q-error");
    for query in &workload {
        let estimate = duet.estimate(query);
        let actual = exact_cardinality(&table, query);
        println!(
            "{:<60} {:>10.1} {:>10} {:>8.2}",
            truncate(&query.to_string(), 58),
            estimate,
            actual,
            q_error(estimate, actual as f64)
        );
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n])
    }
}
