//! # Duet
//!
//! A reproduction of *"Duet: Efficient and Scalable Hybrid Neural Relation
//! Understanding"* (ICDE 2024) — a learned cardinality estimator that feeds
//! predicate information directly into an autoregressive model so that range
//! queries can be estimated with a **single forward pass** (no progressive
//! sampling), deterministically, and with a fully differentiable estimation
//! path that enables hybrid (data + query) training.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`nn`] — the from-scratch neural-network substrate (MADE/ResMADE, Adam,
//!   losses) used instead of PyTorch.
//! * [`data`] — the column-store table engine and synthetic dataset
//!   generators (DMV-like, Kddcup98-like, Census-like).
//! * [`query`] — predicates, workload generators, exact ground truth and the
//!   Q-Error metric.
//! * [`core`] — the Duet estimator itself (encoding, virtual-table sampling,
//!   hybrid training, sampling-free inference, MPSN).
//! * [`baselines`] — Naru, UAE-like, MSCN-lite, DeepDB-lite, MHist, Sampling
//!   and Independence estimators used by the paper's evaluation.
//! * [`serve`] — the concurrent estimation-serving subsystem: model registry
//!   with zero-downtime hot-swap, micro-batched inference, sharded LRU
//!   result cache, and serving metrics.
//!
//! ## Quickstart
//!
//! ```no_run
//! use duet::data::datasets::census_like;
//! use duet::query::{workload::WorkloadSpec, truth::exact_cardinality};
//! use duet::core::{DuetConfig, DuetEstimator};
//! use duet::query::CardinalityEstimator;
//!
//! let table = census_like(10_000, 42);
//! let mut duet = DuetEstimator::train_data_only(&table, &DuetConfig::small(), 42);
//! let workload = WorkloadSpec::random(&table, 100, 1234).generate(&table);
//! for q in &workload {
//!     let est = duet.estimate(q);
//!     let truth = exact_cardinality(&table, q);
//!     println!("est={est} truth={truth}");
//! }
//! ```

pub use duet_baselines as baselines;
pub use duet_core as core;
pub use duet_data as data;
pub use duet_nn as nn;
pub use duet_query as query;
pub use duet_serve as serve;
