//! Predicates over single columns and their translation into value-id ranges.

use duet_data::{Column, Value};
use serde::{Deserialize, Serialize};

/// The predicate operators supported by the paper
/// (`=`, `>`, `<`, `>=`, `<=`; conjunctions of these form a query).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredOp {
    /// Equality.
    Eq,
    /// Strictly greater than.
    Gt,
    /// Strictly less than.
    Lt,
    /// Greater than or equal.
    Ge,
    /// Less than or equal.
    Le,
}

impl PredOp {
    /// All operators, in the numbering used by the paper's Algorithm 1
    /// (`=, >, <, >=, <=`).
    pub const ALL: [PredOp; 5] = [PredOp::Eq, PredOp::Gt, PredOp::Lt, PredOp::Ge, PredOp::Le];

    /// Stable index of the operator, used for one-hot encodings.
    pub fn index(self) -> usize {
        match self {
            PredOp::Eq => 0,
            PredOp::Gt => 1,
            PredOp::Lt => 2,
            PredOp::Ge => 3,
            PredOp::Le => 4,
        }
    }

    /// SQL-ish display symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            PredOp::Eq => "=",
            PredOp::Gt => ">",
            PredOp::Lt => "<",
            PredOp::Ge => ">=",
            PredOp::Le => "<=",
        }
    }

    /// Evaluate the operator on already-ordered operands.
    pub fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        match self {
            PredOp::Eq => lhs == rhs,
            PredOp::Gt => lhs > rhs,
            PredOp::Lt => lhs < rhs,
            PredOp::Ge => lhs >= rhs,
            PredOp::Le => lhs <= rhs,
        }
    }
}

/// One predicate on one column: `column <op> value`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnPredicate {
    /// Index of the constrained column in the table.
    pub column: usize,
    /// Predicate operator.
    pub op: PredOp,
    /// Literal the column is compared against.
    pub value: Value,
}

impl ColumnPredicate {
    /// Construct a predicate.
    pub fn new(column: usize, op: PredOp, value: Value) -> Self {
        Self { column, op, value }
    }

    /// The half-open value-id interval `[lo, hi)` of dictionary ids that
    /// satisfy this predicate on `column`'s dictionary.
    ///
    /// Because dictionaries are sorted, every operator maps to a contiguous id
    /// range; an unsatisfiable predicate maps to an empty range.
    pub fn id_interval(&self, column: &Column) -> (u32, u32) {
        let ndv = column.ndv() as u32;
        match self.op {
            PredOp::Eq => match column.id_of_value(&self.value) {
                Some(id) => (id, id + 1),
                None => (0, 0),
            },
            PredOp::Lt => (0, column.lower_bound(&self.value)),
            PredOp::Le => (0, column.upper_bound(&self.value)),
            PredOp::Gt => (column.upper_bound(&self.value), ndv),
            PredOp::Ge => (column.lower_bound(&self.value), ndv),
        }
    }

    /// Evaluate the predicate against a concrete value.
    pub fn matches(&self, value: &Value) -> bool {
        self.op.eval(value, &self.value)
    }
}

impl std::fmt::Display for ColumnPredicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "col{} {} {}", self.column, self.op.symbol(), self.value)
    }
}

/// Intersect two half-open intervals.
pub fn intersect(a: (u32, u32), b: (u32, u32)) -> (u32, u32) {
    let lo = a.0.max(b.0);
    let hi = a.1.min(b.1);
    if lo >= hi {
        (0, 0)
    } else {
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column() -> Column {
        Column::from_values("c", &[Value::Int(10), Value::Int(20), Value::Int(30), Value::Int(20)])
    }

    #[test]
    fn op_index_and_symbols_are_stable() {
        assert_eq!(PredOp::ALL.len(), 5);
        for (i, op) in PredOp::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
        assert_eq!(PredOp::Ge.symbol(), ">=");
    }

    #[test]
    fn id_intervals_match_semantics() {
        let c = column();
        // dictionary = [10, 20, 30]
        let cases = vec![
            (PredOp::Eq, Value::Int(20), (1, 2)),
            (PredOp::Eq, Value::Int(15), (0, 0)),
            (PredOp::Lt, Value::Int(20), (0, 1)),
            (PredOp::Le, Value::Int(20), (0, 2)),
            (PredOp::Gt, Value::Int(20), (2, 3)),
            (PredOp::Ge, Value::Int(20), (1, 3)),
            (PredOp::Ge, Value::Int(100), (3, 3)),
            (PredOp::Lt, Value::Int(5), (0, 0)),
        ];
        for (op, v, want) in cases {
            let p = ColumnPredicate::new(0, op, v.clone());
            assert_eq!(p.id_interval(&c), want, "{op:?} {v:?}");
        }
    }

    #[test]
    fn interval_agrees_with_direct_evaluation() {
        let c = column();
        for op in PredOp::ALL {
            for lit in [5, 10, 15, 20, 25, 30, 35] {
                let p = ColumnPredicate::new(0, op, Value::Int(lit));
                let (lo, hi) = p.id_interval(&c);
                for id in 0..c.ndv() as u32 {
                    let by_interval = id >= lo && id < hi;
                    let by_eval = p.matches(c.value_of_id(id));
                    assert_eq!(by_interval, by_eval, "{op:?} {lit} id {id}");
                }
            }
        }
    }

    #[test]
    fn intersect_intervals() {
        assert_eq!(intersect((0, 5), (3, 9)), (3, 5));
        assert_eq!(intersect((0, 2), (2, 4)), (0, 0));
        assert_eq!(intersect((1, 4), (0, 10)), (1, 4));
    }

    #[test]
    fn display_is_readable() {
        let p = ColumnPredicate::new(2, PredOp::Le, Value::Int(7));
        assert_eq!(p.to_string(), "col2 <= 7");
    }
}
