//! # duet-query
//!
//! The query substrate of the Duet reproduction:
//!
//! * [`predicate`] / [`query`] — conjunctive predicates over dictionary-encoded
//!   columns and the [`CardinalityEstimator`] trait implemented by Duet and by
//!   every baseline;
//! * [`workload`] — the tuple-anchored workload generators used by the paper
//!   (random `Rand-Q` workloads and bounded, Gamma-skewed `In-Q` workloads);
//! * [`truth`] — exact ground-truth evaluation by scanning the column store;
//! * [`metrics`] — Q-Error summaries (mean / median / p75 / p99 / max) and the
//!   cardinality CDFs plotted in the paper's Figure 4.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod metrics;
pub mod predicate;
pub mod query;
pub mod truth;
pub mod workload;

pub use metrics::{cardinality_cdf, percentile_sorted, q_error, QErrorSummary};
pub use predicate::{ColumnPredicate, PredOp};
pub use query::{CardinalityEstimator, Query};
pub use truth::{exact_cardinality, exact_selectivity, label_workload};
pub use workload::{BoundedColumn, PredicateCountDist, WorkloadSpec};
