//! Exact query evaluation (ground-truth cardinalities).
//!
//! Workload labels and Q-Errors are computed against a full scan of the
//! dictionary-encoded table. The scan works in value-id space: every
//! predicate combination on a column reduces to a contiguous id interval, so
//! a row matches iff every column's id lies in its interval.

use crate::query::Query;
use duet_data::Table;

/// Exact number of rows of `table` matching `query`.
pub fn exact_cardinality(table: &Table, query: &Query) -> u64 {
    let intervals = query.column_intervals(table);
    let constrained: Vec<usize> = query.constrained_columns();
    if constrained.is_empty() {
        return table.num_rows() as u64;
    }
    // Early out on contradictions.
    if constrained.iter().any(|&c| intervals[c].0 >= intervals[c].1) {
        return 0;
    }

    // Scan column-at-a-time, keeping a shrinking selection vector. Start with
    // the most selective constrained column (smallest interval / ndv ratio) to
    // cut the candidate set early.
    let mut order = constrained.clone();
    order.sort_by(|&a, &b| {
        let fa = interval_fraction(table, &intervals, a);
        let fb = interval_fraction(table, &intervals, b);
        fa.partial_cmp(&fb).unwrap_or(std::cmp::Ordering::Equal)
    });

    let first = order[0];
    let (lo, hi) = intervals[first];
    let data = table.column(first).data();
    let mut selection: Vec<u32> = Vec::new();
    for (row, &id) in data.iter().enumerate() {
        if id >= lo && id < hi {
            selection.push(row as u32);
        }
    }
    for &col in &order[1..] {
        if selection.is_empty() {
            return 0;
        }
        let (lo, hi) = intervals[col];
        let data = table.column(col).data();
        selection.retain(|&row| {
            let id = data[row as usize];
            id >= lo && id < hi
        });
    }
    selection.len() as u64
}

/// Exact selectivity (`cardinality / |T|`) of `query`.
pub fn exact_selectivity(table: &Table, query: &Query) -> f64 {
    if table.num_rows() == 0 {
        return 0.0;
    }
    exact_cardinality(table, query) as f64 / table.num_rows() as f64
}

/// Exact cardinalities for a whole workload, computed in parallel across
/// worker threads (labelling 100k training queries is the most expensive part
/// of workload preparation).
pub fn label_workload(table: &Table, queries: &[Query]) -> Vec<u64> {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if queries.len() < 64 || threads <= 1 {
        return queries.iter().map(|q| exact_cardinality(table, q)).collect();
    }
    let chunk = queries.len().div_ceil(threads);
    let mut out = vec![0u64; queries.len()];
    std::thread::scope(|scope| {
        for (qchunk, ochunk) in queries.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                for (q, o) in qchunk.iter().zip(ochunk.iter_mut()) {
                    *o = exact_cardinality(table, q);
                }
            });
        }
    });
    out
}

fn interval_fraction(table: &Table, intervals: &[(u32, u32)], col: usize) -> f64 {
    let ndv = table.column(col).ndv().max(1) as f64;
    let (lo, hi) = intervals[col];
    (hi.saturating_sub(lo)) as f64 / ndv
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::PredOp;
    use duet_data::datasets::census_like;
    use duet_data::{TableBuilder, Value};

    fn toy() -> Table {
        let mut b = TableBuilder::new("t", vec!["a".into(), "b".into()]);
        for (a, bv) in [(1, 10), (2, 20), (3, 30), (4, 40), (2, 10)] {
            b.push_row(vec![Value::Int(a), Value::Int(bv)]);
        }
        b.build()
    }

    #[test]
    fn unconstrained_query_selects_everything() {
        let t = toy();
        assert_eq!(exact_cardinality(&t, &Query::all()), 5);
        assert_eq!(exact_selectivity(&t, &Query::all()), 1.0);
    }

    #[test]
    fn conjunctions_are_intersections() {
        let t = toy();
        let q = Query::all().and(0, PredOp::Eq, Value::Int(2)).and(1, PredOp::Le, Value::Int(10));
        assert_eq!(exact_cardinality(&t, &q), 1);
    }

    #[test]
    fn contradictions_select_nothing() {
        let t = toy();
        let q = Query::all().and(0, PredOp::Gt, Value::Int(3)).and(0, PredOp::Lt, Value::Int(2));
        assert_eq!(exact_cardinality(&t, &q), 0);
    }

    #[test]
    fn scan_agrees_with_naive_row_filter() {
        let t = census_like(2_000, 9);
        let queries = vec![
            Query::all().and(0, PredOp::Le, Value::Int(30)),
            Query::all().and(1, PredOp::Eq, Value::Int(2)).and(5, PredOp::Ge, Value::Int(3)),
            Query::all()
                .and(10, PredOp::Gt, Value::Int(5))
                .and(10, PredOp::Lt, Value::Int(50))
                .and(13, PredOp::Ge, Value::Int(1)),
        ];
        for q in &queries {
            let naive = (0..t.num_rows()).filter(|&r| q.matches_row(&t, r)).count() as u64;
            assert_eq!(exact_cardinality(&t, q), naive, "query {q}");
        }
    }

    #[test]
    fn parallel_labelling_matches_serial() {
        let t = census_like(1_000, 10);
        let queries: Vec<Query> = (0..200)
            .map(|i| {
                Query::all().and(i % 14, PredOp::Ge, Value::Int((i % 7) as i64)).and(
                    (i + 3) % 14,
                    PredOp::Le,
                    Value::Int((i % 11) as i64 + 20),
                )
            })
            .collect();
        let serial: Vec<u64> = queries.iter().map(|q| exact_cardinality(&t, q)).collect();
        let parallel = label_workload(&t, &queries);
        assert_eq!(serial, parallel);
    }
}
