//! Q-Error summaries and distribution helpers used by every experiment.

use serde::{Deserialize, Serialize};

/// The Q-Error of an estimate (Moerkotte et al.): `max(est, actual) / min(est,
/// actual)`, with both sides clamped to at least 1 row.
pub fn q_error(estimate: f64, actual: f64) -> f64 {
    let e = estimate.max(1.0);
    let a = actual.max(1.0);
    if e >= a {
        e / a
    } else {
        a / e
    }
}

/// Summary of a Q-Error distribution, matching the columns reported in the
/// paper's Table II (mean, median, 75th, 99th, max) plus a few extras.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QErrorSummary {
    /// Number of queries evaluated.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl QErrorSummary {
    /// Summarize a set of Q-Errors. Returns an all-zero summary for an empty
    /// slice.
    pub fn from_errors(errors: &[f64]) -> Self {
        if errors.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                median: 0.0,
                p75: 0.0,
                p90: 0.0,
                p95: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let mut sorted: Vec<f64> = errors.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Self {
            count: sorted.len(),
            mean,
            median: percentile_sorted(&sorted, 50.0),
            p75: percentile_sorted(&sorted, 75.0),
            p90: percentile_sorted(&sorted, 90.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
            max: *sorted.last().expect("non-empty"),
        }
    }

    /// Summarize estimates against ground truth directly.
    pub fn from_estimates(estimates: &[f64], actuals: &[u64]) -> Self {
        assert_eq!(estimates.len(), actuals.len(), "estimate/actual length mismatch");
        let errors: Vec<f64> =
            estimates.iter().zip(actuals.iter()).map(|(&e, &a)| q_error(e, a as f64)).collect();
        Self::from_errors(&errors)
    }

    /// Render as the row format used by the experiment binaries.
    pub fn to_row(&self) -> String {
        format!(
            "mean={:>9.3} median={:>8.3} p75={:>8.3} p99={:>9.3} max={:>10.3}",
            self.mean, self.median, self.p75, self.p99, self.max
        )
    }
}

/// Linear-interpolated percentile of a pre-sorted slice (`p` in `[0, 100]`).
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Empirical CDF of a cardinality distribution, evaluated at `points`
/// log-spaced thresholds. Returns `(threshold, fraction <= threshold)` pairs;
/// this is what Figure 4 of the paper plots for the generated workloads.
pub fn cardinality_cdf(cardinalities: &[u64], points: usize) -> Vec<(f64, f64)> {
    if cardinalities.is_empty() || points == 0 {
        return Vec::new();
    }
    let mut sorted: Vec<u64> = cardinalities.to_vec();
    sorted.sort_unstable();
    let max = *sorted.last().expect("non-empty") as f64;
    let max = max.max(1.0);
    let n = sorted.len() as f64;
    (0..points)
        .map(|i| {
            // Log-spaced thresholds from 1 to max (the last point is pinned to
            // the exact maximum so the CDF always reaches 1.0).
            let t = if i + 1 == points {
                max
            } else {
                (max.ln() * i as f64 / (points - 1).max(1) as f64).exp()
            };
            let below = sorted.partition_point(|&c| (c as f64) <= t);
            (t, below as f64 / n)
        })
        .collect()
}

/// Simple mean helper for throughput / latency reporting.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_error_basic_properties() {
        assert_eq!(q_error(10.0, 100.0), 10.0);
        assert_eq!(q_error(100.0, 10.0), 10.0);
        assert_eq!(q_error(0.0, 0.0), 1.0);
        assert!(q_error(3.0, 3.0) >= 1.0);
    }

    #[test]
    fn q_error_zero_and_one_row_truths_clamp_to_one_row() {
        // Zero-row truths: the actual side clamps to 1 row, so the error is
        // the (clamped) estimate itself — never a division by zero or inf.
        assert_eq!(q_error(5.0, 0.0), 5.0);
        assert_eq!(q_error(0.0, 5.0), 5.0);
        assert!(q_error(1e12, 0.0).is_finite());
        // One-row truths: sub-row estimates clamp up to 1 row, so an
        // estimate of 0.3 rows against a 1-row truth is *exact*, not a 3.3x
        // error.
        assert_eq!(q_error(0.3, 1.0), 1.0);
        assert_eq!(q_error(1.0, 0.3), 1.0);
        assert_eq!(q_error(0.0, 1.0), 1.0);
        // Fractional estimates above a row still count normally.
        assert_eq!(q_error(2.0, 1.0), 2.0);
        // Negative estimates (a misbehaving model) clamp like zero.
        assert_eq!(q_error(-3.0, 10.0), 10.0);
    }

    #[test]
    fn empty_workload_summaries_are_zeroed_not_nan() {
        let s = QErrorSummary::from_estimates(&[], &[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.median, 0.0);
        assert_eq!(s.p99, 0.0);
        assert_eq!(s.max, 0.0);
        assert!(!s.mean.is_nan());
        assert_eq!(percentile_sorted(&[], 50.0), 0.0);
        assert!(cardinality_cdf(&[], 10).is_empty());
        assert!(cardinality_cdf(&[1, 2, 3], 0).is_empty());
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn single_query_summary_degenerates_to_that_error() {
        let s = QErrorSummary::from_estimates(&[30.0], &[10]);
        assert_eq!(s.count, 1);
        for v in [s.mean, s.median, s.p75, s.p90, s.p95, s.p99, s.max] {
            assert_eq!(v, 3.0, "all statistics of one sample are the sample");
        }
    }

    #[test]
    fn all_zero_truth_workload_is_finite() {
        // A workload whose every query matches no rows (possible with
        // contradictory generated predicates) must summarize finitely.
        let s = QErrorSummary::from_estimates(&[0.0, 2.0, 100.0], &[0, 0, 0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - (1.0 + 2.0 + 100.0) / 3.0).abs() < 1e-9);
        assert!(s.median.is_finite() && s.p99.is_finite());
    }

    #[test]
    #[should_panic(expected = "estimate/actual length mismatch")]
    fn mismatched_estimate_truth_lengths_panic() {
        let _ = QErrorSummary::from_estimates(&[1.0, 2.0], &[1]);
    }

    #[test]
    fn percentile_out_of_range_is_clamped() {
        let sorted = vec![1.0, 2.0, 3.0];
        assert_eq!(percentile_sorted(&sorted, -10.0), 1.0);
        assert_eq!(percentile_sorted(&sorted, 200.0), 3.0);
        // Single-element slices are every percentile.
        assert_eq!(percentile_sorted(&[7.0], 0.0), 7.0);
        assert_eq!(percentile_sorted(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn cdf_of_constant_and_single_value_distributions() {
        // All-equal cardinalities: every threshold ≥ the value has CDF 1.
        let cdf = cardinality_cdf(&[5, 5, 5, 5], 4);
        assert_eq!(cdf.len(), 4);
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        // A single zero-cardinality sample: max clamps to 1, no NaNs.
        let cdf = cardinality_cdf(&[0], 3);
        assert_eq!(cdf.len(), 3);
        for (t, frac) in cdf {
            assert!(t.is_finite() && frac.is_finite());
            assert!((frac - 1.0).abs() < 1e-9, "0 <= every threshold");
        }
    }

    #[test]
    fn summary_percentiles_are_ordered() {
        let errors: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = QErrorSummary::from_errors(&errors);
        assert_eq!(s.count, 100);
        assert!(s.median <= s.p75 && s.p75 <= s.p90 && s.p90 <= s.p95 && s.p95 <= s.p99);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.median - 50.5).abs() < 1.0);
    }

    #[test]
    fn summary_of_empty_slice_is_zeroed() {
        let s = QErrorSummary::from_errors(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn from_estimates_matches_manual_computation() {
        let s = QErrorSummary::from_estimates(&[10.0, 1.0], &[100, 1]);
        assert_eq!(s.count, 2);
        assert_eq!(s.max, 10.0);
        assert!((s.mean - 5.5).abs() < 1e-9);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 4.0);
        assert!((percentile_sorted(&sorted, 50.0) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let cards: Vec<u64> = (1..=1000).collect();
        let cdf = cardinality_cdf(&cards, 20);
        assert_eq!(cdf.len(), 20);
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 >= w[0].0);
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
