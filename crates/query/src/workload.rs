//! Workload generation following the protocol of the paper (§V-A2), which in
//! turn follows Naru's tuple-anchored generator:
//!
//! 1. sample an anchor tuple from the table,
//! 2. choose how many columns to constrain (uniformly for random workloads,
//!    Gamma-distributed for "realistic" in-workload queries),
//! 3. choose which columns, and for each a predicate operator,
//! 4. choose the literal so the anchor tuple satisfies the predicate
//!    (guaranteeing a non-empty result).
//!
//! Training / in-workload specs additionally use a *bounded column*: one large
//! column whose literals are restricted to a sampled 1% of its distinct
//! values, so training queries only ever see a small slice of that domain.
//! Random test workloads have no such restriction, which is exactly the
//! workload-drift situation the paper evaluates.

use crate::predicate::{ColumnPredicate, PredOp};
use crate::query::Query;
use duet_data::Table;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Distribution of the number of constrained columns per query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PredicateCountDist {
    /// Uniform over `1..=max_columns` (random workloads, Rand-Q).
    Uniform,
    /// Gamma-distributed (then clamped to `1..=max_columns`), simulating the
    /// skewed predicate counts of real workloads (In-Q / training workloads).
    Gamma {
        /// Shape parameter `k` (must be >= 1).
        shape: f64,
        /// Scale parameter `θ`.
        scale: f64,
    },
}

/// Restriction of one column's literals to a subset of its distinct values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundedColumn {
    /// The column whose literals are restricted.
    pub column: usize,
    /// The allowed literal value ids (a sampled 1% of the column's domain).
    pub allowed_ids: Vec<u32>,
}

/// Full description of a generated workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of queries to generate.
    pub num_queries: usize,
    /// RNG seed (the paper uses 42 for training/in-workload and 1234 for the
    /// random test workload).
    pub seed: u64,
    /// Distribution of the number of constrained columns.
    pub count_dist: PredicateCountDist,
    /// Optional bounded column (training / in-workload only).
    pub bounded_column: Option<BoundedColumn>,
    /// If > 1, allow up to this many predicates on a single column (exercises
    /// the MPSN; Table I).
    pub max_predicates_per_column: usize,
    /// Operators to draw from.
    pub ops: Vec<PredOp>,
    /// Cap on the number of constrained columns (defaults to all columns).
    pub max_columns: Option<usize>,
}

impl WorkloadSpec {
    /// The paper's random test workload (`Rand-Q`): uniform predicate counts,
    /// no bounded column, seed 1234 by convention.
    pub fn random(table: &Table, num_queries: usize, seed: u64) -> Self {
        let _ = table;
        Self {
            num_queries,
            seed,
            count_dist: PredicateCountDist::Uniform,
            bounded_column: None,
            max_predicates_per_column: 1,
            ops: PredOp::ALL.to_vec(),
            max_columns: None,
        }
    }

    /// The paper's training / in-workload spec (`In-Q`): Gamma predicate
    /// counts and a bounded column sampled from the largest-NDV column.
    pub fn in_workload(table: &Table, num_queries: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15);
        // "Randomly choose a large enough column": pick the column with the
        // most distinct values (ties broken by index), then keep 1% of its
        // distinct values (at least 2) as the allowed literal set.
        let (column, ndv) = table
            .ndvs()
            .into_iter()
            .enumerate()
            .max_by_key(|&(_, ndv)| ndv)
            .expect("table has at least one column");
        let keep = ((ndv as f64 * 0.01).ceil() as usize).clamp(2, ndv.max(2));
        let mut allowed: Vec<u32> = Vec::with_capacity(keep);
        while allowed.len() < keep.min(ndv) {
            let id = rng.gen_range(0..ndv as u32);
            if !allowed.contains(&id) {
                allowed.push(id);
            }
        }
        allowed.sort_unstable();
        let mean_cols = (table.num_columns() as f64 / 3.0).max(1.5);
        Self {
            num_queries,
            seed,
            count_dist: PredicateCountDist::Gamma { shape: 2.0, scale: mean_cols / 2.0 },
            bounded_column: Some(BoundedColumn { column, allowed_ids: allowed }),
            max_predicates_per_column: 1,
            ops: PredOp::ALL.to_vec(),
            max_columns: None,
        }
    }

    /// Allow multiple predicates per column (for the MPSN experiments).
    pub fn with_multi_predicates(mut self, max_per_column: usize) -> Self {
        self.max_predicates_per_column = max_per_column.max(1);
        self
    }

    /// Limit queries to the first `k` columns (scalability experiment,
    /// Figure 6).
    pub fn with_max_columns(mut self, k: usize) -> Self {
        self.max_columns = Some(k.max(1));
        self
    }

    /// Generate the workload deterministically.
    pub fn generate(&self, table: &Table) -> Vec<Query> {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let ncols = self.max_columns.unwrap_or(table.num_columns()).min(table.num_columns());
        (0..self.num_queries).map(|_| self.generate_one(table, ncols, &mut rng)).collect()
    }

    fn generate_one(&self, table: &Table, ncols: usize, rng: &mut SmallRng) -> Query {
        let anchor_row = rng.gen_range(0..table.num_rows());
        let k = self.sample_column_count(ncols, rng);
        let columns = sample_distinct(ncols, k, rng);
        let mut predicates = Vec::with_capacity(k);
        for &col in &columns {
            let anchor_id = table.column(col).id_at(anchor_row);
            let bounded = matches!(&self.bounded_column, Some(b) if b.column == col);
            let literal_id = self.pick_literal_id(col, anchor_id, rng);
            let n_preds =
                if !bounded && self.max_predicates_per_column > 1 && table.column(col).ndv() > 2 {
                    rng.gen_range(1..=self.max_predicates_per_column)
                } else {
                    1
                };
            if n_preds == 1 {
                predicates.push(self.single_predicate(table, col, literal_id, bounded, rng));
            } else {
                predicates.extend(self.range_predicates(table, col, literal_id, n_preds, rng));
            }
        }
        Query::new(predicates)
    }

    /// Literal value id: the anchor's value, unless the column is bounded, in
    /// which case a value from the allowed subset.
    fn pick_literal_id(&self, col: usize, anchor_id: u32, rng: &mut SmallRng) -> u32 {
        match &self.bounded_column {
            Some(b) if b.column == col && !b.allowed_ids.is_empty() => {
                b.allowed_ids[rng.gen_range(0..b.allowed_ids.len())]
            }
            _ => anchor_id,
        }
    }

    fn single_predicate(
        &self,
        table: &Table,
        col: usize,
        literal_id: u32,
        bounded: bool,
        rng: &mut SmallRng,
    ) -> ColumnPredicate {
        let column = table.column(col);
        let ndv = column.ndv() as u32;
        let op = self.ops[rng.gen_range(0..self.ops.len())];
        if bounded {
            // Bounded columns must only ever see literals from the allowed
            // subset, so the literal is used verbatim whatever the operator.
            return ColumnPredicate::new(col, op, column.value_of_id(literal_id).clone());
        }
        // Keep the result guaranteed non-empty when the literal is the anchor
        // value: for strict operators move the literal past the anchor when
        // possible, otherwise fall back to the inclusive operator.
        let (op, literal_id) = match op {
            PredOp::Gt => {
                if literal_id > 0 {
                    (PredOp::Gt, rng.gen_range(0..literal_id))
                } else {
                    (PredOp::Ge, literal_id)
                }
            }
            PredOp::Lt => {
                if literal_id + 1 < ndv {
                    (PredOp::Lt, rng.gen_range(literal_id + 1..ndv))
                } else {
                    (PredOp::Le, literal_id)
                }
            }
            other => (other, literal_id),
        };
        ColumnPredicate::new(col, op, column.value_of_id(literal_id).clone())
    }

    /// A conjunctive range `lo <= col <= hi` around the literal, emitted as
    /// multiple predicates on the same column.
    fn range_predicates(
        &self,
        table: &Table,
        col: usize,
        literal_id: u32,
        n_preds: usize,
        rng: &mut SmallRng,
    ) -> Vec<ColumnPredicate> {
        let column = table.column(col);
        let ndv = column.ndv() as u32;
        let lo = if literal_id == 0 { 0 } else { rng.gen_range(0..=literal_id) };
        let hi = if literal_id + 1 >= ndv { ndv - 1 } else { rng.gen_range(literal_id..ndv) };
        let mut preds = vec![
            ColumnPredicate::new(col, PredOp::Ge, column.value_of_id(lo).clone()),
            ColumnPredicate::new(col, PredOp::Le, column.value_of_id(hi).clone()),
        ];
        // Extra redundant predicates (e.g. `>= lo` twice) are legal in SQL and
        // exercise the MPSN's ability to combine more than two predicates.
        while preds.len() < n_preds {
            preds.push(ColumnPredicate::new(col, PredOp::Ge, column.value_of_id(lo).clone()));
        }
        preds
    }

    fn sample_column_count(&self, ncols: usize, rng: &mut SmallRng) -> usize {
        match self.count_dist {
            PredicateCountDist::Uniform => rng.gen_range(1..=ncols),
            PredicateCountDist::Gamma { shape, scale } => {
                let x = sample_gamma(shape, scale, rng);
                (x.round() as usize).clamp(1, ncols)
            }
        }
    }
}

/// Sample `k` distinct column indices from `0..ncols` (partial Fisher-Yates).
fn sample_distinct(ncols: usize, k: usize, rng: &mut SmallRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..ncols).collect();
    let k = k.min(ncols);
    for i in 0..k {
        let j = rng.gen_range(i..ncols);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

/// Marsaglia–Tsang gamma sampling (shape >= 1); for shape < 1 the boost
/// `Gamma(shape) = Gamma(shape + 1) * U^(1/shape)` is applied.
fn sample_gamma(shape: f64, scale: f64, rng: &mut SmallRng) -> f64 {
    assert!(shape > 0.0 && scale > 0.0, "gamma parameters must be positive");
    if shape < 1.0 {
        let u: f64 = rng.gen::<f64>().max(1e-12);
        return sample_gamma(shape + 1.0, scale, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = sample_standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen::<f64>().max(1e-12);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v * scale;
        }
    }
}

/// Box-Muller standard normal.
fn sample_standard_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::exact_cardinality;
    use duet_data::datasets::census_like;

    #[test]
    fn generation_is_deterministic() {
        let t = census_like(1_000, 1);
        let a = WorkloadSpec::random(&t, 50, 1234).generate(&t);
        let b = WorkloadSpec::random(&t, 50, 1234).generate(&t);
        assert_eq!(a, b);
        let c = WorkloadSpec::random(&t, 50, 99).generate(&t);
        assert_ne!(a, c);
    }

    #[test]
    fn anchored_queries_are_never_empty_without_bounded_column() {
        let t = census_like(2_000, 2);
        let queries = WorkloadSpec::random(&t, 100, 7).generate(&t);
        for q in &queries {
            assert!(q.num_predicates() >= 1);
            assert!(
                exact_cardinality(&t, q) >= 1,
                "anchored query should match its anchor tuple: {q}"
            );
        }
    }

    #[test]
    fn in_workload_restricts_bounded_column_literals() {
        let t = census_like(2_000, 3);
        let spec = WorkloadSpec::in_workload(&t, 300, 42);
        let bounded = spec.bounded_column.clone().expect("bounded column expected");
        let allowed: Vec<duet_data::Value> = bounded
            .allowed_ids
            .iter()
            .map(|&id| t.column(bounded.column).value_of_id(id).clone())
            .collect();
        let queries = spec.generate(&t);
        let mut saw_bounded = false;
        for q in &queries {
            for p in &q.predicates {
                if p.column == bounded.column {
                    saw_bounded = true;
                    assert!(
                        allowed.contains(&p.value),
                        "literal {} not in the bounded subset",
                        p.value
                    );
                }
            }
        }
        assert!(saw_bounded, "expected at least one query on the bounded column");
    }

    #[test]
    fn multi_predicate_workloads_produce_multiple_predicates_per_column() {
        let t = census_like(1_000, 4);
        let spec = WorkloadSpec::random(&t, 200, 5).with_multi_predicates(3);
        let queries = spec.generate(&t);
        let any_multi =
            queries.iter().any(|q| q.predicates_by_column().iter().any(|(_, ps)| ps.len() > 1));
        assert!(any_multi, "expected some column with multiple predicates");
        // Multi-predicate ranges around an anchor must still be satisfiable.
        for q in &queries {
            assert!(exact_cardinality(&t, q) >= 1, "query {q} should be satisfiable");
        }
    }

    #[test]
    fn max_columns_is_respected() {
        let t = census_like(500, 6);
        let spec = WorkloadSpec::random(&t, 100, 8).with_max_columns(3);
        for q in spec.generate(&t) {
            assert!(q.constrained_columns().iter().all(|&c| c < 3));
        }
    }

    #[test]
    fn gamma_sampler_has_expected_mean() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 20_000;
        let (shape, scale) = (2.0, 1.5);
        let mean: f64 =
            (0..n).map(|_| sample_gamma(shape, scale, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - shape * scale).abs() < 0.1, "gamma mean off: {mean}");
    }

    #[test]
    fn gamma_predicate_counts_are_skewed_low() {
        let t = census_like(1_000, 12);
        let spec = WorkloadSpec::in_workload(&t, 500, 42);
        let queries = spec.generate(&t);
        let counts: Vec<usize> = queries.iter().map(|q| q.constrained_columns().len()).collect();
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        // Uniform over 1..=14 would have mean 7.5; the gamma workload should
        // sit clearly below that.
        assert!(mean < 7.0, "gamma predicate-count mean too high: {mean}");
        assert!(counts.iter().all(|&c| (1..=14).contains(&c)));
    }
}
