//! Conjunctive queries and the `CardinalityEstimator` trait implemented by
//! Duet and every baseline.

use crate::predicate::{intersect, ColumnPredicate, PredOp};
use duet_data::{Table, Value};
use serde::{Deserialize, Serialize};

/// A conjunction of column predicates (the query class of the paper:
/// single-table, `AND` of `{=, <, >, <=, >=}` predicates, possibly several per
/// column).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Query {
    /// The predicates, in no particular order.
    pub predicates: Vec<ColumnPredicate>,
}

impl Query {
    /// An unconstrained query (selects every row).
    pub fn all() -> Self {
        Self { predicates: Vec::new() }
    }

    /// Build a query from predicates.
    pub fn new(predicates: Vec<ColumnPredicate>) -> Self {
        Self { predicates }
    }

    /// Add a predicate (builder style).
    pub fn and(mut self, column: usize, op: PredOp, value: Value) -> Self {
        self.predicates.push(ColumnPredicate::new(column, op, value));
        self
    }

    /// Number of predicates.
    pub fn num_predicates(&self) -> usize {
        self.predicates.len()
    }

    /// True if the query has no predicates.
    pub fn is_unconstrained(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Indices of the distinct columns that carry at least one predicate.
    pub fn constrained_columns(&self) -> Vec<usize> {
        let mut cols: Vec<usize> = self.predicates.iter().map(|p| p.column).collect();
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// The predicates grouped per column (column index, predicates on it).
    pub fn predicates_by_column(&self) -> Vec<(usize, Vec<&ColumnPredicate>)> {
        let mut out: Vec<(usize, Vec<&ColumnPredicate>)> = Vec::new();
        for col in self.constrained_columns() {
            let preds = self.predicates.iter().filter(|p| p.column == col).collect();
            out.push((col, preds));
        }
        out
    }

    /// For every column of `table`, the half-open value-id interval that
    /// satisfies *all* predicates on that column. Unconstrained columns map to
    /// the full `[0, ndv)` interval; contradictory predicates map to `(0, 0)`.
    ///
    /// This is the zero-out mask `Pred_i(R_i, v_i)` of the paper's
    /// Algorithm 3, in interval form (every supported operator combination
    /// yields a contiguous id range).
    pub fn column_intervals(&self, table: &Table) -> Vec<(u32, u32)> {
        let mut intervals: Vec<(u32, u32)> =
            table.columns().iter().map(|c| (0u32, c.ndv() as u32)).collect();
        for p in &self.predicates {
            assert!(
                p.column < intervals.len(),
                "predicate references column {} outside table",
                p.column
            );
            let this = p.id_interval(table.column(p.column));
            intervals[p.column] = intersect(intervals[p.column], this);
        }
        intervals
    }

    /// Evaluate the query against one row of the table.
    pub fn matches_row(&self, table: &Table, row: usize) -> bool {
        self.predicates.iter().all(|p| p.matches(table.column(p.column).value_at(row)))
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.predicates.is_empty() {
            return write!(f, "TRUE");
        }
        let parts: Vec<String> = self.predicates.iter().map(|p| p.to_string()).collect();
        write!(f, "{}", parts.join(" AND "))
    }
}

/// The interface every estimator in the workspace implements.
///
/// `estimate` returns an estimated **cardinality** (number of matching rows),
/// not a selectivity; implementations clamp to at least one row to avoid
/// degenerate Q-Errors, mirroring common practice (and the paper's
/// evaluation).
pub trait CardinalityEstimator {
    /// Short, stable name used in experiment reports (e.g. `"duet"`, `"naru"`).
    fn name(&self) -> &str;

    /// Estimate the cardinality of `query`.
    fn estimate(&mut self, query: &Query) -> f64;

    /// In-memory size of the estimator's state in bytes (model weights,
    /// histograms, samples, ...), reported in Table II's `Size(MB)` column.
    fn size_bytes(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_data::datasets::census_like;
    use duet_data::{TableBuilder, Value};

    fn toy() -> Table {
        let mut b = TableBuilder::new("t", vec!["a".into(), "b".into()]);
        for (a, bv) in [(1, 10), (2, 20), (3, 30), (4, 40)] {
            b.push_row(vec![Value::Int(a), Value::Int(bv)]);
        }
        b.build()
    }

    #[test]
    fn builder_and_accessors() {
        let q = Query::all()
            .and(0, PredOp::Ge, Value::Int(2))
            .and(1, PredOp::Lt, Value::Int(40))
            .and(0, PredOp::Le, Value::Int(3));
        assert_eq!(q.num_predicates(), 3);
        assert_eq!(q.constrained_columns(), vec![0, 1]);
        let by_col = q.predicates_by_column();
        assert_eq!(by_col[0].1.len(), 2);
        assert_eq!(by_col[1].1.len(), 1);
        assert!(!q.is_unconstrained());
        assert!(Query::all().is_unconstrained());
    }

    #[test]
    fn column_intervals_intersect_multiple_predicates() {
        let t = toy();
        let q = Query::all().and(0, PredOp::Ge, Value::Int(2)).and(0, PredOp::Le, Value::Int(3));
        let iv = q.column_intervals(&t);
        assert_eq!(iv[0], (1, 3));
        assert_eq!(iv[1], (0, 4)); // unconstrained column keeps full range
    }

    #[test]
    fn contradictory_predicates_give_empty_interval() {
        let t = toy();
        let q = Query::all().and(0, PredOp::Lt, Value::Int(2)).and(0, PredOp::Gt, Value::Int(3));
        assert_eq!(q.column_intervals(&t)[0], (0, 0));
    }

    #[test]
    fn matches_row_agrees_with_intervals() {
        let t = census_like(500, 5);
        let q = Query::all()
            .and(0, PredOp::Le, Value::Int(40))
            .and(3, PredOp::Ge, Value::Int(4))
            .and(9, PredOp::Eq, Value::Int(1));
        let iv = q.column_intervals(&t);
        for row in 0..t.num_rows() {
            let by_pred = q.matches_row(&t, row);
            let by_iv =
                t.row_ids(row).iter().enumerate().all(|(c, &id)| id >= iv[c].0 && id < iv[c].1);
            assert_eq!(by_pred, by_iv, "row {row}");
        }
    }

    #[test]
    fn display_formats_conjunction() {
        let q = Query::all().and(0, PredOp::Eq, Value::Int(5)).and(1, PredOp::Gt, Value::Int(2));
        assert_eq!(q.to_string(), "col0 = 5 AND col1 > 2");
        assert_eq!(Query::all().to_string(), "TRUE");
    }
}
