//! In-repo stand-in for the subset of the `bytes` crate used by the
//! checkpoint codec in `duet_nn::serialize` and by `duet_core::persist`:
//! [`Bytes`], [`BytesMut`], and the little-endian read/write halves of the
//! [`Buf`] / [`BufMut`] traits.
//!
//! [`Bytes`] is a cheaply clonable, immutable byte buffer (reference counted,
//! like the real crate), which matters for the serving layer where one model
//! checkpoint may be handed to several registry slots.

#![warn(missing_docs)]

use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self { data: Arc::from(&[][..]) }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: Arc::from(data) }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// An empty buffer with pre-reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { data: Vec::with_capacity(capacity) }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write access to a byte buffer (little-endian subset).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read access to a byte buffer (little-endian subset).
///
/// Implemented for `&[u8]`, which advances through the slice as values are
/// consumed. Reads past the end panic; callers are expected to check
/// [`Buf::remaining`] first (as the checkpoint codec does).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copy `dst.len()` bytes out and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Read a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, rest) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = rest;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian_values() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"HDR");
        buf.put_u8(7);
        buf.put_u32_le(0xdead_beef);
        buf.put_u64_le(u64::MAX - 3);
        buf.put_f32_le(1.5);
        buf.put_f64_le(-2.25);
        let frozen = buf.freeze();

        let mut r: &[u8] = &frozen;
        let mut hdr = [0u8; 3];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_u64_le(), u64::MAX - 3);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_clone_is_shallow_and_sliceable() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let c = b.clone();
        assert_eq!(&b[..], &c[..]);
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn reading_past_the_end_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
