//! In-repo stand-in for the subset of the `rand` 0.8 API this workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`], and
//! [`seq::SliceRandom`] (`shuffle` / `choose`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed, which is all the workspace relies on (experiments are
//! reproducible, not bit-compatible with upstream `rand`). Distributions use
//! straightforward modulo / scaling; the tiny bias this introduces is
//! irrelevant for workload generation and weight initialization.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level random source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its "standard" distribution
    /// (uniform `[0, 1)` for floats, uniform bits for integers).
    fn gen<T: SampleValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A type that can be sampled from its standard distribution.
pub trait SampleValue: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleValue for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleValue for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleValue for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleValue for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleValue for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that can be sampled uniformly (the `R` of [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = SampleValue::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit: $t = SampleValue::sample(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// A random generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators ([`SmallRng`]).

    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, as rand does for xoshiro.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers ([`SliceRandom`]).

    use super::RngCore;

    /// Extension trait providing random slice operations.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = rng.gen_range(3usize..7);
            assert!((3..7).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            seen_lo |= w == -5;
            seen_hi |= w == 5;
        }
        assert!(seen_lo && seen_hi, "inclusive endpoints should be reachable");
    }

    #[test]
    fn float_ranges_are_respected() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&v));
            let w: f64 = rng.gen_range(10.0f64..20.0);
            assert!((10.0..20.0).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits} hits");
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        let original = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, original, "50 elements should not shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original);
        assert!(original.contains(v.choose(&mut rng).unwrap()));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
