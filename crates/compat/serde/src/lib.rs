//! In-repo stand-in for the subset of `serde` this workspace touches.
//!
//! The workspace only *derives* `Serialize` / `Deserialize` (for API
//! compatibility with downstream users); nothing ever goes through a serde
//! serializer — model checkpoints use the hand-written binary codec in
//! `duet_nn::serialize`. Since the build environment cannot reach crates.io,
//! this crate provides the two marker traits and re-exports the no-op derive
//! macros from the sibling `serde_derive` compat crate.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
///
/// The real trait's methods are never called in this workspace, so the
/// compat version carries no items.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
///
/// The real trait's methods are never called in this workspace, so the
/// compat version carries no items.
pub trait Deserialize<'de>: Sized {}
