//! In-repo stand-in for the subset of `criterion` the workspace benches use:
//! [`Criterion`], [`Criterion::benchmark_group`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It is a plain wall-clock harness, not a statistics engine: each benchmark
//! is warmed up, then timed in growing batches until a fixed time budget is
//! reached, and the mean time per iteration (plus iteration throughput) is
//! printed to stdout. That is enough for the relative comparisons the
//! workspace benches make (e.g. batched serving vs. a one-query-at-a-time
//! loop) while keeping `cargo bench` runnable offline.
//!
//! # Machine-readable results
//!
//! When the `DUET_BENCH_JSON` environment variable names a file, every bench
//! binary **merges** its results into that JSON document on exit (via the
//! [`criterion_main!`]-generated `main`): one entry per benchmark —
//! `name`, `ns_per_op`, `iters`, and the optional `batch_size` / `mode`
//! annotations a bench attaches through
//! [`BenchmarkGroup::bench_function_meta`]. Entries are keyed by name (a
//! re-run replaces, other binaries' entries survive) and sorted, so the file
//! diffs cleanly across runs. CI points this at `BENCH_PR5.json` at the repo
//! root and uploads it as an artifact — the perf trajectory in
//! `docs/PERFORMANCE.md` is backed by the same file.

#![warn(missing_docs)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement budget per benchmark after warm-up, at the default
/// `sample_size` of 100; the budget scales linearly with `sample_size`.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);

/// Warm-up budget per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Optional per-benchmark annotations carried into the JSON results (see
/// the [module docs](self)).
#[derive(Debug, Clone, Copy, Default)]
pub struct BenchMeta {
    /// Queries/examples fused per measured iteration, when meaningful.
    pub batch_size: Option<usize>,
    /// Variant label (e.g. the softmax mode) distinguishing otherwise
    /// identical benchmarks.
    pub mode: Option<&'static str>,
}

/// One finished benchmark, as recorded for the JSON dump.
#[derive(Debug, Clone)]
struct BenchRecord {
    name: String,
    ns_per_op: f64,
    iters: u64,
    meta: BenchMeta,
}

/// Results recorded by this process, flushed by [`flush_bench_json`].
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

fn record_result(name: &str, ns_per_op: f64, iters: u64, meta: BenchMeta) {
    RESULTS.lock().expect("bench results poisoned").push(BenchRecord {
        name: name.to_string(),
        ns_per_op,
        iters,
        meta,
    });
}

fn json_entry(r: &BenchRecord) -> String {
    let batch = r.meta.batch_size.map_or("null".to_string(), |b| b.to_string());
    let mode = r.meta.mode.map_or("null".to_string(), |m| format!("{m:?}"));
    format!(
        "    {{\"name\": {:?}, \"ns_per_op\": {:.1}, \"iters\": {}, \"batch_size\": {}, \"mode\": {}}}",
        r.name, r.ns_per_op, r.iters, batch, mode
    )
}

/// Extract the `name` of a JSON entry line written by [`json_entry`].
fn entry_name(line: &str) -> Option<&str> {
    let rest = line.trim_start().strip_prefix("{\"name\": \"")?;
    rest.split('"').next()
}

/// Merge this process's recorded results into the JSON file named by the
/// `DUET_BENCH_JSON` environment variable (no-op when unset or no results).
///
/// The merge is line-oriented over the format this module itself writes:
/// existing entries whose names this run did not produce are preserved, so
/// several bench binaries accumulate into one document.
pub fn flush_bench_json() {
    let Ok(path) = std::env::var("DUET_BENCH_JSON") else { return };
    // `cargo bench` runs binaries with the *package* directory as cwd;
    // anchor relative paths at the workspace root (the directory holding
    // `Cargo.lock`) so every bench binary merges into the same file.
    let mut path = std::path::PathBuf::from(path);
    if path.is_relative() {
        if let Some(root) = workspace_root() {
            path = root.join(path);
        }
    }
    let results = RESULTS.lock().expect("bench results poisoned");
    if results.is_empty() {
        return;
    }
    let mut entries: Vec<(String, String)> =
        results.iter().map(|r| (r.name.clone(), json_entry(r))).collect();
    // Preserve other binaries' entries (keyed by name).
    if let Ok(existing) = std::fs::read_to_string(&path) {
        for line in existing.lines() {
            if let Some(name) = entry_name(line) {
                if !entries.iter().any(|(n, _)| n == name) {
                    entries.push((
                        name.to_string(),
                        line.trim_end().trim_end_matches(',').to_string(),
                    ));
                }
            }
        }
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    let body: Vec<String> = entries.into_iter().map(|(_, line)| line).collect();
    let doc = format!(
        "{{\n  \"schema\": \"duet-bench-v1\",\n  \"unit\": \"ns/op\",\n  \"benches\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    if let Err(e) = std::fs::write(&path, doc) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// The workspace root: the closest ancestor of the running bench's package
/// directory that holds a `Cargo.lock`.
fn workspace_root() -> Option<std::path::PathBuf> {
    let mut dir = std::path::PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").ok()?);
    loop {
        if dir.join("Cargo.lock").exists() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// The top-level benchmark harness.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 100 }
    }
}

impl Criterion {
    /// Set the sample count. This harness has no per-sample statistics; the
    /// value scales the measurement time budget instead (`sample_size(10)`
    /// spends a tenth of the default budget), preserving criterion's
    /// "smaller sample size = faster bench" contract.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup { prefix: name, criterion: self }
    }

    /// Run a single benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, BenchMeta::default(), f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count for this group (see [`Criterion::sample_size`]).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_function_meta(name, BenchMeta::default(), f)
    }

    /// [`BenchmarkGroup::bench_function`] with [`BenchMeta`] annotations
    /// (batch size, mode) carried into the JSON results.
    pub fn bench_function_meta<F>(&mut self, name: &str, meta: BenchMeta, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{name}", self.prefix);
        run_bench(&full, self.criterion.sample_size, meta, f);
        self
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code to
/// measure.
#[derive(Debug, Default)]
pub struct Bencher {
    budget: Duration,
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `f`, discarding its output via [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also provides a first cost estimate for batch sizing.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));

        // Size batches to roughly 1/20th of the budget each.
        let budget = if self.budget.is_zero() { MEASURE_BUDGET } else { self.budget };
        let batch = (budget.as_nanos() / 20 / per_iter.max(1)).clamp(1, 1 << 20) as u64;
        let mut iterations = 0u64;
        let started = Instant::now();
        while started.elapsed() < budget {
            for _ in 0..batch {
                black_box(f());
            }
            iterations += batch;
        }
        self.iterations = iterations;
        self.elapsed = started.elapsed();
    }

    /// Mean nanoseconds per iteration of the last [`Bencher::iter`] run.
    pub fn ns_per_iter(&self) -> f64 {
        if self.iterations == 0 {
            return 0.0;
        }
        self.elapsed.as_nanos() as f64 / self.iterations as f64
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, meta: BenchMeta, mut f: F) {
    // 100 samples (criterion's default) maps to the full budget.
    let mut b = Bencher {
        budget: MEASURE_BUDGET.mul_f64(sample_size as f64 / 100.0).max(Duration::from_millis(10)),
        ..Bencher::default()
    };
    f(&mut b);
    let ns = b.ns_per_iter();
    let throughput = if ns > 0.0 { 1e9 / ns } else { 0.0 };
    println!(
        "  {name:<42} {:>12.1} ns/iter {:>14.0} iter/s ({} iters)",
        ns, throughput, b.iterations
    );
    record_result(name, ns, b.iterations, meta);
}

/// Bundle benchmark functions into a named group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate a `main` that runs the given groups, mirroring criterion's macro
/// of the same name. On exit the results are merged into the JSON file named
/// by `DUET_BENCH_JSON`, if set (see the [module docs](self)).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::flush_bench_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().sample_size(10);
        let mut ns = 0.0;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ns = b.ns_per_iter();
        });
        assert!(ns > 0.0);
    }

    #[test]
    fn groups_run_their_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("inner", |b| {
            b.iter(|| black_box(2 * 2));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
