//! In-repo stand-in for the subset of `criterion` the workspace benches use:
//! [`Criterion`], [`Criterion::benchmark_group`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It is a plain wall-clock harness, not a statistics engine: each benchmark
//! is warmed up, then timed in growing batches until a fixed time budget is
//! reached, and the mean time per iteration (plus iteration throughput) is
//! printed to stdout. That is enough for the relative comparisons the
//! workspace benches make (e.g. batched serving vs. a one-query-at-a-time
//! loop) while keeping `cargo bench` runnable offline.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement budget per benchmark after warm-up, at the default
/// `sample_size` of 100; the budget scales linearly with `sample_size`.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);

/// Warm-up budget per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// The top-level benchmark harness.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 100 }
    }
}

impl Criterion {
    /// Set the sample count. This harness has no per-sample statistics; the
    /// value scales the measurement time budget instead (`sample_size(10)`
    /// spends a tenth of the default budget), preserving criterion's
    /// "smaller sample size = faster bench" contract.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup { prefix: name, criterion: self }
    }

    /// Run a single benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count for this group (see [`Criterion::sample_size`]).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{name}", self.prefix);
        run_bench(&full, self.criterion.sample_size, f);
        self
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code to
/// measure.
#[derive(Debug, Default)]
pub struct Bencher {
    budget: Duration,
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `f`, discarding its output via [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: also provides a first cost estimate for batch sizing.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));

        // Size batches to roughly 1/20th of the budget each.
        let budget = if self.budget.is_zero() { MEASURE_BUDGET } else { self.budget };
        let batch = (budget.as_nanos() / 20 / per_iter.max(1)).clamp(1, 1 << 20) as u64;
        let mut iterations = 0u64;
        let started = Instant::now();
        while started.elapsed() < budget {
            for _ in 0..batch {
                black_box(f());
            }
            iterations += batch;
        }
        self.iterations = iterations;
        self.elapsed = started.elapsed();
    }

    /// Mean nanoseconds per iteration of the last [`Bencher::iter`] run.
    pub fn ns_per_iter(&self) -> f64 {
        if self.iterations == 0 {
            return 0.0;
        }
        self.elapsed.as_nanos() as f64 / self.iterations as f64
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // 100 samples (criterion's default) maps to the full budget.
    let mut b = Bencher {
        budget: MEASURE_BUDGET.mul_f64(sample_size as f64 / 100.0).max(Duration::from_millis(10)),
        ..Bencher::default()
    };
    f(&mut b);
    let ns = b.ns_per_iter();
    let throughput = if ns > 0.0 { 1e9 / ns } else { 0.0 };
    println!(
        "  {name:<42} {:>12.1} ns/iter {:>14.0} iter/s ({} iters)",
        ns, throughput, b.iterations
    );
}

/// Bundle benchmark functions into a named group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate a `main` that runs the given groups, mirroring criterion's macro
/// of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().sample_size(10);
        let mut ns = 0.0;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ns = b.ns_per_iter();
        });
        assert!(ns > 0.0);
    }

    #[test]
    fn groups_run_their_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group.bench_function("inner", |b| {
            b.iter(|| black_box(2 * 2));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
