//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace derives serde traits on its public types for downstream
//! compatibility but never drives an actual serde serializer (the checkpoint
//! codec in `duet_nn::serialize` is a hand-written binary format). In the
//! offline build environment these derives therefore expand to nothing; the
//! marker traits live in the sibling `serde` compat crate.

use proc_macro::TokenStream;

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; see the crate docs.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
