//! In-repo stand-in for the subset of `proptest` the workspace tests use:
//! the [`proptest!`] macro with `name in strategy` bindings, range and
//! [`collection::vec`] strategies, [`ProptestConfig::with_cases`], and the
//! `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Unlike the real crate there is no shrinking and no persisted failure
//! seeds: each test derives a deterministic RNG from its own name, draws
//! `cases` inputs, and runs the body as a plain assertion loop. Failures
//! therefore reproduce exactly on re-run, which is the property the
//! workspace relies on.

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random inputs to draw per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of random values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! numeric_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

pub mod collection {
    //! Collection strategies ([`vec()`]).

    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::Range;

    /// Allowed length range of a generated collection (half-open).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    /// Strategy generating `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// is drawn from `size` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic per-test RNG, derived from the test's name via FNV-1a.
pub fn test_rng(test_name: &str) -> SmallRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    SmallRng::seed_from_u64(hash)
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

    pub mod prop {
        //! Namespaced strategy constructors (`prop::collection::vec`).

        pub use crate::collection;
    }
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` drawing `cases` random inputs and running the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Assert a condition inside a property body (plain `assert!` here).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property body (plain `assert_eq!` here).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay inside their bounds.
        #[test]
        fn ranges_respect_bounds(a in 3i64..10, b in 0.0f64..1.0, c in 1usize..=4) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((0.0..1.0).contains(&b));
            prop_assert!((1..=4).contains(&c));
        }

        /// Nested vec strategies honour exact and ranged sizes.
        #[test]
        fn vec_sizes_are_respected(
            rows in prop::collection::vec(prop::collection::vec(0i64..5, 3), 1..6),
        ) {
            prop_assert!(!rows.is_empty() && rows.len() < 6);
            for row in &rows {
                prop_assert_eq!(row.len(), 3);
            }
        }
    }

    #[test]
    fn test_rng_is_deterministic_per_name() {
        use rand::Rng as _;
        let mut a = super::test_rng("x");
        let mut b = super::test_rng("x");
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        let mut c = super::test_rng("y");
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }
}
