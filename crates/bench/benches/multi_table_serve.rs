//! Multi-table serving benchmark: skewed client traffic over a shared
//! worker-shard pool, comparing routed throughput against per-table direct
//! loops, plus an **overload scenario** measuring shed rate under admission
//! control (tiny queues + deadline budgets) where the pre-router design
//! would have queued unboundedly.
//!
//! The summary at the end reports queries/second for both modes and the
//! shed/served split of the overload run.

use criterion::{criterion_group, criterion_main, Criterion};
use duet_core::{DuetConfig, DuetEstimator};
use duet_data::datasets::census_like;
use duet_query::{Query, WorkloadSpec};
use duet_serve::{DuetServer, RouterConfig, ServeConfig, ServeError};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const NUM_TABLES: usize = 4;
const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 48;

/// Deterministic per-client LCG so the skewed table choice needs no rand.
fn lcg_next(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

struct Setup {
    names: Vec<String>,
    estimators: Vec<Arc<DuetEstimator>>,
    workloads: Vec<Vec<Query>>,
    /// Per-client scripted (table, query) picks, ~70% on table 0.
    scripts: Vec<Vec<(usize, usize)>>,
}

fn setup() -> Setup {
    let cfg = DuetConfig::small().with_epochs(2);
    let mut names = Vec::new();
    let mut estimators = Vec::new();
    let mut workloads = Vec::new();
    for i in 0..NUM_TABLES {
        let table = census_like(1_500 + 500 * i, 7 + i as u64);
        estimators.push(Arc::new(DuetEstimator::train_data_only(&table, &cfg, 3 + i as u64)));
        workloads.push(WorkloadSpec::random(&table, 64, 100 + i as u64).generate(&table));
        names.push(format!("table-{i}"));
    }
    let scripts = (0..CLIENTS)
        .map(|client| {
            let mut state = 0x9e3779b97f4a7c15 ^ client as u64;
            (0..QUERIES_PER_CLIENT)
                .map(|_| {
                    let roll = lcg_next(&mut state) % 100;
                    let table = if roll < 70 { 0 } else { 1 + (lcg_next(&mut state) % 3) as usize };
                    let query = (lcg_next(&mut state) % 64) as usize;
                    (table, query)
                })
                .collect()
        })
        .collect();
    Setup { names, estimators, workloads, scripts }
}

/// Every client runs direct single-query passes against its picks.
fn run_direct_round(setup: &Setup) {
    std::thread::scope(|scope| {
        for script in &setup.scripts {
            let (estimators, workloads) = (&setup.estimators, &setup.workloads);
            scope.spawn(move || {
                for &(table, query) in script {
                    let q = &workloads[table][query];
                    black_box(estimators[table].estimate_batch(std::slice::from_ref(q)));
                }
            });
        }
    });
}

/// Every client goes through the routed, shared-pool server.
fn run_routed_round(server: &Arc<DuetServer>, setup: &Setup) {
    std::thread::scope(|scope| {
        for script in &setup.scripts {
            let server = server.clone();
            let (names, workloads) = (&setup.names, &setup.workloads);
            scope.spawn(move || {
                for &(table, query) in script {
                    let q = &workloads[table][query];
                    black_box(server.estimate(&names[table], q).expect("serving failed"));
                }
            });
        }
    });
}

/// Overload run: tiny queues + deadline budgets; count the shed/served
/// split instead of unwrap-ing.
fn run_overload_round(server: &Arc<DuetServer>, setup: &Setup, counters: &OverloadCounters) {
    std::thread::scope(|scope| {
        for script in &setup.scripts {
            let server = server.clone();
            let (names, workloads) = (&setup.names, &setup.workloads);
            scope.spawn(move || {
                for &(table, query) in script {
                    let q = &workloads[table][query];
                    match server.estimate(&names[table], q) {
                        Ok(v) => {
                            black_box(v);
                            counters.served.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::Overloaded { .. }) => {
                            counters.shed_overload.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ServeError::DeadlineExceeded(_)) => {
                            counters.shed_deadline.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected serving error: {e}"),
                    }
                }
            });
        }
    });
}

#[derive(Default)]
struct OverloadCounters {
    served: AtomicU64,
    shed_overload: AtomicU64,
    shed_deadline: AtomicU64,
}

fn bench_multi_table(c: &mut Criterion) {
    let setup = setup();

    let routed = Arc::new(DuetServer::new(ServeConfig {
        cache_capacity: 0, // measure inference routing, not cache hits
        ..ServeConfig::default()
    }));
    for (name, est) in setup.names.iter().zip(&setup.estimators) {
        routed.register(name.clone(), (**est).clone());
    }

    let mut group = c.benchmark_group("multi_table_serve");
    group
        .bench_function("direct_loops_8_clients_4_tables", |b| b.iter(|| run_direct_round(&setup)));
    group.bench_function("routed_shared_pool_8_clients_4_tables", |b| {
        b.iter(|| run_routed_round(&routed, &setup))
    });
    group.finish();

    // Fixed-round throughput comparison.
    const ROUNDS: usize = 5;
    let total = (ROUNDS * CLIENTS * QUERIES_PER_CLIENT) as f64;

    let started = Instant::now();
    for _ in 0..ROUNDS {
        run_direct_round(&setup);
    }
    let direct_qps = total / started.elapsed().as_secs_f64();

    let started = Instant::now();
    for _ in 0..ROUNDS {
        run_routed_round(&routed, &setup);
    }
    let routed_qps = total / started.elapsed().as_secs_f64();
    let routed_metrics = routed.metrics();

    // Overload scenario: shard queues bounded at 2 with a 200µs deadline
    // budget; ~70% of traffic slams table 0's shard.
    let overloaded = Arc::new(DuetServer::new(ServeConfig {
        router: RouterConfig {
            queue_capacity: 2,
            default_deadline: Some(Duration::from_micros(200)),
            ..RouterConfig::default()
        },
        cache_capacity: 0,
        ..ServeConfig::default()
    }));
    for (name, est) in setup.names.iter().zip(&setup.estimators) {
        overloaded.register(name.clone(), (**est).clone());
    }
    let counters = OverloadCounters::default();
    let started = Instant::now();
    for _ in 0..ROUNDS {
        run_overload_round(&overloaded, &setup, &counters);
    }
    let overload_elapsed = started.elapsed().as_secs_f64();
    let (served, shed_o, shed_d) = (
        counters.served.load(Ordering::Relaxed),
        counters.shed_overload.load(Ordering::Relaxed),
        counters.shed_deadline.load(Ordering::Relaxed),
    );

    println!("\ndirect per-table loops        : {direct_qps:>10.0} queries/s");
    println!("routed shared pool            : {routed_qps:>10.0} queries/s");
    println!(
        "routing ratio {:.2}x; {} batches, mean batch {:.2}, {} shards for {} tables",
        routed_qps / direct_qps,
        routed_metrics.batches,
        routed_metrics.mean_batch_size,
        routed.router().num_shards(),
        NUM_TABLES,
    );
    println!(
        "overload run (queue=2, 200us budget): {} served, {} shed at admission, \
         {} expired at dequeue ({:.1}% shed) in {:.2}s",
        served,
        shed_o,
        shed_d,
        100.0 * (shed_o + shed_d) as f64 / (served + shed_o + shed_d).max(1) as f64,
        overload_elapsed,
    );
    assert_eq!(served + shed_o + shed_d, total as u64, "every request accounted exactly once");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_multi_table
}
criterion_main!(benches);
