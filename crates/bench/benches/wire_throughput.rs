//! Wire-throughput benchmark: 8 pipelined TCP clients over loopback against
//! the same server driven by 8 in-process threads.
//!
//! * `inprocess_router_8_clients` — the PR-baseline: every client thread
//!   calls `DuetServer::estimate` directly (one blocking call per query).
//! * `wire_loopback_8_clients` — every client is a real `WireClient` on a
//!   loopback TCP connection, pipelining its whole query slice in one write
//!   burst and draining the out-of-order responses.
//!
//! Both modes go through the same shard queues and micro-batchers, so the
//! difference is the wire layer itself: framing, socket hops, and the
//! acceptor poll loop. The acceptance bar is wire throughput within 2× of
//! the in-process path; pipelining typically makes it comparable or better,
//! because a full slice of requests is available for batching at once
//! instead of one call per client at a time.

use criterion::{criterion_group, criterion_main, BenchMeta, Criterion};
use duet_core::{query_to_id_predicates, DuetConfig, DuetEstimator, IdPredicate};
use duet_data::datasets::census_like;
use duet_query::WorkloadSpec;
use duet_serve::wire::{Status, WireClient};
use duet_serve::{DuetServer, ServeConfig, WireConfig};
use std::hint::black_box;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 64;

type Encoded = (Vec<Vec<IdPredicate>>, Vec<(u32, u32)>);

fn run_inprocess_round(server: &Arc<DuetServer>, queries: &[duet_query::Query]) {
    std::thread::scope(|scope| {
        for chunk in queries.chunks(QUERIES_PER_CLIENT) {
            let server = server.clone();
            scope.spawn(move || {
                for q in chunk {
                    black_box(server.estimate("census", q).expect("serving failed"));
                }
            });
        }
    });
}

fn run_wire_round(addr: SocketAddr, table_id: u32, encoded: &[Encoded]) {
    std::thread::scope(|scope| {
        for chunk in encoded.chunks(QUERIES_PER_CLIENT) {
            scope.spawn(move || {
                let mut client = WireClient::connect(addr).expect("loopback connect");
                // Pipeline the whole slice in one burst, then drain.
                for (i, (preds, intervals)) in chunk.iter().enumerate() {
                    client.submit_request(i as u64, table_id, 0, preds, intervals);
                }
                client.flush().expect("flush");
                for _ in chunk {
                    let response = client.recv().expect("response");
                    assert_eq!(response.status, Status::Ok);
                    black_box(response.value);
                }
            });
        }
    });
}

fn bench_wire(c: &mut Criterion) {
    let table = census_like(4_000, 7);
    let cfg = DuetConfig::small().with_epochs(2);
    let estimator = DuetEstimator::train_data_only(&table, &cfg, 3);
    let queries = WorkloadSpec::random(&table, CLIENTS * QUERIES_PER_CLIENT, 1234).generate(&table);
    let encoded: Vec<Encoded> = queries
        .iter()
        .map(|q| {
            (query_to_id_predicates(estimator.schema(), q), q.column_intervals(estimator.schema()))
        })
        .collect();

    let server = Arc::new(DuetServer::new(ServeConfig {
        cache_capacity: 0, // measure the transport + inference path, not cache hits
        ..ServeConfig::default()
    }));
    server.register("census", estimator);
    let handle = server.serve_wire("127.0.0.1:0", WireConfig::default()).expect("bind loopback");
    let addr = handle.addr();
    let table_id = WireClient::connect(addr)
        .expect("connect")
        .resolve("census")
        .expect("resolve")
        .expect("census registered")
        .id;

    let mut group = c.benchmark_group("wire_throughput");
    group.bench_function_meta(
        "inprocess_router_8_clients",
        BenchMeta { batch_size: Some(QUERIES_PER_CLIENT), mode: Some("inprocess") },
        |b| b.iter(|| run_inprocess_round(&server, &queries)),
    );
    group.bench_function_meta(
        "wire_loopback_8_clients",
        BenchMeta { batch_size: Some(QUERIES_PER_CLIENT), mode: Some("wire") },
        |b| b.iter(|| run_wire_round(addr, table_id, &encoded)),
    );
    group.finish();

    // Direct queries/second comparison over a fixed number of rounds.
    const ROUNDS: usize = 5;
    let total = (ROUNDS * queries.len()) as f64;

    let started = Instant::now();
    for _ in 0..ROUNDS {
        run_inprocess_round(&server, &queries);
    }
    let inprocess_qps = total / started.elapsed().as_secs_f64();

    let started = Instant::now();
    for _ in 0..ROUNDS {
        run_wire_round(addr, table_id, &encoded);
    }
    let wire_qps = total / started.elapsed().as_secs_f64();

    let m = server.metrics();
    println!("\nin-process router (8 threads)   : {inprocess_qps:>10.0} queries/s");
    println!("wire loopback (8 pipelined conns): {wire_qps:>10.0} queries/s");
    println!(
        "wire/in-process ratio {:.2}; server saw {} frames in, {} frames out, {} decode errors",
        wire_qps / inprocess_qps,
        m.frames_in,
        m.frames_out,
        m.wire_decode_errors
    );
    drop(handle);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_wire
}
criterion_main!(benches);
