//! Criterion micro-benchmarks for the training path: one epoch of Duet's
//! data-driven training vs Naru's (Table III context), plus **step-level**
//! benches isolating the training forward — the old allocating
//! `Layer::forward` + allocating grouped cross-entropy pipeline against the
//! scratch-based `data_forward`/`query_forward` passes (activation
//! checkpointing, in-place masked-weight memo, flat gradient/probability
//! staging) — and, since PR 7, the **full training step**
//! (forward + backward + Adam): the old allocating `Layer::backward` chain
//! against the gradient-ping-pong scratch backward with the fused sparse
//! first layer.

use criterion::{criterion_group, criterion_main, BenchMeta, Criterion};
use duet_baselines::{NaruConfig, NaruEstimator};
use duet_core::{
    data_forward, query_forward, sample_virtual_batch, train_model, train_step, DuetConfig,
    DuetModel, ModelParams, PreparedQuery, SamplerConfig, TrainStepScratch, VirtualTuple,
};
use duet_data::datasets::census_like;
use duet_nn::{grouped_cross_entropy, seeded_rng, Adam, Layer};
use duet_query::{exact_cardinality, WorkloadSpec};
use std::hint::black_box;

fn bench_training(c: &mut Criterion) {
    let table = census_like(2_048, 7);

    let mut group = c.benchmark_group("one_epoch_training");
    group.sample_size(10);
    group.bench_function_meta(
        "duet_data_driven",
        BenchMeta { batch_size: Some(256), mode: None },
        |b| {
            let cfg = DuetConfig::small().with_epochs(1).with_batch_size(256);
            b.iter(|| black_box(train_model(&table, &cfg, None, 3, |_| {})))
        },
    );
    group.bench_function_meta("naru_mle", BenchMeta { batch_size: Some(256), mode: None }, |b| {
        let mut cfg = NaruConfig::small().with_epochs(1);
        cfg.batch_size = 256;
        b.iter(|| black_box(NaruEstimator::train(&table, &cfg, 3)))
    });
    group.finish();
}

fn bench_train_step(c: &mut Criterion) {
    let table = census_like(2_048, 7);
    let cfg = DuetConfig::small();
    let mut model = DuetModel::new(&table, &cfg, 11);
    let mut rng = seeded_rng(17);
    let sampler = SamplerConfig {
        expand_mu: cfg.expand_mu,
        wildcard_prob: cfg.wildcard_prob,
        max_predicates_per_column: cfg.max_predicates_per_column,
    };
    // One fixed batch matching the trainer's shape: 128 anchors x mu=2.
    let anchors: Vec<usize> = (0..128).collect();
    let batch: Vec<VirtualTuple> = sample_virtual_batch(&table, &anchors, &sampler, &mut rng);
    let queries = WorkloadSpec::random(&table, 32, 5).generate(&table);
    let prepared: Vec<PreparedQuery> = queries
        .iter()
        .map(|q| PreparedQuery::prepare(&table, q, exact_cardinality(&table, q)))
        .collect();
    let num_rows = table.num_rows() as f64;
    let tuples = batch.len();

    let mut group = c.benchmark_group("train_step");
    group.sample_size(40);

    // The pre-PR-5 shape of the data forward: per-batch row/label
    // re-gathering, the allocating `Layer::forward` (fresh effective
    // weights and activations per stage), and the allocating grouped
    // cross-entropy.
    let mut ws = duet_core::DuetWorkspace::new();
    group.bench_function_meta(
        "data_forward_alloc",
        BenchMeta { batch_size: Some(tuples), mode: Some("alloc") },
        |b| {
            b.iter(|| {
                model.zero_grad();
                let rows: Vec<&Vec<Vec<duet_core::IdPredicate>>> =
                    batch.iter().map(|vt| &vt.predicates).collect();
                model.fill_input(&rows, &mut ws);
                let labels: Vec<Vec<usize>> = batch.iter().map(|vt| vt.labels.clone()).collect();
                let blocks = model.output_sizes();
                let logits = model.made_mut().forward(ws.input());
                let (loss, grad) = grouped_cross_entropy(&logits, &blocks, &labels);
                black_box((loss, grad.rows()))
            })
        },
    );

    let mut scratch = TrainStepScratch::new();
    group.bench_function_meta(
        "data_forward_scratch",
        BenchMeta { batch_size: Some(tuples), mode: Some("scratch") },
        |b| {
            b.iter(|| {
                model.zero_grad();
                let loss = data_forward(&mut model, &batch, &mut scratch);
                black_box((loss, scratch.grad_logits().rows()))
            })
        },
    );

    group.bench_function_meta(
        "query_forward_scratch",
        BenchMeta { batch_size: Some(prepared.len()), mode: Some("scratch") },
        |b| {
            b.iter(|| {
                model.zero_grad();
                black_box(query_forward(&mut model, &prepared, num_rows, 0.1, &mut scratch))
            })
        },
    );

    // Full data-driven step, pre-PR-7 shape: the allocating forward above
    // followed by the allocating `Layer::backward` chain (a fresh gradient
    // matrix per stage) and the Adam update.
    let mut adam_alloc = Adam::new(1e-4);
    group.bench_function_meta(
        "full_step_alloc",
        BenchMeta { batch_size: Some(tuples), mode: Some("alloc") },
        |b| {
            b.iter(|| {
                model.zero_grad();
                let rows: Vec<&Vec<Vec<duet_core::IdPredicate>>> =
                    batch.iter().map(|vt| &vt.predicates).collect();
                model.fill_input(&rows, &mut ws);
                let labels: Vec<Vec<usize>> = batch.iter().map(|vt| vt.labels.clone()).collect();
                let blocks = model.output_sizes();
                let logits = model.made_mut().forward(ws.input());
                let (loss, grad) = grouped_cross_entropy(&logits, &blocks, &labels);
                let grad_in = model.made_mut().backward(&grad);
                adam_alloc.step(&mut ModelParams(&mut model));
                black_box((loss, grad_in.rows()))
            })
        },
    );

    // Same full step through `train_step`: fused sparse first layer,
    // gradient ping-pong through scratch, zero allocations after warm-up.
    let mut adam_scratch = Adam::new(1e-4);
    group.bench_function_meta(
        "full_step_scratch",
        BenchMeta { batch_size: Some(tuples), mode: Some("scratch") },
        |b| {
            b.iter(|| {
                let empty: &[PreparedQuery] = &[];
                black_box(train_step(
                    &mut model,
                    &mut adam_scratch,
                    &batch,
                    empty,
                    num_rows,
                    0.1,
                    &mut scratch,
                ))
            })
        },
    );

    // The hybrid step (Algorithm 2): data pass + supervised Q-Error pass,
    // both backwards, one Adam update.
    let mut adam_hybrid = Adam::new(1e-4);
    group.bench_function_meta(
        "full_step_hybrid_scratch",
        BenchMeta { batch_size: Some(tuples), mode: Some("scratch") },
        |b| {
            b.iter(|| {
                black_box(train_step(
                    &mut model,
                    &mut adam_hybrid,
                    &batch,
                    &prepared,
                    num_rows,
                    0.1,
                    &mut scratch,
                ))
            })
        },
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_training, bench_train_step
}
criterion_main!(benches);
