//! Criterion micro-benchmark: one epoch of Duet's data-driven training vs
//! Naru's, isolating the overhead of virtual-table sampling and predicate
//! encoding (Table III context).

use criterion::{criterion_group, criterion_main, Criterion};
use duet_baselines::{NaruConfig, NaruEstimator};
use duet_core::{train_model, DuetConfig};
use duet_data::datasets::census_like;
use std::hint::black_box;

fn bench_training(c: &mut Criterion) {
    let table = census_like(2_048, 7);

    let mut group = c.benchmark_group("one_epoch_training");
    group.sample_size(10);
    group.bench_function("duet_data_driven", |b| {
        let cfg = DuetConfig::small().with_epochs(1).with_batch_size(256);
        b.iter(|| black_box(train_model(&table, &cfg, None, 3, |_| {})))
    });
    group.bench_function("naru_mle", |b| {
        let mut cfg = NaruConfig::small().with_epochs(1);
        cfg.batch_size = 256;
        b.iter(|| black_box(NaruEstimator::train(&table, &cfg, 3)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_training
}
criterion_main!(benches);
