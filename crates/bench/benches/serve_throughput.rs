//! Serving-throughput benchmark: 8 concurrent client threads over a trained
//! census-like model, comparing
//!
//! * `naive_loop` — every client runs one single-query forward pass per call
//!   (the offline experiment-harness pattern), and
//! * `batched_serving` — every client calls a `DuetServer`, whose
//!   micro-batcher coalesces concurrent requests into one `N×W` forward
//!   pass (result cache disabled so raw inference throughput is measured).
//!
//! One benchmark iteration = every client serving its whole query slice, so
//! the reported times are directly comparable; a summary line at the end
//! prints queries/second for both modes.

use criterion::{criterion_group, criterion_main, Criterion};
use duet_core::{DuetConfig, DuetEstimator, DuetWorkspace};
use duet_data::datasets::census_like;
use duet_query::{Query, WorkloadSpec};
use duet_serve::{DuetServer, ServeConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const CLIENTS: usize = 8;
const QUERIES_PER_CLIENT: usize = 64;

fn run_naive_round(estimator: &Arc<DuetEstimator>, queries: &[Query]) {
    std::thread::scope(|scope| {
        for chunk in queries.chunks(QUERIES_PER_CLIENT) {
            let estimator = estimator.clone();
            scope.spawn(move || {
                for q in chunk {
                    // One forward pass per query: the unbatched serving path.
                    black_box(estimator.estimate_batch(std::slice::from_ref(q)));
                }
            });
        }
    });
}

fn run_workspace_round(estimator: &Arc<DuetEstimator>, queries: &[Query]) {
    std::thread::scope(|scope| {
        for chunk in queries.chunks(QUERIES_PER_CLIENT) {
            let estimator = estimator.clone();
            scope.spawn(move || {
                // One forward pass per query, but every pass reuses this
                // client's workspace — isolates the allocation savings from
                // the batching savings.
                let mut ws = DuetWorkspace::new();
                let mut out = Vec::new();
                for q in chunk {
                    estimator.estimate_batch_with(std::slice::from_ref(q), &mut ws, &mut out);
                    black_box(out.last().copied());
                }
            });
        }
    });
}

fn run_served_round(server: &Arc<DuetServer>, queries: &[Query]) {
    std::thread::scope(|scope| {
        for chunk in queries.chunks(QUERIES_PER_CLIENT) {
            let server = server.clone();
            scope.spawn(move || {
                for q in chunk {
                    black_box(server.estimate("census", q).expect("serving failed"));
                }
            });
        }
    });
}

fn bench_serving(c: &mut Criterion) {
    let table = census_like(4_000, 7);
    let cfg = DuetConfig::small().with_epochs(2);
    let estimator = Arc::new(DuetEstimator::train_data_only(&table, &cfg, 3));
    let queries = WorkloadSpec::random(&table, CLIENTS * QUERIES_PER_CLIENT, 1234).generate(&table);

    let server = Arc::new(DuetServer::new(ServeConfig {
        cache_capacity: 0, // measure inference throughput, not cache hits
        ..ServeConfig::default()
    }));
    server.register("census", (*estimator).clone());

    let mut group = c.benchmark_group("serve_throughput");
    group.bench_function("naive_loop_8_clients", |b| {
        b.iter(|| run_naive_round(&estimator, &queries))
    });
    group.bench_function("workspace_loop_8_clients", |b| {
        b.iter(|| run_workspace_round(&estimator, &queries))
    });
    group.bench_function("batched_serving_8_clients", |b| {
        b.iter(|| run_served_round(&server, &queries))
    });
    group.finish();

    // Direct queries/second comparison over a fixed number of rounds.
    const ROUNDS: usize = 5;
    let total = (ROUNDS * queries.len()) as f64;

    let started = Instant::now();
    for _ in 0..ROUNDS {
        run_naive_round(&estimator, &queries);
    }
    let naive_qps = total / started.elapsed().as_secs_f64();

    let started = Instant::now();
    for _ in 0..ROUNDS {
        run_workspace_round(&estimator, &queries);
    }
    let workspace_qps = total / started.elapsed().as_secs_f64();

    let started = Instant::now();
    for _ in 0..ROUNDS {
        run_served_round(&server, &queries);
    }
    let served_qps = total / started.elapsed().as_secs_f64();

    let m = server.metrics();
    println!("\nnaive one-query-per-call loop : {naive_qps:>10.0} queries/s");
    println!("workspace-reuse query loop    : {workspace_qps:>10.0} queries/s");
    println!("micro-batched DuetServer      : {served_qps:>10.0} queries/s");
    println!(
        "speedup {:.2}x; server saw {} batches, mean batch size {:.2}",
        served_qps / naive_qps,
        m.batches,
        m.mean_batch_size
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_serving
}
criterion_main!(benches);
