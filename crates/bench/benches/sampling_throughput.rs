//! Criterion micro-benchmark: throughput of the virtual-table sampler
//! (Algorithm 1), the extra per-batch cost Duet pays during training compared
//! to Naru's plain tuple batches (Table III context).

use criterion::{criterion_group, criterion_main, Criterion};
use duet_core::{sample_virtual_batch, SamplerConfig};
use duet_data::datasets::{census_like, kddcup98_like};
use duet_nn::seeded_rng;
use std::hint::black_box;

fn bench_sampler(c: &mut Criterion) {
    let census = census_like(4_000, 7);
    let kddcup = kddcup98_like(2_000, 7);
    let rows: Vec<usize> = (0..512).collect();
    let cfg = SamplerConfig { expand_mu: 4, wildcard_prob: 0.3, max_predicates_per_column: 1 };

    let mut group = c.benchmark_group("virtual_table_sampling");
    group.bench_function("census_14_cols_batch512_mu4", |b| {
        let mut rng = seeded_rng(1);
        b.iter(|| black_box(sample_virtual_batch(&census, &rows, &cfg, &mut rng)))
    });
    group.bench_function("kddcup_100_cols_batch512_mu4", |b| {
        let mut rng = seeded_rng(2);
        b.iter(|| black_box(sample_virtual_batch(&kddcup, &rows, &cfg, &mut rng)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sampler
}
criterion_main!(benches);
