//! Criterion micro-benchmark: per-column MPSN embedding vs the merged
//! block-diagonal MPSN (the "Parallel Acceleration for MLP MPSN" of §IV-F),
//! on a 100-column table.

use criterion::{criterion_group, criterion_main, Criterion};
use duet_core::{build_mpsns, MergedMlpMpsn, MpsnKind};
use std::hint::black_box;

fn bench_mpsn(c: &mut Criterion) {
    // 100 columns, each with an 11-wide block (6 value bits + 5 op bits).
    let widths = vec![11usize; 100];
    let mpsns = build_mpsns(MpsnKind::Mlp, &widths, 64, 7);
    let merged = MergedMlpMpsn::from_columns(&mpsns);
    // One predicate on every other column, wildcard elsewhere.
    let preds_per_col: Vec<Vec<Vec<f32>>> = (0..100)
        .map(|c| {
            if c % 2 == 0 {
                vec![(0..11).map(|i| ((i + c) as f32 * 0.1).sin()).collect()]
            } else {
                Vec::new()
            }
        })
        .collect();

    let mut group = c.benchmark_group("mpsn_forward_100_columns");
    group.bench_function("per_column_mpsns", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(100 * 11);
            for (m, preds) in mpsns.iter().zip(&preds_per_col) {
                out.extend(m.embed(preds));
            }
            black_box(out)
        })
    });
    group.bench_function("merged_block_diagonal", |b| {
        b.iter(|| black_box(merged.embed_all(&preds_per_col)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_mpsn
}
criterion_main!(benches);
