//! Criterion micro-benchmark: single-query estimation latency of Duet vs the
//! sampling-based and traditional estimators (the latency claim behind
//! Figure 7 and the O(1)-vs-O(n) analysis of §IV-E).

use criterion::{criterion_group, criterion_main, Criterion};
use duet_baselines::{IndependenceEstimator, MHist, NaruConfig, NaruEstimator};
use duet_core::{DuetConfig, DuetEstimator};
use duet_data::datasets::census_like;
use duet_query::{CardinalityEstimator, WorkloadSpec};
use std::hint::black_box;

fn bench_estimation(c: &mut Criterion) {
    let table = census_like(4_000, 7);
    let queries = WorkloadSpec::random(&table, 64, 1234).generate(&table);

    let duet_cfg = DuetConfig::small().with_epochs(2);
    let mut duet = DuetEstimator::train_data_only(&table, &duet_cfg, 3);
    let naru_cfg = NaruConfig::small().with_epochs(2).with_samples(200);
    let mut naru = NaruEstimator::train(&table, &naru_cfg, 3);
    let mut indep = IndependenceEstimator::new(&table);
    let mut mhist = MHist::new(&table, 256);

    let mut group = c.benchmark_group("estimation_latency");
    let mut idx = 0usize;
    group.bench_function("duet_single_query", |b| {
        b.iter(|| {
            let q = &queries[idx % queries.len()];
            idx += 1;
            black_box(duet.estimate(q))
        })
    });
    group.bench_function("naru_progressive_sampling", |b| {
        b.iter(|| {
            let q = &queries[idx % queries.len()];
            idx += 1;
            black_box(naru.estimate(q))
        })
    });
    group.bench_function("independence", |b| {
        b.iter(|| {
            let q = &queries[idx % queries.len()];
            idx += 1;
            black_box(indep.estimate(q))
        })
    });
    group.bench_function("mhist", |b| {
        b.iter(|| {
            let q = &queries[idx % queries.len()];
            idx += 1;
            black_box(mhist.estimate(q))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_estimation
}
criterion_main!(benches);
