//! Criterion micro-benchmark: single-query estimation latency of Duet vs the
//! sampling-based and traditional estimators (the latency claim behind
//! Figure 7 and the O(1)-vs-O(n) analysis of §IV-E), plus the batched
//! inference path with and without a reused [`DuetWorkspace`] — the
//! before/after comparison for the zero-allocation refactor (a summary line
//! with the measured speedup is printed at the end).

use criterion::{criterion_group, criterion_main, BenchMeta, Criterion};
use duet_baselines::{IndependenceEstimator, MHist, NaruConfig, NaruEstimator};
use duet_core::{query_to_id_predicates, DuetConfig, DuetEstimator, DuetWorkspace, SoftmaxMode};
use duet_data::datasets::census_like;
use duet_query::{CardinalityEstimator, WorkloadSpec};
use std::hint::black_box;
use std::time::Instant;

/// Batch size of the batched-inference comparison (a typical micro-batch the
/// serving layer forms under load).
const BATCH: usize = 32;

fn bench_estimation(c: &mut Criterion) {
    let table = census_like(4_000, 7);
    let queries = WorkloadSpec::random(&table, 64, 1234).generate(&table);

    let duet_cfg = DuetConfig::small().with_epochs(2);
    let mut duet = DuetEstimator::train_data_only(&table, &duet_cfg, 3);
    let naru_cfg = NaruConfig::small().with_epochs(2).with_samples(200);
    let mut naru = NaruEstimator::train(&table, &naru_cfg, 3);
    let mut indep = IndependenceEstimator::new(&table);
    let mut mhist = MHist::new(&table, 256);

    let mut group = c.benchmark_group("estimation_latency");
    let mut idx = 0usize;
    group.bench_function("duet_single_query", |b| {
        b.iter(|| {
            let q = &queries[idx % queries.len()];
            idx += 1;
            black_box(duet.estimate(q))
        })
    });
    group.bench_function("naru_progressive_sampling", |b| {
        b.iter(|| {
            let q = &queries[idx % queries.len()];
            idx += 1;
            black_box(naru.estimate(q))
        })
    });
    group.bench_function("independence", |b| {
        b.iter(|| {
            let q = &queries[idx % queries.len()];
            idx += 1;
            black_box(indep.estimate(q))
        })
    });
    group.bench_function("mhist", |b| {
        b.iter(|| {
            let q = &queries[idx % queries.len()];
            idx += 1;
            black_box(mhist.estimate(q))
        })
    });

    // Batched inference: the pre-encoded hot path the serving layer runs,
    // once through the allocating API and once through a reused workspace.
    let batch_queries = &queries[..BATCH];
    let rows: Vec<_> =
        batch_queries.iter().map(|q| query_to_id_predicates(duet.schema(), q)).collect();
    let intervals: Vec<_> =
        batch_queries.iter().map(|q| q.column_intervals(duet.schema())).collect();
    group.bench_function_meta(
        "duet_batch32_alloc",
        BenchMeta { batch_size: Some(BATCH), mode: Some("fast") },
        |b| b.iter(|| black_box(duet.estimate_encoded_batch(&rows, &intervals))),
    );
    let mut ws = DuetWorkspace::new();
    let mut out = Vec::new();
    group.bench_function_meta(
        "duet_batch32_workspace",
        BenchMeta { batch_size: Some(BATCH), mode: Some("fast") },
        |b| {
            b.iter(|| {
                duet.estimate_encoded_batch_with(&rows, &intervals, &mut ws, &mut out);
                black_box(out.last().copied())
            })
        },
    );
    // The same batch through the exact (libm) softmax: the before/after of
    // the fast transcendental layer, isolated from everything else.
    let mut ws_exact = DuetWorkspace::new();
    ws_exact.softmax_mode = SoftmaxMode::Exact;
    group.bench_function_meta(
        "duet_batch32_workspace_exact",
        BenchMeta { batch_size: Some(BATCH), mode: Some("exact") },
        |b| {
            b.iter(|| {
                duet.estimate_encoded_batch_with(&rows, &intervals, &mut ws_exact, &mut out);
                black_box(out.last().copied())
            })
        },
    );

    // Large batch: deep enough into the blocked/packed kernels that
    // per-batch fixed costs vanish; per-query throughput headroom of the
    // batched path (see docs/PERFORMANCE.md).
    let big = &queries[..64];
    let big_rows: Vec<_> = big.iter().map(|q| query_to_id_predicates(duet.schema(), q)).collect();
    let big_intervals: Vec<_> = big.iter().map(|q| q.column_intervals(duet.schema())).collect();
    group.bench_function_meta(
        "duet_batch64_workspace",
        BenchMeta { batch_size: Some(64), mode: Some("fast") },
        |b| {
            b.iter(|| {
                duet.estimate_encoded_batch_with(&big_rows, &big_intervals, &mut ws, &mut out);
                black_box(out.last().copied())
            })
        },
    );
    group.finish();

    // Direct before/after numbers for the zero-allocation refactor.
    const ROUNDS: usize = 400;
    let started = Instant::now();
    for _ in 0..ROUNDS {
        black_box(duet.estimate_encoded_batch(&rows, &intervals));
    }
    let alloc_per_batch = started.elapsed() / ROUNDS as u32;
    let started = Instant::now();
    for _ in 0..ROUNDS {
        duet.estimate_encoded_batch_with(&rows, &intervals, &mut ws, &mut out);
        black_box(out.last().copied());
    }
    let ws_per_batch = started.elapsed() / ROUNDS as u32;
    println!(
        "\nbatched inference (batch={BATCH}): allocating {alloc_per_batch:?}/batch, \
         workspace {ws_per_batch:?}/batch, speedup {:.2}x",
        alloc_per_batch.as_secs_f64() / ws_per_batch.as_secs_f64()
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_estimation
}
criterion_main!(benches);
