//! Criterion micro-benchmark: the compressed f16 warm tier vs the bit-exact
//! f32 tier on the batched serving hot path ([`DuetWorkspace::weight_mode`]).
//! The tier's admission gate is "no slower than f32 at batch 32 with mean
//! q-error drift under 0.1%" — this bench backs the first half of that gate
//! (the accuracy half lives in `tests/half_tier.rs`), and a summary line
//! reports the measured ratio.

use criterion::{criterion_group, criterion_main, BenchMeta, Criterion};
use duet_core::{query_to_id_predicates, DuetConfig, DuetEstimator, DuetWorkspace, WeightMode};
use duet_data::datasets::census_like;
use duet_query::WorkloadSpec;
use std::hint::black_box;
use std::time::Instant;

/// The serving layer's typical micro-batch, and the batch the tier gate is
/// defined at.
const BATCH: usize = 32;

fn bench_f16_tier(c: &mut Criterion) {
    let table = census_like(4_000, 7);
    let queries = WorkloadSpec::random(&table, BATCH, 1234).generate(&table);
    let cfg = DuetConfig::small().with_epochs(2);
    let duet = DuetEstimator::train_data_only(&table, &cfg, 3);
    let rows: Vec<_> = queries.iter().map(|q| query_to_id_predicates(duet.schema(), q)).collect();
    let intervals: Vec<_> = queries.iter().map(|q| q.column_intervals(duet.schema())).collect();

    let mut group = c.benchmark_group("f16_tier");
    let mut ws_full = DuetWorkspace::new();
    let mut out = Vec::new();
    group.bench_function_meta(
        "estimate_batch32_full",
        BenchMeta { batch_size: Some(BATCH), mode: Some("full") },
        |b| {
            b.iter(|| {
                duet.estimate_encoded_batch_with(&rows, &intervals, &mut ws_full, &mut out);
                black_box(out.last().copied())
            })
        },
    );
    let mut ws_half = DuetWorkspace::new();
    ws_half.weight_mode = WeightMode::Half;
    group.bench_function_meta(
        "estimate_batch32_half",
        BenchMeta { batch_size: Some(BATCH), mode: Some("half") },
        |b| {
            b.iter(|| {
                duet.estimate_encoded_batch_with(&rows, &intervals, &mut ws_half, &mut out);
                black_box(out.last().copied())
            })
        },
    );
    group.finish();

    // Headline ratio for the gate: re-time both modes back to back on the
    // same warmed workspaces and report half's speed relative to full.
    let time = |ws: &mut DuetWorkspace, out: &mut Vec<f64>| {
        let reps = 200;
        let start = Instant::now();
        for _ in 0..reps {
            duet.estimate_encoded_batch_with(&rows, &intervals, ws, out);
            black_box(out.last().copied());
        }
        start.elapsed().as_secs_f64() / reps as f64
    };
    let full = time(&mut ws_full, &mut out);
    let half = time(&mut ws_half, &mut out);
    println!(
        "f16 warm tier @ batch {BATCH}: full {:.1}us, half {:.1}us ({:.2}x)",
        full * 1e6,
        half * 1e6,
        full / half
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_f16_tier
}
criterion_main!(benches);
