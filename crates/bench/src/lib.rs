//! # duet-bench
//!
//! Shared harness code for the experiment binaries under `src/bin/`, each of
//! which regenerates one table or figure of the paper's evaluation section
//! (see `DESIGN.md` for the experiment index and `EXPERIMENTS.md` for the
//! recorded results).
//!
//! All binaries accept the same flags:
//!
//! * `--scale <f>` — multiply the default (CI-sized) row counts by `f`
//!   (`--scale 1` ≈ minutes on a laptop CPU; the paper's full row counts are
//!   reached around `--scale 100` for DMV).
//! * `--epochs <n>` — override the number of training epochs.
//! * `--queries <n>` — number of test queries per workload (paper: 2,000).
//! * `--train-queries <n>` — number of training-workload queries (paper: 1e5).
//! * `--out <dir>` — directory for the CSV output (default `results/`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use duet_baselines::{
    DeepDbConfig, DeepDbEstimator, IndependenceEstimator, MHist, MscnConfig, MscnEstimator,
    NaruConfig, NaruEstimator, SamplingEstimator, UaeConfig, UaeEstimator,
};
use duet_core::{DuetConfig, DuetEstimator};
use duet_data::datasets;
use duet_data::Table;
use duet_query::{label_workload, CardinalityEstimator, QErrorSummary, Query, WorkloadSpec};
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Seed of the training / in-workload generator (paper §V-A2).
pub const TRAIN_SEED: u64 = 42;
/// Seed of the random test workload (paper §V-A2).
pub const RAND_SEED: u64 = 1234;

/// Common command-line options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Row-count multiplier on top of the CI-sized defaults.
    pub scale: f64,
    /// Training epochs for the learned estimators.
    pub epochs: usize,
    /// Number of test queries per workload.
    pub test_queries: usize,
    /// Number of training-workload queries.
    pub train_queries: usize,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
}

impl Default for BenchOptions {
    fn default() -> Self {
        Self {
            scale: 1.0,
            epochs: 5,
            test_queries: 200,
            train_queries: 1_000,
            out_dir: PathBuf::from("results"),
        }
    }
}

impl BenchOptions {
    /// Parse the common flags from `std::env::args`.
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let args: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < args.len() {
            let take = |i: &mut usize| -> Option<String> {
                *i += 1;
                args.get(*i).cloned()
            };
            match args[i].as_str() {
                "--scale" => {
                    if let Some(v) = take(&mut i) {
                        opts.scale = v.parse().unwrap_or(opts.scale);
                    }
                }
                "--epochs" => {
                    if let Some(v) = take(&mut i) {
                        opts.epochs = v.parse().unwrap_or(opts.epochs);
                    }
                }
                "--queries" => {
                    if let Some(v) = take(&mut i) {
                        opts.test_queries = v.parse().unwrap_or(opts.test_queries);
                    }
                }
                "--train-queries" => {
                    if let Some(v) = take(&mut i) {
                        opts.train_queries = v.parse().unwrap_or(opts.train_queries);
                    }
                }
                "--out" => {
                    if let Some(v) = take(&mut i) {
                        opts.out_dir = PathBuf::from(v);
                    }
                }
                other => {
                    eprintln!("ignoring unknown flag {other}");
                }
            }
            i += 1;
        }
        opts
    }

    /// Scaled row count for a dataset's CI-sized default.
    pub fn rows(&self, base: usize) -> usize {
        ((base as f64 * self.scale).round() as usize).max(500)
    }

    /// Write a CSV file into the output directory and echo its path.
    pub fn write_csv(&self, name: &str, header: &str, rows: &[String]) {
        if let Err(e) = fs::create_dir_all(&self.out_dir) {
            eprintln!("could not create {:?}: {e}", self.out_dir);
            return;
        }
        let path = self.out_dir.join(name);
        match fs::File::create(&path) {
            Ok(mut f) => {
                let _ = writeln!(f, "{header}");
                for r in rows {
                    let _ = writeln!(f, "{r}");
                }
                println!("wrote {}", path.display());
            }
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}

/// The three evaluation datasets at CI-friendly default sizes
/// (scaled by [`BenchOptions::scale`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// DMV-like: 11 columns, high cardinality.
    Dmv,
    /// Kddcup98-like: 100 columns.
    Kddcup98,
    /// Census-like: 14 columns, small.
    Census,
}

impl Dataset {
    /// All datasets in the paper's order.
    pub const ALL: [Dataset; 3] = [Dataset::Dmv, Dataset::Kddcup98, Dataset::Census];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Dmv => "dmv",
            Dataset::Kddcup98 => "kddcup98",
            Dataset::Census => "census",
        }
    }

    /// CI-sized default row count (the paper's full sizes are in
    /// [`datasets::DMV_PAPER_ROWS`] etc.).
    pub fn default_rows(&self) -> usize {
        match self {
            Dataset::Dmv => 20_000,
            Dataset::Kddcup98 => 5_000,
            Dataset::Census => 8_000,
        }
    }

    /// Generate the table at the requested scale.
    pub fn table(&self, opts: &BenchOptions) -> Table {
        let rows = opts.rows(self.default_rows());
        match self {
            Dataset::Dmv => datasets::dmv_like(rows, 7),
            Dataset::Kddcup98 => datasets::kddcup98_like(rows, 7),
            Dataset::Census => datasets::census_like(rows, 7),
        }
    }

    /// The Duet configuration the paper uses for this dataset, with the
    /// harness's epoch override applied.
    pub fn duet_config(&self, opts: &BenchOptions) -> DuetConfig {
        let mut cfg = match self {
            Dataset::Dmv => {
                let mut c = DuetConfig::paper_dmv();
                // CI-sized backbone; pass --scale/--epochs for larger runs.
                c.hidden_sizes = vec![128, 128];
                c.batch_size = 512;
                c
            }
            _ => DuetConfig::paper_resmade(),
        };
        cfg.epochs = opts.epochs;
        cfg
    }

    /// The Naru/UAE configuration for this dataset.
    pub fn naru_config(&self, opts: &BenchOptions) -> NaruConfig {
        let mut cfg = match self {
            Dataset::Dmv => {
                let mut c = NaruConfig::paper_dmv();
                c.hidden_sizes = vec![128, 128];
                c.batch_size = 512;
                c
            }
            _ => NaruConfig::paper_resmade(),
        };
        cfg.epochs = opts.epochs;
        cfg.num_samples = 200;
        cfg
    }
}

/// The training and test workloads of §V-A2 for one dataset.
#[derive(Debug, Clone)]
pub struct Workloads {
    /// Training workload (bounded column, Gamma predicate counts, seed 42).
    pub train: Vec<Query>,
    /// Training-workload cardinality labels.
    pub train_cards: Vec<u64>,
    /// In-workload test queries (same distribution as training, seed 42).
    pub in_q: Vec<Query>,
    /// In-workload ground truth.
    pub in_q_cards: Vec<u64>,
    /// Random test queries (uniform, seed 1234).
    pub rand_q: Vec<Query>,
    /// Random-workload ground truth.
    pub rand_q_cards: Vec<u64>,
}

/// Generate and label the workloads for a table.
pub fn build_workloads(table: &Table, opts: &BenchOptions) -> Workloads {
    let train = WorkloadSpec::in_workload(table, opts.train_queries, TRAIN_SEED).generate(table);
    let in_q = WorkloadSpec::in_workload(table, opts.test_queries, TRAIN_SEED).generate(table);
    let rand_q = WorkloadSpec::random(table, opts.test_queries, RAND_SEED).generate(table);
    let train_cards = label_workload(table, &train);
    let in_q_cards = label_workload(table, &in_q);
    let rand_q_cards = label_workload(table, &rand_q);
    Workloads { train, train_cards, in_q, in_q_cards, rand_q, rand_q_cards }
}

/// Result of evaluating one estimator on one workload.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// Estimator name.
    pub estimator: String,
    /// Q-Error summary.
    pub summary: QErrorSummary,
    /// Mean per-query latency in milliseconds.
    pub mean_latency_ms: f64,
    /// Estimator size in MB.
    pub size_mb: f64,
}

/// Evaluate an estimator on a labelled workload, measuring latency.
pub fn evaluate(
    estimator: &mut dyn CardinalityEstimator,
    queries: &[Query],
    cards: &[u64],
) -> EvalResult {
    let started = Instant::now();
    let estimates: Vec<f64> = queries.iter().map(|q| estimator.estimate(q)).collect();
    let elapsed = started.elapsed();
    EvalResult {
        estimator: estimator.name().to_string(),
        summary: QErrorSummary::from_estimates(&estimates, cards),
        mean_latency_ms: elapsed.as_secs_f64() * 1e3 / queries.len().max(1) as f64,
        size_mb: estimator.size_bytes() as f64 / (1024.0 * 1024.0),
    }
}

/// Build every estimator of Table II for a dataset. Returns `(name, estimator)`
/// pairs; the learned estimators are trained inside this call.
pub fn build_all_estimators(
    dataset: Dataset,
    table: &Table,
    workloads: &Workloads,
    opts: &BenchOptions,
) -> Vec<Box<dyn CardinalityEstimator>> {
    let mut out: Vec<Box<dyn CardinalityEstimator>> = Vec::new();
    println!("[{}] building traditional estimators", dataset.name());
    out.push(Box::new(SamplingEstimator::new(
        table,
        0.01_f64.max(500.0 / table.num_rows() as f64).min(1.0),
        3,
    )));
    out.push(Box::new(IndependenceEstimator::new(table)));
    out.push(Box::new(MHist::new(table, 512)));

    println!("[{}] training MSCN", dataset.name());
    let mut mscn_cfg = MscnConfig::small();
    mscn_cfg.epochs = (opts.epochs * 10).max(20);
    out.push(Box::new(MscnEstimator::train(
        table,
        &workloads.train,
        &workloads.train_cards,
        &mscn_cfg,
        3,
    )));

    println!("[{}] building DeepDB", dataset.name());
    out.push(Box::new(DeepDbEstimator::build(table, &DeepDbConfig::default_config())));

    println!("[{}] training Naru", dataset.name());
    let naru_cfg = dataset.naru_config(opts);
    out.push(Box::new(NaruEstimator::train(table, &naru_cfg, 3)));

    println!("[{}] training UAE", dataset.name());
    let mut uae_cfg = UaeConfig::paper(naru_cfg.clone());
    uae_cfg.train_samples = 64;
    uae_cfg.query_batch_size = 32;
    out.push(Box::new(UaeEstimator::train(
        table,
        &workloads.train,
        &workloads.train_cards,
        &uae_cfg,
        3,
    )));

    println!("[{}] training DuetD (data only)", dataset.name());
    let duet_cfg = dataset.duet_config(opts);
    out.push(Box::new(DuetEstimator::train_data_only(table, &duet_cfg, 3)));

    println!("[{}] training Duet (hybrid)", dataset.name());
    out.push(Box::new(DuetEstimator::train_hybrid(
        table,
        &workloads.train,
        &workloads.train_cards,
        &duet_cfg,
        3,
    )));
    out
}

/// Format one Table II-style CSV row.
pub fn result_csv_row(dataset: &str, workload: &str, r: &EvalResult) -> String {
    format!(
        "{dataset},{workload},{},{:.3},{:.4},{:.3},{:.3},{:.3},{:.3},{:.3}",
        r.estimator,
        r.size_mb,
        r.mean_latency_ms,
        r.summary.mean,
        r.summary.median,
        r.summary.p75,
        r.summary.p99,
        r.summary.max
    )
}

/// Header matching [`result_csv_row`].
pub const RESULT_CSV_HEADER: &str =
    "dataset,workload,estimator,size_mb,latency_ms,mean,median,p75,p99,max";

/// Pretty-print an evaluation row to stdout.
pub fn print_result(dataset: &str, workload: &str, r: &EvalResult) {
    println!(
        "{dataset:>9} {workload:>7} {:>10}  size={:>8.3}MB  lat={:>8.4}ms  {}",
        r.estimator,
        r.size_mb,
        r.mean_latency_ms,
        r.summary.to_row()
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_scale_rows() {
        let mut opts = BenchOptions { scale: 2.0, ..BenchOptions::default() };
        assert_eq!(opts.rows(1_000), 2_000);
        opts.scale = 0.001;
        assert_eq!(opts.rows(1_000), 500, "row counts are floored at 500");
    }

    #[test]
    fn dataset_tables_have_expected_shapes() {
        let opts = BenchOptions { scale: 0.1, ..BenchOptions::default() };
        assert_eq!(Dataset::Dmv.table(&opts).num_columns(), 11);
        assert_eq!(Dataset::Kddcup98.table(&opts).num_columns(), 100);
        assert_eq!(Dataset::Census.table(&opts).num_columns(), 14);
    }

    #[test]
    fn workloads_are_labelled_and_sized() {
        let opts = BenchOptions {
            scale: 0.1,
            test_queries: 20,
            train_queries: 30,
            ..BenchOptions::default()
        };
        let table = Dataset::Census.table(&opts);
        let w = build_workloads(&table, &opts);
        assert_eq!(w.train.len(), 30);
        assert_eq!(w.rand_q.len(), 20);
        assert_eq!(w.train.len(), w.train_cards.len());
        assert_eq!(w.in_q.len(), w.in_q_cards.len());
    }

    #[test]
    fn evaluate_reports_latency_and_errors() {
        let opts = BenchOptions { scale: 0.1, test_queries: 10, ..BenchOptions::default() };
        let table = Dataset::Census.table(&opts);
        let w = build_workloads(&table, &opts);
        let mut indep = IndependenceEstimator::new(&table);
        let r = evaluate(&mut indep, &w.rand_q, &w.rand_q_cards);
        assert_eq!(r.estimator, "indep");
        assert!(r.summary.max >= 1.0);
        assert!(r.mean_latency_ms >= 0.0);
        let row = result_csv_row("census", "rand", &r);
        assert!(row.starts_with("census,rand,indep,"));
    }
}
