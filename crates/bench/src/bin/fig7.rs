//! Figure 7: estimation cost comparison of the learned estimators on every
//! dataset. All measurements run on CPU; for Naru/UAE an additional
//! "emulated GPU" latency (CPU latency divided by a configurable speed-up
//! factor) is reported to mirror the paper's CPU-vs-GPU comparison.
//!
//! Run with `cargo run -p duet-bench --release --bin fig7`.

use duet_bench::{build_all_estimators, build_workloads, evaluate, BenchOptions, Dataset};

/// Conservative GPU speed-up factor used to emulate the paper's GPU latencies
/// for the sampling-based estimators (the paper's claim is that Duet on CPU
/// beats them even on GPU).
const GPU_SPEEDUP: f64 = 10.0;

fn main() {
    let opts = BenchOptions::from_args();
    println!("== Figure 7: estimation cost of learned methods (CPU, + emulated GPU) ==");
    let mut csv = Vec::new();
    for dataset in Dataset::ALL {
        let table = dataset.table(&opts);
        let workloads = build_workloads(&table, &opts);
        let mut estimators = build_all_estimators(dataset, &table, &workloads, &opts);
        println!("\n-- dataset {} --", dataset.name());
        for est in estimators.iter_mut() {
            let name = est.name().to_string();
            // Skip the traditional estimators: Figure 7 compares learned methods.
            if matches!(name.as_str(), "sampling" | "indep" | "mhist") {
                continue;
            }
            let r = evaluate(est.as_mut(), &workloads.rand_q, &workloads.rand_q_cards);
            let emulated_gpu = if matches!(name.as_str(), "naru" | "uae") {
                r.mean_latency_ms / GPU_SPEEDUP
            } else {
                r.mean_latency_ms
            };
            println!(
                "{name:>10}: cpu {:>9.4} ms/query   emulated-gpu {:>9.4} ms/query",
                r.mean_latency_ms, emulated_gpu
            );
            csv.push(format!(
                "{},{},{:.5},{:.5}",
                dataset.name(),
                name,
                r.mean_latency_ms,
                emulated_gpu
            ));
        }
    }
    opts.write_csv(
        "fig7_estimation_cost.csv",
        "dataset,estimator,cpu_latency_ms,emulated_gpu_latency_ms",
        &csv,
    );
}
