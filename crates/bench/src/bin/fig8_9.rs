//! Figures 8 & 9: convergence speed — max Q-Error after every training epoch
//! on the random (Figure 8) and in-workload (Figure 9) test queries, for Naru,
//! DuetD and Duet, on the DMV-like and Kddcup98-like datasets.
//!
//! Run with `cargo run -p duet-bench --release --bin fig8_9`.

use duet_baselines::NaruEstimator;
use duet_bench::{build_workloads, BenchOptions, Dataset};
use duet_core::{train_model_with_eval, DuetEstimator, TrainingWorkload};
use duet_query::{CardinalityEstimator, QErrorSummary, Query};

fn max_q_error(est: &mut dyn CardinalityEstimator, queries: &[Query], cards: &[u64]) -> f64 {
    let estimates: Vec<f64> = queries.iter().map(|q| est.estimate(q)).collect();
    QErrorSummary::from_estimates(&estimates, cards).max
}

fn main() {
    let opts = BenchOptions::from_args();
    println!("== Figures 8/9: convergence speed (max Q-Error per epoch) ==");
    let mut csv = Vec::new();
    for dataset in [Dataset::Dmv, Dataset::Kddcup98] {
        let table = dataset.table(&opts);
        let workloads = build_workloads(&table, &opts);
        // Evaluate convergence on a subset to keep per-epoch evaluation cheap.
        let eval_n = workloads.rand_q.len().min(100);
        let rand_q = &workloads.rand_q[..eval_n];
        let rand_cards = &workloads.rand_q_cards[..eval_n];
        let in_q = &workloads.in_q[..eval_n];
        let in_cards = &workloads.in_q_cards[..eval_n];
        println!("\n-- dataset {} --", dataset.name());

        // Naru.
        let naru_cfg = dataset.naru_config(&opts);
        let _ = NaruEstimator::train_with_eval(&table, &naru_cfg, 3, |stats, snapshot| {
            let rand = max_q_error(snapshot, rand_q, rand_cards);
            let inw = max_q_error(snapshot, in_q, in_cards);
            println!(
                "naru   epoch {:>2}: rand max={rand:>10.3}  in-q max={inw:>10.3}",
                stats.epoch
            );
            csv.push(format!("{},naru,{},{:.4},{:.4}", dataset.name(), stats.epoch, rand, inw));
        });

        // DuetD (data only) and Duet (hybrid).
        let duet_cfg = dataset.duet_config(&opts);
        for (label, hybrid) in [("duet_d", false), ("duet", true)] {
            let workload = TrainingWorkload {
                queries: &workloads.train,
                cardinalities: &workloads.train_cards,
            };
            let arg = if hybrid { Some(workload) } else { None };
            let _ = train_model_with_eval(&table, &duet_cfg, arg, 3, |stats, model| {
                let mut snapshot = DuetEstimator::from_model(model.clone(), &table, label);
                let rand = max_q_error(&mut snapshot, rand_q, rand_cards);
                let inw = max_q_error(&mut snapshot, in_q, in_cards);
                println!(
                    "{label:<6} epoch {:>2}: rand max={rand:>10.3}  in-q max={inw:>10.3}",
                    stats.epoch
                );
                csv.push(format!(
                    "{},{label},{},{:.4},{:.4}",
                    dataset.name(),
                    stats.epoch,
                    rand,
                    inw
                ));
            });
        }
    }
    opts.write_csv(
        "fig8_9_convergence.csv",
        "dataset,estimator,epoch,rand_q_max_q_error,in_q_max_q_error",
        &csv,
    );
}
