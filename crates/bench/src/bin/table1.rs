//! Table I: comparison of the three MPSN variants (MLP, Recursive, Recurrent)
//! on the Census dataset with multi-predicate workloads — max Q-Error,
//! estimation cost, training cost.
//!
//! Run with `cargo run -p duet-bench --release --bin table1`.

use duet_bench::{BenchOptions, Dataset, RAND_SEED, TRAIN_SEED};
use duet_core::{DuetEstimator, MpsnKind};
use duet_query::{label_workload, CardinalityEstimator, QErrorSummary, WorkloadSpec};
use std::time::Instant;

fn main() {
    let opts = BenchOptions::from_args();
    println!("== Table I: multiple-predicate support (MPSN variants) ==");
    let table = Dataset::Census.table(&opts);
    // Multi-predicate workloads: up to 3 predicates per column.
    let train = WorkloadSpec::in_workload(&table, opts.train_queries, TRAIN_SEED)
        .with_multi_predicates(3)
        .generate(&table);
    let train_cards = label_workload(&table, &train);
    let rand_q = WorkloadSpec::random(&table, opts.test_queries, RAND_SEED)
        .with_multi_predicates(3)
        .generate(&table);
    let rand_cards = label_workload(&table, &rand_q);

    let mut csv = Vec::new();
    for (label, kind) in
        [("MLP", MpsnKind::Mlp), ("REC", MpsnKind::Recursive), ("RNN", MpsnKind::Recurrent)]
    {
        let cfg = Dataset::Census.duet_config(&opts).with_mpsn(kind, 3).with_epochs(opts.epochs);
        let started = Instant::now();
        let mut duet = DuetEstimator::train_hybrid(&table, &train, &train_cards, &cfg, 3);
        let train_cost = started.elapsed().as_secs_f64();

        let est_started = Instant::now();
        let estimates: Vec<f64> = rand_q.iter().map(|q| duet.estimate(q)).collect();
        let est_cost_ms = est_started.elapsed().as_secs_f64() * 1e3 / rand_q.len().max(1) as f64;
        let summary = QErrorSummary::from_estimates(&estimates, &rand_cards);
        println!(
            "{label:>4}  max Q-Error={:>8.3}  est cost={:>7.3} ms  train cost={:>8.3} s  epochs={}",
            summary.max, est_cost_ms, train_cost, cfg.epochs
        );
        csv.push(format!(
            "{label},{:.3},{:.4},{:.3},{}",
            summary.max, est_cost_ms, train_cost, cfg.epochs
        ));
    }
    opts.write_csv("table1_mpsn.csv", "mpsn,max_q_error,est_cost_ms,train_cost_s,epochs", &csv);
}
