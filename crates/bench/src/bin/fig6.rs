//! Figure 6: scalability with the number of predicate columns. A model is
//! trained on all 100 Kddcup98-like columns; workloads constrain 2..=100
//! columns and per-query latency is reported, split into phases
//! (encoding vs inference for Duet; model forwards vs sampling for Naru/UAE).
//!
//! Run with `cargo run -p duet-bench --release --bin fig6`.

use duet_baselines::{NaruEstimator, UaeConfig, UaeEstimator};
use duet_bench::{build_workloads, BenchOptions, Dataset, RAND_SEED};
use duet_core::DuetEstimator;
use duet_query::WorkloadSpec;

fn main() {
    let opts = BenchOptions::from_args();
    println!("== Figure 6: scalability vs number of predicate columns (Kddcup98) ==");
    let table = Dataset::Kddcup98.table(&opts);
    let workloads = build_workloads(&table, &opts);

    println!("training Duet ...");
    let duet_cfg = Dataset::Kddcup98.duet_config(&opts);
    let duet =
        DuetEstimator::train_hybrid(&table, &workloads.train, &workloads.train_cards, &duet_cfg, 3);
    println!("training Naru ...");
    let naru_cfg = Dataset::Kddcup98.naru_config(&opts);
    let mut naru = NaruEstimator::train(&table, &naru_cfg, 3);
    println!("training UAE ...");
    let mut uae_cfg = UaeConfig::paper(naru_cfg);
    uae_cfg.train_samples = 32;
    let mut uae = UaeEstimator::train(
        &table,
        &workloads.train[..workloads.train.len().min(128)],
        &workloads.train_cards[..workloads.train.len().min(128)],
        &uae_cfg,
        3,
    );

    let mut csv = Vec::new();
    println!("{:>8} {:>16} {:>16} {:>16}", "columns", "duet (ms)", "naru (ms)", "uae (ms)");
    for &ncols in &[2usize, 4, 8, 16, 32, 64, 100] {
        let queries = WorkloadSpec::random(&table, 20, RAND_SEED + ncols as u64)
            .with_max_columns(ncols)
            .generate(&table);

        let mut duet_encode = 0.0;
        let mut duet_infer = 0.0;
        for q in &queries {
            let b = duet.estimate_with_breakdown(q);
            duet_encode += b.encode_time.as_secs_f64() * 1e3;
            duet_infer += b.inference_time.as_secs_f64() * 1e3;
        }
        let n = queries.len() as f64;
        let (mut naru_fwd, mut naru_sample) = (0.0, 0.0);
        for q in &queries {
            let (_, f, s, _) = naru.estimate_with_breakdown(q);
            naru_fwd += f.as_secs_f64() * 1e3;
            naru_sample += s.as_secs_f64() * 1e3;
        }
        let (mut uae_fwd, mut uae_sample) = (0.0, 0.0);
        for q in &queries {
            let (_, f, s, _) = uae.estimate_with_breakdown(q);
            uae_fwd += f.as_secs_f64() * 1e3;
            uae_sample += s.as_secs_f64() * 1e3;
        }
        let duet_total = (duet_encode + duet_infer) / n;
        let naru_total = (naru_fwd + naru_sample) / n;
        let uae_total = (uae_fwd + uae_sample) / n;
        println!("{ncols:>8} {duet_total:>16.4} {naru_total:>16.4} {uae_total:>16.4}");
        csv.push(format!(
            "{ncols},{:.5},{:.5},{:.5},{:.5},{:.5},{:.5},{:.5},{:.5},{:.5}",
            duet_encode / n,
            duet_infer / n,
            duet_total,
            naru_fwd / n,
            naru_sample / n,
            naru_total,
            uae_fwd / n,
            uae_sample / n,
            uae_total
        ));
    }
    opts.write_csv(
        "fig6_scalability.csv",
        "columns,duet_encode_ms,duet_infer_ms,duet_total_ms,naru_forward_ms,naru_sampling_ms,naru_total_ms,uae_forward_ms,uae_sampling_ms,uae_total_ms",
        &csv,
    );
    println!(
        "\nDuet's cost stays flat (single forward pass) while Naru/UAE grow with the column count."
    );
}
