//! Table II: accuracy (Q-Error percentiles), model size and estimation latency
//! of all estimators on the three datasets, for both In-Workload and Random
//! test queries.
//!
//! Run with `cargo run -p duet-bench --release --bin table2 [--scale f]`.

use duet_bench::{
    build_all_estimators, build_workloads, evaluate, print_result, result_csv_row, BenchOptions,
    Dataset, RESULT_CSV_HEADER,
};

fn main() {
    let opts = BenchOptions::from_args();
    println!("== Table II: accuracy of all methods (scale={}) ==", opts.scale);
    let mut csv_rows = Vec::new();
    for dataset in Dataset::ALL {
        let table = dataset.table(&opts);
        println!(
            "\n-- dataset {} ({} rows, {} columns) --",
            dataset.name(),
            table.num_rows(),
            table.num_columns()
        );
        let workloads = build_workloads(&table, &opts);
        let mut estimators = build_all_estimators(dataset, &table, &workloads, &opts);
        for est in estimators.iter_mut() {
            let in_q = evaluate(est.as_mut(), &workloads.in_q, &workloads.in_q_cards);
            print_result(dataset.name(), "in-q", &in_q);
            csv_rows.push(result_csv_row(dataset.name(), "in_q", &in_q));
            let rand_q = evaluate(est.as_mut(), &workloads.rand_q, &workloads.rand_q_cards);
            print_result(dataset.name(), "rand-q", &rand_q);
            csv_rows.push(result_csv_row(dataset.name(), "rand_q", &rand_q));
        }
    }
    opts.write_csv("table2_accuracy.csv", RESULT_CSV_HEADER, &csv_rows);
}
