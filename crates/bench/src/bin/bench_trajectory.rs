//! Merge the committed `BENCH_PR*.json` artifacts (one per PR, written by
//! the criterion shim via `DUET_BENCH_JSON`) into a single machine-readable
//! trajectory table: one row per bench name, one column per PR, so a
//! regression across PRs is a one-line diff instead of an N-file hunt.
//!
//! Run from the workspace root with
//! `cargo run -p duet-bench --release --bin bench_trajectory`; pass a
//! directory argument to scan somewhere else. Prints the table and writes
//! `BENCH_TRAJECTORY.json` next to the inputs.
//!
//! The shim's output has a fixed line-per-bench shape (see
//! `crates/compat/criterion`), so the parser here is a small hand-rolled
//! scanner rather than a JSON dependency.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

fn main() {
    let dir = std::env::args().nth(1).map(PathBuf::from).unwrap_or_else(|| {
        // Default to the workspace root, two levels up from this crate.
        Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
    });
    let dir = dir.canonicalize().unwrap_or(dir);

    let mut sources: Vec<(u32, PathBuf)> = Vec::new();
    for entry in fs::read_dir(&dir).expect("bench directory is readable") {
        let path = entry.expect("directory entry is readable").path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if let Some(pr) = name
            .strip_prefix("BENCH_PR")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|digits| digits.parse::<u32>().ok())
        {
            sources.push((pr, path));
        }
    }
    sources.sort();
    assert!(!sources.is_empty(), "no BENCH_PR*.json files found in {}", dir.display());

    // bench name -> (pr -> ns/op); BTreeMaps keep the output deterministic.
    let mut table: BTreeMap<String, BTreeMap<u32, f64>> = BTreeMap::new();
    for (pr, path) in &sources {
        let text = fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("failed to read {}: {e}", path.display()));
        for (name, ns_per_op) in parse_benches(&text) {
            table.entry(name).or_default().insert(*pr, ns_per_op);
        }
    }

    // Human-readable table.
    let prs: Vec<u32> = sources.iter().map(|(pr, _)| *pr).collect();
    let name_width = table.keys().map(|n| n.len()).max().unwrap_or(5).max(5);
    print!("{:<name_width$}", "bench");
    for pr in &prs {
        print!("  {:>14}", format!("PR{pr} ns/op"));
    }
    println!();
    for (name, points) in &table {
        print!("{name:<name_width$}");
        for pr in &prs {
            match points.get(pr) {
                Some(ns) => print!("  {ns:>14.1}"),
                None => print!("  {:>14}", "-"),
            }
        }
        println!();
    }

    // Machine-readable artifact.
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"duet-bench-trajectory-v1\",\n  \"unit\": \"ns/op\",\n");
    out.push_str("  \"sources\": [");
    for (i, (pr, _)) in sources.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"BENCH_PR{pr}.json\""));
    }
    out.push_str("],\n  \"benches\": [\n");
    for (i, (name, points)) in table.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!("    {{\"name\": \"{name}\", \"points\": ["));
        for (j, (pr, ns)) in points.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{{\"pr\": {pr}, \"ns_per_op\": {ns:.1}}}"));
        }
        out.push_str("]}");
    }
    out.push_str("\n  ]\n}\n");
    let out_path = dir.join("BENCH_TRAJECTORY.json");
    fs::write(&out_path, out)
        .unwrap_or_else(|e| panic!("failed to write {}: {e}", out_path.display()));
    println!("\nwrote {}", out_path.display());
}

/// Extract `(name, ns_per_op)` pairs from one shim-format bench file.
fn parse_benches(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(rest) = line.trim_start().strip_prefix("{\"name\": \"") else { continue };
        let Some((name, rest)) = rest.split_once('"') else { continue };
        let Some(rest) = rest.strip_prefix(", \"ns_per_op\": ") else { continue };
        let Some((value, _)) = rest.split_once(',') else { continue };
        let ns: f64 = value.trim().parse().unwrap_or_else(|e| {
            panic!("bench line for {name:?} has a malformed ns_per_op {value:?}: {e}")
        });
        out.push((name.to_string(), ns));
    }
    out
}
