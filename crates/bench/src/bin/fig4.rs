//! Figure 4: cumulative distribution of the true cardinalities of the
//! generated workloads (training / in-workload vs random), per dataset.
//!
//! Run with `cargo run -p duet-bench --release --bin fig4`.

use duet_bench::{build_workloads, BenchOptions, Dataset};
use duet_query::cardinality_cdf;

fn main() {
    let opts = BenchOptions::from_args();
    println!("== Figure 4: workload cardinality CDFs ==");
    let mut csv = Vec::new();
    for dataset in Dataset::ALL {
        let table = dataset.table(&opts);
        let workloads = build_workloads(&table, &opts);
        for (name, cards) in [
            ("train", &workloads.train_cards),
            ("in_q", &workloads.in_q_cards),
            ("rand_q", &workloads.rand_q_cards),
        ] {
            let cdf = cardinality_cdf(cards, 30);
            println!(
                "{:>9} {:>7}: median card ≈ {:.0}, max card = {}",
                dataset.name(),
                name,
                cdf.iter().find(|(_, f)| *f >= 0.5).map(|(c, _)| *c).unwrap_or(0.0),
                cards.iter().max().copied().unwrap_or(0)
            );
            for (card, frac) in cdf {
                csv.push(format!("{},{},{:.3},{:.5}", dataset.name(), name, card, frac));
            }
        }
    }
    opts.write_csv(
        "fig4_workload_cdf.csv",
        "dataset,workload,cardinality,cumulative_fraction",
        &csv,
    );
    println!("\nThe train/in-workload and random CDFs differ visibly — the drift Table II probes.");
}
