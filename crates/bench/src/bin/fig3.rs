//! Figure 3: convergence of the supervised loss — raw Q-Error vs the
//! log2-mapped `log2(QError + 1)` used by Duet's hybrid loss — compared to the
//! unsupervised loss, on the DMV-like dataset.
//!
//! Run with `cargo run -p duet-bench --release --bin fig3`.

use duet_bench::{build_workloads, BenchOptions, Dataset};
use duet_core::{train_model, TrainingWorkload};

fn main() {
    let opts = BenchOptions::from_args();
    println!("== Figure 3: convergence of the hybrid-loss components (DMV) ==");
    let table = Dataset::Dmv.table(&opts);
    let workloads = build_workloads(&table, &opts);
    let cfg = Dataset::Dmv.duet_config(&opts);
    let workload =
        TrainingWorkload { queries: &workloads.train, cardinalities: &workloads.train_cards };
    let mut csv = Vec::new();
    println!("{:>6} {:>14} {:>18} {:>14}", "epoch", "L_data", "raw mean Q-Error", "log2(Q+1)");
    let _ = train_model(&table, &cfg, Some(workload), 3, |s| {
        println!(
            "{:>6} {:>14.4} {:>18.3} {:>14.4}",
            s.epoch, s.data_loss, s.mean_train_q_error, s.query_loss
        );
        csv.push(format!(
            "{},{:.6},{:.6},{:.6}",
            s.epoch, s.data_loss, s.mean_train_q_error, s.query_loss
        ));
    });
    opts.write_csv(
        "fig3_loss_convergence.csv",
        "epoch,data_loss,raw_mean_q_error,log2_q_error_loss",
        &csv,
    );
    println!(
        "\nThe raw Q-Error starts orders of magnitude above L_data while the log2-mapped\n\
         loss stays on a comparable scale — the motivation for Duet's hybrid loss design."
    );
}
