//! Figure 5: hyper-parameter study of the trade-off coefficient λ
//! (1e-3, 1e-2, 1e-1, 1) on the Kddcup98-like dataset, evaluated on the
//! random test workload.
//!
//! Run with `cargo run -p duet-bench --release --bin fig5`.

use duet_bench::{build_workloads, evaluate, BenchOptions, Dataset};
use duet_core::DuetEstimator;

fn main() {
    let opts = BenchOptions::from_args();
    println!("== Figure 5: λ hyper-parameter study (Kddcup98, Rand-Q) ==");
    let table = Dataset::Kddcup98.table(&opts);
    let workloads = build_workloads(&table, &opts);
    let mut csv = Vec::new();
    for lambda in [1e-3, 1e-2, 1e-1, 1.0] {
        let cfg = Dataset::Kddcup98.duet_config(&opts).with_lambda(lambda);
        let mut duet =
            DuetEstimator::train_hybrid(&table, &workloads.train, &workloads.train_cards, &cfg, 3);
        let rand = evaluate(&mut duet, &workloads.rand_q, &workloads.rand_q_cards);
        let in_q = evaluate(&mut duet, &workloads.in_q, &workloads.in_q_cards);
        println!(
            "lambda={lambda:<7} rand-q: mean={:<8.3} p99={:<9.3} max={:<10.3} | in-q: mean={:<8.3} max={:<10.3}",
            rand.summary.mean, rand.summary.p99, rand.summary.max, in_q.summary.mean, in_q.summary.max
        );
        csv.push(format!(
            "{lambda},{:.4},{:.4},{:.4},{:.4},{:.4}",
            rand.summary.mean,
            rand.summary.p99,
            rand.summary.max,
            in_q.summary.mean,
            in_q.summary.max
        ));
    }
    opts.write_csv(
        "fig5_lambda_study.csv",
        "lambda,rand_mean,rand_p99,rand_max,inq_mean,inq_max",
        &csv,
    );
}
