//! Table III: training throughput (tuples/second) of the data-driven and
//! hybrid methods (Naru, UAE, DuetD, Duet) on the three datasets.
//!
//! Run with `cargo run -p duet-bench --release --bin table3`.

use duet_baselines::{NaruEstimator, UaeConfig, UaeEstimator};
use duet_bench::{build_workloads, BenchOptions, Dataset};
use duet_core::{measure_training_throughput, TrainingWorkload};
use std::time::Instant;

fn main() {
    let opts = BenchOptions::from_args();
    println!("== Table III: training throughput (tuples/s) ==");
    let mut csv = Vec::new();
    for dataset in Dataset::ALL {
        let table = dataset.table(&opts);
        let workloads = build_workloads(&table, &opts);
        println!("\n-- dataset {} ({} rows) --", dataset.name(), table.num_rows());

        // Naru: one epoch of pure maximum-likelihood training.
        let mut naru_cfg = dataset.naru_config(&opts);
        naru_cfg.epochs = 1;
        let started = Instant::now();
        let _ = NaruEstimator::train(&table, &naru_cfg, 3);
        let naru_tput = table.num_rows() as f64 / started.elapsed().as_secs_f64();

        // UAE: hybrid training pays for the sampled differentiable estimates.
        let mut uae_cfg = UaeConfig::paper(naru_cfg.clone());
        uae_cfg.train_samples = 64;
        let started = Instant::now();
        let _ = UaeEstimator::train(
            &table,
            &workloads.train[..workloads.train.len().min(256)],
            &workloads.train_cards[..workloads.train.len().min(256)],
            &uae_cfg,
            3,
        );
        let uae_tput = table.num_rows() as f64 / started.elapsed().as_secs_f64();

        // DuetD / Duet via the dedicated throughput probe.
        let duet_cfg = dataset.duet_config(&opts).with_epochs(1);
        let steps = (table.num_rows() / duet_cfg.batch_size).clamp(2, 20);
        let duet_d_tput = measure_training_throughput(&table, &duet_cfg, None, steps, 3);
        let workload =
            TrainingWorkload { queries: &workloads.train, cardinalities: &workloads.train_cards };
        let duet_tput = measure_training_throughput(&table, &duet_cfg, Some(workload), steps, 3);

        for (name, tput) in
            [("Naru", naru_tput), ("UAE", uae_tput), ("DuetD", duet_d_tput), ("Duet", duet_tput)]
        {
            println!("{name:>6}: {tput:>12.1} tuples/s");
            csv.push(format!("{},{},{:.1}", dataset.name(), name, tput));
        }
    }
    opts.write_csv("table3_throughput.csv", "dataset,estimator,tuples_per_s", &csv);
}
