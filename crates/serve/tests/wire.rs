//! Wire-layer tests: frame-codec properties (round-trip bit-identity,
//! typed rejection of corrupt streams, byte-split tolerance at every
//! boundary) and deterministic end-to-end scenarios driving pipelined
//! byte-level clients through the real connection state machine under the
//! virtual clock.

use duet_core::{DuetConfig, DuetEstimator, IdPredicate};
use duet_data::datasets::census_like;
use duet_query::{PredOp, Query, WorkloadSpec};
use duet_serve::sim::{
    run_wire_scenario, ArrivalPattern, ChunkMode, HarnessConfig, ScenarioConfig, WireScenarioConfig,
};
use duet_serve::wire::frame::{self, DecodeError, FrameView, Status};
use duet_serve::wire::{RetryConfig, WireClient};
use duet_serve::RouterConfig;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

type RequestParts = (u64, u32, u32, Vec<Vec<IdPredicate>>, Vec<(u32, u32)>);

/// One random, structurally valid request: id, table, deadline, per-column
/// predicates, per-column intervals.
fn random_request(rng: &mut SmallRng) -> RequestParts {
    let ncols = rng.gen_range(1..5usize);
    let preds: Vec<Vec<IdPredicate>> = (0..ncols)
        .map(|_| {
            (0..rng.gen_range(0..4usize))
                .map(|_| IdPredicate {
                    op: PredOp::ALL[rng.gen_range(0..PredOp::ALL.len())],
                    value_id: rng.gen_range(0..10_000u32),
                })
                .collect()
        })
        .collect();
    let intervals: Vec<(u32, u32)> = (0..ncols)
        .map(|_| {
            let lo = rng.gen_range(0..10_000u32);
            (lo, lo + rng.gen_range(0..10_000u32))
        })
        .collect();
    (
        rng.gen_range(0..u64::MAX),
        rng.gen_range(0..64u32),
        rng.gen_range(0..1_000_000u32),
        preds,
        intervals,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Encode → decode → re-encode is the identity on bytes, and the decoded
    /// view reproduces every field of the original request.
    #[test]
    fn request_frames_round_trip_bit_identically(seed in 0u64..10_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (id, table, deadline, preds, intervals) = random_request(&mut rng);

        let mut buf = Vec::new();
        frame::encode_request(&mut buf, id, table, deadline, &preds, &intervals);

        let (view, consumed) = frame::next_frame(&buf, frame::DEFAULT_MAX_FRAME_LEN)
            .expect("valid frame")
            .expect("complete frame");
        prop_assert_eq!(consumed, buf.len());
        let request = match view {
            FrameView::Request(r) => r,
            other => panic!("expected a request frame, got {other:?}"),
        };
        prop_assert_eq!(request.request_id, id);
        prop_assert_eq!(request.table_id, table);
        prop_assert_eq!(request.deadline_us, deadline);
        prop_assert_eq!(request.num_columns(), preds.len());

        let (mut got_preds, mut got_intervals) = (Vec::new(), Vec::new());
        request.read_into(&mut got_preds, &mut got_intervals);
        prop_assert_eq!(&got_preds, &preds);
        prop_assert_eq!(&got_intervals, &intervals);

        // Re-encoding the decoded fields reproduces the original bytes.
        let mut again = Vec::new();
        frame::encode_request(&mut again, id, table, deadline, &got_preds, &got_intervals);
        prop_assert_eq!(again, buf);
    }

    /// A frame stream delivered one byte at a time decodes to exactly the
    /// frames that were encoded — `next_frame` asks for more bytes at every
    /// possible split position and never errors on a partial frame.
    #[test]
    fn frames_decode_identically_across_every_byte_split(seed in 0u64..10_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut stream = Vec::new();
        let mut expected_frames = 0usize;
        for _ in 0..rng.gen_range(1..5usize) {
            let (id, table, deadline, preds, intervals) = random_request(&mut rng);
            frame::encode_request(&mut stream, id, table, deadline, &preds, &intervals);
            expected_frames += 1;
        }
        frame::encode_response(&mut stream, 7, Status::Ok, 1234.5);
        frame::encode_table_query(&mut stream, 8, "census");
        frame::encode_table_info(&mut stream, 8, Status::Ok, 3, &[10, 20, 30]);
        expected_frames += 3;

        // Feed the stream byte by byte: this exercises a split at every
        // frame-boundary (and mid-frame) position in one pass.
        let mut acc: Vec<u8> = Vec::new();
        let mut decoded = 0usize;
        for &byte in &stream {
            acc.push(byte);
            loop {
                match frame::next_frame(&acc, frame::DEFAULT_MAX_FRAME_LEN) {
                    Ok(Some((_, consumed))) => {
                        acc.drain(..consumed);
                        decoded += 1;
                    }
                    Ok(None) => break,
                    Err(e) => panic!("partial delivery must never error: {e}"),
                }
            }
        }
        prop_assert_eq!(decoded, expected_frames);
        prop_assert!(acc.is_empty(), "no residual bytes after the last frame");
    }

    /// Decoding arbitrary bytes returns `Ok` or a typed error — it never
    /// panics, whatever the length prefix claims.
    #[test]
    fn arbitrary_bytes_never_panic_the_decoder(
        data in prop::collection::vec(0u8..=255, 0..200),
    ) {
        let mut buf = data;
        while let Ok(Some((_, consumed))) = frame::next_frame(&buf, frame::DEFAULT_MAX_FRAME_LEN) {
            buf.drain(..consumed);
        }
    }
}

#[test]
fn corrupt_streams_are_rejected_with_typed_errors() {
    // Preamble corruption: wrong magic, wrong version.
    let mut preamble = Vec::new();
    frame::encode_preamble(&mut preamble);
    assert_eq!(preamble.len(), frame::PREAMBLE_LEN);
    let mut bad_magic = preamble.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(frame::decode_preamble(&bad_magic), Err(DecodeError::BadMagic(_))));
    let mut bad_version = preamble.clone();
    bad_version[4] = 0xFF;
    assert!(matches!(
        frame::decode_preamble(&bad_version),
        Err(DecodeError::UnsupportedVersion(_))
    ));

    // A declared body length beyond the cap is rejected before the body
    // arrives (oversized frames must not stall waiting for bytes).
    let oversized = u32::try_from(frame::DEFAULT_MAX_FRAME_LEN + 1).unwrap().to_le_bytes();
    assert!(matches!(
        frame::next_frame(&oversized, frame::DEFAULT_MAX_FRAME_LEN),
        Err(DecodeError::Oversized { .. })
    ));

    // Unknown frame kind.
    let unknown_kind = [1u8, 0, 0, 0, 99];
    assert!(matches!(
        frame::next_frame(&unknown_kind, frame::DEFAULT_MAX_FRAME_LEN),
        Err(DecodeError::UnknownKind(99))
    ));

    // A valid request whose predicate op byte is corrupted.
    let preds = vec![vec![IdPredicate { op: PredOp::Le, value_id: 5 }]];
    let mut request = Vec::new();
    frame::encode_request(&mut request, 1, 0, 0, &preds, &[(0, 9)]);
    // Body layout: kind(1) id(8) table(4) deadline(4) ncols(2) npreds(2) op(1);
    // the op byte sits at prefix(4) + 21.
    let op_at = 4 + 1 + 8 + 4 + 4 + 2 + 2;
    assert_eq!(request[op_at], PredOp::Le as u8);
    request[op_at] = 77;
    assert!(matches!(
        frame::next_frame(&request, frame::DEFAULT_MAX_FRAME_LEN),
        Err(DecodeError::UnknownOp(77))
    ));

    // A response carrying an unknown status code.
    let mut response = Vec::new();
    frame::encode_response(&mut response, 1, Status::Ok, 0.0);
    let status_at = 4 + 1 + 8;
    response[status_at] = 200;
    assert!(matches!(
        frame::next_frame(&response, frame::DEFAULT_MAX_FRAME_LEN),
        Err(DecodeError::UnknownStatus(200))
    ));

    // A truncated column region (ncols promises more than the body holds).
    let mut truncated = Vec::new();
    frame::encode_request(&mut truncated, 1, 0, 0, &preds, &[(0, 9)]);
    let ncols_at = 4 + 1 + 8 + 4 + 4;
    truncated[ncols_at] = 9;
    assert!(matches!(
        frame::next_frame(&truncated, frame::DEFAULT_MAX_FRAME_LEN),
        Err(DecodeError::Malformed(_))
    ));

    // An empty frame body is malformed, not a request for more bytes.
    assert!(matches!(
        frame::next_frame(&[0u8, 0, 0, 0], frame::DEFAULT_MAX_FRAME_LEN),
        Err(DecodeError::Malformed(_))
    ));
}

// ---------------------------------------------------------------------------
// End-to-end wire scenarios under the virtual clock.
// ---------------------------------------------------------------------------

/// Train `n` small tables plus a query pool per table (same idiom as the
/// router scenario tests).
fn trained_tables(n: usize) -> (Vec<(String, DuetEstimator)>, Vec<Vec<Query>>) {
    let cfg = DuetConfig::small().with_epochs(1);
    let mut tables = Vec::new();
    let mut workloads = Vec::new();
    for i in 0..n {
        let table = census_like(200 + 60 * i, 40 + i as u64);
        let estimator = DuetEstimator::train_data_only(&table, &cfg, 7 + i as u64);
        let queries = WorkloadSpec::random(&table, 10, 100 + i as u64).generate(&table);
        tables.push((format!("table-{i}"), estimator));
        workloads.push(queries);
    }
    (tables, workloads)
}

#[test]
fn split_and_coalesced_reads_replay_bit_identically() {
    let (tables, workloads) = trained_tables(2);
    let cfg = WireScenarioConfig {
        scenario: ScenarioConfig {
            seed: 42,
            clients: 3,
            requests_per_client: 25,
            mean_gap: Duration::from_micros(100),
            service_every: Duration::from_micros(300),
            pattern: ArrivalPattern::Uniform,
            harness: HarnessConfig::default(),
        },
        // Frames arrive shredded into ≤7-byte reads, with tails held back to
        // coalesce with later frames — the adversarial TCP delivery shapes.
        chunk: ChunkMode::Random { max: 7 },
        max_pipeline: 64,
    };
    let report = run_wire_scenario(&tables, &workloads, &cfg);
    assert_eq!(report.submitted, 3 * 25);
    assert_eq!(report.served, report.submitted, "ample queues serve everything: {report:?}");
    assert_eq!(report.mismatches, 0, "wire transport must not change any answer");
    assert_eq!(report.accounted(), report.submitted);
    assert!(report.batches > 0);
    // Replay equality under byte shredding is the wire determinism claim.
    assert_eq!(report, run_wire_scenario(&tables, &workloads, &cfg));

    // Whole-write delivery serves the same accounting (timing differs, so
    // batches may differ; outcomes may not).
    let exact = WireScenarioConfig { chunk: ChunkMode::Exact, ..cfg.clone() };
    let exact_report = run_wire_scenario(&tables, &workloads, &exact);
    assert_eq!(exact_report.served, report.served);
    assert_eq!(exact_report.mismatches, 0);
    assert_eq!(exact_report, run_wire_scenario(&tables, &workloads, &exact));
}

#[test]
fn overload_and_deadline_sheds_become_status_frames() {
    let (tables, workloads) = trained_tables(2);
    let cfg = WireScenarioConfig {
        scenario: ScenarioConfig {
            seed: 7,
            clients: 4,
            requests_per_client: 32,
            mean_gap: Duration::from_micros(50),
            // Both tables share one shard, so each turn batches only the
            // head table and the other table waits a second service
            // interval. With a deadline between one and two intervals, the
            // head batch is served while stragglers expire — and the tiny
            // queue sheds the bursts at admission. All three outcomes fire.
            service_every: Duration::from_millis(5),
            pattern: ArrivalPattern::Bursty { burst_size: 16 },
            harness: HarnessConfig {
                router: RouterConfig {
                    num_shards: 1,
                    queue_capacity: 8,
                    default_deadline: Some(Duration::from_millis(7)),
                },
                ..HarnessConfig::default()
            },
        },
        chunk: ChunkMode::Random { max: 9 },
        max_pipeline: 64,
    };
    let report = run_wire_scenario(&tables, &workloads, &cfg);
    assert!(report.shed_overload > 0, "full queues must answer Overloaded: {report:?}");
    assert!(report.shed_deadline > 0, "expired waits must answer DeadlineExceeded: {report:?}");
    assert!(report.served > 0, "admitted in-budget requests must still be served: {report:?}");
    assert_eq!(report.accounted(), report.submitted, "one response per request: {report:?}");
    assert_eq!(report.mismatches, 0, "overload must not corrupt served answers");
    assert!(report.max_shard_depth <= 8, "admission bound holds on the wire path");
    // Shed counts replay exactly — status frames are deterministic too.
    assert_eq!(report, run_wire_scenario(&tables, &workloads, &cfg));
}

// ---------------------------------------------------------------------------
// Blocking client against a scripted TCP server: retry/backoff + reconnect.
// ---------------------------------------------------------------------------

/// Read and validate the client preamble off a fresh connection.
fn read_preamble(stream: &mut TcpStream) {
    let mut preamble = [0u8; frame::PREAMBLE_LEN];
    stream.read_exact(&mut preamble).expect("preamble");
    frame::decode_preamble(&preamble).expect("valid preamble");
}

/// Block until the next complete request frame arrives; return its id.
fn next_request_id(stream: &mut TcpStream, acc: &mut Vec<u8>) -> std::io::Result<u64> {
    loop {
        if let Some((view, consumed)) =
            frame::next_frame(acc, frame::DEFAULT_MAX_FRAME_LEN).expect("client frames decode")
        {
            let id = match view {
                FrameView::Request(r) => r.request_id,
                other => panic!("expected a request frame, got {other:?}"),
            };
            acc.drain(..consumed);
            return Ok(id);
        }
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "client gone"));
        }
        acc.extend_from_slice(&chunk[..n]);
    }
}

#[test]
fn the_retry_client_backs_off_through_overload_to_a_served_answer() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    // Scripted server: shed the first two attempts, serve the third.
    let server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        read_preamble(&mut stream);
        let mut acc = Vec::new();
        let mut attempts = 0u32;
        loop {
            let id = next_request_id(&mut stream, &mut acc).expect("request");
            attempts += 1;
            let mut out = Vec::new();
            if attempts < 3 {
                frame::encode_response(&mut out, id, Status::Overloaded, 0.0);
            } else {
                frame::encode_response(&mut out, id, Status::Ok, 321.5);
            }
            stream.write_all(&out).expect("respond");
            if attempts == 3 {
                return attempts;
            }
        }
    });

    let mut client = WireClient::connect(addr).expect("connect");
    let preds: Vec<Vec<IdPredicate>> = vec![vec![]];
    let retry = RetryConfig {
        base: Duration::from_micros(200),
        cap: Duration::from_millis(2),
        deadline: Duration::from_secs(5),
        seed: 3,
    };
    let response =
        client.request_with_retry(77, 0, 0, &preds, &[(0, 9)], &retry).expect("retry loop");
    assert_eq!(response.request_id, 77);
    assert_eq!(response.status, Status::Ok);
    assert_eq!(response.value, 321.5);
    assert_eq!(server.join().expect("server"), 3, "exactly two sheds then one served attempt");
}

#[test]
fn the_retry_client_returns_the_last_typed_shed_at_its_deadline() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    // Scripted server: shed every attempt until the client hangs up.
    let server = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        read_preamble(&mut stream);
        let mut acc = Vec::new();
        let mut attempts = 0u32;
        while let Ok(id) = next_request_id(&mut stream, &mut acc) {
            attempts += 1;
            let mut out = Vec::new();
            frame::encode_response(&mut out, id, Status::Overloaded, 0.0);
            if stream.write_all(&out).is_err() {
                break;
            }
        }
        attempts
    });

    let mut client = WireClient::connect(addr).expect("connect");
    let preds: Vec<Vec<IdPredicate>> = vec![vec![]];
    let retry = RetryConfig {
        base: Duration::from_millis(1),
        cap: Duration::from_millis(4),
        deadline: Duration::from_millis(25),
        seed: 11,
    };
    let started = std::time::Instant::now();
    let response =
        client.request_with_retry(5, 0, 0, &preds, &[(0, 9)], &retry).expect("retry loop");
    // The shed comes back typed — not an error — once the budget is spent,
    // and the client does not keep hammering past its deadline.
    assert_eq!(response.status, Status::Overloaded);
    assert_eq!(response.request_id, 5);
    assert!(started.elapsed() < Duration::from_secs(2), "deadline bounds the retry loop");
    drop(client);
    assert!(server.join().expect("server") >= 1);
}

#[test]
fn a_reconnecting_client_replays_its_unanswered_request() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let server = std::thread::spawn(move || {
        // First connection: swallow the request, then die without answering.
        let (mut stream, _) = listener.accept().expect("accept");
        read_preamble(&mut stream);
        let mut acc = Vec::new();
        let first_id = next_request_id(&mut stream, &mut acc).expect("first request");
        drop(stream);
        // The redial replays the unanswered frame verbatim; answer it.
        let (mut stream, _) = listener.accept().expect("re-accept");
        read_preamble(&mut stream);
        let mut acc = Vec::new();
        let replayed_id = next_request_id(&mut stream, &mut acc).expect("replayed request");
        let mut out = Vec::new();
        frame::encode_response(&mut out, replayed_id, Status::Ok, 55.0);
        stream.write_all(&out).expect("respond");
        (first_id, replayed_id)
    });

    let mut client = WireClient::connect(addr).expect("connect");
    client.enable_reconnect().expect("reconnect enabled");
    let preds: Vec<Vec<IdPredicate>> = vec![vec![IdPredicate { op: PredOp::Le, value_id: 3 }]];
    client.submit_request(99, 1, 0, &preds, &[(0, 5)]);
    client.flush().expect("flush");
    // The dead connection surfaces inside recv; with reconnect enabled the
    // client redials and replays, and the caller just gets the answer.
    let response = client.recv().expect("answer after redial");
    assert_eq!(response.request_id, 99);
    assert_eq!(response.status, Status::Ok);
    assert_eq!(response.value, 55.0);
    let (first, replayed) = server.join().expect("server");
    assert_eq!(first, 99);
    assert_eq!(replayed, 99, "the replayed frame carries the original request id");
}

#[test]
fn pipeline_cap_sheds_at_the_connection_before_the_queues() {
    let (tables, workloads) = trained_tables(1);
    let cfg = WireScenarioConfig {
        scenario: ScenarioConfig {
            seed: 11,
            clients: 2,
            requests_per_client: 30,
            mean_gap: Duration::from_micros(10),
            // Workers only run long after all arrivals: the connection's
            // in-flight cap is the only backpressure in play.
            service_every: Duration::from_millis(100),
            pattern: ArrivalPattern::Uniform,
            harness: HarnessConfig::default(),
        },
        chunk: ChunkMode::Exact,
        max_pipeline: 4,
    };
    let report = run_wire_scenario(&tables, &workloads, &cfg);
    assert_eq!(report.submitted, 60);
    assert!(
        report.shed_overload >= 52,
        "with a pipeline cap of 4 per connection, at most 4 of each client's \
         30 requests fit before the first worker turn: {report:?}"
    );
    assert!(report.served >= 8, "capped pipelines still serve their admitted window: {report:?}");
    assert_eq!(report.accounted(), report.submitted);
    assert_eq!(report.mismatches, 0);
    assert_eq!(report, run_wire_scenario(&tables, &workloads, &cfg));
}
