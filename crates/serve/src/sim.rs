//! Deterministic serving test harness: a virtual-clock, seeded-RNG
//! multi-client driver over the **real** router/worker code.
//!
//! Concurrency tests that rely on wall-clock timing are flaky by
//! construction: whether a burst overflows a queue depends on how fast the
//! machine drains it. This module removes time and thread scheduling from
//! the equation while changing *nothing else*:
//!
//! * the same shard queues, the same admission check, the same
//!   deadline triage, and the same shard-worker batch execution as the
//!   production [`crate::DuetServer`] — just driven single-threaded;
//! * a [`VirtualClock`] that only moves when the driver says so, making
//!   deadline expiry a pure function of the script;
//! * scripted arrival patterns (uniform, bursty, hot-table-skewed)
//!   generated from a seeded RNG, so a scenario replays **bit-identically**:
//!   the same seed always produces the same shed/served counts, the same
//!   batches, and the same estimates.
//!
//! Two layers are exposed: [`RouterHarness`], a low-level single-step driver
//! (also used by `tests/zero_alloc.rs` to prove the routed hot loop is
//! allocation-free), and [`run_scenario`], which replays a full scripted
//! multi-client workload and folds the outcomes into a [`ScenarioReport`]
//! whose equality across runs *is* the determinism assertion.

use crate::batcher::{execute_supervised, BatchConfig, ShardWorker};
use crate::cache::{canonical_key_from_parts, HotSet, ShardedCache};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::online::{OnlineConfig, OnlineDirectory, OnlineHooks, OnlineTable, OnlineTickReport};
use crate::registry::ModelSlot;
use crate::router::{
    shard_for, Clock, ReplyTo, RoutedRequest, Router, RouterConfig, ShedReason, TableResources,
    VirtualClock,
};
use crate::tier::ModelTier;
use crate::wire::conn::{ConnConfig, WireConn};
use crate::wire::frame::{self, DecodeError, FrameView, Status};
use duet_core::{query_to_id_predicates, DuetEstimator};
use duet_data::Table;
use duet_query::{exact_cardinality, CardinalityEstimator, Query};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Configuration of a [`RouterHarness`] (a [`crate::ServeConfig`] minus the
/// production-only knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarnessConfig {
    /// Routing and admission control under test.
    pub router: RouterConfig,
    /// Micro-batcher tuning.
    pub batch: BatchConfig,
    /// Result-cache entries per table; defaults to 0 (off) so every request
    /// exercises the queue/batch path.
    pub cache_capacity: usize,
    /// Cache shards per table.
    pub cache_shards: usize,
    /// Model-memory budget in bytes enforced by the workers (see
    /// [`crate::ModelTier`]); defaults to 0 (unlimited, no eviction).
    pub model_budget_bytes: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            router: RouterConfig::default(),
            batch: BatchConfig::default(),
            cache_capacity: 0,
            cache_shards: 1,
            model_budget_bytes: 0,
        }
    }
}

/// An encoded request ready for admission, produced by
/// [`RouterHarness::prepare`]. Opaque; re-submittable after
/// [`RouterHarness::turn_recycling`] hands it back.
pub struct PreparedRequest(pub(crate) RoutedRequest);

impl PreparedRequest {
    /// The dense table index this request addresses.
    pub fn table(&self) -> usize {
        self.0.table_id as usize
    }
}

/// Outcome of submitting one query to the harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SubmitResult {
    /// Served from the table's result cache (only with a cache configured).
    Cached(f64),
    /// Admitted; the outcome will appear in [`RouterHarness::outcomes`]
    /// after a worker turn executes it. `depth` is the post-admission queue
    /// depth of the target shard.
    Queued {
        /// Queue depth of the target shard after admission.
        depth: usize,
    },
    /// Rejected at admission: the target shard's queue was full.
    Shed {
        /// Queue depth of the target shard at rejection.
        depth: usize,
    },
}

/// A single-threaded driver over the production routing/batching code.
///
/// The harness owns everything a [`crate::DuetServer`] would spread across
/// threads — router shards, one shard worker per shard, the id-indexed
/// table directory — and exposes explicit steps: [`RouterHarness::submit_query`]
/// admits, [`RouterHarness::turn`] runs one batch per shard, the
/// [`VirtualClock`] moves only via [`RouterHarness::clock`]. Ticket replies
/// land in an outcome log instead of channels, so no call ever blocks.
pub struct RouterHarness {
    clock: Arc<VirtualClock>,
    router: Router,
    workers: Vec<ShardWorker>,
    directory: Vec<TableResources>,
    /// Shard each table id routes to (precomputed from the table names).
    table_shard: Vec<usize>,
    /// Per-table hot-query trackers (capacity 0 — disabled — until
    /// [`RouterHarness::enable_hot_set`]).
    hot: Vec<Arc<HotSet>>,
    /// Online-learning state for tables with
    /// [`RouterHarness::enable_online`] called; shared with the simulated
    /// wire connections' ingest/feedback handlers.
    online: Arc<OnlineDirectory>,
    metrics: Arc<ServeMetrics>,
    tier: Arc<ModelTier>,
    outcomes: Vec<(u64, Result<f64, ShedReason>)>,
    config: HarnessConfig,
}

impl RouterHarness {
    /// Build a harness serving `tables` (name + trained estimator; the index
    /// in the vector becomes the table id).
    pub fn new(tables: Vec<(String, DuetEstimator)>, config: HarnessConfig) -> Self {
        let clock = Arc::new(VirtualClock::new());
        let metrics = Arc::new(ServeMetrics::new());
        let clock_dyn: Arc<dyn Clock> = clock.clone();
        let router = Router::new(config.router, clock_dyn, metrics.clone());
        let num_shards = router.num_shards();
        let mut directory = Vec::with_capacity(tables.len());
        let mut table_shard = Vec::with_capacity(tables.len());
        for (name, estimator) in tables {
            table_shard.push(shard_for(&name, num_shards));
            directory.push(TableResources {
                name: Arc::from(name.as_str()),
                slot: Arc::new(ModelSlot::new(estimator)),
                cache: Arc::new(ShardedCache::new(config.cache_capacity, config.cache_shards)),
            });
        }
        let hot = directory.iter().map(|_| Arc::new(HotSet::new(0))).collect();
        Self {
            clock,
            router,
            workers: (0..num_shards).map(|_| ShardWorker::new()).collect(),
            directory,
            table_shard,
            hot,
            online: Arc::new(OnlineDirectory::new()),
            metrics,
            tier: Arc::new(ModelTier::new(config.model_budget_bytes)),
            outcomes: Vec::new(),
            config,
        }
    }

    /// Track up to `capacity` hot queries for `table` (replayed into the
    /// cache after an online publish, exactly as the production server
    /// does after a hot-swap).
    pub fn enable_hot_set(&mut self, table: usize, capacity: usize) {
        self.hot[table] = Arc::new(HotSet::new(capacity));
    }

    /// Enable the online-learning loop for `table`: `data` is the table the
    /// serving model was trained on (ingest appends to it; it is also the
    /// retrain substrate). Returns the shared state so the driver can
    /// ingest, feed back, and tick directly.
    pub fn enable_online(
        &mut self,
        table: usize,
        data: Table,
        cfg: OnlineConfig,
    ) -> Arc<Mutex<OnlineTable>> {
        let resources = &self.directory[table];
        let hooks = OnlineHooks {
            slot: resources.slot.clone(),
            cache: resources.cache.clone(),
            hot: self.hot[table].clone(),
            tier: self.tier.clone(),
            metrics: self.metrics.clone(),
            table_id: table,
        };
        self.online.enable(table, OnlineTable::new(data, cfg, hooks))
    }

    /// The online-learning directory (shared with simulated wire
    /// connections).
    pub fn online(&self) -> &Arc<OnlineDirectory> {
        &self.online
    }

    /// Run one trainer tick on `table`'s online state.
    ///
    /// Panics if online learning was not enabled for `table`.
    pub fn online_tick(&self, table: usize) -> OnlineTickReport {
        let state = self.online.get(table).expect("online learning not enabled for table");
        let report = state.lock().expect("online table poisoned").tick();
        report
    }

    /// The model-memory tier enforcing
    /// [`HarnessConfig::model_budget_bytes`] (e.g. to set a spill
    /// directory, or inspect heat).
    pub fn tier(&self) -> &ModelTier {
        &self.tier
    }

    /// Arm an injected fault hook on every shard worker. The hook runs
    /// inside the supervised batch execution (after model resolve, before
    /// the forward pass); a panic it throws is caught by the exact
    /// `catch_unwind` supervision the production shard threads run, failing
    /// the batch typed and respawning the worker.
    pub fn arm_fault(&mut self, fault: Arc<dyn Fn() + Send + Sync>) {
        for worker in &mut self.workers {
            worker.fault = Some(fault.clone());
        }
    }

    /// Arm a seeded panic plan: the batch executions whose global ordinal
    /// (0-based, counted across all shards in execution order) appears in
    /// `batches` panic mid-execution. Under the single-threaded harness the
    /// ordinal sequence is a pure function of the script, so a replay hits
    /// the identical batches.
    pub fn arm_panic_batches(&mut self, batches: &[u64]) {
        let mut panic_at = batches.to_vec();
        panic_at.sort_unstable();
        panic_at.dedup();
        let executed = Arc::new(AtomicU64::new(0));
        self.arm_fault(Arc::new(move || {
            let ordinal = executed.fetch_add(1, Ordering::Relaxed);
            if panic_at.binary_search(&ordinal).is_ok() {
                panic!("injected model fault (batch {ordinal})");
            }
        }));
    }

    /// The harness's virtual clock (advance it to make deadlines expire).
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Number of worker shards.
    pub fn num_shards(&self) -> usize {
        self.router.num_shards()
    }

    /// Number of registered tables.
    pub fn num_tables(&self) -> usize {
        self.directory.len()
    }

    /// The shard table `table` routes to.
    pub fn shard_of_table(&self, table: usize) -> usize {
        self.table_shard[table]
    }

    /// The name table `table` was registered under.
    pub fn table_name(&self, table: usize) -> &str {
        &self.directory[table].name
    }

    /// The estimator currently serving `table`.
    pub fn estimator(&self, table: usize) -> Arc<DuetEstimator> {
        self.directory[table].slot.current()
    }

    /// Encode `query` against `table`'s schema into a routable request.
    /// With `ticket: Some(t)`, the outcome is logged under `t`; with `None`
    /// it is discarded (allocation-probe mode).
    ///
    /// # Panics
    /// Panics if the table's model is evicted and cannot be reloaded
    /// (corrupt or unreadable spilled checkpoint); fault-tolerant callers
    /// use [`RouterHarness::try_prepare`].
    pub fn prepare(&self, table: usize, query: &Query, ticket: Option<u64>) -> PreparedRequest {
        self.try_prepare(table, query, ticket).expect("model unavailable (reload failed)")
    }

    /// [`RouterHarness::prepare`], but a failed lazy reload (the tier
    /// evicted the model and its checkpoint has gone bad) comes back as a
    /// typed error instead of a panic — mirroring the production front
    /// door's [`crate::ServeError::ModelUnavailable`] path, including its
    /// metric.
    pub fn try_prepare(
        &self,
        table: usize,
        query: &Query,
        ticket: Option<u64>,
    ) -> Result<PreparedRequest, crate::registry::ReloadError> {
        let resources = &self.directory[table];
        // Resolving may lazily reload a model the tier evicted (encoding
        // needs its schema) — mirror the production front door's counting.
        let was_resident = resources.slot.is_resident();
        let (generation, estimator) = resources
            .slot
            .try_current_versioned()
            .inspect_err(|_| self.metrics.record_reload_failure())?;
        if !was_resident {
            self.metrics.record_model_reload();
        }
        let schema = estimator.schema();
        let preds = query_to_id_predicates(schema, query);
        let intervals = query.column_intervals(schema);
        let key = (self.config.cache_capacity > 0)
            .then(|| canonical_key_from_parts(schema, generation, &preds, &intervals));
        Ok(PreparedRequest(RoutedRequest {
            table_id: table as u32,
            slot_uid: resources.slot.uid(),
            preds,
            intervals,
            key,
            deadline: self.router.admission_deadline(),
            reply: match ticket {
                Some(t) => ReplyTo::Ticket(t),
                None => ReplyTo::Discard,
            },
        }))
    }

    /// Admit a prepared request to its table's shard. On rejection the
    /// request is handed back (encodings intact) and the overload shed is
    /// recorded. Allocation-free on a warm queue.
    // Mirrors `Shard::try_push`: the rejected request comes back by value so
    // the recycling driver loops stay allocation-free.
    #[allow(clippy::result_large_err)]
    pub fn submit_prepared(&mut self, request: PreparedRequest) -> Result<usize, PreparedRequest> {
        let shard = self.table_shard[request.0.table_id as usize];
        match self.router.shard(shard).try_push(request.0) {
            Ok(depth) => Ok(depth),
            Err(rejected) => {
                self.metrics.record_shed_overload();
                Err(PreparedRequest(rejected))
            }
        }
    }

    /// Encode, cache-probe, and admit one query (the driver-facing
    /// equivalent of [`crate::DuetServer::estimate`]'s submit pipeline).
    /// A table whose evicted model cannot be reloaded sheds at admission
    /// (counted as a reload failure, never a panic).
    pub fn submit_query(&mut self, table: usize, query: &Query, ticket: u64) -> SubmitResult {
        let request = match self.try_prepare(table, query, Some(ticket)) {
            Ok(request) => request,
            Err(_unloadable) => {
                return SubmitResult::Shed {
                    depth: self.router.shard(self.table_shard[table]).depth(),
                };
            }
        };
        if let Some(key) = &request.0.key {
            // Popularity is observed on every cacheable request — hit or
            // miss — mirroring the production submit path, so the hot set
            // reflects what clients actually ask.
            self.hot[table].observe(key, &request.0.preds, &request.0.intervals);
            if let Some(value) = self.directory[table].cache.get(key) {
                return SubmitResult::Cached(value);
            }
        }
        match self.submit_prepared(request) {
            Ok(depth) => SubmitResult::Queued { depth },
            Err(_rejected) => {
                SubmitResult::Shed { depth: self.router.shard(self.table_shard[table]).depth() }
            }
        }
    }

    /// Run one worker turn: every shard pops and executes at most one
    /// same-table batch at the current virtual time. Returns the number of
    /// requests processed (served + deadline-shed). Allocation-free once
    /// warm.
    pub fn turn(&mut self) -> usize {
        let now = self.clock.now();
        let max_batch = self.config.batch.max_batch_size;
        let mut processed = 0;
        for shard_index in 0..self.workers.len() {
            let worker = &mut self.workers[shard_index];
            if self.router.shard(shard_index).try_pop_batch(max_batch, &mut worker.batch) {
                processed += worker.batch.len();
                // The same supervised execution the production shard threads
                // run: a panicking batch is failed typed and the worker state
                // respawned, so fault-injection scenarios exercise the real
                // recovery path.
                execute_supervised(
                    worker,
                    &self.directory,
                    now,
                    &self.metrics,
                    &self.tier,
                    &mut self.outcomes,
                );
                // Recycle rather than drop: wire-originated requests go back
                // to their connection's pool, keeping the simulated wire hot
                // loop allocation-free (ticket/discard requests just drop,
                // exactly as `clear` did).
                crate::batcher::recycle_batch(&mut worker.batch);
            }
        }
        processed
    }

    /// [`RouterHarness::turn`], but hand the processed requests back (their
    /// encodings intact) instead of dropping them, so an allocation probe
    /// can recycle one fixed request set through the hot loop indefinitely.
    pub fn turn_recycling(&mut self, recycled: &mut Vec<PreparedRequest>) -> usize {
        let now = self.clock.now();
        let max_batch = self.config.batch.max_batch_size;
        let mut processed = 0;
        for shard_index in 0..self.workers.len() {
            let worker = &mut self.workers[shard_index];
            if self.router.shard(shard_index).try_pop_batch(max_batch, &mut worker.batch) {
                processed += worker.batch.len();
                execute_supervised(
                    worker,
                    &self.directory,
                    now,
                    &self.metrics,
                    &self.tier,
                    &mut self.outcomes,
                );
                for request in worker.batch.drain(..) {
                    recycled.push(PreparedRequest(request));
                }
            }
        }
        processed
    }

    /// Run worker turns (without advancing the clock) until every queue is
    /// empty; returns the number of requests processed.
    pub fn drain(&mut self) -> usize {
        let mut total = 0;
        while self.router.queue_depth() > 0 {
            total += self.turn();
        }
        total
    }

    /// Ticket outcomes recorded so far, in execution order.
    pub fn outcomes(&self) -> &[(u64, Result<f64, ShedReason>)] {
        &self.outcomes
    }

    /// Clear the ticket outcome log.
    pub fn clear_outcomes(&mut self) {
        self.outcomes.clear();
    }

    /// Total queued requests across all shards.
    pub fn queue_depth(&self) -> usize {
        self.router.queue_depth()
    }

    /// Per-shard queue depths.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.router.queue_depths()
    }

    /// Snapshot of the harness metrics (batches, sheds, queue depth).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let (hits, misses) = self
            .directory
            .iter()
            .fold((0u64, 0u64), |(h, m), r| (h + r.cache.hits(), m + r.cache.misses()));
        self.metrics.snapshot(hits, misses, self.router.queue_depth())
    }
}

impl std::fmt::Debug for RouterHarness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterHarness")
            .field("tables", &self.directory.len())
            .field("shards", &self.workers.len())
            .field("queue_depth", &self.router.queue_depth())
            .finish()
    }
}

/// How scripted clients spread their requests over tables and time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalPattern {
    /// Jittered-uniform inter-arrival gaps, tables chosen uniformly.
    Uniform,
    /// Clients emit `burst_size` back-to-back requests (zero gap), then go
    /// idle for `burst_size` mean gaps — the queue-overflow scenario.
    Bursty {
        /// Requests per burst.
        burst_size: usize,
    },
    /// Jittered-uniform gaps, but `hot_permille`/1000 of all requests target
    /// `hot_table` — the skew scenario for routing fairness.
    HotTable {
        /// Index of the hot table.
        hot_table: usize,
        /// Probability (per mille) that a request targets the hot table.
        hot_permille: u16,
    },
}

/// A scripted multi-client replay.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Seed for the arrival script (same seed ⇒ identical replay).
    pub seed: u64,
    /// Number of scripted clients.
    pub clients: usize,
    /// Requests each client submits.
    pub requests_per_client: usize,
    /// Mean virtual inter-arrival gap per client.
    pub mean_gap: Duration,
    /// Virtual cadence of worker turns (each shard pops one batch per turn).
    pub service_every: Duration,
    /// Arrival pattern under test.
    pub pattern: ArrivalPattern,
    /// Harness (router/batch/cache) configuration.
    pub harness: HarnessConfig,
}

/// Deterministic summary of one scenario replay: integer counters only, so
/// two replays with the same seed can be compared with `==` — that equality
/// *is* the determinism assertion.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScenarioReport {
    /// Requests the script submitted.
    pub submitted: u64,
    /// Requests answered with an estimate.
    pub served: u64,
    /// Requests rejected at admission (shard queue full).
    pub shed_overload: u64,
    /// Requests dropped at dequeue (deadline expired).
    pub shed_deadline: u64,
    /// Requests answered with a typed internal fault: their batch panicked,
    /// the panic was caught by shard supervision, and every request in it
    /// was failed [`ShedReason::WorkerPanicked`].
    pub shed_internal: u64,
    /// Per-table submissions.
    pub per_table_submitted: Vec<u64>,
    /// Per-table served counts.
    pub per_table_served: Vec<u64>,
    /// Per-table shed counts (admission + deadline).
    pub per_table_shed: Vec<u64>,
    /// Forward batches executed.
    pub batches: u64,
    /// Highest single-shard queue depth observed at any admission.
    pub max_shard_depth: usize,
    /// Served results whose bits differed from the unbatched per-query
    /// reference (must be 0: routing/batching never changes an answer).
    pub mismatches: u64,
    /// Models evicted to checkpoint bytes by the memory tier (0 without a
    /// [`HarnessConfig::model_budget_bytes`] budget).
    pub model_evictions: u64,
    /// Evicted models lazily reloaded on a later request.
    pub model_reloads: u64,
    /// Rows ingested through the online path (0 without online learning).
    pub ingested_rows: u64,
    /// Drift confirmations (threshold + hysteresis) across all trainer
    /// ticks.
    pub drift_detections: u64,
    /// Online retrains that ran.
    pub retrains: u64,
    /// Retrained models published through the hot-swap path.
    pub swaps_published: u64,
    /// Feedback entries rejected (stale slot uid or invalid cardinality).
    pub feedback_rejected: u64,
    /// Requests served after the first online publish.
    pub post_swap_served: u64,
    /// Hot-set entries replayed into the cache by online publishes.
    pub hot_replayed: u64,
    /// Worker panics caught by shard supervision (0 without injected
    /// faults).
    pub panics_caught: u64,
    /// Shard workers respawned (fresh workspace pool) after a caught panic.
    pub shard_restarts: u64,
    /// Lazy reloads of evicted models that failed (corrupt, truncated, or
    /// unreadable spilled checkpoint); the affected requests shed instead.
    pub reload_failures: u64,
    /// Evictions abandoned because spilling the checkpoint failed (the
    /// model stayed resident, over budget).
    pub spill_failures: u64,
}

impl ScenarioReport {
    /// `served + shed_overload + shed_deadline + shed_internal` — every
    /// submitted request must be accounted for exactly once, faults
    /// included.
    pub fn accounted(&self) -> u64 {
        self.served + self.shed_overload + self.shed_deadline + self.shed_internal
    }

    /// Copy the harness-metric counters into the report.
    fn fold_metrics(&mut self, snapshot: &MetricsSnapshot) {
        self.batches = snapshot.batches;
        self.model_evictions = snapshot.model_evictions;
        self.model_reloads = snapshot.model_reloads;
        self.ingested_rows = snapshot.ingested_rows;
        self.drift_detections = snapshot.drift_detections;
        self.retrains = snapshot.retrains;
        self.swaps_published = snapshot.swaps_published;
        self.feedback_rejected = snapshot.feedback_rejected;
        self.panics_caught = snapshot.panics_caught;
        self.shard_restarts = snapshot.shard_restarts;
        self.reload_failures = snapshot.reload_failures;
        self.spill_failures = snapshot.spill_failures;
    }
}

/// One scripted arrival.
#[derive(Debug, Clone, Copy)]
struct Event {
    at_ns: u64,
    /// Scripted client (wire scenarios map this to a connection).
    client: usize,
    table: usize,
    query: usize,
}

fn pick_table(rng: &mut SmallRng, pattern: ArrivalPattern, num_tables: usize) -> usize {
    match pattern {
        ArrivalPattern::HotTable { hot_table, hot_permille } => {
            let hot = hot_table.min(num_tables - 1);
            if rng.gen_range(0u32..1000) < u32::from(hot_permille) || num_tables == 1 {
                hot
            } else {
                // Uniform over the other tables.
                let mut t = rng.gen_range(0..num_tables - 1);
                if t >= hot {
                    t += 1;
                }
                t
            }
        }
        _ => rng.gen_range(0..num_tables),
    }
}

/// Generate the deterministic arrival script for a scenario.
fn script(cfg: &ScenarioConfig, workloads: &[Vec<Query>]) -> Vec<Event> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let gap_ns = cfg.mean_gap.as_nanos().max(1) as u64;
    let mut events = Vec::with_capacity(cfg.clients * cfg.requests_per_client);
    for client in 0..cfg.clients {
        // Stagger client start times across one mean gap.
        let mut at_ns = gap_ns * client as u64 / cfg.clients.max(1) as u64;
        for k in 0..cfg.requests_per_client {
            let table = pick_table(&mut rng, cfg.pattern, workloads.len());
            let query = rng.gen_range(0..workloads[table].len());
            events.push(Event { at_ns, client, table, query });
            at_ns += match cfg.pattern {
                ArrivalPattern::Bursty { burst_size } => {
                    let burst = burst_size.max(1);
                    if (k + 1) % burst == 0 {
                        gap_ns * burst as u64
                    } else {
                        0
                    }
                }
                // 50%..150% jitter around the mean gap.
                _ => gap_ns * rng.gen_range(50u64..=150) / 100,
            };
        }
    }
    // Stable sort: simultaneous arrivals keep client order, so the replay
    // order is a pure function of the script.
    events.sort_by_key(|e| e.at_ns);
    events
}

/// Replay a scripted multi-client scenario against the real routing code
/// and fold the outcomes into a [`ScenarioReport`].
///
/// `tables[i]` pairs a table name (which determines its shard) with its
/// trained estimator; `workloads[i]` is the query pool scripted clients
/// draw from for that table. Served results are compared bit-for-bit
/// against the unbatched per-query reference path.
pub fn run_scenario(
    tables: &[(String, DuetEstimator)],
    workloads: &[Vec<Query>],
    cfg: &ScenarioConfig,
) -> ScenarioReport {
    assert_eq!(tables.len(), workloads.len(), "one workload per table");
    assert!(!tables.is_empty(), "need at least one table");

    // Unbatched per-query reference values (the bit-identity baseline).
    let expected: Vec<Vec<f64>> = tables
        .iter()
        .zip(workloads)
        .map(|((_, estimator), queries)| {
            let mut reference = estimator.clone();
            queries.iter().map(|q| reference.estimate(q)).collect()
        })
        .collect();

    let mut harness = RouterHarness::new(tables.to_vec(), cfg.harness);
    let events = script(cfg, workloads);
    let service_ns = cfg.service_every.as_nanos().max(1) as u64;
    let mut next_service = service_ns;

    let mut report = ScenarioReport {
        per_table_submitted: vec![0; tables.len()],
        per_table_served: vec![0; tables.len()],
        per_table_shed: vec![0; tables.len()],
        ..ScenarioReport::default()
    };
    // ticket -> (table, query); rejected tickets are folded immediately.
    let mut ticket_source = Vec::with_capacity(events.len());

    for event in &events {
        // Run the worker cadence up to this arrival.
        while next_service <= event.at_ns {
            harness.clock().set(Duration::from_nanos(next_service));
            harness.turn();
            next_service += service_ns;
        }
        harness.clock().set(Duration::from_nanos(event.at_ns));

        let ticket = ticket_source.len() as u64;
        ticket_source.push((event.table, event.query));
        report.submitted += 1;
        report.per_table_submitted[event.table] += 1;
        match harness.submit_query(event.table, &workloads[event.table][event.query], ticket) {
            SubmitResult::Cached(value) => {
                report.served += 1;
                report.per_table_served[event.table] += 1;
                if value.to_bits() != expected[event.table][event.query].to_bits() {
                    report.mismatches += 1;
                }
            }
            SubmitResult::Queued { depth } => {
                report.max_shard_depth = report.max_shard_depth.max(depth);
            }
            SubmitResult::Shed { .. } => {
                report.shed_overload += 1;
                report.per_table_shed[event.table] += 1;
            }
        }
    }

    // Drain the backlog on the same cadence (so deadlines keep expiring in
    // virtual time, not all at once).
    while harness.queue_depth() > 0 {
        harness.clock().advance(cfg.service_every);
        harness.turn();
    }

    for (ticket, outcome) in harness.outcomes() {
        let (table, query) = ticket_source[*ticket as usize];
        match outcome {
            Ok(value) => {
                report.served += 1;
                report.per_table_served[table] += 1;
                if value.to_bits() != expected[table][query].to_bits() {
                    report.mismatches += 1;
                }
            }
            Err(ShedReason::WorkerPanicked) => {
                report.shed_internal += 1;
                report.per_table_shed[table] += 1;
            }
            Err(_) => {
                report.shed_deadline += 1;
                report.per_table_shed[table] += 1;
            }
        }
    }
    report.fold_metrics(&harness.metrics_snapshot());
    report
}

// ---------------------------------------------------------------------------
// Wire simulation: seeded byte-level clients over the real frame codec and
// connection state machine.
// ---------------------------------------------------------------------------

/// How a simulated client's written bytes are delivered to its connection.
///
/// Real TCP makes no promise that one `write` becomes one `read`; this knob
/// recreates both failure shapes deterministically so the framing layer is
/// tested against them, not around them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkMode {
    /// Every written byte is delivered immediately, whole — the "one write,
    /// one read" best case.
    Exact,
    /// Bytes are delivered in seeded random chunks of `1..=max` bytes, and a
    /// tail is sometimes held back until the client's next activity — so
    /// frames arrive split across reads *and* coalesced with later frames.
    Random {
        /// Largest single delivery, in bytes (≥ 1).
        max: usize,
    },
}

/// A byte-level wire simulator: a [`RouterHarness`] fronted by real
/// [`WireConn`] state machines, with the transport replaced by in-memory
/// byte buffers.
///
/// This is the low-level layer: callers write protocol bytes with
/// [`WireSim::feed`], step the server with [`WireSim::pump`] (decode +
/// admission + response encode) and [`WireSim::turn`] (one worker batch per
/// shard), and read response bytes back with [`WireSim::output`]. Nothing
/// here touches a socket or a thread, so `tests/zero_alloc.rs` can hold an
/// allocation counter over the whole loop. [`run_wire_scenario`] builds the
/// scripted multi-client replay on top.
pub struct WireSim {
    harness: RouterHarness,
    conns: Vec<WireConn>,
    conn_config: ConnConfig,
    /// Connections torn down via [`WireSim::disconnect`].
    drops: u64,
}

impl WireSim {
    /// A simulator over `tables` with `connections` wire connections, each
    /// running the given connection config.
    pub fn new(
        tables: Vec<(String, DuetEstimator)>,
        config: HarnessConfig,
        conn_config: ConnConfig,
        connections: usize,
    ) -> Self {
        Self {
            harness: RouterHarness::new(tables, config),
            conns: (0..connections).map(|_| WireConn::new(conn_config)).collect(),
            conn_config,
            drops: 0,
        }
    }

    /// Simulate a mid-stream client disconnect: connection `conn` is torn
    /// down — half-received request bytes, in-flight tracking, and unsent
    /// response bytes all dropped, exactly what closing the socket does —
    /// and replaced with a fresh connection awaiting a new preamble.
    /// Requests the old connection had already admitted still execute;
    /// their completions land in the orphaned outbox and are never read,
    /// which is the documented fate of replies to a dead peer.
    pub fn disconnect(&mut self, conn: usize) {
        self.conns[conn] = WireConn::new(self.conn_config);
        self.drops += 1;
    }

    /// Connections dropped via [`WireSim::disconnect`] so far.
    pub fn conn_drops(&self) -> u64 {
        self.drops
    }

    /// The underlying single-step harness (clock, queue depths, metrics).
    pub fn harness(&self) -> &RouterHarness {
        &self.harness
    }

    /// The simulator's virtual clock.
    pub fn clock(&self) -> &VirtualClock {
        self.harness.clock()
    }

    /// Number of simulated connections.
    pub fn num_connections(&self) -> usize {
        self.conns.len()
    }

    /// Deliver raw client bytes to connection `conn` (the simulated
    /// counterpart of a socket read).
    pub fn feed(&mut self, conn: usize, bytes: &[u8]) {
        self.conns[conn].feed(bytes);
    }

    /// Run connection `conn`'s state machine: decode complete frames, admit
    /// requests to the real shard queues, and encode any finished responses
    /// into the connection's output buffer. Returns whether anything
    /// happened; a [`DecodeError`] means the byte stream was corrupt (a real
    /// listener would close the connection).
    pub fn pump(&mut self, conn: usize) -> Result<bool, DecodeError> {
        self.conns[conn].pump(
            &self.harness.router,
            &self.harness.directory,
            &self.harness.online,
            self.harness.clock.as_ref(),
            &self.harness.metrics,
        )
    }

    /// One worker turn at the current virtual time (see
    /// [`RouterHarness::turn`]); wire-originated requests are recycled back
    /// to their connections' pools.
    pub fn turn(&mut self) -> usize {
        self.harness.turn()
    }

    /// Response bytes waiting to be "read" by connection `conn`'s client.
    pub fn output(&self, conn: usize) -> &[u8] {
        self.conns[conn].output()
    }

    /// Discard `n` bytes of connection `conn`'s output (the client read
    /// them).
    pub fn consume_output(&mut self, conn: usize, n: usize) {
        self.conns[conn].consume_output(n);
    }

    /// Requests admitted on connection `conn` whose responses have not been
    /// encoded yet.
    pub fn inflight(&self, conn: usize) -> usize {
        self.conns[conn].inflight()
    }
}

impl std::fmt::Debug for WireSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WireSim")
            .field("connections", &self.conns.len())
            .field("harness", &self.harness)
            .finish()
    }
}

/// A scripted multi-client wire replay: [`ScenarioConfig`] plus the
/// transport knobs.
#[derive(Debug, Clone)]
pub struct WireScenarioConfig {
    /// The arrival script and harness configuration; `scenario.clients` is
    /// the number of wire connections.
    pub scenario: ScenarioConfig,
    /// How client bytes reach the server (split/coalesced delivery).
    pub chunk: ChunkMode,
    /// Per-connection in-flight cap before the server answers `Overloaded`
    /// from the wire layer itself.
    pub max_pipeline: usize,
}

/// One simulated client endpoint: bytes written but not yet delivered, and
/// bytes received but not yet decoded.
#[derive(Default)]
struct SimClient {
    /// Written, undelivered bytes ("in flight" on the simulated wire).
    pending: Vec<u8>,
    /// Received, undecoded response bytes.
    recv: Vec<u8>,
}

/// Replay a scripted workload through the **wire path**: every request is
/// encoded to protocol bytes by a scripted client, delivered (possibly
/// split/coalesced per [`ChunkMode`]), decoded and admitted by the real
/// [`WireConn`] state machine, batched by the real workers, and read back as
/// response frames — all under the virtual clock.
///
/// The resulting [`ScenarioReport`] has the same shape and invariants as
/// [`run_scenario`]'s (`accounted() == submitted`, `mismatches == 0`), and
/// replaying the same config twice must produce an identical report — that
/// equality is the wire layer's determinism assertion.
pub fn run_wire_scenario(
    tables: &[(String, DuetEstimator)],
    workloads: &[Vec<Query>],
    cfg: &WireScenarioConfig,
) -> ScenarioReport {
    assert_eq!(tables.len(), workloads.len(), "one workload per table");
    assert!(!tables.is_empty(), "need at least one table");
    assert!(cfg.scenario.clients > 0, "need at least one wire client");

    // Unbatched per-query reference values (the bit-identity baseline).
    let expected: Vec<Vec<f64>> = tables
        .iter()
        .zip(workloads)
        .map(|((_, estimator), queries)| {
            let mut reference = estimator.clone();
            queries.iter().map(|q| reference.estimate(q)).collect()
        })
        .collect();

    let conn_config = ConnConfig { max_pipeline: cfg.max_pipeline.max(1), ..ConnConfig::default() };
    let mut sim =
        WireSim::new(tables.to_vec(), cfg.scenario.harness, conn_config, cfg.scenario.clients);
    let events = script(&cfg.scenario, workloads);
    let service_ns = cfg.scenario.service_every.as_nanos().max(1) as u64;
    let mut next_service = service_ns;
    // Transport chunking gets its own seeded stream so arrival scripting and
    // delivery fragmentation are independent dimensions of the same seed.
    let mut chunk_rng = SmallRng::seed_from_u64(cfg.scenario.seed ^ 0x57_49_52_45); // "WIRE"

    let mut clients: Vec<SimClient> =
        (0..cfg.scenario.clients).map(|_| SimClient::default()).collect();
    // Every connection starts by writing the protocol preamble.
    for client in &mut clients {
        frame::encode_preamble(&mut client.pending);
    }

    let mut report = ScenarioReport {
        per_table_submitted: vec![0; tables.len()],
        per_table_served: vec![0; tables.len()],
        per_table_shed: vec![0; tables.len()],
        ..ScenarioReport::default()
    };
    // request id -> (table, query); ids are global across connections.
    let mut ticket_source: Vec<(usize, usize)> = Vec::with_capacity(events.len());
    let mut responses_seen: u64 = 0;

    /// Move up to the whole pending buffer from `client` into the server
    /// connection, split/held-back per `chunk`.
    fn deliver(
        sim: &mut WireSim,
        conn: usize,
        client: &mut SimClient,
        chunk: ChunkMode,
        rng: &mut SmallRng,
        everything: bool,
    ) {
        while !client.pending.is_empty() {
            let take = match chunk {
                ChunkMode::Exact => client.pending.len(),
                ChunkMode::Random { max } => {
                    if !everything && rng.gen_range(0u32..4) == 0 {
                        // Hold the tail back: it will coalesce with the
                        // client's next write.
                        break;
                    }
                    rng.gen_range(1..=max.max(1)).min(client.pending.len())
                }
            };
            sim.feed(conn, &client.pending[..take]);
            client.pending.drain(..take);
            sim.pump(conn).expect("simulated clients speak the protocol");
        }
    }

    /// Decode every complete response frame the server has produced for
    /// `conn` and fold it into the report.
    #[allow(clippy::too_many_arguments)]
    fn collect(
        sim: &mut WireSim,
        conn: usize,
        client: &mut SimClient,
        ticket_source: &[(usize, usize)],
        expected: &[Vec<f64>],
        report: &mut ScenarioReport,
        responses_seen: &mut u64,
    ) {
        let produced = sim.output(conn).len();
        if produced > 0 {
            client.recv.extend_from_slice(sim.output(conn));
            sim.consume_output(conn, produced);
        }
        let mut pos = 0;
        while let Some((view, consumed)) =
            frame::next_frame(&client.recv[pos..], frame::DEFAULT_MAX_FRAME_LEN)
                .expect("server frames are well-formed")
        {
            if let FrameView::Response(response) = view {
                *responses_seen += 1;
                let (table, query) = ticket_source[response.request_id as usize];
                match response.status {
                    Status::Ok => {
                        report.served += 1;
                        report.per_table_served[table] += 1;
                        if response.value.to_bits() != expected[table][query].to_bits() {
                            report.mismatches += 1;
                        }
                    }
                    Status::Overloaded => {
                        report.shed_overload += 1;
                        report.per_table_shed[table] += 1;
                    }
                    Status::DeadlineExceeded => {
                        report.shed_deadline += 1;
                        report.per_table_shed[table] += 1;
                    }
                    Status::Internal => {
                        report.shed_internal += 1;
                        report.per_table_shed[table] += 1;
                    }
                    Status::UnknownTable => {
                        unreachable!("scripted clients only address registered tables")
                    }
                    Status::Rejected => {
                        unreachable!("scripted clients send no ingest or feedback frames")
                    }
                }
            }
            pos += consumed;
        }
        client.recv.drain(..pos);
    }

    for event in &events {
        // Run the worker cadence up to this arrival, draining responses as
        // they are produced.
        while next_service <= event.at_ns {
            sim.clock().set(Duration::from_nanos(next_service));
            sim.turn();
            for (conn, client) in clients.iter_mut().enumerate() {
                sim.pump(conn).expect("pump after turn cannot hit new input");
                collect(
                    &mut sim,
                    conn,
                    client,
                    &ticket_source,
                    &expected,
                    &mut report,
                    &mut responses_seen,
                );
            }
            next_service += service_ns;
        }
        sim.clock().set(Duration::from_nanos(event.at_ns));

        // The scripted client encodes its request and writes it to the wire.
        let ticket = ticket_source.len() as u64;
        ticket_source.push((event.table, event.query));
        report.submitted += 1;
        report.per_table_submitted[event.table] += 1;
        {
            let estimator = sim.harness().estimator(event.table);
            let schema = estimator.schema();
            let query = &workloads[event.table][event.query];
            let preds = duet_core::query_to_id_predicates(schema, query);
            let intervals = query.column_intervals(schema);
            frame::encode_request(
                &mut clients[event.client].pending,
                ticket,
                event.table as u32,
                0, // defer to the router's configured deadline budget
                &preds,
                &intervals,
            );
        }
        deliver(
            &mut sim,
            event.client,
            &mut clients[event.client],
            cfg.chunk,
            &mut chunk_rng,
            false,
        );
        collect(
            &mut sim,
            event.client,
            &mut clients[event.client],
            &ticket_source,
            &expected,
            &mut report,
            &mut responses_seen,
        );
        report.max_shard_depth =
            report.max_shard_depth.max(sim.harness().queue_depths().into_iter().max().unwrap_or(0));
    }

    // All arrivals are in: flush every held-back byte, then keep the worker
    // cadence going until each request has produced exactly one response.
    for (conn, client) in clients.iter_mut().enumerate() {
        deliver(&mut sim, conn, client, cfg.chunk, &mut chunk_rng, true);
    }
    let mut idle_turns = 0u32;
    while responses_seen < report.submitted {
        sim.clock().advance(cfg.scenario.service_every);
        let processed = sim.turn();
        for (conn, client) in clients.iter_mut().enumerate() {
            sim.pump(conn).expect("pump after turn cannot hit new input");
            collect(
                &mut sim,
                conn,
                client,
                &ticket_source,
                &expected,
                &mut report,
                &mut responses_seen,
            );
        }
        idle_turns = if processed == 0 { idle_turns + 1 } else { 0 };
        assert!(idle_turns < 1000, "wire drain stalled: a request produced no response");
    }

    report.fold_metrics(&sim.harness().metrics_snapshot());
    report
}

// ---------------------------------------------------------------------------
// Drift scenario: train-while-serving under the virtual clock.
// ---------------------------------------------------------------------------

/// A seeded train-while-serving replay: warm traffic over one table, a
/// mid-run distribution shift injected through the online ingest path,
/// trainer ticks and query feedback on fixed cadences, then post-shift
/// traffic — the whole drift → retrain → hot-swap sequence as one scripted
/// scenario.
#[derive(Debug, Clone)]
pub struct DriftScenarioConfig {
    /// Seed of the scenario script (query picks + skewed-row generation).
    /// Same seed ⇒ identical [`ScenarioReport`].
    pub seed: u64,
    /// Queries served before the shift (builds the hot set and the cache).
    pub warm_queries: usize,
    /// Skewed rows ingested at the shift: every column's value is drawn
    /// from the top eighth of its dictionary, moving histogram mass the
    /// drift monitor must notice.
    pub shift_rows: usize,
    /// Queries served after the shift (the trainer runs during this phase).
    pub post_queries: usize,
    /// Trainer-tick cadence: one [`OnlineTable::tick`] every this many
    /// post-shift queries (0 disables ticking — the drift is never acted
    /// on).
    pub tick_every: usize,
    /// Feedback cadence: every this many post-shift queries, the true
    /// cardinality of the query just served is pushed back (0 disables
    /// feedback).
    pub feedback_every: usize,
    /// Hot-set capacity (hottest keys replayed into the cache after an
    /// online publish).
    pub hot_keys: usize,
    /// Online-learning tuning (threshold, hysteresis, retrain budget).
    pub online: OnlineConfig,
    /// Router/batch/cache configuration.
    pub harness: HarnessConfig,
}

impl Default for DriftScenarioConfig {
    fn default() -> Self {
        Self {
            seed: 7,
            warm_queries: 64,
            shift_rows: 512,
            post_queries: 64,
            tick_every: 8,
            feedback_every: 4,
            hot_keys: 16,
            online: OnlineConfig::default(),
            harness: HarnessConfig { cache_capacity: 256, ..HarnessConfig::default() },
        }
    }
}

/// Replay a seeded drift scenario: serve `workload` over a model trained on
/// `table`, inject a skewed ingest burst mid-run, and let the online
/// trainer detect the drift, retrain, and publish through the hot-swap +
/// hot-set-replay path — all under the virtual clock, so replaying the same
/// inputs twice produces an identical [`ScenarioReport`] (generation bumps,
/// retrain counts, and post-swap serving included). That equality is the
/// online loop's determinism assertion.
pub fn run_drift_scenario(
    table: &Table,
    estimator: &DuetEstimator,
    workload: &[Query],
    cfg: &DriftScenarioConfig,
) -> ScenarioReport {
    assert!(!workload.is_empty(), "need a workload to replay");
    let mut harness =
        RouterHarness::new(vec![("drift".to_string(), estimator.clone())], cfg.harness);
    harness.enable_hot_set(0, cfg.hot_keys);
    let online = harness.enable_online(0, table.clone(), cfg.online);

    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x44_52_49_46); // "DRIF"
    let mut report = ScenarioReport {
        per_table_submitted: vec![0; 1],
        per_table_served: vec![0; 1],
        per_table_shed: vec![0; 1],
        ..ScenarioReport::default()
    };
    // ticket -> whether it was submitted after the first publish.
    let mut post_swap_ticket: Vec<bool> = Vec::new();
    let mut swapped = false;

    let total = cfg.warm_queries + cfg.post_queries;
    for i in 0..total {
        if i == cfg.warm_queries {
            // The shift: a burst of rows skewed onto the top of every
            // column's dictionary, appended through the validated ingest
            // path (so the live histograms move incrementally, exactly as
            // production ingest would move them).
            let mut guard = online.lock().expect("online table poisoned");
            let ndvs: Vec<usize> =
                (0..guard.table().num_columns()).map(|c| guard.table().column(c).ndv()).collect();
            let mut row = Vec::with_capacity(ndvs.len());
            for _ in 0..cfg.shift_rows {
                row.clear();
                for &ndv in &ndvs {
                    let band = (ndv / 8).max(1).min(ndv);
                    row.push((ndv - 1 - rng.gen_range(0..band)) as u32);
                }
                guard.ingest_row(&row).expect("skewed rows stay inside the dictionary");
            }
        }

        let q = rng.gen_range(0..workload.len());
        harness.clock().advance(Duration::from_micros(100));
        let ticket = post_swap_ticket.len() as u64;
        post_swap_ticket.push(swapped);
        report.submitted += 1;
        report.per_table_submitted[0] += 1;
        match harness.submit_query(0, &workload[q], ticket) {
            SubmitResult::Cached(_) => {
                report.served += 1;
                report.per_table_served[0] += 1;
                if swapped {
                    report.post_swap_served += 1;
                }
            }
            SubmitResult::Queued { depth } => {
                report.max_shard_depth = report.max_shard_depth.max(depth);
            }
            SubmitResult::Shed { .. } => {
                report.shed_overload += 1;
                report.per_table_shed[0] += 1;
            }
        }
        harness.drain();

        if i >= cfg.warm_queries {
            let k = i - cfg.warm_queries;
            if cfg.feedback_every > 0 && k.is_multiple_of(cfg.feedback_every) {
                // Feed back the true cardinality of the query just served,
                // stamped with the currently registered slot's uid (the
                // same stamp the wire front door applies).
                let uid = harness.directory[0].slot.uid();
                let serving = harness.estimator(0);
                let schema = serving.schema();
                let query = &workload[q];
                let preds = query_to_id_predicates(schema, query);
                let intervals = query.column_intervals(schema);
                let mut guard = online.lock().expect("online table poisoned");
                let actual = exact_cardinality(guard.table(), query) as f64;
                guard
                    .push_feedback(uid, preds, intervals, actual)
                    .expect("in-run feedback is never stale");
            }
            if cfg.tick_every > 0 && (k + 1).is_multiple_of(cfg.tick_every) {
                let tick = online.lock().expect("online table poisoned").tick();
                report.hot_replayed += tick.replayed as u64;
                swapped |= tick.swapped;
            }
        }
    }

    for (ticket, outcome) in harness.outcomes() {
        match outcome {
            Ok(_) => {
                report.served += 1;
                report.per_table_served[0] += 1;
                if post_swap_ticket[*ticket as usize] {
                    report.post_swap_served += 1;
                }
            }
            Err(ShedReason::WorkerPanicked) => {
                report.shed_internal += 1;
                report.per_table_shed[0] += 1;
            }
            Err(_) => {
                report.shed_deadline += 1;
                report.per_table_shed[0] += 1;
            }
        }
    }
    report.fold_metrics(&harness.metrics_snapshot());
    report
}

// ---------------------------------------------------------------------------
// Fault injection: seeded faults layered over the scripted replay.
// ---------------------------------------------------------------------------

/// A seeded fault-injection plan for [`run_fault_scenario`]. Faults are
/// addressed in deterministic script coordinates — global batch-execution
/// ordinals and arrival-event indices — so replaying the same plan over the
/// same [`ScenarioConfig`] injects the identical faults at the identical
/// points, and the two [`ScenarioReport`]s compare equal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Batch executions (0-based global ordinals, in execution order) that
    /// panic mid-forward: supervision fails every request of the batch
    /// typed ([`ShedReason::WorkerPanicked`]) and respawns the worker.
    pub panic_batches: Vec<u64>,
    /// `(event index, table)`: flip one payload byte of the table's spilled
    /// checkpoint file just before that arrival, so subsequent lazy reloads
    /// fail the frame checksum until the file is restored.
    pub corrupt_checkpoint_at: Option<(u64, usize)>,
    /// `(event index, table)`: truncate the table's spilled checkpoint to
    /// half its length instead (the torn-write shape).
    pub truncate_checkpoint_at: Option<(u64, usize)>,
    /// Event index at which the damaged file's original bytes are written
    /// back — the "repaired checkpoint heals the slot on the very next
    /// request" path.
    pub restore_checkpoint_at: Option<u64>,
    /// Event index at which the tier's spill directory is replaced with a
    /// path blocked by a plain file, making every subsequent spill attempt
    /// an IO error (counted as `spill_failures`; the victim model stays
    /// resident, over budget).
    pub break_spill_dir_at: Option<u64>,
    /// Event index at which the real spill directory is restored.
    pub fix_spill_dir_at: Option<u64>,
    /// The real spill directory evictions write to. Required by every
    /// checkpoint/spill fault above; the caller owns its lifetime.
    pub spill_dir: Option<PathBuf>,
}

/// Find the spilled checkpoint file of the slot with `uid` under `dir`.
fn spilled_checkpoint(dir: &Path, uid: u64) -> Option<PathBuf> {
    let prefix = format!("slot-{uid}-");
    std::fs::read_dir(dir).ok()?.flatten().map(|entry| entry.path()).find(|path| {
        path.file_name()
            .and_then(|name| name.to_str())
            .is_some_and(|name| name.starts_with(&prefix) && name.ends_with(".duetckpt"))
    })
}

/// How [`damage_checkpoint`] mangles a spilled checkpoint file.
#[derive(Clone, Copy)]
enum Damage {
    /// Flip the final byte (checksum-covered payload corruption).
    FlipByte,
    /// Cut the file to half its length (a torn write).
    Truncate,
}

/// Damage `table`'s spilled checkpoint on disk; returns the path and the
/// original bytes so the plan can restore them later.
///
/// The fault being modeled is "the on-disk checkpoint went bad", so if the
/// model is still resident it is first evicted to the spill directory —
/// guaranteeing there is a file to damage regardless of where the tier's
/// own eviction schedule happens to be at this event.
fn damage_checkpoint(
    harness: &RouterHarness,
    plan: &FaultPlan,
    table: usize,
    damage: Damage,
) -> (PathBuf, Vec<u8>) {
    let dir = plan.spill_dir.as_ref().expect("checkpoint faults require FaultPlan::spill_dir");
    let slot = &harness.directory[table].slot;
    if slot.is_resident() {
        slot.evict(Some(dir)).expect("spilling the checkpoint about to be damaged");
    }
    let uid = slot.uid();
    let path =
        spilled_checkpoint(dir, uid).expect("an evicted slot always has a spilled checkpoint file");
    let original = std::fs::read(&path).expect("reading the spilled checkpoint");
    let mut bytes = original.clone();
    match damage {
        Damage::FlipByte => {
            let last = bytes.len() - 1;
            bytes[last] ^= 0xFF;
        }
        Damage::Truncate => bytes.truncate(bytes.len() / 2),
    }
    std::fs::write(&path, &bytes).expect("writing the damaged checkpoint");
    (path, original)
}

/// Replay a scripted scenario with seeded faults injected per `plan` and
/// fold the outcomes — faults included — into a [`ScenarioReport`].
///
/// The contract under fault is the no-fault contract plus typed failure:
/// `accounted() == submitted` (every request still gets exactly one
/// terminal outcome — panicking batches answer
/// [`ShedReason::WorkerPanicked`], unreloadable models shed at admission),
/// `mismatches == 0` (a request that *is* served is still bit-identical to
/// the unbatched reference), and replaying the same plan over the same
/// config yields an `==` report, fault counters included.
pub fn run_fault_scenario(
    tables: &[(String, DuetEstimator)],
    workloads: &[Vec<Query>],
    cfg: &ScenarioConfig,
    plan: &FaultPlan,
) -> ScenarioReport {
    assert_eq!(tables.len(), workloads.len(), "one workload per table");
    assert!(!tables.is_empty(), "need at least one table");
    let needs_spill_dir = plan.corrupt_checkpoint_at.is_some()
        || plan.truncate_checkpoint_at.is_some()
        || plan.break_spill_dir_at.is_some();
    assert!(
        !needs_spill_dir || plan.spill_dir.is_some(),
        "checkpoint/spill faults require FaultPlan::spill_dir"
    );

    // Unbatched per-query reference values (the bit-identity baseline for
    // everything that is served despite the faults).
    let expected: Vec<Vec<f64>> = tables
        .iter()
        .zip(workloads)
        .map(|((_, estimator), queries)| {
            let mut reference = estimator.clone();
            queries.iter().map(|q| reference.estimate(q)).collect()
        })
        .collect();

    let mut harness = RouterHarness::new(tables.to_vec(), cfg.harness);
    harness.tier().set_spill_dir(plan.spill_dir.clone());
    harness.arm_panic_batches(&plan.panic_batches);
    let events = script(cfg, workloads);
    let service_ns = cfg.service_every.as_nanos().max(1) as u64;
    let mut next_service = service_ns;

    let mut report = ScenarioReport {
        per_table_submitted: vec![0; tables.len()],
        per_table_served: vec![0; tables.len()],
        per_table_shed: vec![0; tables.len()],
        ..ScenarioReport::default()
    };
    let mut ticket_source = Vec::with_capacity(events.len());
    // Original bytes of the damaged checkpoint, for `restore_checkpoint_at`.
    let mut damaged: Option<(PathBuf, Vec<u8>)> = None;

    for (index, event) in events.iter().enumerate() {
        let index = index as u64;

        // Scripted checkpoint/spill faults fire just before this arrival.
        if let Some((at, table)) = plan.corrupt_checkpoint_at {
            if at == index {
                damaged = Some(damage_checkpoint(&harness, plan, table, Damage::FlipByte));
            }
        }
        if let Some((at, table)) = plan.truncate_checkpoint_at {
            if at == index {
                damaged = Some(damage_checkpoint(&harness, plan, table, Damage::Truncate));
            }
        }
        if plan.restore_checkpoint_at == Some(index) {
            let (path, original) =
                damaged.take().expect("restore scripted before any checkpoint damage");
            std::fs::write(&path, original).expect("restoring the checkpoint file");
        }
        if plan.break_spill_dir_at == Some(index) {
            let dir =
                plan.spill_dir.as_ref().expect("spill-dir faults require FaultPlan::spill_dir");
            // A plain file where the spill directory should be: every
            // subsequent spill fails `create_dir_all` with a real IO error.
            let blocker = dir.join("spill-blocker");
            std::fs::write(&blocker, b"x").expect("writing the spill-dir blocker");
            harness.tier().set_spill_dir(Some(blocker));
        }
        if plan.fix_spill_dir_at == Some(index) {
            harness.tier().set_spill_dir(plan.spill_dir.clone());
        }

        // Run the worker cadence up to this arrival.
        while next_service <= event.at_ns {
            harness.clock().set(Duration::from_nanos(next_service));
            harness.turn();
            next_service += service_ns;
        }
        harness.clock().set(Duration::from_nanos(event.at_ns));

        let ticket = ticket_source.len() as u64;
        ticket_source.push((event.table, event.query));
        report.submitted += 1;
        report.per_table_submitted[event.table] += 1;
        match harness.submit_query(event.table, &workloads[event.table][event.query], ticket) {
            SubmitResult::Cached(value) => {
                report.served += 1;
                report.per_table_served[event.table] += 1;
                if value.to_bits() != expected[event.table][event.query].to_bits() {
                    report.mismatches += 1;
                }
            }
            SubmitResult::Queued { depth } => {
                report.max_shard_depth = report.max_shard_depth.max(depth);
            }
            SubmitResult::Shed { .. } => {
                report.shed_overload += 1;
                report.per_table_shed[event.table] += 1;
            }
        }
    }

    // Drain the backlog on the same cadence.
    while harness.queue_depth() > 0 {
        harness.clock().advance(cfg.service_every);
        harness.turn();
    }

    for (ticket, outcome) in harness.outcomes() {
        let (table, query) = ticket_source[*ticket as usize];
        match outcome {
            Ok(value) => {
                report.served += 1;
                report.per_table_served[table] += 1;
                if value.to_bits() != expected[table][query].to_bits() {
                    report.mismatches += 1;
                }
            }
            Err(ShedReason::WorkerPanicked) => {
                report.shed_internal += 1;
                report.per_table_shed[table] += 1;
            }
            Err(_) => {
                report.shed_deadline += 1;
                report.per_table_shed[table] += 1;
            }
        }
    }
    report.fold_metrics(&harness.metrics_snapshot());
    report
}
