//! Deterministic serving test harness: a virtual-clock, seeded-RNG
//! multi-client driver over the **real** router/worker code.
//!
//! Concurrency tests that rely on wall-clock timing are flaky by
//! construction: whether a burst overflows a queue depends on how fast the
//! machine drains it. This module removes time and thread scheduling from
//! the equation while changing *nothing else*:
//!
//! * the same shard queues, the same admission check, the same
//!   deadline triage, and the same shard-worker batch execution as the
//!   production [`crate::DuetServer`] — just driven single-threaded;
//! * a [`VirtualClock`] that only moves when the driver says so, making
//!   deadline expiry a pure function of the script;
//! * scripted arrival patterns (uniform, bursty, hot-table-skewed)
//!   generated from a seeded RNG, so a scenario replays **bit-identically**:
//!   the same seed always produces the same shed/served counts, the same
//!   batches, and the same estimates.
//!
//! Two layers are exposed: [`RouterHarness`], a low-level single-step driver
//! (also used by `tests/zero_alloc.rs` to prove the routed hot loop is
//! allocation-free), and [`run_scenario`], which replays a full scripted
//! multi-client workload and folds the outcomes into a [`ScenarioReport`]
//! whose equality across runs *is* the determinism assertion.

use crate::batcher::{BatchConfig, ShardWorker};
use crate::cache::{canonical_key_from_parts, ShardedCache};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::registry::ModelSlot;
use crate::router::{
    shard_for, Clock, ReplyTo, RoutedRequest, Router, RouterConfig, ShedReason, TableResources,
    VirtualClock,
};
use duet_core::{query_to_id_predicates, DuetEstimator};
use duet_query::{CardinalityEstimator, Query};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of a [`RouterHarness`] (a [`crate::ServeConfig`] minus the
/// production-only knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarnessConfig {
    /// Routing and admission control under test.
    pub router: RouterConfig,
    /// Micro-batcher tuning.
    pub batch: BatchConfig,
    /// Result-cache entries per table; defaults to 0 (off) so every request
    /// exercises the queue/batch path.
    pub cache_capacity: usize,
    /// Cache shards per table.
    pub cache_shards: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            router: RouterConfig::default(),
            batch: BatchConfig::default(),
            cache_capacity: 0,
            cache_shards: 1,
        }
    }
}

/// An encoded request ready for admission, produced by
/// [`RouterHarness::prepare`]. Opaque; re-submittable after
/// [`RouterHarness::turn_recycling`] hands it back.
pub struct PreparedRequest(pub(crate) RoutedRequest);

impl PreparedRequest {
    /// The dense table index this request addresses.
    pub fn table(&self) -> usize {
        self.0.table_id as usize
    }
}

/// Outcome of submitting one query to the harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SubmitResult {
    /// Served from the table's result cache (only with a cache configured).
    Cached(f64),
    /// Admitted; the outcome will appear in [`RouterHarness::outcomes`]
    /// after a worker turn executes it. `depth` is the post-admission queue
    /// depth of the target shard.
    Queued {
        /// Queue depth of the target shard after admission.
        depth: usize,
    },
    /// Rejected at admission: the target shard's queue was full.
    Shed {
        /// Queue depth of the target shard at rejection.
        depth: usize,
    },
}

/// A single-threaded driver over the production routing/batching code.
///
/// The harness owns everything a [`crate::DuetServer`] would spread across
/// threads — router shards, one shard worker per shard, the id-indexed
/// table directory — and exposes explicit steps: [`RouterHarness::submit_query`]
/// admits, [`RouterHarness::turn`] runs one batch per shard, the
/// [`VirtualClock`] moves only via [`RouterHarness::clock`]. Ticket replies
/// land in an outcome log instead of channels, so no call ever blocks.
pub struct RouterHarness {
    clock: Arc<VirtualClock>,
    router: Router,
    workers: Vec<ShardWorker>,
    directory: Vec<TableResources>,
    /// Shard each table id routes to (precomputed from the table names).
    table_shard: Vec<usize>,
    metrics: Arc<ServeMetrics>,
    outcomes: Vec<(u64, Result<f64, ShedReason>)>,
    config: HarnessConfig,
}

impl RouterHarness {
    /// Build a harness serving `tables` (name + trained estimator; the index
    /// in the vector becomes the table id).
    pub fn new(tables: Vec<(String, DuetEstimator)>, config: HarnessConfig) -> Self {
        let clock = Arc::new(VirtualClock::new());
        let metrics = Arc::new(ServeMetrics::new());
        let clock_dyn: Arc<dyn Clock> = clock.clone();
        let router = Router::new(config.router, clock_dyn, metrics.clone());
        let num_shards = router.num_shards();
        let mut directory = Vec::with_capacity(tables.len());
        let mut table_shard = Vec::with_capacity(tables.len());
        for (name, estimator) in tables {
            table_shard.push(shard_for(&name, num_shards));
            directory.push(TableResources {
                name: Arc::from(name.as_str()),
                slot: Arc::new(ModelSlot::new(estimator)),
                cache: Arc::new(ShardedCache::new(config.cache_capacity, config.cache_shards)),
            });
        }
        Self {
            clock,
            router,
            workers: (0..num_shards).map(|_| ShardWorker::new()).collect(),
            directory,
            table_shard,
            metrics,
            outcomes: Vec::new(),
            config,
        }
    }

    /// The harness's virtual clock (advance it to make deadlines expire).
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Number of worker shards.
    pub fn num_shards(&self) -> usize {
        self.router.num_shards()
    }

    /// Number of registered tables.
    pub fn num_tables(&self) -> usize {
        self.directory.len()
    }

    /// The shard table `table` routes to.
    pub fn shard_of_table(&self, table: usize) -> usize {
        self.table_shard[table]
    }

    /// The name table `table` was registered under.
    pub fn table_name(&self, table: usize) -> &str {
        &self.directory[table].name
    }

    /// The estimator currently serving `table`.
    pub fn estimator(&self, table: usize) -> Arc<DuetEstimator> {
        self.directory[table].slot.current()
    }

    /// Encode `query` against `table`'s schema into a routable request.
    /// With `ticket: Some(t)`, the outcome is logged under `t`; with `None`
    /// it is discarded (allocation-probe mode).
    pub fn prepare(&self, table: usize, query: &Query, ticket: Option<u64>) -> PreparedRequest {
        let resources = &self.directory[table];
        let (generation, estimator) = resources.slot.current_versioned();
        let schema = estimator.schema();
        let preds = query_to_id_predicates(schema, query);
        let intervals = query.column_intervals(schema);
        let key = (self.config.cache_capacity > 0)
            .then(|| canonical_key_from_parts(schema, generation, &preds, &intervals));
        PreparedRequest(RoutedRequest {
            table_id: table as u32,
            preds,
            intervals,
            key,
            deadline: self.router.admission_deadline(),
            reply: match ticket {
                Some(t) => ReplyTo::Ticket(t),
                None => ReplyTo::Discard,
            },
        })
    }

    /// Admit a prepared request to its table's shard. On rejection the
    /// request is handed back (encodings intact) and the overload shed is
    /// recorded. Allocation-free on a warm queue.
    pub fn submit_prepared(&mut self, request: PreparedRequest) -> Result<usize, PreparedRequest> {
        let shard = self.table_shard[request.0.table_id as usize];
        match self.router.shard(shard).try_push(request.0) {
            Ok(depth) => Ok(depth),
            Err(rejected) => {
                self.metrics.record_shed_overload();
                Err(PreparedRequest(rejected))
            }
        }
    }

    /// Encode, cache-probe, and admit one query (the driver-facing
    /// equivalent of [`crate::DuetServer::estimate`]'s submit pipeline).
    pub fn submit_query(&mut self, table: usize, query: &Query, ticket: u64) -> SubmitResult {
        let request = self.prepare(table, query, Some(ticket));
        if let Some(key) = &request.0.key {
            if let Some(value) = self.directory[table].cache.get(key) {
                return SubmitResult::Cached(value);
            }
        }
        match self.submit_prepared(request) {
            Ok(depth) => SubmitResult::Queued { depth },
            Err(_rejected) => {
                SubmitResult::Shed { depth: self.router.shard(self.table_shard[table]).depth() }
            }
        }
    }

    /// Run one worker turn: every shard pops and executes at most one
    /// same-table batch at the current virtual time. Returns the number of
    /// requests processed (served + deadline-shed). Allocation-free once
    /// warm.
    pub fn turn(&mut self) -> usize {
        let now = self.clock.now();
        let max_batch = self.config.batch.max_batch_size;
        let mut processed = 0;
        for shard_index in 0..self.workers.len() {
            let worker = &mut self.workers[shard_index];
            if self.router.shard(shard_index).try_pop_batch(max_batch, &mut worker.batch) {
                processed += worker.batch.len();
                worker.execute(&self.directory, now, &self.metrics, &mut self.outcomes);
                worker.batch.clear();
            }
        }
        processed
    }

    /// [`RouterHarness::turn`], but hand the processed requests back (their
    /// encodings intact) instead of dropping them, so an allocation probe
    /// can recycle one fixed request set through the hot loop indefinitely.
    pub fn turn_recycling(&mut self, recycled: &mut Vec<PreparedRequest>) -> usize {
        let now = self.clock.now();
        let max_batch = self.config.batch.max_batch_size;
        let mut processed = 0;
        for shard_index in 0..self.workers.len() {
            let worker = &mut self.workers[shard_index];
            if self.router.shard(shard_index).try_pop_batch(max_batch, &mut worker.batch) {
                processed += worker.batch.len();
                worker.execute(&self.directory, now, &self.metrics, &mut self.outcomes);
                for request in worker.batch.drain(..) {
                    recycled.push(PreparedRequest(request));
                }
            }
        }
        processed
    }

    /// Run worker turns (without advancing the clock) until every queue is
    /// empty; returns the number of requests processed.
    pub fn drain(&mut self) -> usize {
        let mut total = 0;
        while self.router.queue_depth() > 0 {
            total += self.turn();
        }
        total
    }

    /// Ticket outcomes recorded so far, in execution order.
    pub fn outcomes(&self) -> &[(u64, Result<f64, ShedReason>)] {
        &self.outcomes
    }

    /// Clear the ticket outcome log.
    pub fn clear_outcomes(&mut self) {
        self.outcomes.clear();
    }

    /// Total queued requests across all shards.
    pub fn queue_depth(&self) -> usize {
        self.router.queue_depth()
    }

    /// Per-shard queue depths.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.router.queue_depths()
    }

    /// Snapshot of the harness metrics (batches, sheds, queue depth).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let (hits, misses) = self
            .directory
            .iter()
            .fold((0u64, 0u64), |(h, m), r| (h + r.cache.hits(), m + r.cache.misses()));
        self.metrics.snapshot(hits, misses, self.router.queue_depth())
    }
}

impl std::fmt::Debug for RouterHarness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterHarness")
            .field("tables", &self.directory.len())
            .field("shards", &self.workers.len())
            .field("queue_depth", &self.router.queue_depth())
            .finish()
    }
}

/// How scripted clients spread their requests over tables and time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalPattern {
    /// Jittered-uniform inter-arrival gaps, tables chosen uniformly.
    Uniform,
    /// Clients emit `burst_size` back-to-back requests (zero gap), then go
    /// idle for `burst_size` mean gaps — the queue-overflow scenario.
    Bursty {
        /// Requests per burst.
        burst_size: usize,
    },
    /// Jittered-uniform gaps, but `hot_permille`/1000 of all requests target
    /// `hot_table` — the skew scenario for routing fairness.
    HotTable {
        /// Index of the hot table.
        hot_table: usize,
        /// Probability (per mille) that a request targets the hot table.
        hot_permille: u16,
    },
}

/// A scripted multi-client replay.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Seed for the arrival script (same seed ⇒ identical replay).
    pub seed: u64,
    /// Number of scripted clients.
    pub clients: usize,
    /// Requests each client submits.
    pub requests_per_client: usize,
    /// Mean virtual inter-arrival gap per client.
    pub mean_gap: Duration,
    /// Virtual cadence of worker turns (each shard pops one batch per turn).
    pub service_every: Duration,
    /// Arrival pattern under test.
    pub pattern: ArrivalPattern,
    /// Harness (router/batch/cache) configuration.
    pub harness: HarnessConfig,
}

/// Deterministic summary of one scenario replay: integer counters only, so
/// two replays with the same seed can be compared with `==` — that equality
/// *is* the determinism assertion.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScenarioReport {
    /// Requests the script submitted.
    pub submitted: u64,
    /// Requests answered with an estimate.
    pub served: u64,
    /// Requests rejected at admission (shard queue full).
    pub shed_overload: u64,
    /// Requests dropped at dequeue (deadline expired).
    pub shed_deadline: u64,
    /// Per-table submissions.
    pub per_table_submitted: Vec<u64>,
    /// Per-table served counts.
    pub per_table_served: Vec<u64>,
    /// Per-table shed counts (admission + deadline).
    pub per_table_shed: Vec<u64>,
    /// Forward batches executed.
    pub batches: u64,
    /// Highest single-shard queue depth observed at any admission.
    pub max_shard_depth: usize,
    /// Served results whose bits differed from the unbatched per-query
    /// reference (must be 0: routing/batching never changes an answer).
    pub mismatches: u64,
}

impl ScenarioReport {
    /// `served + shed_overload + shed_deadline` — every submitted request
    /// must be accounted for exactly once.
    pub fn accounted(&self) -> u64 {
        self.served + self.shed_overload + self.shed_deadline
    }
}

/// One scripted arrival.
#[derive(Debug, Clone, Copy)]
struct Event {
    at_ns: u64,
    table: usize,
    query: usize,
}

fn pick_table(rng: &mut SmallRng, pattern: ArrivalPattern, num_tables: usize) -> usize {
    match pattern {
        ArrivalPattern::HotTable { hot_table, hot_permille } => {
            let hot = hot_table.min(num_tables - 1);
            if rng.gen_range(0u32..1000) < u32::from(hot_permille) || num_tables == 1 {
                hot
            } else {
                // Uniform over the other tables.
                let mut t = rng.gen_range(0..num_tables - 1);
                if t >= hot {
                    t += 1;
                }
                t
            }
        }
        _ => rng.gen_range(0..num_tables),
    }
}

/// Generate the deterministic arrival script for a scenario.
fn script(cfg: &ScenarioConfig, workloads: &[Vec<Query>]) -> Vec<Event> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let gap_ns = cfg.mean_gap.as_nanos().max(1) as u64;
    let mut events = Vec::with_capacity(cfg.clients * cfg.requests_per_client);
    for client in 0..cfg.clients {
        // Stagger client start times across one mean gap.
        let mut at_ns = gap_ns * client as u64 / cfg.clients.max(1) as u64;
        for k in 0..cfg.requests_per_client {
            let table = pick_table(&mut rng, cfg.pattern, workloads.len());
            let query = rng.gen_range(0..workloads[table].len());
            events.push(Event { at_ns, table, query });
            at_ns += match cfg.pattern {
                ArrivalPattern::Bursty { burst_size } => {
                    let burst = burst_size.max(1);
                    if (k + 1) % burst == 0 {
                        gap_ns * burst as u64
                    } else {
                        0
                    }
                }
                // 50%..150% jitter around the mean gap.
                _ => gap_ns * rng.gen_range(50u64..=150) / 100,
            };
        }
    }
    // Stable sort: simultaneous arrivals keep client order, so the replay
    // order is a pure function of the script.
    events.sort_by_key(|e| e.at_ns);
    events
}

/// Replay a scripted multi-client scenario against the real routing code
/// and fold the outcomes into a [`ScenarioReport`].
///
/// `tables[i]` pairs a table name (which determines its shard) with its
/// trained estimator; `workloads[i]` is the query pool scripted clients
/// draw from for that table. Served results are compared bit-for-bit
/// against the unbatched per-query reference path.
pub fn run_scenario(
    tables: &[(String, DuetEstimator)],
    workloads: &[Vec<Query>],
    cfg: &ScenarioConfig,
) -> ScenarioReport {
    assert_eq!(tables.len(), workloads.len(), "one workload per table");
    assert!(!tables.is_empty(), "need at least one table");

    // Unbatched per-query reference values (the bit-identity baseline).
    let expected: Vec<Vec<f64>> = tables
        .iter()
        .zip(workloads)
        .map(|((_, estimator), queries)| {
            let mut reference = estimator.clone();
            queries.iter().map(|q| reference.estimate(q)).collect()
        })
        .collect();

    let mut harness = RouterHarness::new(tables.to_vec(), cfg.harness);
    let events = script(cfg, workloads);
    let service_ns = cfg.service_every.as_nanos().max(1) as u64;
    let mut next_service = service_ns;

    let mut report = ScenarioReport {
        per_table_submitted: vec![0; tables.len()],
        per_table_served: vec![0; tables.len()],
        per_table_shed: vec![0; tables.len()],
        ..ScenarioReport::default()
    };
    // ticket -> (table, query); rejected tickets are folded immediately.
    let mut ticket_source = Vec::with_capacity(events.len());

    for event in &events {
        // Run the worker cadence up to this arrival.
        while next_service <= event.at_ns {
            harness.clock().set(Duration::from_nanos(next_service));
            harness.turn();
            next_service += service_ns;
        }
        harness.clock().set(Duration::from_nanos(event.at_ns));

        let ticket = ticket_source.len() as u64;
        ticket_source.push((event.table, event.query));
        report.submitted += 1;
        report.per_table_submitted[event.table] += 1;
        match harness.submit_query(event.table, &workloads[event.table][event.query], ticket) {
            SubmitResult::Cached(value) => {
                report.served += 1;
                report.per_table_served[event.table] += 1;
                if value.to_bits() != expected[event.table][event.query].to_bits() {
                    report.mismatches += 1;
                }
            }
            SubmitResult::Queued { depth } => {
                report.max_shard_depth = report.max_shard_depth.max(depth);
            }
            SubmitResult::Shed { .. } => {
                report.shed_overload += 1;
                report.per_table_shed[event.table] += 1;
            }
        }
    }

    // Drain the backlog on the same cadence (so deadlines keep expiring in
    // virtual time, not all at once).
    while harness.queue_depth() > 0 {
        harness.clock().advance(cfg.service_every);
        harness.turn();
    }

    for (ticket, outcome) in harness.outcomes() {
        let (table, query) = ticket_source[*ticket as usize];
        match outcome {
            Ok(value) => {
                report.served += 1;
                report.per_table_served[table] += 1;
                if value.to_bits() != expected[table][query].to_bits() {
                    report.mismatches += 1;
                }
            }
            Err(_) => {
                report.shed_deadline += 1;
                report.per_table_shed[table] += 1;
            }
        }
    }
    report.batches = harness.metrics_snapshot().batches;
    report
}
