//! Fleet-scale model tiering: a registry-wide weight-memory budget enforced
//! by LFU-aged eviction of cold models.
//!
//! A server hosting many tables cannot keep every model resident: weights
//! are the dominant per-table footprint, and most fleets are heavily skewed
//! — a few hot tables take nearly all traffic while the long tail idles.
//! [`ModelTier`] turns that skew into a memory bound:
//!
//! * every executed batch feeds a **per-table heat counter** (an LFU with
//!   aging, the same popularity shape as [`crate::HotSet`], but at model
//!   granularity — batches served rather than cache keys touched);
//! * after each batch the worker runs the crate-internal enforcement sweep
//!   (`ModelTier::enforce`): while the
//!   summed resident weight bytes exceed the budget, the **coldest**
//!   resident model that is not the one just served is evicted to its
//!   checkpoint bytes ([`crate::ModelSlot::evict`] — in memory, or spilled
//!   to a file under the configured spill directory);
//! * an evicted model's next request **lazily reloads** it, bit-identically,
//!   inside [`crate::ModelSlot::try_current_versioned`] — no client-visible
//!   state, no generation bump, no cache invalidation.
//!
//! Every eviction halves all heat counters, so a table that was hot last
//! hour cannot pin its model forever on stale popularity — the aging half of
//! LFU-with-aging. The model actively being served is never the victim, so
//! a budget smaller than one model still serves every request (it just
//! thrashes, visibly, in the eviction/reload counters).
//!
//! Heat updates and victim selection are pure functions of the executed
//! batch sequence, so under the deterministic harness ([`crate::sim`]) a
//! seeded scenario replays with identical eviction/reload counts.

use crate::metrics::ServeMetrics;
use crate::router::TableResources;
use std::path::PathBuf;
use std::sync::Mutex;

/// Registry-wide model-memory budgeting: per-table heat plus the eviction
/// policy over a table directory. One instance is shared by every shard
/// worker of a [`crate::DuetServer`] (or harness).
#[derive(Debug)]
pub struct ModelTier {
    /// Upper bound on summed resident weight bytes; 0 = unlimited (the
    /// tier never evicts).
    budget_bytes: usize,
    /// Where evicted checkpoints go: `None` keeps the bytes in memory,
    /// `Some(dir)` spills them to files under `dir`.
    spill_dir: Mutex<Option<PathBuf>>,
    /// Per-table served-request counters, indexed by dense table id; halved
    /// on every eviction (LFU with aging).
    heat: Mutex<Vec<u64>>,
    // All three locks tolerate poisoning (`into_inner`): shard workers take
    // them inside the supervised `catch_unwind` region, and every guarded
    // mutation (a counter bump, a Vec resize, a PathBuf replace) leaves the
    // data structurally valid even if a panic lands between lock and unlock
    // — so a recovered worker can keep enforcing the budget instead of
    // wedging on a poisoned mutex.
    /// Per-table pin counters, indexed by dense table id. A pinned table is
    /// never chosen as an eviction victim — the online trainer pins a table
    /// for the duration of a retrain so the model it is about to hot-swap
    /// (and the resident instance serving in the meantime) cannot be paged
    /// out from under it.
    pins: Mutex<Vec<u32>>,
}

impl ModelTier {
    /// A tier enforcing `budget_bytes` of resident model weights (0 =
    /// unlimited), evicting to in-memory checkpoints.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget_bytes,
            spill_dir: Mutex::new(None),
            heat: Mutex::new(Vec::new()),
            pins: Mutex::new(Vec::new()),
        }
    }

    /// The configured budget in bytes (0 = unlimited).
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Redirect future evictions to checkpoint files under `dir` (`None`
    /// returns to in-memory checkpoints). Already-evicted models keep their
    /// current store until reloaded.
    pub fn set_spill_dir(&self, dir: Option<PathBuf>) {
        *self.spill_dir.lock().unwrap_or_else(|e| e.into_inner()) = dir;
    }

    /// A table's current heat (testing/inspection).
    pub fn heat_of(&self, table_id: usize) -> u64 {
        self.heat.lock().unwrap_or_else(|e| e.into_inner()).get(table_id).copied().unwrap_or(0)
    }

    /// Pin `table_id`: until the matching [`ModelTier::unpin`], the table is
    /// never selected as an eviction victim. Pins nest (a counter, not a
    /// flag), so overlapping retrain and inspection pins compose.
    pub fn pin(&self, table_id: usize) {
        let mut pins = self.pins.lock().unwrap_or_else(|e| e.into_inner());
        if pins.len() <= table_id {
            pins.resize(table_id + 1, 0);
        }
        pins[table_id] += 1;
    }

    /// Release one [`ModelTier::pin`] of `table_id`.
    ///
    /// # Panics
    /// Panics if the table is not currently pinned (unbalanced unpin).
    pub fn unpin(&self, table_id: usize) {
        let mut pins = self.pins.lock().unwrap_or_else(|e| e.into_inner());
        let pin = pins.get_mut(table_id).expect("unpin of a never-pinned table");
        assert!(*pin > 0, "unbalanced ModelTier::unpin");
        *pin -= 1;
    }

    /// Whether `table_id` is currently pinned non-evictable.
    pub fn is_pinned(&self, table_id: usize) -> bool {
        self.pins.lock().unwrap_or_else(|e| e.into_inner()).get(table_id).copied().unwrap_or(0) > 0
    }

    /// Fold `served` requests for `table_id` into its heat counter. Called
    /// by the shard worker once per executed batch; allocation-free once
    /// the heat vector has grown to the directory size.
    pub(crate) fn observe(&self, table_id: usize, served: u64) {
        let mut heat = self.heat.lock().unwrap_or_else(|e| e.into_inner());
        if heat.len() <= table_id {
            heat.resize(table_id + 1, 0);
        }
        heat[table_id] = heat[table_id].saturating_add(served);
    }

    /// Bring the directory back under the budget: while resident weights
    /// exceed it, evict the coldest resident model other than `active` (the
    /// table just served) or any pinned table (lowest dense id breaks heat
    /// ties), halving all
    /// heat counters per eviction. Stops when within budget, when no
    /// evictable model remains (only `active` resident), or when an
    /// eviction fails (spill I/O) — the tier then stays over budget rather
    /// than lose a model.
    pub(crate) fn enforce(&self, tables: &[TableResources], active: usize, metrics: &ServeMetrics) {
        if self.budget_bytes == 0 {
            return;
        }
        loop {
            let resident: usize =
                tables.iter().filter_map(|r| r.slot.resident_weight_bytes()).sum();
            if resident <= self.budget_bytes {
                return;
            }
            let victim = {
                let heat = self.heat.lock().unwrap_or_else(|e| e.into_inner());
                let pins = self.pins.lock().unwrap_or_else(|e| e.into_inner());
                tables
                    .iter()
                    .enumerate()
                    .filter(|(id, r)| {
                        *id != active
                            && r.slot.is_resident()
                            && pins.get(*id).copied().unwrap_or(0) == 0
                    })
                    .min_by_key(|(id, _)| (heat.get(*id).copied().unwrap_or(0), *id))
                    .map(|(id, r)| (id, r.slot.clone()))
            };
            let Some((_victim_id, slot)) = victim else {
                // Only the active model and pinned tables are resident;
                // never evict either.
                return;
            };
            let spill = self.spill_dir.lock().unwrap_or_else(|e| e.into_inner()).clone();
            match slot.evict(spill.as_deref()) {
                Ok(0) => return, // raced with a concurrent evict; don't spin
                Ok(_freed) => {
                    metrics.record_model_eviction();
                    let mut heat = self.heat.lock().unwrap_or_else(|e| e.into_inner());
                    for h in heat.iter_mut() {
                        *h /= 2;
                    }
                }
                Err(_) => {
                    // Spill failed (IO error or read-back verification):
                    // keep the model resident — over budget beats losing the
                    // only copy of its weights — and make the failure
                    // visible instead of silently retrying every batch.
                    metrics.record_spill_failure();
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ShardedCache;
    use crate::registry::ModelSlot;
    use duet_core::{DuetConfig, DuetEstimator};
    use duet_data::datasets::census_like;
    use std::sync::Arc;

    fn directory(n: usize) -> Vec<TableResources> {
        let table = census_like(200, 7);
        let cfg = DuetConfig::small().with_epochs(1);
        (0..n)
            .map(|i| TableResources {
                name: Arc::from(format!("t{i}").as_str()),
                slot: Arc::new(ModelSlot::new(DuetEstimator::train_data_only(
                    &table, &cfg, i as u64,
                ))),
                cache: Arc::new(ShardedCache::new(0, 1)),
            })
            .collect()
    }

    #[test]
    fn heat_accumulates_and_ages() {
        let tier = ModelTier::new(1);
        tier.observe(2, 5);
        tier.observe(0, 1);
        assert_eq!((tier.heat_of(0), tier.heat_of(1), tier.heat_of(2)), (1, 0, 5));
    }

    #[test]
    fn enforce_evicts_coldest_non_active_until_within_budget() {
        let tables = directory(3);
        let per_model = tables[0].slot.resident_weight_bytes().unwrap();
        // Budget fits exactly two models.
        let tier = ModelTier::new(2 * per_model);
        let metrics = ServeMetrics::new();
        // Table 0 is hot, table 2 was just served, table 1 is cold.
        tier.observe(0, 10);
        tier.observe(1, 1);
        tier.observe(2, 3);
        tier.enforce(&tables, 2, &metrics);
        assert!(tables[0].slot.is_resident(), "hot model stays");
        assert!(!tables[1].slot.is_resident(), "coldest model is evicted");
        assert!(tables[2].slot.is_resident(), "the active model is never the victim");
        assert_eq!(metrics.snapshot(0, 0, 0).model_evictions, 1);
        // One eviction brought the directory within budget and aged heat.
        assert_eq!(tier.heat_of(0), 5);
    }

    #[test]
    fn pinned_tables_are_never_victims() {
        let tables = directory(3);
        let per_model = tables[0].slot.resident_weight_bytes().unwrap();
        let tier = ModelTier::new(2 * per_model);
        let metrics = ServeMetrics::new();
        // Table 1 is the coldest — but pinned (mid-retrain), so the next
        // coldest unpinned table must be the victim instead.
        tier.observe(0, 2);
        tier.observe(1, 1);
        tier.observe(2, 5);
        tier.pin(1);
        assert!(tier.is_pinned(1));
        tier.enforce(&tables, 2, &metrics);
        assert!(tables[1].slot.is_resident(), "a pinned table is never evicted");
        assert!(!tables[0].slot.is_resident(), "the coldest unpinned table is the victim");
        // Unpinning rearms eviction; pins nest.
        tier.pin(1);
        tier.unpin(1);
        assert!(tier.is_pinned(1), "pins are a counter, not a flag");
        tier.unpin(1);
        assert!(!tier.is_pinned(1));
    }

    #[test]
    fn an_all_pinned_directory_stays_over_budget() {
        let tables = directory(2);
        let tier = ModelTier::new(1);
        let metrics = ServeMetrics::new();
        tier.pin(0);
        tier.pin(1);
        tier.enforce(&tables, 0, &metrics);
        assert!(tables.iter().all(|t| t.slot.is_resident()), "nothing evictable");
        assert_eq!(metrics.snapshot(0, 0, 0).model_evictions, 0);
    }

    #[test]
    fn zero_budget_disables_the_tier() {
        let tables = directory(2);
        let tier = ModelTier::new(0);
        let metrics = ServeMetrics::new();
        tier.enforce(&tables, 0, &metrics);
        assert!(tables.iter().all(|t| t.slot.is_resident()));
    }

    #[test]
    fn the_active_model_survives_an_impossible_budget() {
        let tables = directory(2);
        let tier = ModelTier::new(1); // smaller than any single model
        let metrics = ServeMetrics::new();
        tier.enforce(&tables, 0, &metrics);
        assert!(tables[0].slot.is_resident(), "active model must keep serving");
        assert!(!tables[1].slot.is_resident());
    }
}
