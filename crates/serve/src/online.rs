//! Online learning: in-process drift detection, query-feedback accumulation,
//! and background retraining that publishes through the zero-downtime
//! hot-swap path.
//!
//! The paper's hybrid estimator is cheap enough to *retrain while serving*:
//! a single train step is one forward/backward over a small batch, so a
//! background trainer can track a shifting data distribution without a
//! separate training cluster. This module closes that loop inside the
//! server:
//!
//! * **Ingest** ([`OnlineTable::ingest_row`]) appends dictionary-encoded
//!   rows to the table a model was trained on and incrementally maintains
//!   the per-column [`ColumnStats`] histograms — `O(1)` count bump plus an
//!   `O(ndv)` summary refresh per touched column, no full-table rescan;
//! * **Drift detection** ([`DriftMonitor`]) compares the live histograms
//!   against the snapshot the serving model was trained on, using
//!   total-variation distance ([`duet_data::histogram_distance`]) with a
//!   configurable threshold and hysteresis (N consecutive over-threshold
//!   ticks) so a single burst cannot thrash the trainer;
//! * **Feedback** ([`OnlineTable::push_feedback`]) accumulates observed true
//!   cardinalities — the query-driven half of the paper's hybrid loss — as
//!   weighted [`PreparedQuery`]s. Feedback is stamped with the slot uid the
//!   online table is bound to; feedback for a re-registered table is
//!   rejected (the stale-registration path, extended from the router);
//! * **Retrain & publish** ([`OnlineTable::tick`]): on drift or enough
//!   accumulated feedback, the trainer pins the table in the
//!   [`ModelTier`] (a mid-retrain model must not be paged out), warm-starts
//!   from the serving weights, runs [`duet_core::train_step`] over
//!   recency-biased virtual-tuple batches plus the weighted feedback
//!   queries, and publishes via [`ModelSlot::swap`] → cache invalidation →
//!   [`crate::HotSet`] warm replay. In-flight batches finish on their `Arc`
//!   clone of the old weights; the generation bump makes stale cache keys
//!   unreachable; the hottest keys are re-seeded in one batched pass.
//!
//! Everything is deterministic given the config seed: the trainer owns a
//! seeded [`SmallRng`], ticks run on the caller's cadence (the sim drives
//! them from the virtual clock), and no wall-clock time is read — which is
//! what lets `sim::run_drift_scenario` replay the whole
//! drift → retrain → hot-swap sequence bit-identically.

use crate::cache::{HotSet, ShardedCache};
use crate::metrics::ServeMetrics;
use crate::registry::{ModelSlot, SwapError};
use crate::tier::ModelTier;
use duet_core::{
    sample_virtual_batch, train_step, DuetEstimator, DuetWorkspace, IdPredicate, PreparedQuery,
    SamplerConfig, TrainStepScratch,
};
use duet_data::{histogram_distance, table_stats, ColumnStats, Table};
use duet_nn::Adam;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning for one table's online-learning loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineConfig {
    /// Total-variation distance (max over columns, in `[0, 1]`) above which
    /// a tick counts as drifted.
    pub drift_threshold: f64,
    /// Consecutive drifted ticks required before a retrain triggers
    /// (hysteresis; 1 = trigger immediately).
    pub drift_hysteresis: u32,
    /// Bounded feedback queue size (a ring: the oldest entry is overwritten
    /// once full).
    pub feedback_capacity: usize,
    /// Retrain once this many feedback entries have accumulated, even
    /// without drift; 0 disables the feedback trigger (drift-only).
    pub feedback_trigger: usize,
    /// SGD steps per retrain.
    pub retrain_steps: usize,
    /// Anchor rows sampled per step (each expands into
    /// [`OnlineConfig::expand_mu`] virtual tuples).
    pub train_batch_size: usize,
    /// Virtual-tuple replication factor µ (paper Algorithm 1).
    pub expand_mu: usize,
    /// Per-column wildcard probability of the virtual-tuple sampler.
    pub wildcard_prob: f64,
    /// Hybrid-loss weight λ applied to the feedback (query-driven) term.
    pub lambda: f64,
    /// Per-query weight of feedback entries in the hybrid loss (1.0 = like
    /// one training workload query; higher = trust observed cardinalities
    /// more).
    pub feedback_weight: f64,
    /// Adam learning rate of the retrain loop.
    pub learning_rate: f32,
    /// Probability an anchor row is drawn from the most recently ingested
    /// quarter of the table instead of uniformly — biases the retrain
    /// toward the shifted distribution.
    pub recent_fraction: f64,
    /// Seed of the trainer's private RNG (anchor rows + virtual tuples).
    pub seed: u64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            drift_threshold: 0.15,
            drift_hysteresis: 2,
            feedback_capacity: 256,
            feedback_trigger: 0,
            retrain_steps: 48,
            train_batch_size: 32,
            expand_mu: 2,
            wildcard_prob: 0.3,
            lambda: 0.1,
            feedback_weight: 2.0,
            learning_rate: 1e-3,
            recent_fraction: 0.5,
            seed: 0x0D1F7,
        }
    }
}

/// Histogram-distance drift detector with hysteresis.
///
/// Holds the per-column [`ColumnStats`] snapshot the serving model was
/// trained against (the *baseline*) and compares live statistics against it
/// on every [`DriftMonitor::check`]. Checking is allocation-free, so the
/// detector can tick inside the serving hot loop (see `tests/zero_alloc.rs`
/// phase nine).
#[derive(Debug, Clone)]
pub struct DriftMonitor {
    baseline: Vec<ColumnStats>,
    threshold: f64,
    hysteresis: u32,
    consecutive: u32,
}

impl DriftMonitor {
    /// A monitor comparing against `baseline` with the given threshold and
    /// hysteresis (`hysteresis` is clamped to at least 1).
    pub fn new(baseline: Vec<ColumnStats>, threshold: f64, hysteresis: u32) -> Self {
        Self { baseline, threshold, hysteresis: hysteresis.max(1), consecutive: 0 }
    }

    /// The configured trigger threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Consecutive over-threshold checks so far.
    pub fn consecutive(&self) -> u32 {
        self.consecutive
    }

    /// Largest per-column total-variation distance between `live` and the
    /// baseline (columns beyond the shorter side are ignored).
    /// Allocation-free.
    pub fn max_distance(&self, live: &[ColumnStats]) -> f64 {
        self.baseline
            .iter()
            .zip(live.iter())
            .map(|(b, l)| histogram_distance(b, l))
            .fold(0.0f64, f64::max)
    }

    /// Record one observation of the live statistics; returns `true` when
    /// the distance has exceeded the threshold for `hysteresis` consecutive
    /// checks (drift confirmed). Allocation-free.
    pub fn check(&mut self, live: &[ColumnStats]) -> bool {
        if self.max_distance(live) > self.threshold {
            self.consecutive = self.consecutive.saturating_add(1);
        } else {
            self.consecutive = 0;
        }
        self.consecutive >= self.hysteresis
    }

    /// Adopt `live` as the new baseline (called after a retrain publishes,
    /// so drift is measured against what the *new* model saw) and re-arm
    /// the hysteresis counter.
    pub fn rebaseline(&mut self, live: &[ColumnStats]) {
        self.baseline.clear();
        self.baseline.extend_from_slice(live);
        self.consecutive = 0;
    }
}

/// Why an ingested row was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestError {
    /// The row has the wrong number of columns.
    WidthMismatch {
        /// Columns in the table.
        expected: usize,
        /// Columns in the rejected row.
        got: usize,
    },
    /// A value id is outside its column's dictionary. Online ingest is
    /// append-only over the *existing* dictionary: admitting new values
    /// would change the model's input domain and make every retrained model
    /// swap-incompatible with the serving slot.
    UnknownValueId {
        /// Column of the offending id.
        column: usize,
        /// The rejected value id.
        id: u32,
        /// The column's dictionary size.
        ndv: usize,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::WidthMismatch { expected, got } => {
                write!(f, "ingest row has {got} columns, table has {expected}")
            }
            IngestError::UnknownValueId { column, id, ndv } => {
                write!(f, "ingest value id {id} out of range for column {column} (ndv {ndv})")
            }
        }
    }
}

impl std::error::Error for IngestError {}

/// Why a feedback entry was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedbackError {
    /// The feedback was stamped with a slot uid other than the one this
    /// online table is bound to — the table was re-registered while the
    /// feedback was in flight, so the observation describes a model that no
    /// longer serves.
    StaleSlot {
        /// Uid the online table is bound to.
        bound: u64,
        /// Uid the feedback was stamped with.
        got: u64,
    },
    /// The observed cardinality was not a finite non-negative number.
    InvalidCardinality,
}

impl std::fmt::Display for FeedbackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeedbackError::StaleSlot { bound, got } => {
                write!(f, "stale feedback: stamped slot uid {got}, online table bound to {bound}")
            }
            FeedbackError::InvalidCardinality => {
                write!(f, "feedback cardinality must be finite and non-negative")
            }
        }
    }
}

impl std::error::Error for FeedbackError {}

/// The serving-side resources an online table publishes through: the model
/// slot it retrains, the cache/hot-set pair it re-seeds after a swap, the
/// tier it pins mid-retrain, and the metrics sink. All shared `Arc`s with
/// the worker directory — publishing through them is exactly the hot-swap
/// path the front door uses.
#[derive(Debug, Clone)]
pub struct OnlineHooks {
    /// The model slot serving this table (swap target).
    pub slot: Arc<ModelSlot>,
    /// The table's result cache (invalidated on publish).
    pub cache: Arc<ShardedCache>,
    /// The table's hot set (replayed into the cache after a swap).
    pub hot: Arc<HotSet>,
    /// The registry-wide model tier (pinned for the retrain's duration).
    pub tier: Arc<ModelTier>,
    /// Serving metrics (ingest/drift/retrain counters).
    pub metrics: Arc<ServeMetrics>,
    /// The table's dense directory id (tier pin key).
    pub table_id: usize,
}

/// One accumulated feedback observation: an executed query's encoded
/// predicates plus its observed true cardinality.
#[derive(Debug, Clone)]
struct FeedbackEntry {
    preds: Vec<Vec<IdPredicate>>,
    intervals: Vec<(u32, u32)>,
    actual: f64,
}

/// What one trainer tick did.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineTickReport {
    /// Largest per-column histogram distance at the tick.
    pub max_distance: f64,
    /// Whether drift was confirmed (threshold + hysteresis) this tick.
    pub drift: bool,
    /// Whether a retrain ran.
    pub retrained: bool,
    /// Whether the retrained model was published (swap succeeded).
    pub swapped: bool,
    /// Hot-set entries replayed into the cache after the swap.
    pub replayed: usize,
}

/// One table's online-learning state: the growing table, its live column
/// statistics, the drift monitor, the bounded feedback ring, and the
/// trainer. Drive it with [`OnlineTable::ingest_row`],
/// [`OnlineTable::push_feedback`] and [`OnlineTable::tick`]; wrap it in the
/// server's [`OnlineDirectory`] to share it between the wire front door and
/// a background trainer thread.
pub struct OnlineTable {
    cfg: OnlineConfig,
    hooks: OnlineHooks,
    /// The full (growing) table — the training substrate. The serving
    /// estimator only carries a schema snapshot; the data lives here.
    table: Table,
    /// Live per-column statistics, updated incrementally on every ingest.
    live: Vec<ColumnStats>,
    monitor: DriftMonitor,
    /// Slot uid this table is bound to; feedback stamped with any other uid
    /// is stale (the table was re-registered) and rejected.
    bound_uid: u64,
    feedback: Vec<FeedbackEntry>,
    /// Next overwrite position once the feedback ring is full.
    feedback_cursor: usize,
    rng: SmallRng,
    ingested: u64,
}

impl OnlineTable {
    /// Bind online learning for `table` (the data the serving model was
    /// trained on) to the serving resources in `hooks`. The drift baseline
    /// is the table's statistics *now* — i.e. what the serving model saw.
    pub fn new(table: Table, cfg: OnlineConfig, hooks: OnlineHooks) -> Self {
        let live = table_stats(&table);
        let monitor = DriftMonitor::new(live.clone(), cfg.drift_threshold, cfg.drift_hysteresis);
        let bound_uid = hooks.slot.uid();
        let rng = SmallRng::seed_from_u64(cfg.seed);
        Self {
            cfg,
            hooks,
            table,
            live,
            monitor,
            bound_uid,
            feedback: Vec::new(),
            feedback_cursor: 0,
            rng,
            ingested: 0,
        }
    }

    /// Rows currently in the table (original + ingested).
    pub fn num_rows(&self) -> usize {
        self.table.num_rows()
    }

    /// Rows ingested since construction.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Feedback entries currently queued.
    pub fn feedback_len(&self) -> usize {
        self.feedback.len()
    }

    /// The slot uid this table is bound to.
    pub fn bound_uid(&self) -> u64 {
        self.bound_uid
    }

    /// The growing table (e.g. to compute true cardinalities in tests).
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The drift monitor (inspection).
    pub fn monitor(&self) -> &DriftMonitor {
        &self.monitor
    }

    /// Largest per-column histogram distance between the live statistics
    /// and the serving model's baseline.
    pub fn drift_distance(&self) -> f64 {
        self.monitor.max_distance(&self.live)
    }

    /// Append one dictionary-encoded row and fold it into the live column
    /// statistics. Returns the new row count. The row is validated before
    /// anything mutates, so a rejected ingest leaves no partial state.
    pub fn ingest_row(&mut self, ids: &[u32]) -> Result<u64, IngestError> {
        let expected = self.table.num_columns();
        if ids.len() != expected {
            return Err(IngestError::WidthMismatch { expected, got: ids.len() });
        }
        for (column, &id) in ids.iter().enumerate() {
            let ndv = self.table.column(column).ndv();
            if id as usize >= ndv {
                return Err(IngestError::UnknownValueId { column, id, ndv });
            }
        }
        self.table.append_row_ids(ids);
        for (column, &id) in ids.iter().enumerate() {
            self.live[column].observe(id);
        }
        self.ingested += 1;
        self.hooks.metrics.record_ingested_row();
        Ok(self.table.num_rows() as u64)
    }

    /// Queue one observed true cardinality for the next retrain.
    ///
    /// `slot_uid` must be the uid of the slot the *caller* resolved for this
    /// table; if the table was re-registered since this online state was
    /// bound, the uids differ and the feedback is rejected as stale (counted
    /// in [`crate::MetricsSnapshot::feedback_rejected`]).
    pub fn push_feedback(
        &mut self,
        slot_uid: u64,
        preds: Vec<Vec<IdPredicate>>,
        intervals: Vec<(u32, u32)>,
        actual: f64,
    ) -> Result<(), FeedbackError> {
        if slot_uid != self.bound_uid {
            self.hooks.metrics.record_feedback_rejected();
            return Err(FeedbackError::StaleSlot { bound: self.bound_uid, got: slot_uid });
        }
        if !actual.is_finite() || actual < 0.0 {
            self.hooks.metrics.record_feedback_rejected();
            return Err(FeedbackError::InvalidCardinality);
        }
        let entry = FeedbackEntry { preds, intervals, actual };
        if self.cfg.feedback_capacity == 0 {
            return Ok(()); // feedback disabled; accept and drop
        }
        if self.feedback.len() < self.cfg.feedback_capacity {
            self.feedback.push(entry);
        } else {
            self.feedback[self.feedback_cursor] = entry;
            self.feedback_cursor = (self.feedback_cursor + 1) % self.cfg.feedback_capacity;
        }
        Ok(())
    }

    /// One trainer tick: check drift, and if drift is confirmed (or enough
    /// feedback has accumulated) retrain from the serving weights and
    /// publish through swap → invalidate → hot-set replay.
    ///
    /// The table is pinned in the tier for the retrain's duration, so the
    /// model being replaced (and the retrained one about to publish) cannot
    /// be evicted mid-flight.
    pub fn tick(&mut self) -> OnlineTickReport {
        let mut report = OnlineTickReport {
            max_distance: self.monitor.max_distance(&self.live),
            ..OnlineTickReport::default()
        };
        report.drift = self.monitor.check(&self.live);
        if report.drift {
            self.hooks.metrics.record_drift_detection();
        }
        let feedback_due =
            self.cfg.feedback_trigger > 0 && self.feedback.len() >= self.cfg.feedback_trigger;
        if !(report.drift || feedback_due) {
            return report;
        }
        report.retrained = true;
        // Pin before announcing the retrain and unpin only after the publish
        // is fully accounted: any observer that sees `retrains` ticked but
        // `swaps_published` not yet ticked is looking at a window where the
        // pin is guaranteed held, which is what makes the mid-retrain
        // no-eviction regression test race-free.
        self.hooks.tier.pin(self.hooks.table_id);
        self.hooks.metrics.record_retrain();
        match self.retrain_and_publish() {
            Ok(replayed) => {
                report.swapped = true;
                report.replayed = replayed;
                self.hooks.metrics.record_swap_published();
                // Drift is now measured against what the new model saw, and
                // consumed feedback does not re-trigger.
                self.monitor.rebaseline(&self.live);
                self.feedback.clear();
                self.feedback_cursor = 0;
            }
            Err(_) => {
                // Keep the baseline and feedback: the next tick retries.
            }
        }
        self.hooks.tier.unpin(self.hooks.table_id);
        report
    }

    /// Warm-start from the serving weights, run the retrain loop over
    /// recency-biased virtual-tuple batches plus the weighted feedback
    /// queries, and publish the result. Returns the number of hot-set
    /// entries replayed into the cache.
    fn retrain_and_publish(&mut self) -> Result<usize, SwapError> {
        let snapshot = self.hooks.slot.current();
        let mut model = snapshot.model().clone();
        let mut adam = Adam::new(self.cfg.learning_rate);
        let mut scratch = TrainStepScratch::new();
        let sampler = SamplerConfig {
            expand_mu: self.cfg.expand_mu.max(1),
            wildcard_prob: self.cfg.wildcard_prob,
            max_predicates_per_column: 1,
        };
        let num_rows = self.table.num_rows();
        // Recency window: the last quarter of the table (at least one row).
        let recent_start = num_rows - (num_rows / 4).max(1).min(num_rows);
        let queries: Vec<PreparedQuery> = self
            .feedback
            .iter()
            .map(|f| {
                PreparedQuery::from_parts(f.preds.clone(), f.intervals.clone(), f.actual)
                    .with_weight(self.cfg.feedback_weight)
            })
            .collect();
        let mut anchors = Vec::with_capacity(self.cfg.train_batch_size.max(1));
        for _ in 0..self.cfg.retrain_steps.max(1) {
            anchors.clear();
            for _ in 0..self.cfg.train_batch_size.max(1) {
                let row = if self.rng.gen::<f64>() < self.cfg.recent_fraction {
                    self.rng.gen_range(recent_start..num_rows)
                } else {
                    self.rng.gen_range(0..num_rows)
                };
                anchors.push(row);
            }
            let batch = sample_virtual_batch(&self.table, &anchors, &sampler, &mut self.rng);
            train_step(
                &mut model,
                &mut adam,
                &batch,
                &queries,
                num_rows as f64,
                self.cfg.lambda,
                &mut scratch,
            );
        }
        let retrained = DuetEstimator::from_model(model, &self.table, "online-retrained");
        self.hooks.slot.swap(retrained)?;
        self.hooks.cache.invalidate();
        Ok(replay_hot_keys(&self.hooks.slot, &self.hooks.cache, &self.hooks.hot))
    }
}

impl std::fmt::Debug for OnlineTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineTable")
            .field("table_id", &self.hooks.table_id)
            .field("num_rows", &self.table.num_rows())
            .field("ingested", &self.ingested)
            .field("feedback_len", &self.feedback.len())
            .field("bound_uid", &self.bound_uid)
            .finish_non_exhaustive()
    }
}

/// Re-estimate the hottest observed keys under `slot`'s current model and
/// seed `cache` with the results — one batched forward pass, epoch-tagged so
/// a racing swap drops them. Shared by [`crate::DuetServer::hot_swap`] and
/// the online trainer's publish path. Returns the number of replayed keys.
pub(crate) fn replay_hot_keys(slot: &ModelSlot, cache: &ShardedCache, hot: &HotSet) -> usize {
    let hot_queries = hot.snapshot();
    if hot_queries.is_empty() {
        return 0;
    }
    let (generation, estimator) = slot.current_versioned();
    let epoch = cache.epoch();
    let mut ws = DuetWorkspace::new();
    let mut values = Vec::with_capacity(hot_queries.len());
    estimator.estimate_encoded_batch_with(&hot_queries, &hot_queries, &mut ws, &mut values);
    for (query, &value) in hot_queries.iter().zip(values.iter()) {
        cache.insert_tagged(query.key.with_generation(generation), value, epoch);
    }
    hot_queries.len()
}

/// The server's id-indexed registry of online-enabled tables, shared
/// between the in-process front door, the wire connections, and the
/// background trainer thread.
#[derive(Default)]
pub struct OnlineDirectory {
    tables: RwLock<Vec<Option<Arc<Mutex<OnlineTable>>>>>,
}

impl OnlineDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable (or replace) online learning for the table with dense id
    /// `table_id`; returns the shared state.
    pub fn enable(&self, table_id: usize, online: OnlineTable) -> Arc<Mutex<OnlineTable>> {
        let shared = Arc::new(Mutex::new(online));
        let mut tables = self.tables.write().expect("online directory poisoned");
        if tables.len() <= table_id {
            tables.resize_with(table_id + 1, || None);
        }
        tables[table_id] = Some(shared.clone());
        shared
    }

    /// The online state of table `table_id`, if enabled.
    pub fn get(&self, table_id: usize) -> Option<Arc<Mutex<OnlineTable>>> {
        self.tables.read().expect("online directory poisoned").get(table_id).cloned().flatten()
    }

    /// Tick every online-enabled table once; returns the number of retrains
    /// that ran. This is the background trainer's body — also callable
    /// synchronously (tests, the sim).
    pub fn tick_all(&self) -> usize {
        let tables: Vec<_> = {
            let guard = self.tables.read().expect("online directory poisoned");
            guard.iter().flatten().cloned().collect()
        };
        let mut retrains = 0;
        for table in tables {
            let report = table.lock().expect("online table poisoned").tick();
            if report.retrained {
                retrains += 1;
            }
        }
        retrains
    }
}

impl std::fmt::Debug for OnlineDirectory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tables = self.tables.read().expect("online directory poisoned");
        write!(f, "OnlineDirectory({} slots)", tables.len())
    }
}

/// Owner of a background trainer thread (see
/// [`crate::DuetServer::spawn_online_trainer`]): ticks every online table on
/// a fixed interval until shut down or dropped.
#[derive(Debug)]
pub struct OnlineTrainerHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl OnlineTrainerHandle {
    /// Spawn a trainer ticking `directory` every `interval`.
    pub(crate) fn spawn(directory: Arc<OnlineDirectory>, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let thread = std::thread::Builder::new()
            .name("duet-online-trainer".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Relaxed) {
                    directory.tick_all();
                    // Sleep in short slices so shutdown is prompt even with
                    // a long interval.
                    let mut remaining = interval;
                    while !remaining.is_zero() && !stop_flag.load(Ordering::Relaxed) {
                        let slice = remaining.min(Duration::from_millis(10));
                        std::thread::sleep(slice);
                        remaining = remaining.saturating_sub(slice);
                    }
                }
            })
            .expect("failed to spawn online trainer");
        Self { stop, thread: Some(thread) }
    }

    /// A clone of the trainer's stop flag, so [`crate::DuetServer::shutdown`]
    /// can halt training without owning (or joining) the handle.
    pub(crate) fn stop_flag(&self) -> Arc<AtomicBool> {
        self.stop.clone()
    }

    /// Stop the trainer and join its thread (also happens on drop).
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for OnlineTrainerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_core::DuetConfig;
    use duet_data::datasets::census_like;

    fn hooks_for(estimator: DuetEstimator) -> OnlineHooks {
        OnlineHooks {
            slot: Arc::new(ModelSlot::new(estimator)),
            cache: Arc::new(ShardedCache::new(64, 1)),
            hot: Arc::new(HotSet::new(8)),
            tier: Arc::new(ModelTier::new(0)),
            metrics: Arc::new(ServeMetrics::new()),
            table_id: 0,
        }
    }

    fn small_setup() -> (Table, OnlineHooks) {
        let table = census_like(300, 11);
        let cfg = DuetConfig::small().with_epochs(1);
        let estimator = DuetEstimator::train_data_only(&table, &cfg, 11);
        let hooks = hooks_for(estimator);
        (table, hooks)
    }

    #[test]
    fn ingest_validates_before_mutating() {
        let (table, hooks) = small_setup();
        let ncols = table.num_columns();
        let mut online = OnlineTable::new(table, OnlineConfig::default(), hooks);
        let before = online.num_rows();
        assert!(matches!(
            online.ingest_row(&vec![0; ncols + 1]),
            Err(IngestError::WidthMismatch { .. })
        ));
        let mut bad = vec![0u32; ncols];
        bad[0] = u32::MAX;
        assert!(matches!(
            online.ingest_row(&bad),
            Err(IngestError::UnknownValueId { column: 0, .. })
        ));
        assert_eq!(online.num_rows(), before, "rejected ingests leave no partial state");
        assert_eq!(online.ingested(), 0);
        let good = vec![0u32; ncols];
        assert_eq!(online.ingest_row(&good).unwrap(), before as u64 + 1);
        assert_eq!(online.ingested(), 1);
    }

    #[test]
    fn drift_monitor_hysteresis_and_rebaseline() {
        let (table, _hooks) = small_setup();
        let baseline = table_stats(&table);
        let mut monitor = DriftMonitor::new(baseline.clone(), 0.2, 2);
        assert!(!monitor.check(&baseline), "identical stats never drift");
        // Shift all mass of column 0 onto its last id.
        let mut shifted = baseline.clone();
        let last = shifted[0].counts.len() - 1;
        let total: u64 = shifted[0].counts.iter().sum();
        shifted[0].counts.iter_mut().for_each(|c| *c = 0);
        shifted[0].counts[last] = total;
        assert!(monitor.max_distance(&shifted) > 0.2);
        assert!(!monitor.check(&shifted), "hysteresis: first over-threshold tick arms only");
        assert!(monitor.check(&shifted), "second consecutive tick confirms");
        monitor.rebaseline(&shifted);
        assert!(!monitor.check(&shifted), "rebaselined: the shifted stats are the new normal");
        assert_eq!(monitor.consecutive(), 0);
    }

    #[test]
    fn stale_feedback_is_rejected_and_counted() {
        let (table, hooks) = small_setup();
        let metrics = hooks.metrics.clone();
        let bound = hooks.slot.uid();
        let mut online = OnlineTable::new(table, OnlineConfig::default(), hooks);
        assert!(online.push_feedback(bound, vec![Vec::new()], vec![(0, 1)], 5.0).is_ok());
        assert_eq!(online.feedback_len(), 1);
        assert_eq!(
            online.push_feedback(bound + 1, vec![Vec::new()], vec![(0, 1)], 5.0),
            Err(FeedbackError::StaleSlot { bound, got: bound + 1 })
        );
        assert_eq!(
            online.push_feedback(bound, vec![Vec::new()], vec![(0, 1)], f64::NAN),
            Err(FeedbackError::InvalidCardinality)
        );
        assert_eq!(online.feedback_len(), 1, "rejected feedback is not queued");
        assert_eq!(metrics.snapshot(0, 0, 0).feedback_rejected, 2);
    }

    #[test]
    fn feedback_ring_is_bounded() {
        let (table, hooks) = small_setup();
        let bound = hooks.slot.uid();
        let cfg = OnlineConfig { feedback_capacity: 3, ..OnlineConfig::default() };
        let mut online = OnlineTable::new(table, cfg, hooks);
        for i in 0..10 {
            online.push_feedback(bound, vec![Vec::new()], vec![(0, 1)], i as f64).unwrap();
        }
        assert_eq!(online.feedback_len(), 3);
    }

    #[test]
    fn tick_without_drift_is_a_no_op() {
        let (table, hooks) = small_setup();
        let slot = hooks.slot.clone();
        let mut online = OnlineTable::new(table, OnlineConfig::default(), hooks);
        let report = online.tick();
        assert!(!report.drift && !report.retrained && !report.swapped);
        assert_eq!(slot.generation(), 0, "no publish without a trigger");
    }

    #[test]
    fn drift_triggers_retrain_and_publishes_a_new_generation() {
        let (table, hooks) = small_setup();
        let slot = hooks.slot.clone();
        let metrics = hooks.metrics.clone();
        let ncols = table.num_columns();
        let skew: Vec<u32> =
            (0..ncols).map(|c| (table.column(c).ndv() as u32).saturating_sub(1)).collect();
        let cfg = OnlineConfig {
            drift_threshold: 0.1,
            drift_hysteresis: 1,
            retrain_steps: 4,
            train_batch_size: 8,
            ..OnlineConfig::default()
        };
        let mut online = OnlineTable::new(table, cfg, hooks);
        // Ingest a large skewed block: every row takes each column's last id.
        for _ in 0..400 {
            online.ingest_row(&skew).unwrap();
        }
        assert!(online.drift_distance() > 0.1, "the skewed block must move the histograms");
        let report = online.tick();
        assert!(report.drift && report.retrained && report.swapped);
        assert_eq!(slot.generation(), 1, "publish bumps the generation");
        let snap = metrics.snapshot(0, 0, 0);
        assert_eq!((snap.drift_detections, snap.retrains, snap.swaps_published), (1, 1, 1));
        assert_eq!(snap.ingested_rows, 400);
        // The monitor rebaselined: an immediate second tick is quiet.
        let second = online.tick();
        assert!(!second.drift && !second.retrained);
        // The published estimator carries the grown row count.
        assert_eq!(slot.current().num_rows(), online.num_rows());
    }

    #[test]
    fn feedback_trigger_retrains_without_drift() {
        let (table, hooks) = small_setup();
        let slot = hooks.slot.clone();
        let bound = hooks.slot.uid();
        let schema = slot.current().schema().clone();
        let cfg = OnlineConfig {
            feedback_trigger: 2,
            retrain_steps: 2,
            train_batch_size: 4,
            ..OnlineConfig::default()
        };
        let mut online = OnlineTable::new(table, cfg, hooks);
        let ncols = schema.num_columns();
        for i in 0..2 {
            let preds = vec![Vec::new(); ncols];
            let intervals: Vec<(u32, u32)> =
                (0..ncols).map(|c| (0, schema.column(c).ndv() as u32)).collect();
            online.push_feedback(bound, preds, intervals, 100.0 + i as f64).unwrap();
        }
        let report = online.tick();
        assert!(!report.drift, "no data drifted");
        assert!(report.retrained && report.swapped, "feedback volume alone triggers");
        assert_eq!(slot.generation(), 1);
        assert_eq!(online.feedback_len(), 0, "consumed feedback is cleared");
    }
}
