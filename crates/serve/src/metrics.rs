//! Serving metrics: request counters, latency percentiles, batch-size
//! histogram, and cache hit rate.
//!
//! Everything on the record path is lock-free atomics — including the
//! latency ring, a fixed-size buffer of the most recent [`LATENCY_WINDOW`]
//! request latencies (an atomic cursor plus relaxed slot stores; a slot
//! being overwritten while a snapshot reads it just yields a neighboring
//! sample, which percentile estimates tolerate). Percentiles are computed
//! on demand with [`duet_query::percentile_sorted`] — the same helper the
//! offline experiment harness uses, so serving p99s and paper table p99s
//! are computed identically.

use duet_query::percentile_sorted;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of most-recent request latencies kept for percentile estimates.
pub const LATENCY_WINDOW: usize = 8192;

/// Batch-size histogram bucket upper bounds (inclusive); the last bucket is
/// open-ended.
pub const BATCH_BUCKETS: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// Live metrics shared by every worker and client of a [`crate::DuetServer`].
pub struct ServeMetrics {
    started: Instant,
    requests: AtomicU64,
    batches: AtomicU64,
    batched_queries: AtomicU64,
    batch_hist: [AtomicU64; BATCH_BUCKETS.len() + 1],
    /// Requests rejected at admission because their shard queue was full.
    shed_overload: AtomicU64,
    /// Requests dropped at dequeue because their deadline had expired.
    shed_deadline: AtomicU64,
    /// Requests dropped at dequeue because the table was re-registered
    /// (different slot) after the request was encoded and queued.
    shed_stale: AtomicU64,
    /// Batches an idle worker stole from another shard's queue.
    steals: AtomicU64,
    /// Models evicted from the resident tier to checkpoint bytes.
    model_evictions: AtomicU64,
    /// Evicted models rebuilt from their checkpoint on demand.
    model_reloads: AtomicU64,
    /// Wire connections accepted / closed (their difference is the open
    /// gauge; two counters so the totals survive disconnects).
    conns_opened: AtomicU64,
    conns_closed: AtomicU64,
    /// Complete frames decoded from / encoded to wire connections.
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    /// Connections torn down because their byte stream failed to decode.
    wire_decode_errors: AtomicU64,
    /// Histogram of per-connection in-flight request counts, sampled at
    /// each admission (same bucket bounds as the batch histogram).
    pipeline_hist: [AtomicU64; BATCH_BUCKETS.len() + 1],
    /// Rows appended through the online ingest path.
    ingested_rows: AtomicU64,
    /// Trainer ticks on which drift was confirmed (threshold + hysteresis).
    drift_detections: AtomicU64,
    /// Online retrains started (drift- or feedback-triggered).
    retrains: AtomicU64,
    /// Retrained models published through the hot-swap path.
    swaps_published: AtomicU64,
    /// Feedback observations rejected (stale slot uid or invalid value).
    feedback_rejected: AtomicU64,
    /// Batch-execution panics caught by shard supervision.
    panics_caught: AtomicU64,
    /// Shard workers respawned with a fresh workspace pool after a panic.
    shard_restarts: AtomicU64,
    /// Evicted-model reload attempts that failed with a typed error.
    reload_failures: AtomicU64,
    /// Requests terminated with an internal fault (poisoned batch, failed
    /// reload) rather than a scheduling shed.
    shed_internal: AtomicU64,
    /// Evictions abandoned because the checkpoint spill failed (IO error or
    /// read-back verification); the model stays resident.
    spill_failures: AtomicU64,
    /// Ring of recent latencies in nanoseconds; `latency_cursor` counts
    /// total records and indexes the ring modulo [`LATENCY_WINDOW`].
    latencies_ns: Vec<AtomicU64>,
    latency_cursor: AtomicU64,
}

impl ServeMetrics {
    /// Fresh, all-zero metrics anchored at "now" (QPS denominator).
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_queries: AtomicU64::new(0),
            batch_hist: Default::default(),
            shed_overload: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            shed_stale: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            model_evictions: AtomicU64::new(0),
            model_reloads: AtomicU64::new(0),
            conns_opened: AtomicU64::new(0),
            conns_closed: AtomicU64::new(0),
            frames_in: AtomicU64::new(0),
            frames_out: AtomicU64::new(0),
            wire_decode_errors: AtomicU64::new(0),
            pipeline_hist: Default::default(),
            ingested_rows: AtomicU64::new(0),
            drift_detections: AtomicU64::new(0),
            retrains: AtomicU64::new(0),
            swaps_published: AtomicU64::new(0),
            feedback_rejected: AtomicU64::new(0),
            panics_caught: AtomicU64::new(0),
            shard_restarts: AtomicU64::new(0),
            reload_failures: AtomicU64::new(0),
            shed_internal: AtomicU64::new(0),
            spill_failures: AtomicU64::new(0),
            latencies_ns: (0..LATENCY_WINDOW).map(|_| AtomicU64::new(0)).collect(),
            latency_cursor: AtomicU64::new(0),
        }
    }

    /// Record one completed request and its end-to-end latency (lock-free).
    pub fn record_request(&self, latency: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        let at = self.latency_cursor.fetch_add(1, Ordering::Relaxed) % LATENCY_WINDOW as u64;
        self.latencies_ns[at as usize].store(ns, Ordering::Relaxed);
    }

    /// Record one executed forward batch of `size` queries.
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_queries.fetch_add(size as u64, Ordering::Relaxed);
        let bucket = BATCH_BUCKETS.iter().position(|&ub| size <= ub).unwrap_or(BATCH_BUCKETS.len());
        self.batch_hist[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request rejected at admission (shard queue full).
    pub fn record_shed_overload(&self) {
        self.shed_overload.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request dropped at dequeue (deadline expired).
    pub fn record_shed_deadline(&self) {
        self.shed_deadline.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request dropped at dequeue because its table was
    /// re-registered (new slot) after the request was encoded.
    pub fn record_shed_stale(&self) {
        self.shed_stale.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one batch stolen by an idle worker from another shard.
    pub fn record_steal(&self) {
        self.steals.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one model evicted from the resident tier to checkpoint bytes.
    pub fn record_model_eviction(&self) {
        self.model_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one evicted model rebuilt from its checkpoint on demand.
    pub fn record_model_reload(&self) {
        self.model_reloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one accepted wire connection.
    pub fn record_conn_opened(&self) {
        self.conns_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one closed wire connection (EOF, shutdown, or decode error).
    pub fn record_conn_closed(&self) {
        self.conns_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one complete frame decoded from a wire connection.
    pub fn record_frame_in(&self) {
        self.frames_in.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one frame encoded onto a wire connection.
    pub fn record_frame_out(&self) {
        self.frames_out.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one connection torn down by a protocol decode error.
    pub fn record_wire_decode_error(&self) {
        self.wire_decode_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a connection's in-flight request count observed at admission
    /// (the pipelining-depth histogram).
    pub fn record_pipeline_depth(&self, depth: usize) {
        let bucket =
            BATCH_BUCKETS.iter().position(|&ub| depth <= ub).unwrap_or(BATCH_BUCKETS.len());
        self.pipeline_hist[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Record one row appended through the online ingest path.
    pub fn record_ingested_row(&self) {
        self.ingested_rows.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one trainer tick on which drift was confirmed.
    pub fn record_drift_detection(&self) {
        self.drift_detections.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one online retrain (drift- or feedback-triggered).
    pub fn record_retrain(&self) {
        self.retrains.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one retrained model published through the hot-swap path.
    pub fn record_swap_published(&self) {
        self.swaps_published.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one rejected feedback observation (stale slot uid or invalid
    /// cardinality).
    pub fn record_feedback_rejected(&self) {
        self.feedback_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one batch-execution panic caught by shard supervision.
    pub fn record_panic_caught(&self) {
        self.panics_caught.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one shard worker respawned after a caught panic.
    pub fn record_shard_restart(&self) {
        self.shard_restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one evicted-model reload attempt that failed with a typed
    /// error (unreadable spill file, corrupt or truncated checkpoint).
    pub fn record_reload_failure(&self) {
        self.reload_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request terminated by an internal fault (poisoned batch or
    /// failed reload) — the fault-domain counterpart of the scheduling sheds.
    pub fn record_shed_internal(&self) {
        self.shed_internal.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one eviction abandoned because the checkpoint spill failed.
    pub fn record_spill_failure(&self) {
        self.spill_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests rejected at admission so far.
    pub fn shed_overload(&self) -> u64 {
        self.shed_overload.load(Ordering::Relaxed)
    }

    /// Requests dropped at dequeue so far.
    pub fn shed_deadline(&self) -> u64 {
        self.shed_deadline.load(Ordering::Relaxed)
    }

    /// Snapshot every metric, combining the given cache counters (summed by
    /// the server across its per-table caches) and the router's current
    /// total queue depth (a gauge the atomics cannot derive on their own).
    pub fn snapshot(
        &self,
        cache_hits: u64,
        cache_misses: u64,
        queue_depth: usize,
    ) -> MetricsSnapshot {
        let elapsed = self.started.elapsed();
        let requests = self.requests.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batched_queries = self.batched_queries.load(Ordering::Relaxed);

        let filled = (self.latency_cursor.load(Ordering::Relaxed) as usize).min(LATENCY_WINDOW);
        let mut sorted: Vec<f64> = self.latencies_ns[..filled]
            .iter()
            .map(|ns| ns.load(Ordering::Relaxed) as f64 / 1_000.0)
            .collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

        let bucketize = |hist: &[AtomicU64]| {
            BATCH_BUCKETS
                .iter()
                .copied()
                .chain(std::iter::once(usize::MAX))
                .zip(hist.iter().map(|c| c.load(Ordering::Relaxed)))
                .collect()
        };
        let histogram = bucketize(&self.batch_hist);
        let pipeline_histogram = bucketize(&self.pipeline_hist);
        let conns_opened = self.conns_opened.load(Ordering::Relaxed);
        let conns_closed = self.conns_closed.load(Ordering::Relaxed);

        let cache_total = cache_hits + cache_misses;
        MetricsSnapshot {
            elapsed,
            requests,
            qps: requests as f64 / elapsed.as_secs_f64().max(1e-9),
            p50_latency_us: percentile_sorted(&sorted, 50.0),
            p99_latency_us: percentile_sorted(&sorted, 99.0),
            batches,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched_queries as f64 / batches as f64
            },
            batch_size_histogram: histogram,
            shed_overload: self.shed_overload.load(Ordering::Relaxed),
            shed_deadline: self.shed_deadline.load(Ordering::Relaxed),
            shed_stale: self.shed_stale.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            model_evictions: self.model_evictions.load(Ordering::Relaxed),
            model_reloads: self.model_reloads.load(Ordering::Relaxed),
            conns_opened,
            open_conns: conns_opened.saturating_sub(conns_closed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            wire_decode_errors: self.wire_decode_errors.load(Ordering::Relaxed),
            pipeline_depth_histogram: pipeline_histogram,
            ingested_rows: self.ingested_rows.load(Ordering::Relaxed),
            drift_detections: self.drift_detections.load(Ordering::Relaxed),
            retrains: self.retrains.load(Ordering::Relaxed),
            swaps_published: self.swaps_published.load(Ordering::Relaxed),
            feedback_rejected: self.feedback_rejected.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            shard_restarts: self.shard_restarts.load(Ordering::Relaxed),
            reload_failures: self.reload_failures.load(Ordering::Relaxed),
            shed_internal: self.shed_internal.load(Ordering::Relaxed),
            spill_failures: self.spill_failures.load(Ordering::Relaxed),
            queue_depth,
            cache_hits,
            cache_misses,
            cache_hit_rate: if cache_total == 0 {
                0.0
            } else {
                cache_hits as f64 / cache_total as f64
            },
        }
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ServeMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeMetrics")
            .field("requests", &self.requests.load(Ordering::Relaxed))
            .field("batches", &self.batches.load(Ordering::Relaxed))
            .finish()
    }
}

/// A point-in-time view of a server's metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Time since the server (metrics) was created.
    pub elapsed: Duration,
    /// Completed requests (cache hits included).
    pub requests: u64,
    /// Requests per second since startup.
    pub qps: f64,
    /// Median end-to-end request latency over the recent window, in µs.
    pub p50_latency_us: f64,
    /// 99th-percentile end-to-end request latency over the recent window, µs.
    pub p99_latency_us: f64,
    /// Forward batches executed.
    pub batches: u64,
    /// Mean queries per forward batch.
    pub mean_batch_size: f64,
    /// `(bucket upper bound, batches)` pairs; the `usize::MAX` bucket is
    /// open-ended.
    pub batch_size_histogram: Vec<(usize, u64)>,
    /// Requests rejected at admission because their shard queue was full.
    pub shed_overload: u64,
    /// Requests dropped at dequeue because their deadline had expired.
    pub shed_deadline: u64,
    /// Requests dropped at dequeue because their table was re-registered
    /// (different slot) while they were queued.
    pub shed_stale: u64,
    /// Batches an idle worker stole from another shard's queue.
    pub steals: u64,
    /// Models evicted from the resident tier to checkpoint bytes (memory
    /// budget pressure; see [`crate::ModelTier`]).
    pub model_evictions: u64,
    /// Evicted models rebuilt from their checkpoint by a request.
    pub model_reloads: u64,
    /// Wire connections accepted since startup.
    pub conns_opened: u64,
    /// Wire connections currently open (accepted minus closed).
    pub open_conns: u64,
    /// Complete frames decoded from wire connections.
    pub frames_in: u64,
    /// Frames encoded onto wire connections.
    pub frames_out: u64,
    /// Wire connections torn down by protocol decode errors.
    pub wire_decode_errors: u64,
    /// `(bucket upper bound, samples)` histogram of per-connection in-flight
    /// request counts at admission; the `usize::MAX` bucket is open-ended.
    pub pipeline_depth_histogram: Vec<(usize, u64)>,
    /// Rows appended through the online ingest path.
    pub ingested_rows: u64,
    /// Trainer ticks on which drift was confirmed (threshold + hysteresis;
    /// see [`crate::online::DriftMonitor`]).
    pub drift_detections: u64,
    /// Online retrains started (drift- or feedback-triggered).
    pub retrains: u64,
    /// Retrained models published through the hot-swap path.
    pub swaps_published: u64,
    /// Feedback observations rejected (stale slot uid or invalid
    /// cardinality).
    pub feedback_rejected: u64,
    /// Batch-execution panics caught by shard supervision (every request in
    /// the poisoned batch still received a terminal internal-error reply).
    pub panics_caught: u64,
    /// Shard workers respawned with a fresh workspace pool after a panic.
    pub shard_restarts: u64,
    /// Evicted-model reload attempts that failed with a typed error.
    pub reload_failures: u64,
    /// Requests terminated with an internal fault (poisoned batch, failed
    /// reload) rather than a scheduling shed.
    pub shed_internal: u64,
    /// Evictions abandoned because the checkpoint spill failed; the model
    /// stayed resident.
    pub spill_failures: u64,
    /// Requests queued across all shards at snapshot time.
    pub queue_depth: usize,
    /// Result-cache hits across all tables.
    pub cache_hits: u64,
    /// Result-cache misses across all tables.
    pub cache_misses: u64,
    /// `hits / (hits + misses)`, or 0 before the first lookup.
    pub cache_hit_rate: f64,
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "requests={} qps={:.0} p50={:.1}us p99={:.1}us batches={} mean_batch={:.2} \
             shed_overload={} shed_deadline={} shed_stale={} steals={} evictions={} reloads={} \
             queue_depth={} cache_hit_rate={:.1}% \
             conns={} frames_in={} frames_out={} decode_errors={} \
             ingested={} drifts={} retrains={} swaps={} feedback_rejected={} \
             panics_caught={} shard_restarts={} reload_failures={} shed_internal={} \
             spill_failures={}",
            self.requests,
            self.qps,
            self.p50_latency_us,
            self.p99_latency_us,
            self.batches,
            self.mean_batch_size,
            self.shed_overload,
            self.shed_deadline,
            self.shed_stale,
            self.steals,
            self.model_evictions,
            self.model_reloads,
            self.queue_depth,
            self.cache_hit_rate * 100.0,
            self.open_conns,
            self.frames_in,
            self.frames_out,
            self.wire_decode_errors,
            self.ingested_rows,
            self.drift_detections,
            self.retrains,
            self.swaps_published,
            self.feedback_rejected,
            self.panics_caught,
            self.shard_restarts,
            self.reload_failures,
            self.shed_internal,
            self.spill_failures
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_latencies_feed_percentiles() {
        let m = ServeMetrics::new();
        for us in 1..=100u64 {
            m.record_request(Duration::from_micros(us));
        }
        let s = m.snapshot(0, 0, 0);
        assert_eq!(s.requests, 100);
        assert!(s.qps > 0.0);
        assert!((s.p50_latency_us - 50.5).abs() < 1.0, "p50 {}", s.p50_latency_us);
        assert!(s.p99_latency_us >= s.p50_latency_us);
        assert!(s.p99_latency_us <= 100.0 + 1e-9);
    }

    #[test]
    fn batch_histogram_buckets_by_size() {
        let m = ServeMetrics::new();
        m.record_batch(1);
        m.record_batch(2);
        m.record_batch(5);
        m.record_batch(300);
        let s = m.snapshot(0, 0, 0);
        assert_eq!(s.batches, 4);
        assert!((s.mean_batch_size - 77.0).abs() < 1e-9);
        let count_of =
            |ub: usize| s.batch_size_histogram.iter().find(|&&(b, _)| b == ub).map(|&(_, c)| c);
        assert_eq!(count_of(1), Some(1));
        assert_eq!(count_of(2), Some(1));
        assert_eq!(count_of(8), Some(1)); // 5 lands in the <=8 bucket
        assert_eq!(count_of(usize::MAX), Some(1)); // 300 overflows the last bound
    }

    #[test]
    fn cache_rate_combines_external_counters() {
        let m = ServeMetrics::new();
        let s = m.snapshot(3, 1, 0);
        assert_eq!(s.cache_hits, 3);
        assert_eq!(s.cache_misses, 1);
        assert!((s.cache_hit_rate - 0.75).abs() < 1e-9);
        assert_eq!(m.snapshot(0, 0, 0).cache_hit_rate, 0.0);
    }

    #[test]
    fn latency_window_is_bounded() {
        let m = ServeMetrics::new();
        for _ in 0..(LATENCY_WINDOW + 100) {
            m.record_request(Duration::from_micros(7));
        }
        let s = m.snapshot(0, 0, 0);
        assert_eq!(s.requests as usize, LATENCY_WINDOW + 100);
        assert!((s.p50_latency_us - 7.0).abs() < 1e-9);
    }

    #[test]
    fn shed_counters_and_queue_depth_are_reported() {
        let m = ServeMetrics::new();
        m.record_shed_overload();
        m.record_shed_overload();
        m.record_shed_deadline();
        assert_eq!(m.shed_overload(), 2);
        assert_eq!(m.shed_deadline(), 1);
        let s = m.snapshot(0, 0, 7);
        assert_eq!(s.shed_overload, 2);
        assert_eq!(s.shed_deadline, 1);
        assert_eq!(s.queue_depth, 7);
        let line = s.to_string();
        assert!(line.contains("shed_overload=2"));
        assert!(line.contains("shed_deadline=1"));
        assert!(line.contains("queue_depth=7"));
    }

    #[test]
    fn wire_counters_and_pipeline_histogram_are_reported() {
        let m = ServeMetrics::new();
        m.record_conn_opened();
        m.record_conn_opened();
        m.record_conn_closed();
        m.record_frame_in();
        m.record_frame_in();
        m.record_frame_out();
        m.record_wire_decode_error();
        m.record_steal();
        m.record_pipeline_depth(1);
        m.record_pipeline_depth(3);
        m.record_pipeline_depth(500);
        let s = m.snapshot(0, 0, 0);
        assert_eq!(s.conns_opened, 2);
        assert_eq!(s.open_conns, 1);
        assert_eq!((s.frames_in, s.frames_out), (2, 1));
        assert_eq!(s.wire_decode_errors, 1);
        assert_eq!(s.steals, 1);
        let count_of =
            |ub: usize| s.pipeline_depth_histogram.iter().find(|&&(b, _)| b == ub).map(|&(_, c)| c);
        assert_eq!(count_of(1), Some(1));
        assert_eq!(count_of(4), Some(1)); // depth 3 lands in the <=4 bucket
        assert_eq!(count_of(usize::MAX), Some(1));
        let line = s.to_string();
        assert!(line.contains("steals=1"));
        assert!(line.contains("conns=1"));
        assert!(line.contains("frames_in=2"));
    }

    #[test]
    fn fault_counters_are_reported() {
        let m = ServeMetrics::new();
        m.record_panic_caught();
        m.record_shard_restart();
        m.record_reload_failure();
        m.record_reload_failure();
        m.record_shed_internal();
        m.record_shed_internal();
        m.record_shed_internal();
        m.record_spill_failure();
        let s = m.snapshot(0, 0, 0);
        assert_eq!(s.panics_caught, 1);
        assert_eq!(s.shard_restarts, 1);
        assert_eq!(s.reload_failures, 2);
        assert_eq!(s.shed_internal, 3);
        assert_eq!(s.spill_failures, 1);
        let line = s.to_string();
        assert!(line.contains("panics_caught=1"));
        assert!(line.contains("shard_restarts=1"));
        assert!(line.contains("reload_failures=2"));
        assert!(line.contains("shed_internal=3"));
        assert!(line.contains("spill_failures=1"));
    }

    #[test]
    fn snapshot_display_is_human_readable() {
        let m = ServeMetrics::new();
        m.record_request(Duration::from_micros(10));
        m.record_batch(4);
        let line = m.snapshot(1, 1, 0).to_string();
        assert!(line.contains("requests=1"));
        assert!(line.contains("cache_hit_rate=50.0%"));
    }
}
