//! The serving router: consistent table→shard assignment over a shared pool
//! of worker shards, bounded per-shard queues, and admission control.
//!
//! PR 1's design ran **one worker thread per table** with an unbounded
//! channel: a burst on one hot table could stall that table arbitrarily and
//! nothing was ever rejected. The router replaces it with a **shared pool of
//! `N` worker shards**: every registered table is hashed (FNV-1a over its
//! name) onto a shard, so any number of tables is served by a fixed number
//! of threads, and a shard multiplexes requests for all of its tables
//! through one bounded FIFO queue.
//!
//! Admission control is two-sided:
//!
//! * **at enqueue** — a shard whose queue is at capacity rejects the request
//!   immediately (the push fails, the server surfaces a typed `Overloaded`
//!   error). The queue can never grow without bound; overload sheds load
//!   instead of accumulating latency.
//! * **at dequeue** — a request carries an optional deadline; if it has
//!   already expired by the time a worker picks it up, the worker drops it
//!   with a [`ShedReason::DeadlineExpired`] reply instead of wasting a
//!   forward pass on an answer nobody is waiting for.
//!
//! All timing goes through the [`Clock`] trait: production uses the
//! monotonic [`SystemClock`], while the deterministic test harness
//! ([`crate::sim`]) drives the very same queue/admission/deadline code with
//! a manually-advanced [`VirtualClock`], which is what makes shed/served
//! counts exactly reproducible under a fixed seed.

use crate::cache::{CacheKey, ShardedCache};
use crate::metrics::ServeMetrics;
use crate::registry::ModelSlot;
use duet_core::IdPredicate;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Monotonic time source used for deadlines.
///
/// Reported as a [`Duration`] since an arbitrary per-clock origin; only
/// differences are meaningful. Production serving uses [`SystemClock`]; the
/// deterministic harness substitutes a [`VirtualClock`].
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Time elapsed since this clock's origin.
    fn now(&self) -> Duration;
}

/// The production clock: monotonic time since construction.
#[derive(Debug)]
pub struct SystemClock {
    origin: Instant,
}

impl SystemClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        Self { origin: Instant::now() }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// A manually-advanced clock for deterministic tests: time only moves when
/// the driver says so, so deadline expiry is a pure function of the script.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ns: AtomicU64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock by `by` (saturating at `u64::MAX` nanoseconds).
    pub fn advance(&self, by: Duration) {
        let by = by.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.now_ns.fetch_add(by, Ordering::AcqRel);
    }

    /// Jump the clock to an absolute time since its origin.
    ///
    /// Time never moves backwards: a target earlier than the current time is
    /// ignored, so interleaved `set` calls keep the clock monotonic.
    pub fn set(&self, to: Duration) {
        let to = to.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.now_ns.fetch_max(to, Ordering::AcqRel);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.now_ns.load(Ordering::Acquire))
    }
}

/// Why the router refused to answer a request with an estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The target shard's queue was at capacity when the request arrived.
    QueueFull,
    /// The request's deadline had already expired when a worker dequeued it.
    DeadlineExpired,
    /// The table was re-registered (a new slot, possibly a new schema)
    /// between the request's encoding and its dequeue; its predicate ids may
    /// no longer mean what they meant, so it is rejected instead of served.
    StaleRegistration,
    /// The request's batch hit an internal fault — a panic caught by shard
    /// supervision, or a failed evicted-model reload. The request itself may
    /// be fine; retrying on a respawned worker usually succeeds.
    WorkerPanicked,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull => write!(f, "shard queue full"),
            ShedReason::DeadlineExpired => write!(f, "deadline expired before dequeue"),
            ShedReason::StaleRegistration => {
                write!(f, "table re-registered while the request was queued")
            }
            ShedReason::WorkerPanicked => {
                write!(f, "internal fault while the request's batch executed")
            }
        }
    }
}

/// Tuning knobs of the routing layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterConfig {
    /// Number of worker shards (and worker threads) in the shared pool.
    pub num_shards: usize,
    /// Bound on each shard's queue; a request arriving at a full shard is
    /// rejected with a typed `Overloaded` error. `0` rejects everything
    /// (useful to test client-side overload handling deterministically).
    pub queue_capacity: usize,
    /// Per-request deadline budget measured from admission. A request still
    /// queued when its budget runs out is dropped at dequeue
    /// ([`ShedReason::DeadlineExpired`]) instead of occupying a forward
    /// pass. `None` disables deadline shedding.
    pub default_deadline: Option<Duration>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self { num_shards: 4, queue_capacity: 4096, default_deadline: None }
    }
}

/// Consistent table→shard assignment: FNV-1a over the table name, reduced
/// modulo the shard count. Stable across routers, processes and runs, so a
/// table always lands on the same shard for a given pool size.
pub fn shard_for(table: &str, num_shards: usize) -> usize {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in table.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    (hash % num_shards.max(1) as u64) as usize
}

/// Where a worker sends a request's outcome.
#[derive(Debug)]
pub(crate) enum ReplyTo {
    /// Production: a buffered channel back to the blocked client (buffered
    /// so the worker never blocks on a slow or vanished client).
    Channel(SyncSender<Result<f64, ShedReason>>),
    /// Wire connection: record under this request id in the connection's
    /// outbox; the connection's next pump turns it into a response frame.
    Wire {
        /// The owning connection's completion queue + request pool.
        outbox: Arc<crate::wire::Outbox>,
        /// Client-chosen correlation id echoed in the response frame.
        request_id: u64,
    },
    /// A wire request whose outcome has already been recorded in the outbox.
    /// `deliver` detaches `Wire` into this the moment it completes, so a
    /// supervised retry of the same batch can never answer twice; the outbox
    /// handle is retained so the struct can still be recycled into its pool.
    WireAnswered(Arc<crate::wire::Outbox>),
    /// Test harness: record under this ticket in the driver's outcome log.
    Ticket(u64),
    /// Measurement probes: discard the outcome.
    Discard,
}

/// One routed estimation request, already encoded against its table's schema.
#[derive(Debug)]
pub(crate) struct RoutedRequest {
    /// Dense registry id of the table; indexes the worker-shared directory
    /// and selects the worker's per-table workspace.
    pub table_id: u32,
    /// Uid of the [`ModelSlot`] registration this request was encoded
    /// against. A worker compares it with the directory entry's slot at
    /// dequeue and rejects on mismatch
    /// ([`ShedReason::StaleRegistration`]): a re-registered table may serve
    /// a different schema, so encodings made against the old slot must
    /// never reach the new model.
    pub slot_uid: u64,
    /// Per-column id-space predicates of the query.
    pub preds: Vec<Vec<IdPredicate>>,
    /// Per-column valid-id intervals of the query.
    pub intervals: Vec<(u32, u32)>,
    /// Cache slot to fill with the result (`None` when caching is disabled).
    pub key: Option<CacheKey>,
    /// Clock time after which the request is dropped at dequeue.
    pub deadline: Option<Duration>,
    /// Outcome sink.
    pub reply: ReplyTo,
}

// The batch forward pass reads encodings and intervals straight out of the
// queued request structs — no per-batch re-gathering into parallel vectors.
impl AsRef<[Vec<IdPredicate>]> for RoutedRequest {
    fn as_ref(&self) -> &[Vec<IdPredicate>] {
        &self.preds
    }
}

impl AsRef<[(u32, u32)]> for RoutedRequest {
    fn as_ref(&self) -> &[(u32, u32)] {
        &self.intervals
    }
}

/// Everything a shard worker needs to serve one table, shared between the
/// server front door and the worker pool through the id-indexed directory.
#[derive(Debug, Clone)]
pub(crate) struct TableResources {
    pub name: Arc<str>,
    pub slot: Arc<ModelSlot>,
    pub cache: Arc<ShardedCache>,
}

/// The lock-protected interior of a [`Shard`]: the FIFO plus a reused
/// staging buffer for single-pass same-table batch formation.
struct ShardState {
    queue: VecDeque<RoutedRequest>,
    /// Scanned-but-unmatched requests staged during batch formation and
    /// reinstated at the queue front; reused so the hot loop never
    /// allocates.
    scratch: Vec<RoutedRequest>,
}

/// One worker shard: a bounded FIFO of routed requests plus the signalling
/// its worker thread parks on.
///
/// The shard also observes its own **arrival rhythm**: every admission
/// updates an EWMA of the inter-arrival gap (in clock nanoseconds), which
/// the straggler-window autotuner ([`Shard::suggested_window`]) turns into
/// an adaptive batch close-out wait — wait about two typical gaps when
/// requests are arriving faster than the cap, wait not at all when the
/// queue is quiet and no straggler is coming.
pub(crate) struct Shard {
    state: Mutex<ShardState>,
    available: Condvar,
    capacity: usize,
    closed: AtomicBool,
    clock: Arc<dyn Clock>,
    /// Clock time of the most recent admission (`u64::MAX` = none yet).
    last_arrival_ns: AtomicU64,
    /// EWMA of inter-arrival gaps in nanoseconds (0 = no estimate yet;
    /// observed gaps are clamped to ≥ 1 ns so 0 stays unambiguous).
    gap_ewma_ns: AtomicU64,
}

/// Outcome of a blocking dequeue.
pub(crate) enum Popped {
    /// `batch` holds at least one request (all for the same table).
    Batch,
    /// The router is shut down and the queue is fully drained.
    Closed,
    /// The idle park elapsed with nothing queued — the worker is free to
    /// look for work elsewhere (work-stealing).
    Idle,
}

impl Shard {
    pub(crate) fn new(capacity: usize, clock: Arc<dyn Clock>) -> Self {
        Self {
            state: Mutex::new(ShardState { queue: VecDeque::new(), scratch: Vec::new() }),
            available: Condvar::new(),
            capacity,
            closed: AtomicBool::new(false),
            clock,
            last_arrival_ns: AtomicU64::new(u64::MAX),
            gap_ewma_ns: AtomicU64::new(0),
        }
    }

    /// Admit a request, or reject it if the queue is at capacity.
    ///
    /// Returns the queue depth after the push; on rejection the request is
    /// handed back so the caller can fail it without losing the reply
    /// channel. Every attempt (admitted or shed) feeds the arrival-gap EWMA:
    /// rejected traffic is still arrival pressure.
    // The "large" Err is the point: rejection hands the request back whole
    // (reply channel and encodings intact) without a heap round trip.
    #[allow(clippy::result_large_err)]
    pub(crate) fn try_push(&self, request: RoutedRequest) -> Result<usize, RoutedRequest> {
        self.observe_arrival();
        let mut state = self.state.lock().expect("shard poisoned");
        if state.queue.len() >= self.capacity {
            return Err(request);
        }
        state.queue.push_back(request);
        let depth = state.queue.len();
        drop(state);
        self.available.notify_one();
        Ok(depth)
    }

    /// Fold "a request arrived now" into the inter-arrival gap EWMA
    /// (`new = (3·old + gap) / 4`, lock-free, single-writer-tolerant: a
    /// racing store loses one sample, never corrupts the estimate).
    fn observe_arrival(&self) {
        let now_ns = self.clock.now().as_nanos().min(u128::from(u64::MAX)) as u64;
        let last = self.last_arrival_ns.swap(now_ns, Ordering::Relaxed);
        if last == u64::MAX {
            return; // first arrival: no gap yet
        }
        let gap = now_ns.saturating_sub(last).max(1);
        let old = self.gap_ewma_ns.load(Ordering::Relaxed);
        let ewma = if old == 0 { gap } else { (3 * old + gap) / 4 };
        self.gap_ewma_ns.store(ewma.max(1), Ordering::Relaxed);
    }

    /// The autotuned straggler window: how long a freshly formed non-full
    /// batch should wait for more same-table requests, given the shard's
    /// observed arrival rhythm and the configured upper bound `cap`.
    ///
    /// *No estimate yet, or typical gaps longer than the cap* → zero (a
    /// straggler is not coming within the window; don't tax latency).
    /// *Gaps within the cap* → twice the typical gap, clamped to the cap
    /// (enough room for the next arrival plus jitter).
    pub(crate) fn suggested_window(&self, cap: Duration) -> Duration {
        let gap = self.gap_ewma_ns.load(Ordering::Relaxed);
        let cap_ns = cap.as_nanos().min(u128::from(u64::MAX)) as u64;
        if gap == 0 || gap > cap_ns {
            Duration::ZERO
        } else {
            Duration::from_nanos((2 * gap).min(cap_ns))
        }
    }

    /// Current queue depth.
    pub(crate) fn depth(&self) -> usize {
        self.state.lock().expect("shard poisoned").queue.len()
    }

    /// Move the head request plus every queued request for the same table
    /// (up to `max`, preserving arrival order) into `batch`.
    fn take_head_table(state: &mut ShardState, batch: &mut Vec<RoutedRequest>, max: usize) {
        if let Some(first) = state.queue.pop_front() {
            let table_id = first.table_id;
            batch.push(first);
            Self::take_matching(state, batch, table_id, max);
        }
    }

    /// Move queued requests for `table_id` into `batch` (order-preserving).
    ///
    /// One front-to-back pass: matches go to `batch`, scanned non-matches
    /// are staged in the reused scratch buffer and reinstated at the queue
    /// front in their original order — O(scanned) moves total, instead of a
    /// `VecDeque::remove` memmove per match, which would go quadratic on a
    /// deep queue of interleaved tables while holding the shard lock.
    fn take_matching(
        state: &mut ShardState,
        batch: &mut Vec<RoutedRequest>,
        table_id: u32,
        max: usize,
    ) {
        debug_assert!(state.scratch.is_empty());
        while batch.len() < max {
            match state.queue.pop_front() {
                Some(request) if request.table_id == table_id => batch.push(request),
                Some(request) => state.scratch.push(request),
                None => break,
            }
        }
        for request in state.scratch.drain(..).rev() {
            state.queue.push_front(request);
        }
    }

    /// Blocking dequeue for the production worker: waits for work, forms a
    /// same-table batch from the queue head, then optionally waits out the
    /// straggler window for more requests of that table.
    ///
    /// With `idle_park: Some(park)`, the wait-for-work phase gives up after
    /// `park` with [`Popped::Idle`] so the worker can go look for stealable
    /// work on other shards; with `None` it parks indefinitely.
    ///
    /// After [`Shard::close`], keeps returning batches until the queue is
    /// empty (graceful drain), then reports [`Popped::Closed`].
    pub(crate) fn pop_batch_blocking(
        &self,
        max_batch: usize,
        window: Duration,
        idle_park: Option<Duration>,
        batch: &mut Vec<RoutedRequest>,
    ) -> Popped {
        batch.clear();
        let max = max_batch.max(1);
        let mut state = self.state.lock().expect("shard poisoned");
        loop {
            if !state.queue.is_empty() {
                break;
            }
            if self.closed.load(Ordering::Acquire) {
                return Popped::Closed;
            }
            match idle_park {
                None => state = self.available.wait(state).expect("shard poisoned"),
                Some(park) => {
                    let (s, timeout) =
                        self.available.wait_timeout(state, park).expect("shard poisoned");
                    state = s;
                    if timeout.timed_out()
                        && state.queue.is_empty()
                        && !self.closed.load(Ordering::Acquire)
                    {
                        return Popped::Idle;
                    }
                }
            }
        }
        Self::take_head_table(&mut state, batch, max);
        if batch.len() >= max || window == Duration::ZERO {
            return Popped::Batch;
        }
        // Straggler window: wait (in real time — this is a latency/throughput
        // knob, not a correctness deadline) for more requests of the same
        // table to coalesce into this forward pass.
        let table_id = batch[0].table_id;
        let deadline = Instant::now() + window;
        loop {
            Self::take_matching(&mut state, batch, table_id, max);
            if batch.len() >= max || self.closed.load(Ordering::Acquire) {
                return Popped::Batch;
            }
            let now = Instant::now();
            if now >= deadline {
                return Popped::Batch;
            }
            let (s, timeout) =
                self.available.wait_timeout(state, deadline - now).expect("shard poisoned");
            state = s;
            if timeout.timed_out() {
                Self::take_matching(&mut state, batch, table_id, max);
                return Popped::Batch;
            }
        }
    }

    /// Non-blocking dequeue for the deterministic harness: form one
    /// same-table batch if any work is queued. Returns `false` when idle.
    pub(crate) fn try_pop_batch(&self, max_batch: usize, batch: &mut Vec<RoutedRequest>) -> bool {
        batch.clear();
        let mut state = self.state.lock().expect("shard poisoned");
        if state.queue.is_empty() {
            return false;
        }
        Self::take_head_table(&mut state, batch, max_batch.max(1));
        true
    }

    /// Mark the shard closed and wake its worker so it can drain and exit.
    ///
    /// The flag is set while holding the queue mutex: a worker is then
    /// either parked in `wait` (and receives the `notify_all`), or has not
    /// yet re-checked `closed` under the lock (and will observe it before
    /// parking). Setting the flag outside the lock would race a worker
    /// sitting between its `closed` check and `wait`, missing the only
    /// wakeup and hanging the server's shutdown join forever.
    fn close(&self) {
        let state = self.state.lock().expect("shard poisoned");
        self.closed.store(true, Ordering::Release);
        drop(state);
        self.available.notify_all();
    }
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("depth", &self.depth())
            .field("capacity", &self.capacity)
            .finish()
    }
}

/// The routing layer: a fixed pool of bounded worker shards with consistent
/// table assignment, shared by every registered table.
///
/// A `Router` is owned by its [`crate::DuetServer`]; inspect it through
/// [`crate::DuetServer::router`]:
///
/// ```
/// use duet_core::{DuetConfig, DuetEstimator};
/// use duet_data::datasets::census_like;
/// use duet_serve::{shard_for, DuetServer, RouterConfig, ServeConfig};
///
/// let table = census_like(200, 1);
/// let cfg = DuetConfig::small().with_epochs(1);
/// let estimator = DuetEstimator::train_data_only(&table, &cfg, 1);
///
/// let config = ServeConfig {
///     router: RouterConfig { num_shards: 2, queue_capacity: 64, default_deadline: None },
///     ..ServeConfig::default()
/// };
/// let server = DuetServer::new(config);
/// server.register("census", estimator);
///
/// let router = server.router();
/// assert_eq!(router.num_shards(), 2);
/// // Assignment is a pure function of the name and the pool size.
/// assert_eq!(router.shard_index("census"), shard_for("census", 2));
/// assert_eq!(router.queue_depth(), 0, "nothing queued while idle");
/// ```
#[derive(Debug)]
pub struct Router {
    shards: Vec<Arc<Shard>>,
    clock: Arc<dyn Clock>,
    metrics: Arc<ServeMetrics>,
    config: RouterConfig,
}

impl Router {
    /// A router with `config.num_shards` empty shards.
    pub(crate) fn new(
        config: RouterConfig,
        clock: Arc<dyn Clock>,
        metrics: Arc<ServeMetrics>,
    ) -> Self {
        let num = config.num_shards.max(1);
        Self {
            shards: (0..num)
                .map(|_| Arc::new(Shard::new(config.queue_capacity, clock.clone())))
                .collect(),
            clock,
            metrics,
            config,
        }
    }

    /// Number of worker shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard serving `table` (consistent: depends only on the name and
    /// the pool size).
    pub fn shard_index(&self, table: &str) -> usize {
        shard_for(table, self.shards.len())
    }

    /// The shard at `index` (workers hold their own `Arc`).
    pub(crate) fn shard(&self, index: usize) -> &Arc<Shard> {
        &self.shards[index]
    }

    /// Every shard of the pool (workers clone this set so an idle worker
    /// can scan its siblings for stealable work).
    pub(crate) fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    /// Admit `request` to shard `index`, recording an overload shed on
    /// rejection. Returns the post-admission queue depth.
    pub(crate) fn try_route(&self, index: usize, request: RoutedRequest) -> Result<usize, usize> {
        match self.shards[index].try_push(request) {
            Ok(depth) => Ok(depth),
            Err(rejected) => {
                self.metrics.record_shed_overload();
                drop(rejected);
                Err(self.shards[index].depth())
            }
        }
    }

    /// The admission deadline for a request arriving now, per the configured
    /// per-request budget.
    pub(crate) fn admission_deadline(&self) -> Option<Duration> {
        self.config.default_deadline.map(|budget| self.clock.now() + budget)
    }

    /// Total queued requests across all shards.
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(|s| s.depth()).sum()
    }

    /// Per-shard queue depths.
    pub fn queue_depths(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.depth()).collect()
    }

    /// Close every shard (workers drain their queues, then exit).
    pub(crate) fn close(&self) {
        for shard in &self.shards {
            shard.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_shard(capacity: usize) -> Shard {
        Shard::new(capacity, Arc::new(SystemClock::new()))
    }

    fn request(table_id: u32, deadline: Option<Duration>) -> RoutedRequest {
        RoutedRequest {
            table_id,
            slot_uid: 0,
            preds: Vec::new(),
            intervals: Vec::new(),
            key: None,
            deadline,
            reply: ReplyTo::Discard,
        }
    }

    #[test]
    fn shard_assignment_is_consistent_and_covers_pool() {
        for shards in [1usize, 2, 4, 7] {
            for name in ["census", "dmv", "kddcup98", "orders", "lineitem"] {
                let a = shard_for(name, shards);
                let b = shard_for(name, shards);
                assert_eq!(a, b, "assignment must be deterministic");
                assert!(a < shards);
            }
        }
        // Enough distinct names spread over more than one shard.
        let hit: std::collections::HashSet<usize> =
            (0..32).map(|i| shard_for(&format!("table-{i}"), 4)).collect();
        assert!(hit.len() > 1, "32 tables should not all hash to one of 4 shards");
    }

    #[test]
    fn bounded_queue_rejects_at_capacity() {
        let shard = test_shard(2);
        assert_eq!(shard.try_push(request(0, None)).unwrap(), 1);
        assert_eq!(shard.try_push(request(0, None)).unwrap(), 2);
        assert!(shard.try_push(request(0, None)).is_err(), "third push must be rejected");
        assert_eq!(shard.depth(), 2);

        let zero = test_shard(0);
        assert!(zero.try_push(request(0, None)).is_err(), "capacity 0 rejects everything");
    }

    #[test]
    fn pop_groups_head_table_and_preserves_order() {
        let shard = test_shard(16);
        for table_id in [1u32, 2, 1, 1, 2, 1] {
            shard.try_push(request(table_id, None)).unwrap();
        }
        let mut batch = Vec::new();
        assert!(shard.try_pop_batch(64, &mut batch));
        assert_eq!(batch.iter().map(|r| r.table_id).collect::<Vec<_>>(), vec![1, 1, 1, 1]);
        assert!(shard.try_pop_batch(64, &mut batch));
        assert_eq!(batch.iter().map(|r| r.table_id).collect::<Vec<_>>(), vec![2, 2]);
        assert!(!shard.try_pop_batch(64, &mut batch), "queue should be drained");
        assert_eq!(shard.depth(), 0);
    }

    #[test]
    fn pop_respects_max_batch_size() {
        let shard = test_shard(16);
        for _ in 0..5 {
            shard.try_push(request(3, None)).unwrap();
        }
        let mut batch = Vec::new();
        assert!(shard.try_pop_batch(2, &mut batch));
        assert_eq!(batch.len(), 2);
        assert_eq!(shard.depth(), 3, "remaining requests stay queued");
    }

    #[test]
    fn virtual_clock_is_monotonic_and_manual() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.advance(Duration::from_millis(5));
        assert_eq!(clock.now(), Duration::from_millis(5));
        clock.set(Duration::from_millis(3)); // backwards jump ignored
        assert_eq!(clock.now(), Duration::from_millis(5));
        clock.set(Duration::from_millis(9));
        assert_eq!(clock.now(), Duration::from_millis(9));
    }

    #[test]
    fn system_clock_advances() {
        let clock = SystemClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }
}
