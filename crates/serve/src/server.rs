//! The estimation server: ties registry, router, shard workers, cache, and
//! metrics together behind a blocking, thread-safe `estimate` call.
//!
//! A [`DuetServer`] is `Sync`; wrap it in an `Arc` and call
//! [`DuetServer::estimate`] from as many client threads as you like. Model
//! slots live in an embedded [`ModelRegistry`]; registered tables are hashed
//! onto a **shared pool of worker shards** (see [`crate::router`]) instead
//! of one thread per table, each table gets its own result cache, and
//! metrics are aggregated server-wide.
//!
//! Overload semantics: every shard queue is bounded
//! ([`RouterConfig::queue_capacity`]); a request that would overflow its
//! shard is rejected immediately with [`ServeError::Overloaded`] — the
//! server sheds load instead of queueing unboundedly. With a configured
//! [`RouterConfig::default_deadline`], a request that is still queued when
//! its budget expires is dropped at dequeue and fails with
//! [`ServeError::DeadlineExceeded`].

use crate::batcher::{run_shard_worker, BatchConfig};
use crate::cache::{canonical_key_from_parts, HotSet, ShardedCache};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::online::{
    FeedbackError, OnlineConfig, OnlineDirectory, OnlineHooks, OnlineTable, OnlineTickReport,
    OnlineTrainerHandle,
};
use crate::registry::{ModelRegistry, ModelSlot, SwapError};
use crate::router::{
    Clock, ReplyTo, RoutedRequest, Router, RouterConfig, ShedReason, SystemClock, TableResources,
};
use crate::tier::ModelTier;
use duet_core::{query_to_id_predicates, DuetEstimator};
use duet_data::Table;
use duet_query::Query;
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Server-wide configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Micro-batcher tuning (applies to every shard worker).
    pub batch: BatchConfig,
    /// Routing and admission control: shard count, per-shard queue bound,
    /// per-request deadline budget.
    pub router: RouterConfig,
    /// Total result-cache entries per table; 0 disables caching.
    pub cache_capacity: usize,
    /// Number of independently locked cache shards per table.
    pub cache_shards: usize,
    /// Per-table capacity of the hot-key tracker replayed into the cache
    /// after a model hot-swap (see [`crate::HotSet`]); 0 disables the
    /// post-swap warm-up replay. Only effective when caching is enabled.
    pub hot_keys: usize,
    /// Upper bound on the summed resident weight bytes of all registered
    /// models; 0 (the default) keeps every model resident. With a positive
    /// budget the shard workers evict the coldest models to checkpoint
    /// bytes and lazily reload them on demand (see [`crate::ModelTier`]).
    pub model_budget_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            batch: BatchConfig::default(),
            router: RouterConfig::default(),
            cache_capacity: 4096,
            cache_shards: 8,
            hot_keys: 64,
            model_budget_bytes: 0,
        }
    }
}

/// Why a serving call failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// No model is registered under the given table name.
    UnknownTable(String),
    /// The table's worker shard is gone (server shutting down).
    WorkerUnavailable(String),
    /// The table's shard queue was at capacity: the request was shed at
    /// admission instead of queued. Retry later or against another replica.
    Overloaded {
        /// Table the request addressed.
        table: String,
        /// Shard whose queue was full.
        shard: usize,
        /// Queue depth observed at rejection.
        depth: usize,
    },
    /// The request's deadline budget expired while it was queued; it was
    /// dropped at dequeue without running a forward pass.
    DeadlineExceeded(String),
    /// The table was re-registered (new model, possibly a new schema) while
    /// the request sat in its shard queue; the request's encoding belongs
    /// to the old registration. Re-issue it against the current model.
    StaleRegistration(String),
    /// The table's model could not be brought resident (an evicted model's
    /// checkpoint failed to reload). Retry later.
    ModelUnavailable(String),
    /// The request's batch hit an internal fault: a panic caught by shard
    /// supervision. The worker was respawned with a fresh workspace pool;
    /// the request itself may be fine — retrying usually succeeds.
    Internal(String),
    /// A model swap failed; the previous model keeps serving.
    Swap(SwapError),
    /// An online ingest or feedback payload was refused: the table is not
    /// online-enabled, the row was invalid (wrong width or unknown value
    /// id), or the feedback's cardinality was not usable.
    Rejected {
        /// Table the payload addressed.
        table: String,
        /// What was wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownTable(t) => write!(f, "no model registered for table {t:?}"),
            ServeError::WorkerUnavailable(t) => {
                write!(f, "worker for table {t:?} is unavailable")
            }
            ServeError::Overloaded { table, shard, depth } => write!(
                f,
                "table {table:?} overloaded: shard {shard} queue full at depth {depth}, \
                 request shed"
            ),
            ServeError::DeadlineExceeded(t) => {
                write!(f, "deadline expired before a worker dequeued the request for table {t:?}")
            }
            ServeError::StaleRegistration(t) => {
                write!(f, "table {t:?} was re-registered while the request was queued")
            }
            ServeError::ModelUnavailable(t) => {
                write!(f, "model for table {t:?} could not be reloaded")
            }
            ServeError::Internal(t) => {
                write!(f, "internal fault while serving table {t:?} (worker respawned; retry)")
            }
            ServeError::Swap(e) => write!(f, "{e}"),
            ServeError::Rejected { table, reason } => {
                write!(f, "online payload for table {table:?} rejected: {reason}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SwapError> for ServeError {
    fn from(e: SwapError) -> Self {
        match e {
            // Flatten so callers see one UnknownTable variant regardless of
            // which layer noticed.
            SwapError::UnknownTable(t) => ServeError::UnknownTable(t),
            e => ServeError::Swap(e),
        }
    }
}

/// Per-table client-side handles: the dense id, the shard the table hashes
/// to, and the slot/cache shared with the worker directory.
#[derive(Debug, Clone)]
struct TableHandle {
    id: u32,
    shard: usize,
    slot: Arc<ModelSlot>,
    cache: Arc<ShardedCache>,
    /// Hottest cache keys, replayed into `cache` after a hot-swap.
    hot: Arc<HotSet>,
}

/// Outcome of submitting one query: answered from cache, or in a shard's
/// queue with a receiver for the eventual result.
enum Submitted {
    Cached(f64),
    Pending(mpsc::Receiver<Result<f64, ShedReason>>),
}

/// A concurrent, batched estimation server over registered Duet models.
#[derive(Debug)]
pub struct DuetServer {
    config: ServeConfig,
    registry: ModelRegistry,
    router: Arc<Router>,
    /// Worker-shared, id-indexed view of every table's serving resources.
    directory: Arc<RwLock<Vec<TableResources>>>,
    /// Client-side name→handle map (same slot/cache `Arc`s as `directory`).
    tables: RwLock<HashMap<String, TableHandle>>,
    metrics: Arc<ServeMetrics>,
    /// The clock deadlines are measured against; shared with every worker
    /// and wire acceptor.
    clock: Arc<dyn Clock>,
    /// Model-memory budgeting, shared with every shard worker.
    tier: Arc<ModelTier>,
    /// Online-learning state of online-enabled tables, shared with the wire
    /// acceptors and any background trainer.
    online: Arc<OnlineDirectory>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Stop flags of every background trainer spawned through this server,
    /// so [`DuetServer::shutdown`] can halt training promptly without owning
    /// the handles (callers keep those and join on drop).
    trainer_stops: Mutex<Vec<Arc<std::sync::atomic::AtomicBool>>>,
    /// Stop flags of every wire listener opened through this server; flipped
    /// by [`DuetServer::shutdown`] so listeners stop accepting and start
    /// their graceful drain.
    wire_stops: Mutex<Vec<Arc<std::sync::atomic::AtomicBool>>>,
}

impl DuetServer {
    /// A server with the given configuration and no tables; the worker pool
    /// (one thread per router shard) starts immediately.
    pub fn new(config: ServeConfig) -> Self {
        let metrics = Arc::new(ServeMetrics::new());
        let clock: Arc<dyn Clock> = Arc::new(SystemClock::new());
        let router = Arc::new(Router::new(config.router, clock.clone(), metrics.clone()));
        let directory = Arc::new(RwLock::new(Vec::new()));
        let tier = Arc::new(ModelTier::new(config.model_budget_bytes));
        let shards: Vec<_> = router.shards().to_vec();
        let workers = (0..router.num_shards())
            .map(|shard_index| {
                let shards = shards.clone();
                let (directory, clock, metrics, tier) =
                    (directory.clone(), clock.clone(), metrics.clone(), tier.clone());
                let batch = config.batch;
                std::thread::Builder::new()
                    .name(format!("duet-serve-shard-{shard_index}"))
                    .spawn(move || {
                        run_shard_worker(
                            shard_index,
                            shards,
                            directory,
                            clock,
                            metrics,
                            tier,
                            batch,
                        )
                    })
                    .expect("failed to spawn shard worker")
            })
            .collect();
        Self {
            config,
            registry: ModelRegistry::new(),
            router,
            directory,
            tables: RwLock::new(HashMap::new()),
            metrics,
            clock,
            tier,
            online: Arc::new(OnlineDirectory::new()),
            workers: Mutex::new(workers),
            trainer_stops: Mutex::new(Vec::new()),
            wire_stops: Mutex::new(Vec::new()),
        }
    }

    /// A server with default configuration.
    pub fn with_defaults() -> Self {
        Self::new(ServeConfig::default())
    }

    /// Register (or replace) the model serving `table`: the table is hashed
    /// onto its worker shard and gets a fresh result cache. No thread is
    /// spawned — all tables share the router's worker pool.
    pub fn register(&self, table: impl Into<String>, estimator: DuetEstimator) {
        let table = table.into();
        // Hold the tables lock across the registry/directory updates so two
        // concurrent register() calls for the same table cannot interleave
        // and leave the maps pointing at different slots.
        let mut tables = self.tables.write().expect("server poisoned");
        let (id, slot) = self.registry.register_indexed(table.clone(), estimator);
        let cache =
            Arc::new(ShardedCache::new(self.config.cache_capacity, self.config.cache_shards));
        let shard = self.router.shard_index(&table);
        let resources = TableResources {
            name: Arc::from(table.as_str()),
            slot: slot.clone(),
            cache: cache.clone(),
        };
        {
            let mut directory = self.directory.write().expect("directory poisoned");
            let id = id as usize;
            if id < directory.len() {
                directory[id] = resources; // re-registration reuses the id
            } else {
                // A real invariant, not a debug assertion: the workers index
                // this vector by registry id, so a gap would misroute every
                // later table.
                assert_eq!(id, directory.len(), "registry ids are dense");
                directory.push(resources);
            }
        }
        let hot = Arc::new(HotSet::new(if self.config.cache_capacity > 0 {
            self.config.hot_keys
        } else {
            0
        }));
        tables.insert(table, TableHandle { id, shard, slot, cache, hot });
    }

    /// Look up the client-side handle for `table`.
    fn handle(&self, table: &str) -> Result<TableHandle, ServeError> {
        let tables = self.tables.read().expect("server poisoned");
        tables.get(table).cloned().ok_or_else(|| ServeError::UnknownTable(table.to_string()))
    }

    /// Encode `query`, probe the cache, and on a miss route it to the
    /// table's shard — the one submit pipeline both `estimate` and
    /// `estimate_many` go through.
    ///
    /// The same encoding feeds the cache key and, on a miss, the batched
    /// forward pass, so nothing is translated twice on the hot path. A full
    /// shard queue fails here with [`ServeError::Overloaded`].
    fn submit(
        &self,
        table: &str,
        handle: &TableHandle,
        generation: u64,
        estimator: &DuetEstimator,
        query: &Query,
    ) -> Result<Submitted, ServeError> {
        let schema = estimator.schema();
        let preds = query_to_id_predicates(schema, query);
        let intervals = query.column_intervals(schema);
        let key = if self.config.cache_capacity > 0 {
            let key = canonical_key_from_parts(schema, generation, &preds, &intervals);
            // Track popularity at the front door: hits never reach a worker,
            // so this is the only place the hottest keys are visible.
            handle.hot.observe(&key, &preds, &intervals);
            if let Some(value) = handle.cache.get(&key) {
                return Ok(Submitted::Cached(value));
            }
            Some(key)
        } else {
            None
        };
        let (reply, reply_rx) = mpsc::sync_channel(1);
        let request = RoutedRequest {
            table_id: handle.id,
            slot_uid: handle.slot.uid(),
            preds,
            intervals,
            key,
            deadline: self.router.admission_deadline(),
            reply: ReplyTo::Channel(reply),
        };
        match self.router.try_route(handle.shard, request) {
            Ok(_depth) => Ok(Submitted::Pending(reply_rx)),
            Err(depth) => {
                Err(ServeError::Overloaded { table: table.to_string(), shard: handle.shard, depth })
            }
        }
    }

    /// Map one worker reply onto the public error surface.
    fn resolve_reply(
        table: &str,
        received: Result<Result<f64, ShedReason>, mpsc::RecvError>,
    ) -> Result<f64, ServeError> {
        match received {
            Ok(Ok(value)) => Ok(value),
            Ok(Err(ShedReason::DeadlineExpired)) => {
                Err(ServeError::DeadlineExceeded(table.to_string()))
            }
            Ok(Err(ShedReason::StaleRegistration)) => {
                Err(ServeError::StaleRegistration(table.to_string()))
            }
            // QueueFull reaches a reply channel only when an evicted model's
            // reload failed mid-batch (the worker sheds on the retryable
            // overload path); at admission it is raised synchronously.
            Ok(Err(ShedReason::QueueFull)) => {
                Err(ServeError::Overloaded { table: table.to_string(), shard: 0, depth: 0 })
            }
            Ok(Err(ShedReason::WorkerPanicked)) => Err(ServeError::Internal(table.to_string())),
            Err(_) => Err(ServeError::WorkerUnavailable(table.to_string())),
        }
    }

    /// Estimate `query`'s cardinality against `table`'s current model.
    ///
    /// Blocks until the result is available: either a cache hit, or the
    /// micro-batched forward pass containing this request completes. The
    /// value is always exactly what a serial `DuetEstimator::estimate` call
    /// would return. Under overload the call fails fast with
    /// [`ServeError::Overloaded`] (admission) or
    /// [`ServeError::DeadlineExceeded`] (expired while queued).
    pub fn estimate(&self, table: &str, query: &Query) -> Result<f64, ServeError> {
        let started = Instant::now();
        let handle = self.handle(table)?;
        // Resolving may lazily reload a model the tier evicted (the front
        // door needs its schema to encode the query).
        let was_resident = handle.slot.is_resident();
        let (generation, estimator) = handle.slot.try_current_versioned().map_err(|_| {
            self.metrics.record_reload_failure();
            ServeError::ModelUnavailable(table.to_string())
        })?;
        if !was_resident {
            self.metrics.record_model_reload();
        }
        let value = match self.submit(table, &handle, generation, &estimator, query)? {
            Submitted::Cached(value) => value,
            Submitted::Pending(reply_rx) => Self::resolve_reply(table, reply_rx.recv())?,
        };
        self.metrics.record_request(started.elapsed());
        Ok(value)
    }

    /// Estimate a whole workload through the serving path (requests are
    /// submitted together, so they batch with each other as well as with
    /// concurrent clients).
    ///
    /// Fails fast on the first shed or error; with the default configuration
    /// (ample queues, no deadline) this only happens when the server is
    /// shutting down.
    pub fn estimate_many(&self, table: &str, queries: &[Query]) -> Result<Vec<f64>, ServeError> {
        let handle = self.handle(table)?;
        let was_resident = handle.slot.is_resident();
        let (generation, estimator) = handle.slot.try_current_versioned().map_err(|_| {
            self.metrics.record_reload_failure();
            ServeError::ModelUnavailable(table.to_string())
        })?;
        if !was_resident {
            self.metrics.record_model_reload();
        }
        let mut results = vec![0.0f64; queries.len()];
        let mut pending = Vec::new();
        for (i, query) in queries.iter().enumerate() {
            // Latency is per query, from its own submission.
            let submitted = Instant::now();
            match self.submit(table, &handle, generation, &estimator, query)? {
                Submitted::Cached(value) => {
                    results[i] = value;
                    self.metrics.record_request(submitted.elapsed());
                }
                Submitted::Pending(reply_rx) => pending.push((i, submitted, reply_rx)),
            }
        }
        for (i, submitted, reply_rx) in pending {
            results[i] = Self::resolve_reply(table, reply_rx.recv())?;
            self.metrics.record_request(submitted.elapsed());
        }
        Ok(results)
    }

    /// Hot-swap `table`'s weights from a [`duet_core::save_weights`]
    /// checkpoint without dropping in-flight requests.
    ///
    /// Old cache entries become unreachable immediately (keys embed the
    /// model generation) and are additionally purged to free memory; the
    /// purge bumps the cache epoch, so a shard worker that resolved the old
    /// model cannot strand entries computed mid-swap (its inserts carry the
    /// pre-swap epoch and are rejected).
    ///
    /// After the purge the table's **hot set is replayed**: the top-K keys
    /// the front door observed (see [`crate::HotSet`]) are re-estimated in
    /// one batch under the new weights and inserted at the new generation —
    /// so the hottest traffic keeps hitting the cache straight through the
    /// swap instead of stampeding the forward pass (the post-swap p99
    /// cliff). Replayed inserts are epoch-tagged like worker inserts: a
    /// second swap racing this one drops them.
    pub fn hot_swap(&self, table: &str, checkpoint: &[u8]) -> Result<(), ServeError> {
        let handle = self.handle(table)?;
        handle
            .slot
            .hot_swap_checkpoint(checkpoint)
            .map_err(|e| ServeError::Swap(SwapError::Checkpoint(e)))?;
        handle.cache.invalidate();
        Self::replay_hot_keys(&handle);
        Ok(())
    }

    /// Re-estimate `handle`'s hot set under its current model and seed the
    /// cache with the results (one batched forward pass; swap-frequency
    /// work). Shared with the online trainer's publish path.
    fn replay_hot_keys(handle: &TableHandle) {
        crate::online::replay_hot_keys(&handle.slot, &handle.cache, &handle.hot);
    }

    /// Enable online learning for `table`: ingest, drift detection against
    /// `data`'s statistics (which must be the table the serving model was
    /// trained on — its dictionaries define the valid ingest domain), query
    /// feedback, and drift-triggered retraining published through the
    /// hot-swap path. Replaces any previous online state for the table.
    ///
    /// Drive the loop either synchronously with
    /// [`DuetServer::maintain_online`] or from a background thread via
    /// [`DuetServer::spawn_online_trainer`].
    pub fn enable_online(
        &self,
        table: &str,
        data: Table,
        config: OnlineConfig,
    ) -> Result<(), ServeError> {
        let handle = self.handle(table)?;
        let schema_columns = handle.slot.current().schema().num_columns();
        if data.num_columns() != schema_columns {
            return Err(ServeError::Rejected {
                table: table.to_string(),
                reason: format!(
                    "online table has {} columns, serving schema has {schema_columns}",
                    data.num_columns()
                ),
            });
        }
        let hooks = OnlineHooks {
            slot: handle.slot.clone(),
            cache: handle.cache.clone(),
            hot: handle.hot.clone(),
            tier: self.tier.clone(),
            metrics: self.metrics.clone(),
            table_id: handle.id as usize,
        };
        self.online.enable(handle.id as usize, OnlineTable::new(data, config, hooks));
        Ok(())
    }

    /// Append one dictionary-encoded row to `table`'s online state; returns
    /// the table's new row count. Fails with [`ServeError::Rejected`] when
    /// the table is not online-enabled or the row is invalid.
    pub fn ingest(&self, table: &str, ids: &[u32]) -> Result<u64, ServeError> {
        let handle = self.handle(table)?;
        let online = self.online_state(table, &handle)?;
        let mut online = online.lock().expect("online table poisoned");
        online
            .ingest_row(ids)
            .map_err(|e| ServeError::Rejected { table: table.to_string(), reason: e.to_string() })
    }

    /// Report the observed true cardinality of `query` against `table`,
    /// feeding the query-driven half of the next online retrain.
    ///
    /// The feedback is stamped with the uid of the slot currently registered
    /// under `table`; if the table was re-registered since online learning
    /// was enabled, the stamp is stale and the call fails with
    /// [`ServeError::StaleRegistration`] (re-enable online learning against
    /// the new registration).
    pub fn feedback(&self, table: &str, query: &Query, actual: f64) -> Result<(), ServeError> {
        let handle = self.handle(table)?;
        let online = self.online_state(table, &handle)?;
        let estimator = handle
            .slot
            .try_current()
            .map_err(|_| ServeError::ModelUnavailable(table.to_string()))?;
        let schema = estimator.schema();
        let preds = query_to_id_predicates(schema, query);
        let intervals = query.column_intervals(schema);
        let mut online = online.lock().expect("online table poisoned");
        online.push_feedback(handle.slot.uid(), preds, intervals, actual).map_err(|e| match e {
            FeedbackError::StaleSlot { .. } => ServeError::StaleRegistration(table.to_string()),
            FeedbackError::InvalidCardinality => {
                ServeError::Rejected { table: table.to_string(), reason: e.to_string() }
            }
        })
    }

    /// Run one trainer tick for `table` synchronously: check drift and, if
    /// triggered, retrain and publish. Returns what the tick did.
    pub fn maintain_online(&self, table: &str) -> Result<OnlineTickReport, ServeError> {
        let handle = self.handle(table)?;
        let online = self.online_state(table, &handle)?;
        let report = online.lock().expect("online table poisoned").tick();
        Ok(report)
    }

    /// Spawn a background trainer thread ticking every online-enabled table
    /// each `interval`. The returned handle stops and joins the thread on
    /// [`OnlineTrainerHandle::shutdown`] or drop; the server can outlive it
    /// or vice versa (the thread holds its own `Arc`s).
    pub fn spawn_online_trainer(&self, interval: std::time::Duration) -> OnlineTrainerHandle {
        let handle = OnlineTrainerHandle::spawn(self.online.clone(), interval);
        // Remember the stop flag so a server-wide shutdown halts training
        // without waiting for the caller to drop the handle.
        self.trainer_stops.lock().expect("server poisoned").push(handle.stop_flag());
        handle
    }

    /// Resolve `table`'s online state or explain why it has none.
    fn online_state(
        &self,
        table: &str,
        handle: &TableHandle,
    ) -> Result<Arc<Mutex<OnlineTable>>, ServeError> {
        self.online.get(handle.id as usize).ok_or_else(|| ServeError::Rejected {
            table: table.to_string(),
            reason: "online learning is not enabled for this table".to_string(),
        })
    }

    /// The swap generation of `table`'s model (0 until the first swap).
    pub fn generation(&self, table: &str) -> Option<u64> {
        self.registry.slot(table).map(|s| s.generation())
    }

    /// Names of every registered table (unordered).
    pub fn tables(&self) -> Vec<String> {
        self.registry.tables()
    }

    /// The worker shard `table` is (or would be) routed to.
    pub fn shard_of(&self, table: &str) -> usize {
        self.router.shard_index(table)
    }

    /// The routing layer (shard count, queue depths).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The model-memory tier enforcing [`ServeConfig::model_budget_bytes`].
    pub fn model_tier(&self) -> &ModelTier {
        &self.tier
    }

    /// Spill evicted model checkpoints to files under `dir` instead of
    /// holding them in memory (see [`crate::ModelTier::set_spill_dir`]).
    pub fn set_model_spill_dir(&self, dir: impl Into<std::path::PathBuf>) {
        self.tier.set_spill_dir(Some(dir.into()));
    }

    /// Open the TCP front door: bind `addr` and serve the binary wire
    /// protocol (see [`crate::wire`]) against this server's tables.
    ///
    /// Wire requests flow through the same shard queues, micro-batchers,
    /// admission control, and metrics as in-process [`DuetServer::estimate`]
    /// calls — `Overloaded` and `DeadlineExceeded` come back as wire status
    /// codes instead of errors. The returned handle owns the acceptor
    /// threads; drop it (or call [`crate::WireHandle::shutdown`]) to stop
    /// listening. The server itself must outlive the handle's connections
    /// only logically — sockets hold their own `Arc`s, so shutdown order is
    /// safe either way.
    pub fn serve_wire(
        &self,
        addr: impl std::net::ToSocketAddrs,
        config: crate::wire::WireConfig,
    ) -> std::io::Result<crate::wire::WireHandle> {
        let handle = crate::wire::listener::serve(
            addr,
            config,
            crate::wire::listener::WireShared {
                router: self.router.clone(),
                directory: self.directory.clone(),
                online: self.online.clone(),
                clock: self.clock.clone(),
                metrics: self.metrics.clone(),
            },
        )?;
        // Remember the stop flag so a server-wide shutdown closes the front
        // door without owning the handle (the caller keeps it for joins).
        self.wire_stops.lock().expect("server poisoned").push(handle.stop_flag());
        Ok(handle)
    }

    /// Gracefully drain and stop the server, bounded by `deadline`.
    ///
    /// The sequence, ordered so nothing admitted is lost and nothing
    /// half-finished is published:
    ///
    /// 1. **Stop background trainers** spawned through
    ///    [`DuetServer::spawn_online_trainer`]. A retrain inside a tick is
    ///    atomic — it either publishes a fully trained model or nothing — so
    ///    flipping the stop flag can never publish half-trained weights.
    /// 2. **Close the wire front door**: listeners opened through
    ///    [`DuetServer::serve_wire`] stop accepting and begin their graceful
    ///    drain (flush queued responses for work already admitted, within
    ///    [`crate::wire::WireConfig::drain`]).
    /// 3. **Close the router**: shard workers keep executing until their
    ///    queues are empty, then exit — every admitted request still gets
    ///    its terminal reply.
    /// 4. **Join the worker pool**, up to the deadline.
    ///
    /// Returns `true` when every shard worker drained and exited within the
    /// deadline; `false` if time ran out first (remaining workers are joined
    /// blockingly on drop). Idempotent: a second call finds everything
    /// already closed and returns quickly.
    pub fn shutdown(&self, deadline: std::time::Duration) -> bool {
        use std::sync::atomic::Ordering;
        let give_up_at = Instant::now() + deadline;
        for stop in self.trainer_stops.lock().expect("server poisoned").drain(..) {
            stop.store(true, Ordering::Relaxed);
        }
        for stop in self.wire_stops.lock().expect("server poisoned").drain(..) {
            stop.store(true, Ordering::Relaxed);
        }
        self.router.close();
        let mut workers = self.workers.lock().expect("server poisoned");
        loop {
            let mut i = 0;
            while i < workers.len() {
                if workers[i].is_finished() {
                    let _ = workers.swap_remove(i).join();
                } else {
                    i += 1;
                }
            }
            if workers.is_empty() {
                return true;
            }
            if Instant::now() >= give_up_at {
                return false;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// A point-in-time snapshot of all serving metrics, with cache counters
    /// summed across tables and the router's current total queue depth.
    pub fn metrics(&self) -> MetricsSnapshot {
        let (hits, misses) = {
            let tables = self.tables.read().expect("server poisoned");
            tables
                .values()
                .fold((0u64, 0u64), |(h, m), e| (h + e.cache.hits(), m + e.cache.misses()))
        };
        self.metrics.snapshot(hits, misses, self.router.queue_depth())
    }
}

impl Drop for DuetServer {
    fn drop(&mut self) {
        // Close the router so every worker drains its queue and exits, then
        // join the pool.
        self.router.close();
        let workers: Vec<JoinHandle<()>> = {
            let mut workers = self.workers.lock().expect("server poisoned");
            workers.drain(..).collect()
        };
        for worker in workers {
            let _ = worker.join();
        }
    }
}
