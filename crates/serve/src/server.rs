//! The estimation server: ties registry, micro-batcher, cache, and metrics
//! together behind a blocking, thread-safe `estimate` call.
//!
//! A [`DuetServer`] is `Sync`; wrap it in an `Arc` and call
//! [`DuetServer::estimate`] from as many client threads as you like. Model
//! slots live in an embedded [`ModelRegistry`]; each registered table
//! additionally gets its own worker thread and result cache, and metrics are
//! aggregated server-wide.

use crate::batcher::{run_batch_worker, BatchConfig, EstimateRequest};
use crate::cache::{canonical_key_from_parts, ShardedCache};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::registry::{ModelRegistry, ModelSlot, SwapError};
use duet_core::{query_to_id_predicates, DuetEstimator};
use duet_query::Query;
use std::collections::HashMap;
use std::sync::mpsc::{self, Sender};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Server-wide configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Micro-batcher tuning (applies to every table worker).
    pub batch: BatchConfig,
    /// Total result-cache entries per table; 0 disables caching.
    pub cache_capacity: usize,
    /// Number of independently locked cache shards per table.
    pub cache_shards: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { batch: BatchConfig::default(), cache_capacity: 4096, cache_shards: 8 }
    }
}

/// Why a serving call failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// No model is registered under the given table name.
    UnknownTable(String),
    /// The table's worker thread is gone (server shutting down).
    WorkerUnavailable(String),
    /// A model swap failed; the previous model keeps serving.
    Swap(SwapError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownTable(t) => write!(f, "no model registered for table {t:?}"),
            ServeError::WorkerUnavailable(t) => {
                write!(f, "worker for table {t:?} is unavailable")
            }
            ServeError::Swap(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SwapError> for ServeError {
    fn from(e: SwapError) -> Self {
        match e {
            // Flatten so callers see one UnknownTable variant regardless of
            // which layer noticed.
            SwapError::UnknownTable(t) => ServeError::UnknownTable(t),
            e => ServeError::Swap(e),
        }
    }
}

/// The per-request view of one table's serving machinery.
type TableHandles = (Arc<ModelSlot>, Arc<ShardedCache>, Sender<EstimateRequest>);

/// Outcome of submitting one query: answered from cache, or in the worker's
/// queue with a receiver for the eventual result.
enum Submitted {
    Cached(f64),
    Pending(mpsc::Receiver<f64>),
}

/// Per-table serving machinery: the slot (an `Arc` of the same slot the
/// registry holds — kept here so one lock yields a mutually consistent
/// slot/cache/sender triple), the request channel, the result cache, and the
/// worker handle.
struct WorkerEntry {
    slot: Arc<ModelSlot>,
    cache: Arc<ShardedCache>,
    sender: Sender<EstimateRequest>,
    worker: Option<JoinHandle<()>>,
}

/// A concurrent, batched estimation server over registered Duet models.
#[derive(Debug)]
pub struct DuetServer {
    config: ServeConfig,
    registry: ModelRegistry,
    workers: RwLock<HashMap<String, WorkerEntry>>,
    metrics: Arc<ServeMetrics>,
}

impl std::fmt::Debug for WorkerEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerEntry").field("cache", &self.cache).finish()
    }
}

impl DuetServer {
    /// A server with the given configuration and no tables.
    pub fn new(config: ServeConfig) -> Self {
        Self {
            config,
            registry: ModelRegistry::new(),
            workers: RwLock::new(HashMap::new()),
            metrics: Arc::new(ServeMetrics::new()),
        }
    }

    /// A server with default configuration.
    pub fn with_defaults() -> Self {
        Self::new(ServeConfig::default())
    }

    /// Register (or replace) the model serving `table`, spawning its worker
    /// thread and result cache.
    pub fn register(&self, table: impl Into<String>, estimator: DuetEstimator) {
        let table = table.into();
        // Hold the workers lock across BOTH map updates so two concurrent
        // register() calls for the same table cannot interleave and leave
        // the registry and the worker map pointing at different slots.
        let mut workers = self.workers.write().expect("server poisoned");
        let slot = self.registry.register(table.clone(), estimator);
        let cache =
            Arc::new(ShardedCache::new(self.config.cache_capacity, self.config.cache_shards));
        let (sender, rx) = mpsc::channel();
        let worker = {
            let (slot, cache, metrics) = (slot.clone(), cache.clone(), self.metrics.clone());
            let config = self.config.batch;
            std::thread::Builder::new()
                .name(format!("duet-serve-{table}"))
                .spawn(move || run_batch_worker(slot, cache, metrics, rx, config))
                .expect("failed to spawn serving worker")
        };
        let entry = WorkerEntry { slot, cache, sender, worker: Some(worker) };
        // Dropping a replaced entry drops its sender: the old worker (still
        // holding the old slot) drains whatever is queued, then exits on
        // disconnect (detached).
        drop(workers.insert(table, entry));
    }

    /// Look up the serving handles for `table`.
    ///
    /// Reads the slot from the worker entry, not the registry, so the triple
    /// is always mutually consistent even while a concurrent `register` is
    /// replacing the table (the registry and worker map are updated under
    /// separate locks).
    fn handles(&self, table: &str) -> Result<TableHandles, ServeError> {
        let workers = self.workers.read().expect("server poisoned");
        let entry =
            workers.get(table).ok_or_else(|| ServeError::UnknownTable(table.to_string()))?;
        Ok((entry.slot.clone(), entry.cache.clone(), entry.sender.clone()))
    }

    /// Encode `query`, probe the cache, and on a miss enqueue it for the
    /// table's batch worker — the one submit pipeline both `estimate` and
    /// `estimate_many` go through.
    ///
    /// The same encoding feeds the cache key and, on a miss, the batched
    /// forward pass, so nothing is translated twice on the hot path.
    fn submit(
        &self,
        table: &str,
        generation: u64,
        estimator: &DuetEstimator,
        cache: &ShardedCache,
        sender: &Sender<EstimateRequest>,
        query: &Query,
    ) -> Result<Submitted, ServeError> {
        let schema = estimator.schema();
        let preds = query_to_id_predicates(schema, query);
        let intervals = query.column_intervals(schema);
        let key = if self.config.cache_capacity > 0 {
            let key = canonical_key_from_parts(schema, generation, &preds, &intervals);
            if let Some(value) = cache.get(&key) {
                return Ok(Submitted::Cached(value));
            }
            Some(key)
        } else {
            None
        };
        let (reply, reply_rx) = mpsc::sync_channel(1);
        sender
            .send(EstimateRequest { preds, intervals, key, reply })
            .map_err(|_| ServeError::WorkerUnavailable(table.to_string()))?;
        Ok(Submitted::Pending(reply_rx))
    }

    /// Estimate `query`'s cardinality against `table`'s current model.
    ///
    /// Blocks until the result is available: either a cache hit, or the
    /// micro-batched forward pass containing this request completes. The
    /// value is always exactly what a serial `DuetEstimator::estimate` call
    /// would return.
    pub fn estimate(&self, table: &str, query: &Query) -> Result<f64, ServeError> {
        let started = Instant::now();
        let (slot, cache, sender) = self.handles(table)?;
        let (generation, estimator) = slot.current_versioned();
        let value = match self.submit(table, generation, &estimator, &cache, &sender, query)? {
            Submitted::Cached(value) => value,
            Submitted::Pending(reply_rx) => {
                reply_rx.recv().map_err(|_| ServeError::WorkerUnavailable(table.to_string()))?
            }
        };
        self.metrics.record_request(started.elapsed());
        Ok(value)
    }

    /// Estimate a whole workload through the serving path (requests are
    /// submitted together, so they batch with each other as well as with
    /// concurrent clients).
    pub fn estimate_many(&self, table: &str, queries: &[Query]) -> Result<Vec<f64>, ServeError> {
        let (slot, cache, sender) = self.handles(table)?;
        let (generation, estimator) = slot.current_versioned();
        let mut results = vec![0.0f64; queries.len()];
        let mut pending = Vec::new();
        for (i, query) in queries.iter().enumerate() {
            // Latency is per query, from its own submission.
            let submitted = Instant::now();
            match self.submit(table, generation, &estimator, &cache, &sender, query)? {
                Submitted::Cached(value) => {
                    results[i] = value;
                    self.metrics.record_request(submitted.elapsed());
                }
                Submitted::Pending(reply_rx) => pending.push((i, submitted, reply_rx)),
            }
        }
        for (i, submitted, reply_rx) in pending {
            results[i] =
                reply_rx.recv().map_err(|_| ServeError::WorkerUnavailable(table.to_string()))?;
            self.metrics.record_request(submitted.elapsed());
        }
        Ok(results)
    }

    /// Hot-swap `table`'s weights from a [`duet_core::save_weights`]
    /// checkpoint without dropping in-flight requests.
    ///
    /// Old cache entries become unreachable immediately (keys embed the
    /// model generation) and are additionally purged to free memory; the
    /// purge bumps the cache epoch, so a batch worker that resolved the old
    /// model cannot strand entries computed mid-swap (its inserts carry the
    /// pre-swap epoch and are rejected).
    ///
    /// The slot is resolved through the worker map under its read lock, so
    /// a concurrent `register` for the same table (which takes the write
    /// lock) cannot interleave: the swap lands either on the slot the
    /// workers serve, or strictly before/after the replacement — never on
    /// an orphaned slot.
    pub fn hot_swap(&self, table: &str, checkpoint: &[u8]) -> Result<(), ServeError> {
        let workers = self.workers.read().expect("server poisoned");
        let entry =
            workers.get(table).ok_or_else(|| ServeError::UnknownTable(table.to_string()))?;
        entry
            .slot
            .hot_swap_checkpoint(checkpoint)
            .map_err(|e| ServeError::Swap(SwapError::Checkpoint(e)))?;
        entry.cache.invalidate();
        Ok(())
    }

    /// The swap generation of `table`'s model (0 until the first swap).
    pub fn generation(&self, table: &str) -> Option<u64> {
        self.registry.slot(table).map(|s| s.generation())
    }

    /// Names of every registered table (unordered).
    pub fn tables(&self) -> Vec<String> {
        self.registry.tables()
    }

    /// A point-in-time snapshot of all serving metrics, with cache counters
    /// summed across tables.
    pub fn metrics(&self) -> MetricsSnapshot {
        let (hits, misses) = {
            let workers = self.workers.read().expect("server poisoned");
            workers
                .values()
                .fold((0u64, 0u64), |(h, m), e| (h + e.cache.hits(), m + e.cache.misses()))
        };
        self.metrics.snapshot(hits, misses)
    }
}

impl Drop for DuetServer {
    fn drop(&mut self) {
        // Drop the senders first so workers see a disconnect, then join.
        let entries: Vec<WorkerEntry> = {
            let mut workers = self.workers.write().expect("server poisoned");
            workers.drain().map(|(_, e)| e).collect()
        };
        let mut handles = Vec::new();
        for mut entry in entries {
            if let Some(worker) = entry.worker.take() {
                handles.push(worker);
            }
            drop(entry); // drops the sender
        }
        for worker in handles {
            let _ = worker.join();
        }
    }
}
