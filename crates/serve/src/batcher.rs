//! The shard worker: dequeues same-table batches from its routed queue and
//! runs each through one `N×W` forward pass.
//!
//! A worker serves **every table hashed onto its shard**, not one fixed
//! table: each popped batch holds requests for a single table (the router
//! groups at dequeue), and the worker keeps one persistent
//! [`duet_core::DuetWorkspace`] *per table* in a
//! [`duet_core::WorkspacePool`], so alternating between differently-shaped
//! models never thrashes buffer sizes — and each workspace memoizes the
//! tables' masked effective weights (weight-version keyed), so batches stop
//! re-materializing masks. In steady state the hot loop — admission,
//! dequeue/grouping, deadline triage, and the batched forward pass —
//! performs **zero heap allocation of its own** (asserted by
//! `tests/zero_alloc.rs`); the only allocations on the serving path are the
//! per-request encodings the clients hand in (and their eventual frees).
//! Batches large enough to parallelize fan out over the process-wide
//! persistent compute pool (`duet_nn::pool::ComputePool`), which all shard
//! workers share: its parked threads are woken per job (no spawning), and a
//! worker that finds the pool busy simply runs its kernel inline — results
//! are identical either way.
//!
//! Because the batched path is bit-identical to the single-query path (see
//! `duet_core::estimator`), neither the shard a table hashes to nor the
//! batch composition a request lands in can ever change its answer:
//! concurrent clients always observe the same estimates a serial client
//! would.

use crate::metrics::ServeMetrics;
use crate::router::{Popped, ReplyTo, RoutedRequest, Shard, ShedReason, TableResources};
use crate::tier::ModelTier;
use duet_core::WorkspacePool;
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// How the straggler window (the close-out wait of a non-full batch) is
/// chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StragglerMode {
    /// Always wait exactly [`BatchConfig::batch_window`] (zero = no wait).
    #[default]
    Fixed,
    /// Autotune per batch from the shard's observed inter-arrival gaps:
    /// wait about twice the typical gap when requests are arriving faster
    /// than the cap, wait not at all when traffic is sparse — the same
    /// adapt-to-load idea as batch sizes emerging from backlog. The cap is
    /// [`BatchConfig::batch_window`] when positive, otherwise 100 µs.
    Auto,
}

/// Tuning knobs of the per-shard micro-batcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Largest number of queries fused into one forward pass.
    pub max_batch_size: usize,
    /// How long a non-full batch waits for stragglers after its first
    /// request arrived.
    ///
    /// The default is zero: the worker only drains what is already queued,
    /// so batching emerges from backlog under load and a lone request pays
    /// no artificial delay. A positive window trades latency for larger
    /// batches when clients are pipelined/asynchronous; with *blocking*
    /// clients it can backfire (everyone waits on the worker, the worker
    /// waits on the window). Under [`StragglerMode::Auto`] this is the
    /// window's upper bound rather than its value.
    pub batch_window: Duration,
    /// Straggler-window policy: fixed, or autotuned from arrival gaps.
    pub straggler: StragglerMode,
    /// Minimum queue depth another shard must have before an idle worker
    /// steals a batch from it; `0` disables work-stealing. Stealing only
    /// engages after a worker's own queue stayed empty for a full idle
    /// park, so a shard with traffic never gives work away needlessly.
    pub steal_threshold: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch_size: 64,
            batch_window: Duration::ZERO,
            straggler: StragglerMode::Fixed,
            steal_threshold: 2,
        }
    }
}

/// How long an idle worker parks on its own empty queue before scanning
/// other shards for stealable work (only with work-stealing enabled).
const IDLE_PARK: Duration = Duration::from_micros(500);

/// Straggler-window cap under [`StragglerMode::Auto`] when no explicit
/// `batch_window` bound is configured.
const AUTO_WINDOW_CAP: Duration = Duration::from_micros(100);

/// Worker-lifetime execution state, reused across every batch: the
/// per-table workspace pool and the batch containers. None of these
/// reallocate once they have grown to the steady-state shape of every table
/// on the shard.
pub(crate) struct ShardWorker {
    /// Per-table forward workspaces, indexed by dense table id.
    pool: WorkspacePool,
    /// The batch currently being formed/executed (all one table).
    pub(crate) batch: Vec<RoutedRequest>,
    /// Cardinalities of the live prefix of `batch`, in order.
    results: Vec<f64>,
    /// Fault-injection hook, fired once per executed batch right before the
    /// forward pass. Production never arms it (the `None` check is free and
    /// allocation-free); the deterministic harness injects seeded panics
    /// here to exercise the supervision path.
    pub(crate) fault: Option<Arc<dyn Fn() + Send + Sync>>,
}

impl ShardWorker {
    pub(crate) fn new() -> Self {
        Self { pool: WorkspacePool::new(), batch: Vec::new(), results: Vec::new(), fault: None }
    }

    /// Reset execution state after a caught panic: the workspace pool and
    /// results may have been poisoned mid-forward, so both are rebuilt; the
    /// batch is kept (its requests were already failed and still need
    /// recycling) and the fault hook stays armed.
    pub(crate) fn respawn(&mut self) {
        self.pool = WorkspacePool::new();
        self.results = Vec::new();
    }

    /// Execute the batch currently in `self.batch` (all requests share one
    /// table): triage expired requests, run the live ones through a single
    /// batched forward pass on the table's workspace, store tagged cache
    /// entries, and deliver every reply.
    ///
    /// `self.batch` is left holding the processed requests (live ones first)
    /// so callers can recycle or drop them; ticket replies are appended to
    /// `outcomes`.
    pub(crate) fn execute(
        &mut self,
        tables: &[TableResources],
        now: Duration,
        metrics: &ServeMetrics,
        tier: &ModelTier,
        outcomes: &mut Vec<(u64, Result<f64, ShedReason>)>,
    ) {
        if self.batch.is_empty() {
            return;
        }
        let table_id = self.batch[0].table_id as usize;
        let resources = &tables[table_id];

        // Triage at dequeue, compacting live requests to the batch front
        // (stable, in-place, allocation-free). A request whose slot uid no
        // longer matches was queued against a *previous registration* of
        // this table id: its predicates were encoded with that
        // registration's schema, so decoding them against the current model
        // would silently misread columns. Reject it instead of answering
        // wrong. Then reply-and-drop requests whose deadline budget ran out
        // while queued.
        let slot_uid = resources.slot.uid();
        let mut live = 0;
        for i in 0..self.batch.len() {
            let stale = self.batch[i].slot_uid != slot_uid;
            let expired = self.batch[i].deadline.is_some_and(|deadline| now > deadline);
            if stale {
                metrics.record_shed_stale();
                deliver(&mut self.batch[i].reply, Err(ShedReason::StaleRegistration), outcomes);
            } else if expired {
                metrics.record_shed_deadline();
                deliver(&mut self.batch[i].reply, Err(ShedReason::DeadlineExpired), outcomes);
            } else {
                self.batch.swap(live, i);
                live += 1;
            }
        }
        if live == 0 {
            return;
        }
        tier.observe(table_id, live as u64);

        // Snapshot the cache epoch BEFORE resolving the model, then resolve
        // the model once per batch: requests enqueued after a hot-swap can
        // only ever be served by the new (or a newer) model. A swap landing
        // anywhere after the epoch snapshot bumps the epoch (the server
        // invalidates the cache on swap), so the tagged inserts below are
        // either rejected or removed by the purge — the stranded-entry
        // window is closed entirely. The generation travels with the
        // weights so every insert is labelled with the model that actually
        // computed it.
        //
        // Resolving may lazily reload a model the tier evicted; if the
        // reload fails (spill I/O, corrupt checkpoint) the batch is shed on
        // the retryable overload path rather than crashing the worker.
        let epoch = resources.cache.epoch();
        let was_resident = resources.slot.is_resident();
        let Ok((generation, estimator)) = resources.slot.try_current_versioned() else {
            metrics.record_reload_failure();
            for request in &mut self.batch[..live] {
                metrics.record_shed_overload();
                deliver(&mut request.reply, Err(ShedReason::QueueFull), outcomes);
            }
            return;
        };
        if !was_resident {
            metrics.record_model_reload();
        }
        if let Some(fault) = &self.fault {
            fault();
        }
        estimator.estimate_encoded_batch_with(
            &self.batch[..live],
            &self.batch[..live],
            self.pool.workspace(table_id),
            &mut self.results,
        );
        metrics.record_batch(live);

        for (request, &value) in self.batch[..live].iter_mut().zip(self.results.iter()) {
            if let Some(key) = &request.key {
                resources.cache.insert_tagged(key.with_generation(generation), value, epoch);
            }
            deliver(&mut request.reply, Ok(value), outcomes);
        }

        // Serving this batch may have pushed (or kept) the directory over
        // the model-memory budget: evict cold models until it fits again.
        // The table just served is never the victim.
        tier.enforce(tables, table_id, metrics);
    }
}

/// Send one outcome to its sink and **detach the reply** (a vanished client
/// is not an error).
///
/// Detaching — `Channel`/`Ticket` become `Discard`, `Wire` becomes
/// `WireAnswered` — is the exactly-once guarantee: whatever happens to the
/// batch afterwards (a caught panic, a supervised retry, recycling), a
/// request whose reply has already been delivered can never be answered a
/// second time, and [`fail_batch`] can tell exactly which requests still owe
/// a terminal reply.
fn deliver(
    reply: &mut ReplyTo,
    outcome: Result<f64, ShedReason>,
    outcomes: &mut Vec<(u64, Result<f64, ShedReason>)>,
) {
    match std::mem::replace(reply, ReplyTo::Discard) {
        ReplyTo::Channel(tx) => {
            let _ = tx.send(outcome);
        }
        ReplyTo::Wire { outbox, request_id } => {
            outbox.complete(request_id, outcome);
            // Keep the outbox handle so the request can be recycled into
            // its connection's pool after the batch retires.
            *reply = ReplyTo::WireAnswered(outbox);
        }
        ReplyTo::WireAnswered(outbox) => *reply = ReplyTo::WireAnswered(outbox),
        ReplyTo::Ticket(ticket) => outcomes.push((ticket, outcome)),
        ReplyTo::Discard => {}
    }
}

/// Terminate every not-yet-answered request of a poisoned batch with
/// [`ShedReason::WorkerPanicked`] — the reply half of shard supervision.
///
/// Requests whose replies were already delivered (detached by [`deliver`])
/// are left alone, so a panic after partial delivery fails exactly the
/// remainder: every request still receives exactly one terminal reply.
pub(crate) fn fail_batch(
    batch: &mut [RoutedRequest],
    metrics: &ServeMetrics,
    outcomes: &mut Vec<(u64, Result<f64, ShedReason>)>,
) {
    for request in batch.iter_mut() {
        if matches!(request.reply, ReplyTo::Channel(_) | ReplyTo::Wire { .. } | ReplyTo::Ticket(_))
        {
            metrics.record_shed_internal();
            deliver(&mut request.reply, Err(ShedReason::WorkerPanicked), outcomes);
        }
    }
}

/// Execute the worker's current batch under supervision: a panic anywhere in
/// batch execution (a poisoned model forward, a failing cache shard — any
/// bug or injected fault) is caught here instead of killing the worker
/// thread.
///
/// On a caught panic every unanswered request in the batch is terminated
/// with a typed internal error ([`fail_batch`]) and the worker is respawned
/// with a fresh workspace pool, since a panic mid-forward can leave
/// workspace buffers in an arbitrary state. The worker *thread* never dies:
/// supervision is in-thread, so respawn costs one `WorkspacePool` rebuild —
/// no thread spawn, no queue handoff, and the `catch_unwind` itself is free
/// on the no-panic path.
pub(crate) fn execute_supervised(
    worker: &mut ShardWorker,
    tables: &[TableResources],
    now: Duration,
    metrics: &ServeMetrics,
    tier: &ModelTier,
    outcomes: &mut Vec<(u64, Result<f64, ShedReason>)>,
) {
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        worker.execute(tables, now, metrics, tier, outcomes);
    }));
    if caught.is_err() {
        metrics.record_panic_caught();
        fail_batch(&mut worker.batch, metrics, outcomes);
        worker.respawn();
        metrics.record_shard_restart();
    }
}

/// Empty an executed batch, handing wire requests (their predicate/interval
/// buffers intact) back to their connection's outbox pool so the next
/// decode on that connection reuses the allocations; everything else is
/// dropped. This is what keeps the steady-state wire path allocation-free.
pub(crate) fn recycle_batch(batch: &mut Vec<RoutedRequest>) {
    for mut request in batch.drain(..) {
        // Detach the reply first: a pooled request must not keep a cyclic
        // strong reference to the outbox that owns the pool.
        let reply = std::mem::replace(&mut request.reply, ReplyTo::Discard);
        match reply {
            ReplyTo::Wire { outbox, .. } | ReplyTo::WireAnswered(outbox) => {
                outbox.recycle(request);
            }
            _ => {}
        }
    }
}

/// Production worker loop: one thread per shard, runs until the router is
/// closed and its own shard's queue is drained.
///
/// With `config.steal_threshold > 0` and more than one shard, a worker
/// whose own queue stays empty for a full idle park scans the other shards
/// and **steals one batch** from the deepest queue at or above the
/// threshold. Batch execution is shard-agnostic (the thief uses its own
/// per-table workspace and answers are bit-identical wherever they run), so
/// stealing only changes *when* a backlogged request is served — one cold
/// shard can no longer idle next to a drowning neighbor.
pub(crate) fn run_shard_worker(
    shard_index: usize,
    shards: Vec<Arc<Shard>>,
    directory: Arc<RwLock<Vec<TableResources>>>,
    clock: Arc<dyn crate::router::Clock>,
    metrics: Arc<ServeMetrics>,
    tier: Arc<ModelTier>,
    config: BatchConfig,
) {
    let shard = shards[shard_index].clone();
    let stealing = config.steal_threshold > 0 && shards.len() > 1;
    let auto_cap =
        if config.batch_window > Duration::ZERO { config.batch_window } else { AUTO_WINDOW_CAP };
    let mut worker = ShardWorker::new();
    // Production requests reply over channels or outboxes, so this stays
    // empty; it only exists so the harness and the worker share one
    // execution path.
    let mut outcomes = Vec::new();
    loop {
        let window = match config.straggler {
            StragglerMode::Fixed => config.batch_window,
            StragglerMode::Auto => shard.suggested_window(auto_cap),
        };
        let popped = shard.pop_batch_blocking(
            config.max_batch_size,
            window,
            stealing.then_some(IDLE_PARK),
            &mut worker.batch,
        );
        match popped {
            Popped::Closed => break,
            Popped::Batch => {
                let now = clock.now();
                let tables = directory.read().expect("directory poisoned");
                execute_supervised(&mut worker, &tables, now, &metrics, &tier, &mut outcomes);
                drop(tables);
                recycle_batch(&mut worker.batch);
            }
            Popped::Idle => {
                // Own queue empty for a whole park: steal one batch from the
                // deepest sibling at or above the threshold, if any.
                let victim = shards
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != shard_index)
                    .map(|(_, s)| (s.depth(), s))
                    .max_by_key(|(depth, _)| *depth);
                if let Some((depth, victim)) = victim {
                    if depth >= config.steal_threshold
                        && victim.try_pop_batch(config.max_batch_size, &mut worker.batch)
                    {
                        metrics.record_steal();
                        let now = clock.now();
                        let tables = directory.read().expect("directory poisoned");
                        execute_supervised(
                            &mut worker,
                            &tables,
                            now,
                            &metrics,
                            &tier,
                            &mut outcomes,
                        );
                        drop(tables);
                        recycle_batch(&mut worker.batch);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{canonical_key, ShardedCache};
    use crate::registry::ModelSlot;
    use crate::router::{RouterConfig, SystemClock};
    use duet_core::{DuetConfig, DuetEstimator};
    use duet_data::datasets::census_like;
    use duet_query::{Query, WorkloadSpec};
    use std::sync::mpsc;
    use std::sync::mpsc::SyncSender;

    fn test_shard(capacity: usize) -> Shard {
        Shard::new(capacity, Arc::new(SystemClock::new()))
    }

    fn resources_for(estimator: &DuetEstimator, name: &str) -> TableResources {
        TableResources {
            name: Arc::from(name),
            slot: Arc::new(ModelSlot::new(estimator.clone())),
            cache: Arc::new(ShardedCache::new(0, 1)),
        }
    }

    /// Build a request against the table's *current registration*: encoded
    /// with its schema and stamped with its slot uid, exactly as the server
    /// front door does.
    fn request_for(
        resources: &TableResources,
        table_id: u32,
        query: &Query,
        deadline: Option<Duration>,
        reply: SyncSender<Result<f64, ShedReason>>,
    ) -> RoutedRequest {
        let estimator = resources.slot.current();
        RoutedRequest {
            table_id,
            slot_uid: resources.slot.uid(),
            preds: duet_core::query_to_id_predicates(estimator.schema(), query),
            intervals: query.column_intervals(estimator.schema()),
            key: None,
            deadline,
            reply: ReplyTo::Channel(reply),
        }
    }

    #[test]
    fn worker_batches_backlog_and_answers_bit_identically() {
        let table = census_like(300, 31);
        let cfg = DuetConfig::small().with_epochs(1);
        let est = DuetEstimator::train_data_only(&table, &cfg, 11);
        let queries = WorkloadSpec::random(&table, 16, 5).generate(&table);
        let expected = est.estimate_batch(&queries);

        let shard = test_shard(64);
        let tables = vec![resources_for(&est, "census")];
        let mut replies = Vec::new();
        for q in &queries {
            let (reply, reply_rx) = mpsc::sync_channel(1);
            shard.try_push(request_for(&tables[0], 0, q, None, reply)).unwrap();
            replies.push(reply_rx);
        }
        let metrics = ServeMetrics::new();
        let tier = ModelTier::new(0);
        let mut worker = ShardWorker::new();
        let mut outcomes = Vec::new();
        assert!(shard.try_pop_batch(64, &mut worker.batch));
        worker.execute(&tables, Duration::ZERO, &metrics, &tier, &mut outcomes);

        let got: Vec<f64> = replies.iter().map(|r| r.recv().unwrap().unwrap()).collect();
        assert_eq!(got, expected);
        let snapshot = metrics.snapshot(0, 0, 0);
        assert_eq!(snapshot.batches, 1, "a pre-queued backlog should fuse into one batch");
        assert!((snapshot.mean_batch_size - 16.0).abs() < 1e-9);
        assert!(outcomes.is_empty(), "channel replies must not leak into the ticket log");
    }

    #[test]
    fn worker_interleaves_tables_with_per_table_workspaces() {
        let (t1, t2) = (census_like(250, 31), census_like(350, 52));
        let cfg = DuetConfig::small().with_epochs(1);
        let est1 = DuetEstimator::train_data_only(&t1, &cfg, 3);
        let est2 = DuetEstimator::train_data_only(&t2, &cfg, 4);
        let q1 = WorkloadSpec::random(&t1, 6, 6).generate(&t1);
        let q2 = WorkloadSpec::random(&t2, 6, 7).generate(&t2);
        let (e1, e2) = (est1.estimate_batch(&q1), est2.estimate_batch(&q2));

        let shard = test_shard(64);
        let tables = vec![resources_for(&est1, "t1"), resources_for(&est2, "t2")];
        let mut replies = Vec::new();
        // Interleave the two tables in one queue.
        for i in 0..6 {
            for (table_id, queries) in [(0u32, &q1), (1, &q2)] {
                let (reply, reply_rx) = mpsc::sync_channel(1);
                let resources = &tables[table_id as usize];
                shard.try_push(request_for(resources, table_id, &queries[i], None, reply)).unwrap();
                replies.push((table_id, i, reply_rx));
            }
        }
        let metrics = ServeMetrics::new();
        let tier = ModelTier::new(0);
        let mut worker = ShardWorker::new();
        let mut outcomes = Vec::new();
        // Two pops: one per table (head-of-queue grouping).
        for _ in 0..2 {
            assert!(shard.try_pop_batch(64, &mut worker.batch));
            worker.execute(&tables, Duration::ZERO, &metrics, &tier, &mut outcomes);
            worker.batch.clear();
        }
        for (table_id, i, rx) in replies {
            let expected = if table_id == 0 { e1[i] } else { e2[i] };
            assert_eq!(rx.recv().unwrap().unwrap(), expected, "table {table_id} query {i}");
        }
        let snapshot = metrics.snapshot(0, 0, 0);
        assert_eq!(snapshot.batches, 2, "one batch per table");
        assert_eq!(worker.pool.len(), 2, "one workspace per table");
    }

    #[test]
    fn expired_requests_are_dropped_at_dequeue() {
        let table = census_like(200, 32);
        let cfg = DuetConfig::small().with_epochs(1);
        let est = DuetEstimator::train_data_only(&table, &cfg, 3);
        let queries = WorkloadSpec::random(&table, 4, 6).generate(&table);
        let expected = est.estimate_batch(&queries);

        let shard = test_shard(64);
        let tables = vec![resources_for(&est, "census")];
        let mut replies = Vec::new();
        for (i, q) in queries.iter().enumerate() {
            // Odd requests carry an already-tight deadline.
            let deadline = if i % 2 == 1 {
                Some(Duration::from_millis(1))
            } else {
                Some(Duration::from_secs(60))
            };
            let (reply, reply_rx) = mpsc::sync_channel(1);
            shard.try_push(request_for(&tables[0], 0, q, deadline, reply)).unwrap();
            replies.push(reply_rx);
        }
        let metrics = ServeMetrics::new();
        let tier = ModelTier::new(0);
        let mut worker = ShardWorker::new();
        let mut outcomes = Vec::new();
        assert!(shard.try_pop_batch(64, &mut worker.batch));
        // Dequeue happens at t = 2ms: the 1ms deadlines have expired.
        worker.execute(&tables, Duration::from_millis(2), &metrics, &tier, &mut outcomes);

        for (i, rx) in replies.iter().enumerate() {
            let got = rx.recv().unwrap();
            if i % 2 == 1 {
                assert_eq!(got, Err(ShedReason::DeadlineExpired), "request {i}");
            } else {
                assert_eq!(got, Ok(expected[i]), "live request {i} must still be bit-identical");
            }
        }
        let snapshot = metrics.snapshot(0, 0, 0);
        assert_eq!(snapshot.shed_deadline, 2);
        assert!((snapshot.mean_batch_size - 2.0).abs() < 1e-9, "only live requests count");
    }

    #[test]
    fn worker_fills_cache_entries() {
        let table = census_like(200, 33);
        let cfg = DuetConfig::small().with_epochs(1);
        let est = DuetEstimator::train_data_only(&table, &cfg, 4);
        let query = WorkloadSpec::random(&table, 1, 7).generate(&table).remove(0);
        let key = canonical_key(&est, 0, &query);
        let expected = est.estimate_batch(std::slice::from_ref(&query))[0];

        let cache = Arc::new(ShardedCache::new(16, 2));
        let tables = vec![TableResources {
            name: Arc::from("census"),
            slot: Arc::new(ModelSlot::new(est.clone())),
            cache: cache.clone(),
        }];
        let shard = test_shard(8);
        let (reply, reply_rx) = mpsc::sync_channel(1);
        let mut request = request_for(&tables[0], 0, &query, None, reply);
        request.key = Some(key.clone());
        shard.try_push(request).unwrap();

        let metrics = ServeMetrics::new();
        let tier = ModelTier::new(0);
        let mut worker = ShardWorker::new();
        let mut outcomes = Vec::new();
        assert!(shard.try_pop_batch(8, &mut worker.batch));
        worker.execute(&tables, Duration::ZERO, &metrics, &tier, &mut outcomes);

        assert_eq!(reply_rx.recv().unwrap().unwrap(), expected);
        assert_eq!(cache.get(&key), Some(expected));
    }

    #[test]
    fn run_shard_worker_drains_and_exits_on_close() {
        let table = census_like(250, 34);
        let cfg = DuetConfig::small().with_epochs(1);
        let est = DuetEstimator::train_data_only(&table, &cfg, 5);
        let queries = WorkloadSpec::random(&table, 8, 9).generate(&table);
        let expected = est.estimate_batch(&queries);

        let router = crate::router::Router::new(
            RouterConfig { num_shards: 1, ..RouterConfig::default() },
            Arc::new(SystemClock::new()),
            Arc::new(ServeMetrics::new()),
        );
        let resources = resources_for(&est, "census");
        let directory = Arc::new(RwLock::new(vec![resources.clone()]));
        let metrics = Arc::new(ServeMetrics::new());

        let mut replies = Vec::new();
        for q in &queries {
            let (reply, reply_rx) = mpsc::sync_channel(1);
            router.try_route(0, request_for(&resources, 0, q, None, reply)).unwrap();
            replies.push(reply_rx);
        }

        let handle = {
            let (shards, directory, metrics) =
                (vec![router.shard(0).clone()], directory.clone(), metrics.clone());
            let clock: Arc<dyn crate::router::Clock> = Arc::new(SystemClock::new());
            let tier = Arc::new(ModelTier::new(0));
            std::thread::spawn(move || {
                run_shard_worker(0, shards, directory, clock, metrics, tier, BatchConfig::default())
            })
        };
        let got: Vec<f64> = replies.iter().map(|r| r.recv().unwrap().unwrap()).collect();
        assert_eq!(got, expected);
        router.close();
        handle.join().unwrap();
    }

    #[test]
    fn straggler_window_adapts_to_arrival_gaps() {
        use crate::router::VirtualClock;
        let clock = Arc::new(VirtualClock::new());
        let shard = Shard::new(64, clock.clone());
        let cap = Duration::from_micros(100);
        assert_eq!(shard.suggested_window(cap), Duration::ZERO, "no estimate yet");

        // Dense arrivals every 10 µs: the window converges to ~2 gaps.
        let mut drain = Vec::new();
        for _ in 0..32 {
            clock.advance(Duration::from_micros(10));
            shard.try_push(request(0, None)).unwrap();
            shard.try_pop_batch(64, &mut drain);
        }
        let window = shard.suggested_window(cap);
        assert!(
            window >= Duration::from_micros(15) && window <= Duration::from_micros(25),
            "dense traffic should suggest ~2x the 10us gap, got {window:?}"
        );
        assert!(shard.suggested_window(Duration::from_micros(12)) <= Duration::from_micros(12));

        // Sparse arrivals (gaps far beyond the cap): no straggler is coming
        // within the window, so don't tax latency at all.
        for _ in 0..8 {
            clock.advance(Duration::from_millis(50));
            shard.try_push(request(0, None)).unwrap();
            shard.try_pop_batch(64, &mut drain);
        }
        assert_eq!(shard.suggested_window(cap), Duration::ZERO, "sparse traffic");
    }

    fn request(table_id: u32, deadline: Option<Duration>) -> RoutedRequest {
        RoutedRequest {
            table_id,
            slot_uid: 0,
            preds: Vec::new(),
            intervals: Vec::new(),
            key: None,
            deadline,
            reply: ReplyTo::Discard,
        }
    }

    #[test]
    fn idle_worker_steals_backlog_from_deep_sibling() {
        let table = census_like(250, 35);
        let cfg = DuetConfig::small().with_epochs(1);
        let est = DuetEstimator::train_data_only(&table, &cfg, 6);
        let queries = WorkloadSpec::random(&table, 6, 10).generate(&table);
        let expected = est.estimate_batch(&queries);

        let router = crate::router::Router::new(
            RouterConfig { num_shards: 2, ..RouterConfig::default() },
            Arc::new(SystemClock::new()),
            Arc::new(ServeMetrics::new()),
        );
        let resources = resources_for(&est, "census");
        let directory = Arc::new(RwLock::new(vec![resources.clone()]));
        let metrics = Arc::new(ServeMetrics::new());

        // Backlog lands on shard 1, but only shard 0 gets a worker: every
        // answer must come from a steal.
        let mut replies = Vec::new();
        for q in &queries {
            let (reply, reply_rx) = mpsc::sync_channel(1);
            router.try_route(1, request_for(&resources, 0, q, None, reply)).unwrap();
            replies.push(reply_rx);
        }

        let handle = {
            let shards: Vec<_> = (0..2).map(|i| router.shard(i).clone()).collect();
            let (directory, metrics) = (directory.clone(), metrics.clone());
            let clock: Arc<dyn crate::router::Clock> = Arc::new(SystemClock::new());
            let tier = Arc::new(ModelTier::new(0));
            let config = BatchConfig { steal_threshold: 2, ..BatchConfig::default() };
            std::thread::spawn(move || {
                run_shard_worker(0, shards, directory, clock, metrics, tier, config)
            })
        };
        let got: Vec<f64> = replies.iter().map(|r| r.recv().unwrap().unwrap()).collect();
        assert_eq!(got, expected, "stolen batches must stay bit-identical");
        router.close();
        handle.join().unwrap();
        assert!(
            metrics.snapshot(0, 0, 0).steals >= 1,
            "serving a foreign shard's backlog must be recorded as a steal"
        );
    }

    #[test]
    fn a_panicking_batch_fails_typed_and_the_worker_respawns() {
        use std::sync::atomic::{AtomicU64, Ordering};

        let table = census_like(250, 37);
        let cfg = DuetConfig::small().with_epochs(1);
        let est = DuetEstimator::train_data_only(&table, &cfg, 8);
        let queries = WorkloadSpec::random(&table, 6, 12).generate(&table);
        let expected = est.estimate_batch(&queries);

        let shard = test_shard(64);
        let tables = vec![resources_for(&est, "census")];
        let metrics = ServeMetrics::new();
        let tier = ModelTier::new(0);
        let mut worker = ShardWorker::new();
        // Panic on the first executed batch only.
        let executions = Arc::new(AtomicU64::new(0));
        let hook_counter = executions.clone();
        worker.fault = Some(Arc::new(move || {
            if hook_counter.fetch_add(1, Ordering::Relaxed) == 0 {
                panic!("injected model fault");
            }
        }));
        let mut outcomes = Vec::new();

        // Round 1: the batch poisons the worker; every request must still
        // get a typed terminal reply.
        let mut replies = Vec::new();
        for q in &queries {
            let (reply, reply_rx) = mpsc::sync_channel(1);
            shard.try_push(request_for(&tables[0], 0, q, None, reply)).unwrap();
            replies.push(reply_rx);
        }
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // silence the injected panic
        assert!(shard.try_pop_batch(64, &mut worker.batch));
        execute_supervised(&mut worker, &tables, Duration::ZERO, &metrics, &tier, &mut outcomes);
        std::panic::set_hook(prev);
        recycle_batch(&mut worker.batch);
        for rx in &replies {
            assert_eq!(rx.recv().unwrap(), Err(ShedReason::WorkerPanicked));
        }

        // Round 2: the respawned worker serves bit-identically.
        let mut replies = Vec::new();
        for q in &queries {
            let (reply, reply_rx) = mpsc::sync_channel(1);
            shard.try_push(request_for(&tables[0], 0, q, None, reply)).unwrap();
            replies.push(reply_rx);
        }
        assert!(shard.try_pop_batch(64, &mut worker.batch));
        execute_supervised(&mut worker, &tables, Duration::ZERO, &metrics, &tier, &mut outcomes);
        recycle_batch(&mut worker.batch);
        let got: Vec<f64> = replies.iter().map(|r| r.recv().unwrap().unwrap()).collect();
        assert_eq!(got, expected, "post-respawn answers must stay bit-identical");

        let snapshot = metrics.snapshot(0, 0, 0);
        assert_eq!(snapshot.panics_caught, 1);
        assert_eq!(snapshot.shard_restarts, 1);
        assert_eq!(snapshot.shed_internal, queries.len() as u64);
        assert!(outcomes.is_empty(), "channel replies must not leak into the ticket log");
    }

    /// Regression test for the in-flight re-register race: requests queued
    /// against one registration of a table id must never be decoded by a
    /// model registered later under the same id — their predicate encodings
    /// belong to the old schema.
    #[test]
    fn requests_for_a_replaced_registration_are_rejected_at_dequeue() {
        use duet_core::DuetModel;
        use duet_data::{TableBuilder, Value};

        let table = census_like(250, 36);
        let cfg = DuetConfig::small().with_epochs(1);
        let est = DuetEstimator::train_data_only(&table, &cfg, 7);
        let queries = WorkloadSpec::random(&table, 5, 11).generate(&table);

        let shard = test_shard(64);
        let mut tables = vec![resources_for(&est, "t")];
        let mut replies = Vec::new();
        for q in &queries {
            let (reply, reply_rx) = mpsc::sync_channel(1);
            shard.try_push(request_for(&tables[0], 0, q, None, reply)).unwrap();
            replies.push(reply_rx);
        }

        // While those requests sit queued, the table id is re-registered
        // with a model for a *different schema* — the race this guards
        // against. The new slot carries a fresh uid.
        let mut b = TableBuilder::new("tiny", vec!["a".into(), "b".into()]);
        for i in 0..20 {
            b.push_row(vec![Value::Int(i % 4), Value::Int(i % 3)]);
        }
        let tiny = b.build();
        let replacement = DuetEstimator::from_model(
            DuetModel::new(&tiny, &DuetConfig::small(), 1),
            &tiny,
            "tiny",
        );
        tables[0] = resources_for(&replacement, "t");

        let metrics = ServeMetrics::new();
        let tier = ModelTier::new(0);
        let mut worker = ShardWorker::new();
        let mut outcomes = Vec::new();
        assert!(shard.try_pop_batch(64, &mut worker.batch));
        worker.execute(&tables, Duration::ZERO, &metrics, &tier, &mut outcomes);

        for rx in &replies {
            assert_eq!(rx.recv().unwrap(), Err(ShedReason::StaleRegistration));
        }
        let snapshot = metrics.snapshot(0, 0, 0);
        assert_eq!(snapshot.shed_stale, queries.len() as u64);
        assert_eq!(snapshot.batches, 0, "no forward pass may run on mismatched encodings");
    }
}
