//! The micro-batching engine: coalesces concurrent estimate requests into
//! one `N×W` forward pass.
//!
//! One worker thread per table owns the receiving end of an MPSC channel.
//! When a request arrives the worker opportunistically drains whatever else
//! is already queued, then waits up to [`BatchConfig::batch_window`] for
//! stragglers (bounded by [`BatchConfig::max_batch_size`]), and runs the
//! whole batch through [`DuetEstimator::estimate_encoded_batch`] — a single
//! matrix forward pass instead of N row passes, fed by the per-request
//! encodings the server already computed for the cache keys.
//!
//! Because the batched path is bit-identical to the single-query path (see
//! `duet_core::estimator`), the batch composition a request happens to land
//! in can never change its answer: concurrent clients always observe the
//! same estimates a serial client would.
//!
//! Each worker owns a persistent [`duet_core::DuetWorkspace`] plus every
//! batch container it needs, all reused across batches: in steady state the
//! worker's hot loop performs **zero heap allocation of its own** — the only
//! allocations on the serving path are the per-request encodings the clients
//! hand in (and their eventual frees).

use crate::cache::{CacheKey, ShardedCache};
use crate::metrics::ServeMetrics;
use crate::registry::ModelSlot;
use duet_core::{DuetEstimator, DuetWorkspace, IdPredicate};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TryRecvError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs of the micro-batcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Largest number of queries fused into one forward pass.
    pub max_batch_size: usize,
    /// How long a non-full batch waits for stragglers after its first
    /// request arrived.
    ///
    /// The default is zero: the worker only drains what is already queued,
    /// so batching emerges from backlog under load and a lone request pays
    /// no artificial delay. A positive window trades latency for larger
    /// batches when clients are pipelined/asynchronous; with *blocking*
    /// clients it can backfire (everyone waits on the worker, the worker
    /// waits on the window).
    pub batch_window: Duration,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self { max_batch_size: 64, batch_window: Duration::ZERO }
    }
}

/// One queued estimation request, already encoded against the table schema
/// (the same encoding the cache key was derived from, so nothing is
/// translated twice on the serving hot path).
pub(crate) struct EstimateRequest {
    /// Per-column id-space predicates of the query.
    pub preds: Vec<Vec<IdPredicate>>,
    /// Per-column valid-id intervals of the query.
    pub intervals: Vec<(u32, u32)>,
    /// Cache slot to fill with the result (`None` when caching is disabled).
    pub key: Option<CacheKey>,
    /// Where the worker sends the estimate; buffered so the worker never
    /// blocks on a slow or vanished client.
    pub reply: SyncSender<f64>,
}

/// Worker loop: runs until every sender is dropped.
pub(crate) fn run_batch_worker(
    slot: Arc<ModelSlot>,
    cache: Arc<ShardedCache>,
    metrics: Arc<ServeMetrics>,
    rx: Receiver<EstimateRequest>,
    config: BatchConfig,
) {
    let max = config.max_batch_size.max(1);
    // Worker-lifetime state, reused across every batch: the forward
    // workspace (activations, masked weights, softmax staging) and the batch
    // containers. None of these reallocate once they have grown to the
    // steady-state batch shape.
    let mut ws = DuetWorkspace::new();
    let mut batch: Vec<EstimateRequest> = Vec::new();
    let mut rows: Vec<Vec<Vec<IdPredicate>>> = Vec::new();
    let mut intervals: Vec<Vec<(u32, u32)>> = Vec::new();
    let mut sinks: Vec<(Option<CacheKey>, SyncSender<f64>)> = Vec::new();
    let mut results: Vec<f64> = Vec::new();
    while let Ok(first) = rx.recv() {
        batch.clear();
        batch.push(first);
        collect_stragglers(&rx, &mut batch, max, config.batch_window);

        // Snapshot the cache epoch BEFORE resolving the model, then resolve
        // the model once per batch: requests enqueued after a hot-swap can
        // only ever be served by the new (or a newer) model. A swap landing
        // anywhere after the epoch snapshot bumps the epoch (the server
        // invalidates the cache on swap), so the tagged inserts below are
        // either rejected or removed by the purge — the stranded-entry
        // window is closed entirely. The generation travels with the
        // weights so every insert is labelled with the model that actually
        // computed it.
        let epoch = cache.epoch();
        let (generation, estimator): (u64, Arc<DuetEstimator>) = slot.current_versioned();
        rows.clear();
        intervals.clear();
        sinks.clear();
        for request in batch.drain(..) {
            rows.push(request.preds);
            intervals.push(request.intervals);
            sinks.push((request.key, request.reply));
        }
        estimator.estimate_encoded_batch_with(&rows, &intervals, &mut ws, &mut results);
        metrics.record_batch(rows.len());

        for ((key, reply), &value) in sinks.drain(..).zip(results.iter()) {
            if let Some(key) = key {
                cache.insert_tagged(key.with_generation(generation), value, epoch);
            }
            // A client that gave up (dropped its receiver) is not an error.
            let _ = reply.send(value);
        }
    }
}

/// Fill `batch` up to `max` entries: drain the queue, then wait out the
/// batching window.
fn collect_stragglers(
    rx: &Receiver<EstimateRequest>,
    batch: &mut Vec<EstimateRequest>,
    max: usize,
    window: Duration,
) {
    let deadline = Instant::now() + window;
    while batch.len() < max {
        match rx.try_recv() {
            Ok(r) => {
                batch.push(r);
                continue;
            }
            Err(TryRecvError::Disconnected) => return,
            Err(TryRecvError::Empty) => {}
        }
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        match rx.recv_timeout(deadline - now) {
            Ok(r) => batch.push(r),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_core::DuetConfig;
    use duet_data::datasets::census_like;
    use duet_query::{Query, WorkloadSpec};
    use std::sync::mpsc;

    fn request_for(
        estimator: &DuetEstimator,
        query: &Query,
        key: Option<CacheKey>,
        reply: SyncSender<f64>,
    ) -> EstimateRequest {
        EstimateRequest {
            preds: duet_core::query_to_id_predicates(estimator.schema(), query),
            intervals: query.column_intervals(estimator.schema()),
            key,
            reply,
        }
    }

    #[test]
    fn worker_answers_and_batches_queued_requests() {
        let table = census_like(300, 31);
        let cfg = DuetConfig::small().with_epochs(1);
        let est = DuetEstimator::train_data_only(&table, &cfg, 11);
        let queries = WorkloadSpec::random(&table, 16, 5).generate(&table);
        let expected = est.estimate_batch(&queries);

        let slot = Arc::new(ModelSlot::new(est));
        let cache = Arc::new(ShardedCache::new(0, 1));
        let metrics = Arc::new(ServeMetrics::new());
        let (tx, rx) = mpsc::channel();

        // Queue everything BEFORE the worker starts: it must drain the
        // backlog into large batches rather than going one-by-one.
        let mut replies = Vec::new();
        for q in &queries {
            let (reply, reply_rx) = mpsc::sync_channel(1);
            tx.send(request_for(&slot.current(), q, None, reply)).unwrap();
            replies.push(reply_rx);
        }
        drop(tx);

        let worker = {
            let (slot, cache, metrics) = (slot.clone(), cache.clone(), metrics.clone());
            std::thread::spawn(move || {
                run_batch_worker(slot, cache, metrics, rx, BatchConfig::default())
            })
        };

        let got: Vec<f64> = replies.iter().map(|r| r.recv().unwrap()).collect();
        worker.join().unwrap();
        assert_eq!(got, expected);

        let snapshot = metrics.snapshot(0, 0);
        assert_eq!(snapshot.batches, 1, "a pre-queued backlog should fuse into one batch");
        assert!((snapshot.mean_batch_size - 16.0).abs() < 1e-9);
    }

    #[test]
    fn zero_window_still_drains_backlog() {
        let table = census_like(200, 32);
        let cfg = DuetConfig::small().with_epochs(1);
        let est = DuetEstimator::train_data_only(&table, &cfg, 3);
        let queries = WorkloadSpec::random(&table, 8, 6).generate(&table);
        let expected = est.estimate_batch(&queries);

        let slot = Arc::new(ModelSlot::new(est));
        let cache = Arc::new(ShardedCache::new(0, 1));
        let metrics = Arc::new(ServeMetrics::new());
        let (tx, rx) = mpsc::channel();
        let mut replies = Vec::new();
        for q in &queries {
            let (reply, reply_rx) = mpsc::sync_channel(1);
            tx.send(request_for(&slot.current(), q, None, reply)).unwrap();
            replies.push(reply_rx);
        }
        drop(tx);

        let config = BatchConfig { max_batch_size: 4, batch_window: Duration::ZERO };
        run_batch_worker(slot, cache, metrics.clone(), rx, config);
        let got: Vec<f64> = replies.iter().map(|r| r.recv().unwrap()).collect();
        assert_eq!(got, expected);
        assert_eq!(metrics.snapshot(0, 0).batches, 2, "8 queries at max_batch_size 4");
    }

    #[test]
    fn worker_fills_cache_entries() {
        let table = census_like(200, 33);
        let cfg = DuetConfig::small().with_epochs(1);
        let est = DuetEstimator::train_data_only(&table, &cfg, 4);
        let query = WorkloadSpec::random(&table, 1, 7).generate(&table).remove(0);
        let key = crate::cache::canonical_key(&est, 0, &query);
        let expected = est.estimate_batch(std::slice::from_ref(&query))[0];

        let slot = Arc::new(ModelSlot::new(est));
        let cache = Arc::new(ShardedCache::new(16, 2));
        let metrics = Arc::new(ServeMetrics::new());
        let (tx, rx) = mpsc::channel();
        let (reply, reply_rx) = mpsc::sync_channel(1);
        tx.send(request_for(&slot.current(), &query, Some(key.clone()), reply)).unwrap();
        drop(tx);
        run_batch_worker(slot, cache.clone(), metrics, rx, BatchConfig::default());

        assert_eq!(reply_rx.recv().unwrap(), expected);
        assert_eq!(cache.get(&key), Some(expected));
    }
}
