//! # duet-serve
//!
//! A concurrent, batched estimation-serving layer over
//! [`duet_core::DuetEstimator`], built on std threads and channels (no async
//! runtime). It turns the paper's key inference property — every range query
//! is answered by a **single deterministic forward pass** — into a service
//! that sustains many concurrent clients:
//!
//! * [`registry`] — named model slots with **zero-downtime hot-swap** from
//!   [`duet_core::save_weights`] checkpoints: in-flight requests finish on
//!   the old weights, later requests see the new ones;
//! * [`router`] — **sharded multi-table routing with admission control**:
//!   tables are hashed onto a shared pool of worker shards with bounded
//!   queues; a full shard sheds load with a typed `Overloaded` rejection,
//!   and a request whose deadline budget expires while queued is dropped at
//!   dequeue instead of wasting a forward pass;
//! * [`batcher`] — the per-shard **micro-batching worker**: same-table
//!   batches are coalesced into one `N×W` matrix forward pass
//!   ([`duet_core::DuetEstimator::estimate_batch`]), which is bit-identical
//!   to N single-query passes, so neither sharding nor batching ever
//!   changes an answer;
//! * [`cache`] — a **sharded LRU result cache** keyed on canonicalized
//!   predicate intervals (and the model generation, which makes hot-swaps
//!   invalidate stale entries implicitly), with hit/miss accounting;
//! * [`metrics`] — QPS, p50/p99 latency, batch-size histogram, shed/queue
//!   counters and cache hit rate, computed with the same percentile helper
//!   as the offline experiment harness;
//! * [`tier`] — **fleet-scale model tiering**: a registry-wide weight-memory
//!   budget with LFU-aged eviction of cold models to checkpoint bytes (in
//!   memory or spilled to disk) and transparent, bit-identical lazy reload
//!   on the next request;
//! * [`online`] — the **online-learning loop**: row ingest with incremental
//!   per-column statistics, histogram-distance drift detection with
//!   hysteresis, true-cardinality query feedback, and a background trainer
//!   that retrains from the serving weights and publishes through the
//!   hot-swap + hot-set-replay path — drift → retrain → swap, with zero
//!   downtime;
//! * [`server`] — [`DuetServer`], the blocking, `Sync` front door tying the
//!   pieces together;
//! * [`sim`] — a **deterministic serving test harness**: a virtual-clock,
//!   seeded-RNG multi-client driver that replays scripted arrival patterns
//!   through the real router/worker code, making the concurrency layer
//!   regression-testable instead of timing-dependent;
//! * [`wire`] — **duet-wire**, the TCP front door: a compact binary
//!   protocol with pipelined connections, served by nonblocking acceptor
//!   threads ([`DuetServer::serve_wire`]) and driven byte-for-byte by the
//!   simulator ([`sim::run_wire_scenario`]) so framing, backpressure, and
//!   out-of-order completion are replay-testable without sockets.
//!
//! The crate is organized into **fault domains**: every shard worker runs
//! its batches under `catch_unwind` supervision (a panicking batch answers
//! every request typed and the worker respawns), checkpoints carry a
//! checksummed integrity frame so a torn or corrupt file is a typed reload
//! error instead of garbage weights, the wire client retries overload with
//! seeded jittered backoff ([`wire::RetryConfig`]) and can redial a dead
//! server, and [`DuetServer::shutdown`] drains queued work before stopping.
//! All of it is replayable under seeded fault injection
//! ([`sim::FaultPlan`], [`sim::run_fault_scenario`]).
//!
//! ```no_run
//! use duet_core::{DuetConfig, DuetEstimator};
//! use duet_data::datasets::census_like;
//! use duet_query::WorkloadSpec;
//! use duet_serve::{DuetServer, ServeConfig};
//! use std::sync::Arc;
//!
//! let table = census_like(10_000, 42);
//! let estimator = DuetEstimator::train_data_only(&table, &DuetConfig::small(), 42);
//! let server = Arc::new(DuetServer::new(ServeConfig::default()));
//! server.register("census", estimator);
//!
//! let queries = WorkloadSpec::random(&table, 100, 7).generate(&table);
//! let handles: Vec<_> = (0..8)
//!     .map(|_| {
//!         let (server, queries) = (server.clone(), queries.clone());
//!         std::thread::spawn(move || {
//!             for q in &queries {
//!                 let _ = server.estimate("census", q).unwrap();
//!             }
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     h.join().unwrap();
//! }
//! println!("{}", server.metrics());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batcher;
pub mod cache;
pub mod metrics;
pub mod online;
pub mod registry;
pub mod router;
pub mod server;
pub mod sim;
pub mod tier;
pub mod wire;

pub use batcher::{BatchConfig, StragglerMode};
pub use cache::{
    canonical_key, canonical_key_from_parts, CacheKey, HotQuery, HotSet, ShardedCache,
};
pub use metrics::{MetricsSnapshot, ServeMetrics};
pub use online::{
    DriftMonitor, FeedbackError, IngestError, OnlineConfig, OnlineDirectory, OnlineHooks,
    OnlineTable, OnlineTickReport, OnlineTrainerHandle,
};
pub use registry::{ModelRegistry, ModelSlot, ReloadError, SwapError};
pub use router::{shard_for, Clock, Router, RouterConfig, ShedReason, SystemClock, VirtualClock};
pub use server::{DuetServer, ServeConfig, ServeError};
pub use tier::ModelTier;
pub use wire::{RetryConfig, WireClient, WireConfig, WireConn, WireHandle};
