//! The model registry: named, atomically hot-swappable estimator slots.
//!
//! Each table is served from a [`ModelSlot`] holding an `Arc<DuetEstimator>`.
//! Readers grab the `Arc` once per batch, so a swap never blocks or corrupts
//! in-flight work: requests already holding the old `Arc` finish against the
//! old weights, requests arriving afterwards see the new ones.
//!
//! The generation counter and the estimator live under one lock, so
//! [`ModelSlot::current_versioned`] always returns a matching
//! `(generation, weights)` pair. `duet-serve` keys cache entries by
//! generation; the batch worker labels every insert with the generation it
//! actually resolved, so a cached value is always one that *those* weights
//! computed — even for requests in flight across a swap.
//!
//! ## Residency
//!
//! A slot's model is either **resident** (the live `Arc<DuetEstimator>`) or
//! **evicted**: reduced to its [`duet_core::save_weights`] checkpoint bytes
//! (in memory, or spilled to a file) plus the schema/config needed to
//! rebuild it. Eviction is how [`crate::ModelTier`] enforces a registry-wide
//! memory budget over many registered tables. Because Duet's architecture is
//! a pure function of `(schema, config)` — the masks use no randomness — an
//! evicted model reloads **bit-identically**: the next request rebuilds the
//! network, restores the checkpointed weights, and produces exactly the
//! estimates the evicted instance would have. Evict/reload therefore does
//! **not** bump the generation: cached results stay valid.

use duet_core::{load_weights, CheckpointError, DuetConfig, DuetEstimator};
use duet_data::Table;
use duet_query::CardinalityEstimator;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Source of [`ModelSlot::uid`] values: process-wide, never reused.
static NEXT_SLOT_UID: AtomicU64 = AtomicU64::new(1);

/// Where an evicted model's checkpoint bytes live.
///
/// Both forms hold **sealed** [`duet_core::save_weights`] frames: a magic
/// header, the payload length, and an FNV-1a checksum ahead of the codec
/// bytes. Spilled files are written via temp-file + rename and verified by
/// read-back before the resident model is dropped, so the store can only
/// ever contain a frame that validated at least once; any later damage
/// (truncation, bit rot, an operator overwriting the file) is caught by the
/// same frame check at reload time and surfaces as a typed error.
#[derive(Debug)]
enum CheckpointStore {
    /// Held in memory (the default warm-evict form).
    Memory(Vec<u8>),
    /// Spilled to a file (see [`crate::ModelTier::set_spill_dir`]).
    Spilled(PathBuf),
}

impl CheckpointStore {
    /// The checkpoint bytes, reading the spill file if necessary. A spilled
    /// file is length-validated against its frame header here; full
    /// checksum verification happens when the frame is unsealed on reload.
    fn load(&self) -> std::io::Result<std::borrow::Cow<'_, [u8]>> {
        match self {
            CheckpointStore::Memory(bytes) => Ok(std::borrow::Cow::Borrowed(bytes)),
            CheckpointStore::Spilled(path) => std::fs::read(path).map(std::borrow::Cow::Owned),
        }
    }

    /// Best-effort removal of the spill file (memory stores are a no-op).
    fn discard(&self) {
        if let CheckpointStore::Spilled(path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Everything needed to rebuild an evicted model bit-identically: the
/// checkpoint plus the deterministic-architecture inputs.
#[derive(Debug)]
struct EvictedModel {
    store: CheckpointStore,
    schema: Table,
    config: DuetConfig,
    num_rows: usize,
    label: String,
}

/// A slot's model: live, or reduced to checkpoint bytes.
#[derive(Debug)]
enum Residency {
    Resident(Arc<DuetEstimator>),
    // Boxed: the evicted payload is cold by definition, and boxing keeps the
    // enum the size of the hot Resident arm.
    Evicted(Box<EvictedModel>),
}

#[derive(Debug)]
struct VersionedModel {
    generation: u64,
    state: Residency,
}

/// Why an evicted model could not be brought back to residency.
#[derive(Debug)]
pub enum ReloadError {
    /// The spilled checkpoint file could not be read.
    Io(std::io::Error),
    /// The checkpoint bytes were rejected by the codec.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReloadError::Io(e) => write!(f, "spilled checkpoint unreadable: {e}"),
            ReloadError::Checkpoint(e) => write!(f, "checkpoint rejected on reload: {e}"),
        }
    }
}

impl std::error::Error for ReloadError {}

/// A single table's serving slot: the current estimator plus a monotonically
/// increasing generation counter bumped on every swap, updated as one unit.
#[derive(Debug)]
pub struct ModelSlot {
    inner: RwLock<VersionedModel>,
    /// Process-unique registration id: every `ModelSlot` ever constructed
    /// gets a fresh uid, so a queued request stamped with the uid it was
    /// encoded against can be rejected at dequeue if the table has since
    /// been **re-registered** (a new slot under the same dense table id).
    /// Hot-swaps and evict/reload keep the slot — and its uid — intact.
    uid: u64,
    /// Models evicted from this slot so far.
    evictions: AtomicU64,
    /// Evicted models rebuilt from their checkpoint so far.
    reloads: AtomicU64,
    /// Reload attempts that failed (unreadable spill file, corrupt or
    /// truncated checkpoint). Each failure sheds the requesting batch on the
    /// retryable overload path; the store is kept so a later attempt — after
    /// the file is repaired or a fresh model is swapped in — can still
    /// succeed. The slot degrades, it never wedges into a panic.
    reload_failures: AtomicU64,
}

impl ModelSlot {
    /// Wrap an estimator in a fresh slot (generation 0).
    pub fn new(estimator: DuetEstimator) -> Self {
        Self {
            inner: RwLock::new(VersionedModel {
                generation: 0,
                state: Residency::Resident(Arc::new(estimator)),
            }),
            uid: NEXT_SLOT_UID.fetch_add(1, Ordering::Relaxed),
            evictions: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            reload_failures: AtomicU64::new(0),
        }
    }

    /// This slot's process-unique registration id (see the field docs).
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Whether the model is currently resident (not evicted to checkpoint
    /// bytes).
    pub fn is_resident(&self) -> bool {
        matches!(self.inner.read().expect("model slot poisoned").state, Residency::Resident(_))
    }

    /// The resident model's weight footprint in bytes, or `None` while the
    /// slot is evicted — the quantity [`crate::ModelTier`] budgets.
    pub fn resident_weight_bytes(&self) -> Option<usize> {
        match &self.inner.read().expect("model slot poisoned").state {
            Residency::Resident(estimator) => Some(estimator.model().size_bytes()),
            Residency::Evicted(_) => None,
        }
    }

    /// Models evicted from this slot so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Evicted models rebuilt from their checkpoint so far.
    pub fn reloads(&self) -> u64 {
        self.reloads.load(Ordering::Relaxed)
    }

    /// Reload attempts that failed with a typed error so far (see the
    /// `reload_failures` field docs for the recovery contract).
    pub fn reload_failures(&self) -> u64 {
        self.reload_failures.load(Ordering::Relaxed)
    }

    /// The estimator currently serving this slot.
    ///
    /// Cheap (`Arc` clone under a read lock) while resident; an evicted slot
    /// is transparently reloaded first.
    ///
    /// # Panics
    ///
    /// If an evicted model cannot be reloaded (spill file unreadable). The
    /// serving hot path uses [`ModelSlot::try_current_versioned`] and sheds
    /// instead.
    pub fn current(&self) -> Arc<DuetEstimator> {
        self.current_versioned().1
    }

    /// The current `(generation, estimator)` pair, read atomically — the
    /// returned generation is exactly the one these weights were installed
    /// under. Panics like [`ModelSlot::current`] if a reload fails.
    pub fn current_versioned(&self) -> (u64, Arc<DuetEstimator>) {
        self.try_current_versioned().expect("evicted model failed to reload")
    }

    /// Fallible [`ModelSlot::current`].
    pub fn try_current(&self) -> Result<Arc<DuetEstimator>, ReloadError> {
        self.try_current_versioned().map(|(_, estimator)| estimator)
    }

    /// The current `(generation, estimator)` pair, transparently rebuilding
    /// an evicted model from its checkpoint (lazy reload).
    ///
    /// The reload is **bit-identical**: Duet's architecture is a pure
    /// function of `(schema, config)`, so rebuilding the network and
    /// restoring the checkpointed weights reproduces the evicted model's
    /// estimates exactly, under the same generation. On a resident slot this
    /// is a read-lock `Arc` clone, same as before eviction.
    pub fn try_current_versioned(&self) -> Result<(u64, Arc<DuetEstimator>), ReloadError> {
        {
            let inner = self.inner.read().expect("model slot poisoned");
            if let Residency::Resident(estimator) = &inner.state {
                return Ok((inner.generation, estimator.clone()));
            }
        }
        let mut inner = self.inner.write().expect("model slot poisoned");
        match &inner.state {
            // Another thread reloaded while we waited for the write lock.
            Residency::Resident(estimator) => Ok((inner.generation, estimator.clone())),
            Residency::Evicted(evicted) => {
                let rebuilt = evicted.store.load().map_err(ReloadError::Io).and_then(|bytes| {
                    DuetEstimator::rebuild_from_checkpoint(
                        &evicted.schema,
                        evicted.num_rows,
                        &evicted.config,
                        evicted.label.clone(),
                        &bytes,
                    )
                    .map_err(ReloadError::Checkpoint)
                });
                let estimator = match rebuilt {
                    Ok(estimator) => estimator,
                    Err(e) => {
                        // Typed failure, counted, store kept: the caller
                        // sheds this batch on the retryable overload path
                        // and the *next* request tries again — a repaired
                        // spill file or a hot-swap publish heals the slot
                        // without a restart. Never a panic, never garbage
                        // weights (the checksum frame rejects those).
                        self.reload_failures.fetch_add(1, Ordering::Relaxed);
                        return Err(e);
                    }
                };
                evicted.store.discard();
                let estimator = Arc::new(estimator);
                inner.state = Residency::Resident(estimator.clone());
                self.reloads.fetch_add(1, Ordering::Relaxed);
                Ok((inner.generation, estimator))
            }
        }
    }

    /// Evict the resident model to its checkpoint bytes, freeing its weight
    /// memory until the next request reloads it.
    ///
    /// With `spill_dir: Some(dir)` the checkpoint is written to a file under
    /// `dir` (created if missing) and only a path is kept; otherwise the
    /// bytes are held in memory (still ~4× smaller than the live model,
    /// which materializes masked weight panels per layer). Returns the
    /// resident weight bytes freed, or 0 if the slot was already evicted or
    /// a concurrent swap/reload won the race (the slot is then left as that
    /// racer installed it). The generation is **not** bumped — reload is
    /// bit-identical, so cached results keyed on it stay valid.
    pub fn evict(&self, spill_dir: Option<&Path>) -> std::io::Result<usize> {
        // Snapshot under the read lock and serialize outside any lock, so
        // concurrent readers are never blocked behind checkpoint encoding.
        let (generation, estimator) = {
            let inner = self.inner.read().expect("model slot poisoned");
            match &inner.state {
                Residency::Resident(estimator) => (inner.generation, estimator.clone()),
                Residency::Evicted(_) => return Ok(0),
            }
        };
        let mut snapshot = (*estimator).clone();
        let checkpoint = duet_core::save_weights(&mut snapshot);
        drop(snapshot);
        let weight_bytes = estimator.model().size_bytes();
        let store = match spill_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let path = dir.join(format!("slot-{}-gen-{generation}.duetckpt", self.uid));
                // Crash-safe spill: write to a temporary sibling and rename
                // into place, so a crash or full disk mid-write can never
                // leave a half-written file under the final name. Then read
                // the renamed file back and verify its integrity frame
                // BEFORE dropping the resident model — the checkpoint is
                // about to become the only copy of these weights, so a torn
                // or bit-flipped write must keep the model resident instead.
                let tmp = dir.join(format!("slot-{}-gen-{generation}.duetckpt.tmp", self.uid));
                std::fs::write(&tmp, &checkpoint)?;
                std::fs::rename(&tmp, &path)?;
                let written = std::fs::read(&path)?;
                if let Err(e) = duet_core::verify_checkpoint(&written) {
                    let _ = std::fs::remove_file(&path);
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("spilled checkpoint failed read-back verification: {e}"),
                    ));
                }
                CheckpointStore::Spilled(path)
            }
            None => CheckpointStore::Memory(checkpoint.to_vec()),
        };
        let evicted = Box::new(EvictedModel {
            store,
            schema: estimator.schema().schema_only(),
            config: estimator.model().config().clone(),
            num_rows: estimator.num_rows(),
            label: estimator.name().to_string(),
        });
        let mut inner = self.inner.write().expect("model slot poisoned");
        let still_current = inner.generation == generation
            && matches!(&inner.state, Residency::Resident(current) if Arc::ptr_eq(current, &estimator));
        if !still_current {
            // A swap or reload landed in between; keep what it installed.
            evicted.store.discard();
            return Ok(0);
        }
        inner.state = Residency::Evicted(evicted);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        Ok(weight_bytes)
    }

    /// The swap generation: 0 for a freshly registered model, +1 per swap.
    pub fn generation(&self) -> u64 {
        self.inner.read().expect("model slot poisoned").generation
    }

    /// Atomically replace the estimator (zero-downtime model refresh).
    ///
    /// The replacement must serve the **same id space** (column count and
    /// identical per-column dictionaries, value for value): requests already
    /// encoded against the old model may execute on the new one, which is
    /// only sound when every value id still means the same literal. A
    /// mismatch is rejected and the slot is left untouched; register a new
    /// slot to serve a re-schematized table. The full dictionary comparison
    /// is O(total distinct values), which is fine at swap frequency.
    ///
    /// In-flight requests holding the previous `Arc` are unaffected; the
    /// dictionary comparison runs against a snapshot taken under the read
    /// lock, so concurrent readers are never blocked behind it (the id space
    /// is invariant across successful swaps, which keeps the pre-checked
    /// compatibility valid even if another same-space swap lands in
    /// between). Only the pointer/generation update takes the write lock.
    pub fn swap(&self, estimator: DuetEstimator) -> Result<(), SwapError> {
        // Snapshot a comparable schema without forcing a reload: an evicted
        // slot keeps its schema alongside the checkpoint, so a swap can land
        // on it directly — this is also the heal path for a slot whose
        // checkpoint has gone bad (reloads fail typed; a publish installs a
        // fresh resident model and retires the broken store).
        let old_schema = {
            let inner = self.inner.read().expect("model slot poisoned");
            match &inner.state {
                Residency::Resident(est) => est.schema().schema_only(),
                Residency::Evicted(evicted) => evicted.schema.schema_only(),
            }
        };
        let (old, new) = (&old_schema, estimator.schema());
        let compatible = old.num_columns() == new.num_columns()
            && (0..old.num_columns()).all(|c| {
                let (oc, nc) = (old.column(c), new.column(c));
                oc.ndv() == nc.ndv()
                    && (0..oc.ndv() as u32).all(|id| oc.value_of_id(id) == nc.value_of_id(id))
            });
        if !compatible {
            return Err(SwapError::IncompatibleSchema {
                expected_columns: old.num_columns(),
                found_columns: new.num_columns(),
            });
        }
        let mut inner = self.inner.write().expect("model slot poisoned");
        if let Residency::Evicted(evicted) = &inner.state {
            // The swap replaces the evicted model outright; drop its spill
            // file rather than orphaning it on disk.
            evicted.store.discard();
        }
        inner.generation += 1;
        inner.state = Residency::Resident(Arc::new(estimator));
        Ok(())
    }

    /// Hot-swap from a [`duet_core::save_weights`] checkpoint.
    ///
    /// While resident, the current estimator provides the architecture: its
    /// clone receives the checkpointed weights (frame- and shape-checked by
    /// the codec), then replaces the original atomically. While evicted, the
    /// architecture is rebuilt from the slot's retained `(schema, config)` —
    /// the checkpoint is loaded into a fresh network without ever touching
    /// the (possibly corrupt) evicted store, which makes this the heal path
    /// for a slot whose spilled checkpoint has gone bad. On error the slot
    /// is left untouched.
    pub fn hot_swap_checkpoint(&self, checkpoint: &[u8]) -> Result<(), CheckpointError> {
        // Snapshot the architecture source under the read lock, then do the
        // (comparatively expensive) decode outside it.
        enum Arch {
            Live(Arc<DuetEstimator>),
            Rebuild { schema: Table, config: DuetConfig, num_rows: usize, label: String },
        }
        let arch = {
            let inner = self.inner.read().expect("model slot poisoned");
            match &inner.state {
                Residency::Resident(est) => Arch::Live(est.clone()),
                Residency::Evicted(evicted) => Arch::Rebuild {
                    schema: evicted.schema.schema_only(),
                    config: evicted.config.clone(),
                    num_rows: evicted.num_rows,
                    label: evicted.label.clone(),
                },
            }
        };
        let fresh = match arch {
            Arch::Live(current) => {
                let mut fresh = (*current).clone();
                load_weights(&mut fresh, checkpoint)?;
                fresh
            }
            Arch::Rebuild { schema, config, num_rows, label } => {
                DuetEstimator::rebuild_from_checkpoint(
                    &schema, num_rows, &config, label, checkpoint,
                )?
            }
        };
        self.swap(fresh).expect("a model rebuilt from the slot's schema cannot change schema");
        Ok(())
    }
}

/// Why a registry-level swap failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwapError {
    /// No model is registered under the given table name.
    UnknownTable(String),
    /// The checkpoint was rejected (bad magic, truncation, shape mismatch).
    Checkpoint(CheckpointError),
    /// The replacement model serves a different schema than the current one.
    IncompatibleSchema {
        /// Column count of the model currently serving the slot.
        expected_columns: usize,
        /// Column count (or differing-dictionary marker) of the replacement.
        found_columns: usize,
    },
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::UnknownTable(t) => write!(f, "no model registered for table {t:?}"),
            SwapError::Checkpoint(e) => write!(f, "checkpoint rejected: {e}"),
            SwapError::IncompatibleSchema { expected_columns, found_columns } => write!(
                f,
                "replacement model serves a different schema \
                 ({found_columns} columns or differing dictionaries vs {expected_columns}); \
                 register a new slot instead of swapping"
            ),
        }
    }
}

impl std::error::Error for SwapError {}

impl From<CheckpointError> for SwapError {
    fn from(e: CheckpointError) -> Self {
        SwapError::Checkpoint(e)
    }
}

/// A registered slot plus the dense id the serving router addresses it by.
#[derive(Debug)]
struct RegisteredSlot {
    id: u32,
    slot: Arc<ModelSlot>,
}

/// A collection of [`ModelSlot`]s keyed by table name.
///
/// Besides the name→slot map, the registry hands every table a **dense,
/// stable `u32` id** at first registration (0, 1, 2, … in registration
/// order; re-registering a name reuses its id). The serving layer uses the
/// id to index the worker-shared table directory and each worker's
/// per-table workspace pool without hashing the name on the hot path.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    slots: RwLock<HashMap<String, RegisteredSlot>>,
    /// Next dense id to hand out. A dedicated monotonic counter — not
    /// `slots.len()` — so the density invariant (`n`-th distinct name gets
    /// id `n`) holds structurally rather than by the accident of the map
    /// never shrinking; id reuse would silently alias two tables in the
    /// server's id-indexed directory.
    next_id: AtomicU32,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) the model serving `table`, returning its slot.
    ///
    /// Replacing through `register` creates a *new* slot (generation resets)
    /// but keeps the table's dense id; use [`ModelRegistry::hot_swap`] to
    /// refresh weights in place.
    pub fn register(&self, table: impl Into<String>, estimator: DuetEstimator) -> Arc<ModelSlot> {
        self.register_indexed(table, estimator).1
    }

    /// [`ModelRegistry::register`], also returning the table's dense id.
    ///
    /// Ids are assigned in registration order (the `n`-th distinct name gets
    /// id `n`), so a caller serializing registrations can mirror them in an
    /// id-indexed directory.
    pub fn register_indexed(
        &self,
        table: impl Into<String>,
        estimator: DuetEstimator,
    ) -> (u32, Arc<ModelSlot>) {
        let table = table.into();
        let slot = Arc::new(ModelSlot::new(estimator));
        let mut slots = self.slots.write().expect("registry poisoned");
        let id = match slots.get(&table) {
            Some(existing) => existing.id,
            // The write lock serializes id assignment; the counter advances
            // only for distinct names, so ids stay dense and are never
            // reused even if the map were ever to shrink.
            None => self.next_id.fetch_add(1, Ordering::Relaxed),
        };
        debug_assert!(id < self.next_id.load(Ordering::Relaxed), "ids precede the counter");
        slots.insert(table, RegisteredSlot { id, slot: slot.clone() });
        (id, slot)
    }

    /// The slot serving `table`, if any.
    pub fn slot(&self, table: &str) -> Option<Arc<ModelSlot>> {
        self.slots.read().expect("registry poisoned").get(table).map(|r| r.slot.clone())
    }

    /// The dense id of `table`, if registered.
    pub fn table_id(&self, table: &str) -> Option<u32> {
        self.slots.read().expect("registry poisoned").get(table).map(|r| r.id)
    }

    /// Names of all registered tables (unordered).
    pub fn tables(&self) -> Vec<String> {
        self.slots.read().expect("registry poisoned").keys().cloned().collect()
    }

    /// Hot-swap `table`'s weights from a checkpoint (see
    /// [`ModelSlot::hot_swap_checkpoint`]).
    pub fn hot_swap(&self, table: &str, checkpoint: &[u8]) -> Result<(), SwapError> {
        let slot = self.slot(table).ok_or_else(|| SwapError::UnknownTable(table.to_string()))?;
        slot.hot_swap_checkpoint(checkpoint)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_core::{save_weights, DuetConfig};
    use duet_data::datasets::census_like;
    use duet_query::WorkloadSpec;

    fn trained(seed: u64) -> (duet_data::Table, DuetEstimator) {
        let table = census_like(300, 21);
        let cfg = DuetConfig::small().with_epochs(1);
        (table.clone(), DuetEstimator::train_data_only(&table, &cfg, seed))
    }

    #[test]
    fn register_and_lookup() {
        let registry = ModelRegistry::new();
        let (_, est) = trained(1);
        registry.register("census", est);
        assert!(registry.slot("census").is_some());
        assert!(registry.slot("missing").is_none());
        assert_eq!(registry.tables(), vec!["census".to_string()]);
    }

    #[test]
    fn table_ids_are_dense_and_stable_across_replacement() {
        let registry = ModelRegistry::new();
        let (_, est) = trained(1);
        let (id_a, _) = registry.register_indexed("alpha", est.clone());
        let (id_b, _) = registry.register_indexed("beta", est.clone());
        assert_eq!((id_a, id_b), (0, 1), "ids follow registration order");
        assert_eq!(registry.table_id("alpha"), Some(0));
        assert_eq!(registry.table_id("missing"), None);

        // Re-registering a name replaces the slot but keeps the id.
        let old_slot = registry.slot("alpha").unwrap();
        let (id_a2, new_slot) = registry.register_indexed("alpha", est);
        assert_eq!(id_a2, 0);
        assert!(!Arc::ptr_eq(&old_slot, &new_slot), "replacement creates a fresh slot");
        assert_eq!(registry.table_id("beta"), Some(1));
    }

    #[test]
    fn hot_swap_changes_estimates_and_generation() {
        let (table, est_a) = trained(1);
        let (_, mut est_b) = trained(2);
        let queries = WorkloadSpec::random(&table, 10, 5).generate(&table);
        let expect_b = est_b.estimate_batch(&queries);

        let registry = ModelRegistry::new();
        let slot = registry.register("census", est_a);
        assert_eq!(slot.generation(), 0);
        let before = slot.current().estimate_batch(&queries);
        assert_ne!(before, expect_b, "differently seeded models should disagree");

        let checkpoint = save_weights(&mut est_b);
        registry.hot_swap("census", &checkpoint).expect("swap should succeed");
        assert_eq!(slot.generation(), 1);
        assert_eq!(slot.current().estimate_batch(&queries), expect_b);
    }

    #[test]
    fn in_flight_arc_survives_swap() {
        let (_, est_a) = trained(1);
        let (_, est_b) = trained(2);
        let slot = ModelSlot::new(est_a);
        let held = slot.current();
        slot.swap(est_b).expect("same-schema swap should succeed");
        // The old Arc is still alive and usable after the swap.
        assert!(held.num_rows() > 0);
        assert_eq!(slot.generation(), 1);
    }

    #[test]
    fn swapping_a_different_schema_is_rejected() {
        use duet_core::{DuetConfig, DuetModel};
        use duet_data::{TableBuilder, Value};

        let (_, est) = trained(1);
        let slot = ModelSlot::new(est);

        let mut b = TableBuilder::new("tiny", vec!["a".into(), "b".into()]);
        for i in 0..20 {
            b.push_row(vec![Value::Int(i % 4), Value::Int(i % 3)]);
        }
        let tiny = b.build();
        let foreign_model = DuetModel::new(&tiny, &DuetConfig::small(), 1);
        let foreign = DuetEstimator::from_model(foreign_model, &tiny, "foreign");

        let err = slot.swap(foreign).unwrap_err();
        assert!(matches!(err, SwapError::IncompatibleSchema { .. }));
        assert_eq!(slot.generation(), 0, "rejected swap must not bump the generation");
    }

    #[test]
    fn evict_and_reload_is_bit_identical() {
        let (table, est) = trained(9);
        let queries = WorkloadSpec::random(&table, 12, 3).generate(&table);
        let slot = ModelSlot::new(est);
        let before = slot.current().estimate_batch(&queries);
        let bytes = slot.resident_weight_bytes().expect("fresh slot is resident");
        assert!(bytes > 0);

        let freed = slot.evict(None).expect("in-memory eviction cannot fail");
        assert_eq!(freed, bytes);
        assert!(!slot.is_resident());
        assert_eq!(slot.resident_weight_bytes(), None);
        assert_eq!(slot.evict(None).expect("double evict is a no-op"), 0);
        assert_eq!(slot.generation(), 0, "evict must not bump the generation");

        // The next access reloads transparently and bit-identically.
        let after = slot.current().estimate_batch(&queries);
        assert_eq!(after, before, "reload must reproduce the evicted model exactly");
        assert!(slot.is_resident());
        assert_eq!((slot.evictions(), slot.reloads()), (1, 1));
        assert_eq!(slot.generation(), 0);
    }

    #[test]
    fn evicted_slot_still_hot_swaps() {
        let (table, est_a) = trained(1);
        let (_, mut est_b) = trained(2);
        let queries = WorkloadSpec::random(&table, 8, 4).generate(&table);
        let expect_b = est_b.estimate_batch(&queries);

        let slot = ModelSlot::new(est_a);
        slot.evict(None).unwrap();
        let checkpoint = save_weights(&mut est_b);
        slot.hot_swap_checkpoint(&checkpoint).expect("swap through an evicted slot");
        assert_eq!(slot.generation(), 1);
        assert_eq!(slot.current().estimate_batch(&queries), expect_b);
    }

    #[test]
    fn re_registration_issues_a_fresh_uid_but_swaps_keep_it() {
        let registry = ModelRegistry::new();
        let (_, est) = trained(1);
        let (_, mut other) = trained(2);
        let first = registry.register("census", est.clone());
        let uid = first.uid();
        assert!(uid > 0);

        let checkpoint = save_weights(&mut other);
        first.hot_swap_checkpoint(&checkpoint).unwrap();
        assert_eq!(first.uid(), uid, "hot-swap keeps the registration");
        first.evict(None).unwrap();
        assert_eq!(first.uid(), uid, "evict/reload keeps the registration");

        let second = registry.register("census", est);
        assert_ne!(second.uid(), uid, "re-registering mints a new slot uid");
    }

    #[test]
    fn ids_come_from_a_monotonic_counter() {
        let registry = ModelRegistry::new();
        let (_, est) = trained(1);
        let (a, _) = registry.register_indexed("a", est.clone());
        let (b, _) = registry.register_indexed("b", est.clone());
        // Replacements never consume an id.
        let (a2, _) = registry.register_indexed("a", est.clone());
        let (b2, _) = registry.register_indexed("b", est.clone());
        let (c, _) = registry.register_indexed("c", est);
        assert_eq!((a, b, a2, b2, c), (0, 1, 0, 1, 2));
    }

    #[test]
    fn bad_checkpoint_is_rejected_and_slot_untouched() {
        let (table, est) = trained(1);
        let queries = WorkloadSpec::random(&table, 5, 9).generate(&table);
        let registry = ModelRegistry::new();
        let slot = registry.register("census", est);
        let before = slot.current().estimate_batch(&queries);

        let err = registry.hot_swap("census", b"not a checkpoint").unwrap_err();
        assert!(matches!(err, SwapError::Checkpoint(_)));
        assert_eq!(slot.generation(), 0);
        assert_eq!(slot.current().estimate_batch(&queries), before);

        let err = registry.hot_swap("missing", b"x").unwrap_err();
        assert!(matches!(err, SwapError::UnknownTable(_)));
    }
}
