//! The model registry: named, atomically hot-swappable estimator slots.
//!
//! Each table is served from a [`ModelSlot`] holding an `Arc<DuetEstimator>`.
//! Readers grab the `Arc` once per batch, so a swap never blocks or corrupts
//! in-flight work: requests already holding the old `Arc` finish against the
//! old weights, requests arriving afterwards see the new ones.
//!
//! The generation counter and the estimator live under one lock, so
//! [`ModelSlot::current_versioned`] always returns a matching
//! `(generation, weights)` pair. `duet-serve` keys cache entries by
//! generation; the batch worker labels every insert with the generation it
//! actually resolved, so a cached value is always one that *those* weights
//! computed — even for requests in flight across a swap.

use duet_core::{load_weights, CheckpointError, DuetEstimator};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

#[derive(Debug)]
struct VersionedModel {
    generation: u64,
    estimator: Arc<DuetEstimator>,
}

/// A single table's serving slot: the current estimator plus a monotonically
/// increasing generation counter bumped on every swap, updated as one unit.
#[derive(Debug)]
pub struct ModelSlot {
    inner: RwLock<VersionedModel>,
}

impl ModelSlot {
    /// Wrap an estimator in a fresh slot (generation 0).
    pub fn new(estimator: DuetEstimator) -> Self {
        Self {
            inner: RwLock::new(VersionedModel { generation: 0, estimator: Arc::new(estimator) }),
        }
    }

    /// The estimator currently serving this slot.
    ///
    /// Cheap (`Arc` clone under a read lock); callers hold the returned `Arc`
    /// for as long as they need stable weights — typically one batch.
    pub fn current(&self) -> Arc<DuetEstimator> {
        self.inner.read().expect("model slot poisoned").estimator.clone()
    }

    /// The current `(generation, estimator)` pair, read atomically — the
    /// returned generation is exactly the one these weights were installed
    /// under.
    pub fn current_versioned(&self) -> (u64, Arc<DuetEstimator>) {
        let inner = self.inner.read().expect("model slot poisoned");
        (inner.generation, inner.estimator.clone())
    }

    /// The swap generation: 0 for a freshly registered model, +1 per swap.
    pub fn generation(&self) -> u64 {
        self.inner.read().expect("model slot poisoned").generation
    }

    /// Atomically replace the estimator (zero-downtime model refresh).
    ///
    /// The replacement must serve the **same id space** (column count and
    /// identical per-column dictionaries, value for value): requests already
    /// encoded against the old model may execute on the new one, which is
    /// only sound when every value id still means the same literal. A
    /// mismatch is rejected and the slot is left untouched; register a new
    /// slot to serve a re-schematized table. The full dictionary comparison
    /// is O(total distinct values), which is fine at swap frequency.
    ///
    /// In-flight requests holding the previous `Arc` are unaffected; the
    /// dictionary comparison runs against a snapshot taken under the read
    /// lock, so concurrent readers are never blocked behind it (the id space
    /// is invariant across successful swaps, which keeps the pre-checked
    /// compatibility valid even if another same-space swap lands in
    /// between). Only the pointer/generation update takes the write lock.
    pub fn swap(&self, estimator: DuetEstimator) -> Result<(), SwapError> {
        let snapshot = self.current();
        let (old, new) = (snapshot.schema(), estimator.schema());
        let compatible = old.num_columns() == new.num_columns()
            && (0..old.num_columns()).all(|c| {
                let (oc, nc) = (old.column(c), new.column(c));
                oc.ndv() == nc.ndv()
                    && (0..oc.ndv() as u32).all(|id| oc.value_of_id(id) == nc.value_of_id(id))
            });
        if !compatible {
            return Err(SwapError::IncompatibleSchema {
                expected_columns: old.num_columns(),
                found_columns: new.num_columns(),
            });
        }
        let mut inner = self.inner.write().expect("model slot poisoned");
        inner.generation += 1;
        inner.estimator = Arc::new(estimator);
        Ok(())
    }

    /// Hot-swap from a [`duet_core::save_weights`] checkpoint.
    ///
    /// The current estimator provides the architecture: its clone receives
    /// the checkpointed weights (shape-checked by the codec), then replaces
    /// the original atomically. On error the slot is left untouched.
    pub fn hot_swap_checkpoint(&self, checkpoint: &[u8]) -> Result<(), CheckpointError> {
        let mut fresh = (*self.current()).clone();
        load_weights(&mut fresh, checkpoint)?;
        self.swap(fresh).expect("a clone of the current model cannot change schema");
        Ok(())
    }
}

/// Why a registry-level swap failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwapError {
    /// No model is registered under the given table name.
    UnknownTable(String),
    /// The checkpoint was rejected (bad magic, truncation, shape mismatch).
    Checkpoint(CheckpointError),
    /// The replacement model serves a different schema than the current one.
    IncompatibleSchema {
        /// Column count of the model currently serving the slot.
        expected_columns: usize,
        /// Column count (or differing-dictionary marker) of the replacement.
        found_columns: usize,
    },
}

impl std::fmt::Display for SwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwapError::UnknownTable(t) => write!(f, "no model registered for table {t:?}"),
            SwapError::Checkpoint(e) => write!(f, "checkpoint rejected: {e}"),
            SwapError::IncompatibleSchema { expected_columns, found_columns } => write!(
                f,
                "replacement model serves a different schema \
                 ({found_columns} columns or differing dictionaries vs {expected_columns}); \
                 register a new slot instead of swapping"
            ),
        }
    }
}

impl std::error::Error for SwapError {}

impl From<CheckpointError> for SwapError {
    fn from(e: CheckpointError) -> Self {
        SwapError::Checkpoint(e)
    }
}

/// A registered slot plus the dense id the serving router addresses it by.
#[derive(Debug)]
struct RegisteredSlot {
    id: u32,
    slot: Arc<ModelSlot>,
}

/// A collection of [`ModelSlot`]s keyed by table name.
///
/// Besides the name→slot map, the registry hands every table a **dense,
/// stable `u32` id** at first registration (0, 1, 2, … in registration
/// order; re-registering a name reuses its id). The serving layer uses the
/// id to index the worker-shared table directory and each worker's
/// per-table workspace pool without hashing the name on the hot path.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    slots: RwLock<HashMap<String, RegisteredSlot>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) the model serving `table`, returning its slot.
    ///
    /// Replacing through `register` creates a *new* slot (generation resets)
    /// but keeps the table's dense id; use [`ModelRegistry::hot_swap`] to
    /// refresh weights in place.
    pub fn register(&self, table: impl Into<String>, estimator: DuetEstimator) -> Arc<ModelSlot> {
        self.register_indexed(table, estimator).1
    }

    /// [`ModelRegistry::register`], also returning the table's dense id.
    ///
    /// Ids are assigned in registration order (the `n`-th distinct name gets
    /// id `n`), so a caller serializing registrations can mirror them in an
    /// id-indexed directory.
    pub fn register_indexed(
        &self,
        table: impl Into<String>,
        estimator: DuetEstimator,
    ) -> (u32, Arc<ModelSlot>) {
        let table = table.into();
        let slot = Arc::new(ModelSlot::new(estimator));
        let mut slots = self.slots.write().expect("registry poisoned");
        let id = match slots.get(&table) {
            Some(existing) => existing.id,
            None => slots.len() as u32,
        };
        slots.insert(table, RegisteredSlot { id, slot: slot.clone() });
        (id, slot)
    }

    /// The slot serving `table`, if any.
    pub fn slot(&self, table: &str) -> Option<Arc<ModelSlot>> {
        self.slots.read().expect("registry poisoned").get(table).map(|r| r.slot.clone())
    }

    /// The dense id of `table`, if registered.
    pub fn table_id(&self, table: &str) -> Option<u32> {
        self.slots.read().expect("registry poisoned").get(table).map(|r| r.id)
    }

    /// Names of all registered tables (unordered).
    pub fn tables(&self) -> Vec<String> {
        self.slots.read().expect("registry poisoned").keys().cloned().collect()
    }

    /// Hot-swap `table`'s weights from a checkpoint (see
    /// [`ModelSlot::hot_swap_checkpoint`]).
    pub fn hot_swap(&self, table: &str, checkpoint: &[u8]) -> Result<(), SwapError> {
        let slot = self.slot(table).ok_or_else(|| SwapError::UnknownTable(table.to_string()))?;
        slot.hot_swap_checkpoint(checkpoint)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_core::{save_weights, DuetConfig};
    use duet_data::datasets::census_like;
    use duet_query::WorkloadSpec;

    fn trained(seed: u64) -> (duet_data::Table, DuetEstimator) {
        let table = census_like(300, 21);
        let cfg = DuetConfig::small().with_epochs(1);
        (table.clone(), DuetEstimator::train_data_only(&table, &cfg, seed))
    }

    #[test]
    fn register_and_lookup() {
        let registry = ModelRegistry::new();
        let (_, est) = trained(1);
        registry.register("census", est);
        assert!(registry.slot("census").is_some());
        assert!(registry.slot("missing").is_none());
        assert_eq!(registry.tables(), vec!["census".to_string()]);
    }

    #[test]
    fn table_ids_are_dense_and_stable_across_replacement() {
        let registry = ModelRegistry::new();
        let (_, est) = trained(1);
        let (id_a, _) = registry.register_indexed("alpha", est.clone());
        let (id_b, _) = registry.register_indexed("beta", est.clone());
        assert_eq!((id_a, id_b), (0, 1), "ids follow registration order");
        assert_eq!(registry.table_id("alpha"), Some(0));
        assert_eq!(registry.table_id("missing"), None);

        // Re-registering a name replaces the slot but keeps the id.
        let old_slot = registry.slot("alpha").unwrap();
        let (id_a2, new_slot) = registry.register_indexed("alpha", est);
        assert_eq!(id_a2, 0);
        assert!(!Arc::ptr_eq(&old_slot, &new_slot), "replacement creates a fresh slot");
        assert_eq!(registry.table_id("beta"), Some(1));
    }

    #[test]
    fn hot_swap_changes_estimates_and_generation() {
        let (table, est_a) = trained(1);
        let (_, mut est_b) = trained(2);
        let queries = WorkloadSpec::random(&table, 10, 5).generate(&table);
        let expect_b = est_b.estimate_batch(&queries);

        let registry = ModelRegistry::new();
        let slot = registry.register("census", est_a);
        assert_eq!(slot.generation(), 0);
        let before = slot.current().estimate_batch(&queries);
        assert_ne!(before, expect_b, "differently seeded models should disagree");

        let checkpoint = save_weights(&mut est_b);
        registry.hot_swap("census", &checkpoint).expect("swap should succeed");
        assert_eq!(slot.generation(), 1);
        assert_eq!(slot.current().estimate_batch(&queries), expect_b);
    }

    #[test]
    fn in_flight_arc_survives_swap() {
        let (_, est_a) = trained(1);
        let (_, est_b) = trained(2);
        let slot = ModelSlot::new(est_a);
        let held = slot.current();
        slot.swap(est_b).expect("same-schema swap should succeed");
        // The old Arc is still alive and usable after the swap.
        assert!(held.num_rows() > 0);
        assert_eq!(slot.generation(), 1);
    }

    #[test]
    fn swapping_a_different_schema_is_rejected() {
        use duet_core::{DuetConfig, DuetModel};
        use duet_data::{TableBuilder, Value};

        let (_, est) = trained(1);
        let slot = ModelSlot::new(est);

        let mut b = TableBuilder::new("tiny", vec!["a".into(), "b".into()]);
        for i in 0..20 {
            b.push_row(vec![Value::Int(i % 4), Value::Int(i % 3)]);
        }
        let tiny = b.build();
        let foreign_model = DuetModel::new(&tiny, &DuetConfig::small(), 1);
        let foreign = DuetEstimator::from_model(foreign_model, &tiny, "foreign");

        let err = slot.swap(foreign).unwrap_err();
        assert!(matches!(err, SwapError::IncompatibleSchema { .. }));
        assert_eq!(slot.generation(), 0, "rejected swap must not bump the generation");
    }

    #[test]
    fn bad_checkpoint_is_rejected_and_slot_untouched() {
        let (table, est) = trained(1);
        let queries = WorkloadSpec::random(&table, 5, 9).generate(&table);
        let registry = ModelRegistry::new();
        let slot = registry.register("census", est);
        let before = slot.current().estimate_batch(&queries);

        let err = registry.hot_swap("census", b"not a checkpoint").unwrap_err();
        assert!(matches!(err, SwapError::Checkpoint(_)));
        assert_eq!(slot.generation(), 0);
        assert_eq!(slot.current().estimate_batch(&queries), before);

        let err = registry.hot_swap("missing", b"x").unwrap_err();
        assert!(matches!(err, SwapError::UnknownTable(_)));
    }
}
