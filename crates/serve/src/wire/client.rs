//! A minimal blocking client for the wire protocol: connect, resolve table
//! names to ids, pipeline requests, and drain responses.
//!
//! [`WireClient`] buffers encoded request frames locally; [`flush`] pushes
//! them down the socket in one write burst and [`recv`] blocks for the next
//! response frame (responses may arrive in any order — match them up by
//! request id). This is deliberately the simplest correct counterpart to
//! the server: one thread, one socket, explicit pipelining.
//!
//! [`flush`]: WireClient::flush
//! [`recv`]: WireClient::recv
//!
//! ```no_run
//! use duet_serve::wire::WireClient;
//!
//! let mut client = WireClient::connect("127.0.0.1:7878")?;
//! let table = client.resolve("census")?.expect("table registered");
//! for i in 0..100 {
//!     client.submit_request(i, table.id, 0, &[vec![]], &[(0, 9)]);
//! }
//! client.flush()?;
//! for _ in 0..100 {
//!     let response = client.recv()?;
//!     println!("{} -> {}", response.request_id, response.value);
//! }
//! # std::io::Result::Ok(())
//! ```

use crate::wire::frame::{
    self, FrameView, ResponseFrame, Status, DEFAULT_MAX_FRAME_LEN, PREAMBLE_LEN,
};
use duet_core::IdPredicate;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A resolved table: its dense wire id and per-column domain sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSpec {
    /// Dense id to put in request frames.
    pub id: u32,
    /// Number of distinct values per column (in schema order).
    pub ndvs: Vec<u32>,
}

/// Server-to-client frames, decoded into owned values so the receive buffer
/// can be recycled immediately.
enum ServerFrame {
    Response(ResponseFrame),
    TableInfo {
        request_id: u64,
        status: Status,
        table_id: u32,
        ndvs: Vec<u32>,
    },
    /// Client-direction frames (requests, table queries) a server never
    /// sends; skipped silently for forward compatibility.
    Other,
}

/// A blocking, pipelined wire-protocol client over one TCP connection.
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
    /// Encoded-but-unsent request frames.
    send_buf: Vec<u8>,
    /// Raw received bytes not yet decoded into a full frame.
    recv_buf: Vec<u8>,
    /// Decode cursor into `recv_buf`.
    recv_pos: usize,
    /// Correlation ids for [`WireClient::resolve`] table queries.
    next_ticket: u64,
}

impl WireClient {
    /// Connect to a wire listener and send the protocol preamble.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut preamble = Vec::with_capacity(PREAMBLE_LEN);
        frame::encode_preamble(&mut preamble);
        stream.write_all(&preamble)?;
        Ok(Self {
            stream,
            send_buf: Vec::with_capacity(4096),
            recv_buf: Vec::with_capacity(4096),
            recv_pos: 0,
            next_ticket: u64::MAX, // counts down, away from request-id space
        })
    }

    /// Ask the server for `table`'s id and column domains. Blocks; flushes
    /// any buffered requests first. Returns `None` if the server does not
    /// know the table.
    pub fn resolve(&mut self, table: &str) -> io::Result<Option<TableSpec>> {
        let ticket = self.next_ticket;
        self.next_ticket -= 1;
        frame::encode_table_query(&mut self.send_buf, ticket, table);
        self.flush()?;
        loop {
            match self.next_server_frame()? {
                ServerFrame::TableInfo { request_id, status, table_id, ndvs }
                    if request_id == ticket =>
                {
                    return Ok((status == Status::Ok).then_some(TableSpec { id: table_id, ndvs }));
                }
                // Responses to earlier pipelined requests (or stale table
                // queries) are dropped here: `resolve` is a setup call, not
                // something to interleave with a live pipeline.
                _ => {}
            }
        }
    }

    /// Buffer one request frame (does not touch the socket). `deadline_us`
    /// of 0 defers to the server's configured deadline budget.
    pub fn submit_request(
        &mut self,
        request_id: u64,
        table_id: u32,
        deadline_us: u32,
        preds: &[Vec<IdPredicate>],
        intervals: &[(u32, u32)],
    ) {
        frame::encode_request(
            &mut self.send_buf,
            request_id,
            table_id,
            deadline_us,
            preds,
            intervals,
        );
    }

    /// Write every buffered frame to the socket.
    pub fn flush(&mut self) -> io::Result<()> {
        if !self.send_buf.is_empty() {
            self.stream.write_all(&self.send_buf)?;
            self.send_buf.clear();
        }
        Ok(())
    }

    /// Block until the next response frame arrives. Other server frames
    /// (e.g. table-info answers to stale resolves) are skipped.
    pub fn recv(&mut self) -> io::Result<ResponseFrame> {
        loop {
            if let ServerFrame::Response(response) = self.next_server_frame()? {
                return Ok(response);
            }
        }
    }

    /// Decode the next frame out of the receive buffer, reading from the
    /// socket as needed.
    fn next_server_frame(&mut self) -> io::Result<ServerFrame> {
        loop {
            let decoded = frame::next_frame(&self.recv_buf[self.recv_pos..], DEFAULT_MAX_FRAME_LEN)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            if let Some((view, consumed)) = decoded {
                // Resolve the borrowed view into an owned frame before
                // advancing the cursor.
                let owned = match view {
                    FrameView::Response(response) => ServerFrame::Response(response),
                    FrameView::TableInfo(info) => {
                        let mut ndvs = Vec::new();
                        info.read_ndvs_into(&mut ndvs);
                        ServerFrame::TableInfo {
                            request_id: info.request_id,
                            status: info.status,
                            table_id: info.table_id,
                            ndvs,
                        }
                    }
                    FrameView::Request(_)
                    | FrameView::TableQuery(_)
                    | FrameView::Ingest(_)
                    | FrameView::Feedback(_) => ServerFrame::Other,
                };
                self.recv_pos += consumed;
                if self.recv_pos == self.recv_buf.len() {
                    self.recv_buf.clear();
                    self.recv_pos = 0;
                }
                if let ServerFrame::Other = owned {
                    continue;
                }
                return Ok(owned);
            }
            // Need more bytes: compact the consumed prefix, then block on
            // the socket.
            if self.recv_pos > 0 {
                self.recv_buf.copy_within(self.recv_pos.., 0);
                let remaining = self.recv_buf.len() - self.recv_pos;
                self.recv_buf.truncate(remaining);
                self.recv_pos = 0;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed by server",
                ));
            }
            self.recv_buf.extend_from_slice(&chunk[..n]);
        }
    }
}
