//! A minimal blocking client for the wire protocol: connect, resolve table
//! names to ids, pipeline requests, and drain responses.
//!
//! [`WireClient`] buffers encoded request frames locally; [`flush`] pushes
//! them down the socket in one write burst and [`recv`] blocks for the next
//! response frame (responses may arrive in any order — match them up by
//! request id). This is deliberately the simplest correct counterpart to
//! the server: one thread, one socket, explicit pipelining.
//!
//! [`flush`]: WireClient::flush
//! [`recv`]: WireClient::recv
//!
//! ```no_run
//! use duet_serve::wire::WireClient;
//!
//! let mut client = WireClient::connect("127.0.0.1:7878")?;
//! let table = client.resolve("census")?.expect("table registered");
//! for i in 0..100 {
//!     client.submit_request(i, table.id, 0, &[vec![]], &[(0, 9)]);
//! }
//! client.flush()?;
//! for _ in 0..100 {
//!     let response = client.recv()?;
//!     println!("{} -> {}", response.request_id, response.value);
//! }
//! # std::io::Result::Ok(())
//! ```

use crate::wire::frame::{
    self, FrameView, ResponseFrame, Status, DEFAULT_MAX_FRAME_LEN, PREAMBLE_LEN,
};
use duet_core::IdPredicate;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Backoff policy for [`WireClient::request_with_retry`]: jittered
/// exponential delays between re-submissions of a request the server
/// answered `Overloaded`.
///
/// The jitter RNG is seeded (`seed ^ request_id`), so a given request's
/// backoff schedule is reproducible — load tests and the fault-injection
/// suite can replay identical retry timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// First backoff delay; doubles every subsequent retry.
    pub base: Duration,
    /// Upper bound on any single backoff delay.
    pub cap: Duration,
    /// Total wall-clock budget across all attempts; once an attempt (plus
    /// its backoff sleep) would exceed it, the last `Overloaded` response
    /// is returned as-is instead of retrying further.
    pub deadline: Duration,
    /// Seed for the jitter RNG.
    pub seed: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(100),
            deadline: Duration::from_secs(1),
            seed: 0,
        }
    }
}

/// A resolved table: its dense wire id and per-column domain sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSpec {
    /// Dense id to put in request frames.
    pub id: u32,
    /// Number of distinct values per column (in schema order).
    pub ndvs: Vec<u32>,
}

/// Server-to-client frames, decoded into owned values so the receive buffer
/// can be recycled immediately.
enum ServerFrame {
    Response(ResponseFrame),
    TableInfo {
        request_id: u64,
        status: Status,
        table_id: u32,
        ndvs: Vec<u32>,
    },
    /// Client-direction frames (requests, table queries) a server never
    /// sends; skipped silently for forward compatibility.
    Other,
}

/// A blocking, pipelined wire-protocol client over one TCP connection.
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
    /// Encoded-but-unsent request frames.
    send_buf: Vec<u8>,
    /// Raw received bytes not yet decoded into a full frame.
    recv_buf: Vec<u8>,
    /// Decode cursor into `recv_buf`.
    recv_pos: usize,
    /// Correlation ids for [`WireClient::resolve`] table queries.
    next_ticket: u64,
    /// Remembered peer address; `Some` enables automatic reconnect
    /// ([`WireClient::enable_reconnect`]).
    peer: Option<SocketAddr>,
    /// Encoded request frames awaiting a response (reconnect tracking).
    /// Replayed verbatim over a fresh connection after a redial.
    inflight: Vec<(u64, Vec<u8>)>,
}

impl WireClient {
    /// Connect to a wire listener and send the protocol preamble.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut preamble = Vec::with_capacity(PREAMBLE_LEN);
        frame::encode_preamble(&mut preamble);
        stream.write_all(&preamble)?;
        Ok(Self {
            stream,
            send_buf: Vec::with_capacity(4096),
            recv_buf: Vec::with_capacity(4096),
            recv_pos: 0,
            next_ticket: u64::MAX, // counts down, away from request-id space
            peer: None,
            inflight: Vec::new(),
        })
    }

    /// Opt in to automatic reconnection: remember the peer address and
    /// start tracking in-flight request frames. After this, a connection
    /// error inside [`WireClient::flush`] or [`WireClient::recv`] redials
    /// the server, resends the preamble, and replays every request frame
    /// that has not yet been answered — the caller just sees `recv` keep
    /// working (or the redial's own error if the server is really gone).
    ///
    /// Half-received response bytes from the dead connection are discarded,
    /// and unanswered requests may execute twice server-side (estimates are
    /// read-only, so replays are safe).
    pub fn enable_reconnect(&mut self) -> io::Result<()> {
        self.peer = Some(self.stream.peer_addr()?);
        Ok(())
    }

    /// Ask the server for `table`'s id and column domains. Blocks; flushes
    /// any buffered requests first. Returns `None` if the server does not
    /// know the table.
    pub fn resolve(&mut self, table: &str) -> io::Result<Option<TableSpec>> {
        let ticket = self.next_ticket;
        self.next_ticket -= 1;
        frame::encode_table_query(&mut self.send_buf, ticket, table);
        self.flush()?;
        loop {
            match self.next_server_frame()? {
                ServerFrame::TableInfo { request_id, status, table_id, ndvs }
                    if request_id == ticket =>
                {
                    return Ok((status == Status::Ok).then_some(TableSpec { id: table_id, ndvs }));
                }
                // Responses to earlier pipelined requests (or stale table
                // queries) are dropped here: `resolve` is a setup call, not
                // something to interleave with a live pipeline.
                _ => {}
            }
        }
    }

    /// Buffer one request frame (does not touch the socket). `deadline_us`
    /// of 0 defers to the server's configured deadline budget.
    pub fn submit_request(
        &mut self,
        request_id: u64,
        table_id: u32,
        deadline_us: u32,
        preds: &[Vec<IdPredicate>],
        intervals: &[(u32, u32)],
    ) {
        let start = self.send_buf.len();
        frame::encode_request(
            &mut self.send_buf,
            request_id,
            table_id,
            deadline_us,
            preds,
            intervals,
        );
        if self.peer.is_some() {
            self.inflight.push((request_id, self.send_buf[start..].to_vec()));
        }
    }

    /// Write every buffered frame to the socket. With reconnect enabled, a
    /// dead connection is redialed and the tracked request frames replayed
    /// (other buffered frames — e.g. table queries — are dropped).
    pub fn flush(&mut self) -> io::Result<()> {
        if self.send_buf.is_empty() {
            return Ok(());
        }
        match self.stream.write_all(&self.send_buf) {
            Ok(()) => {
                self.send_buf.clear();
                Ok(())
            }
            Err(e) if self.reconnectable(&e) => self.reconnect(),
            Err(e) => Err(e),
        }
    }

    /// Block until the next response frame arrives. Other server frames
    /// (e.g. table-info answers to stale resolves) are skipped. With
    /// reconnect enabled and requests still unanswered, a connection error
    /// triggers one redial-and-replay before giving up.
    pub fn recv(&mut self) -> io::Result<ResponseFrame> {
        let mut redialed = false;
        loop {
            match self.next_server_frame() {
                Ok(ServerFrame::Response(response)) => {
                    self.inflight.retain(|(id, _)| *id != response.request_id);
                    return Ok(response);
                }
                Ok(_) => {}
                Err(e) if !redialed && !self.inflight.is_empty() && self.reconnectable(&e) => {
                    self.reconnect()?;
                    redialed = true;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Whether `e` is the kind of failure a redial can fix — and redialing
    /// is enabled.
    fn reconnectable(&self, e: &io::Error) -> bool {
        self.peer.is_some()
            && matches!(
                e.kind(),
                io::ErrorKind::UnexpectedEof
                    | io::ErrorKind::ConnectionReset
                    | io::ErrorKind::ConnectionAborted
                    | io::ErrorKind::BrokenPipe
            )
    }

    /// Redial the remembered peer, resend the preamble, and replay every
    /// tracked (unanswered) request frame on the fresh connection.
    fn reconnect(&mut self) -> io::Result<()> {
        let peer = self.peer.expect("reconnect requires enable_reconnect");
        let mut stream = TcpStream::connect(peer)?;
        stream.set_nodelay(true)?;
        let mut bytes = Vec::with_capacity(PREAMBLE_LEN);
        frame::encode_preamble(&mut bytes);
        for (_, frame) in &self.inflight {
            bytes.extend_from_slice(frame);
        }
        stream.write_all(&bytes)?;
        // Anything half-received or half-sent on the dead connection is
        // garbage now; tracked frames were just replayed.
        self.recv_buf.clear();
        self.recv_pos = 0;
        self.send_buf.clear();
        self.stream = stream;
        Ok(())
    }

    /// Submit one request and block for its response, re-submitting with
    /// jittered exponential backoff while the server answers `Overloaded`
    /// and the `retry` deadline allows. Any other status (including
    /// `Internal` after a worker fault) returns immediately — backoff is
    /// for load shedding, not for masking faults.
    ///
    /// Intended for non-pipelined use: responses to other outstanding
    /// requests arriving meanwhile are discarded.
    pub fn request_with_retry(
        &mut self,
        request_id: u64,
        table_id: u32,
        deadline_us: u32,
        preds: &[Vec<IdPredicate>],
        intervals: &[(u32, u32)],
        retry: &RetryConfig,
    ) -> io::Result<ResponseFrame> {
        let started = Instant::now();
        let mut rng = SmallRng::seed_from_u64(retry.seed ^ request_id);
        let mut attempt: u32 = 0;
        loop {
            self.submit_request(request_id, table_id, deadline_us, preds, intervals);
            self.flush()?;
            let response = loop {
                let response = self.recv()?;
                if response.request_id == request_id {
                    break response;
                }
            };
            if response.status != Status::Overloaded {
                return Ok(response);
            }
            // Exponential backoff with half-delay jitter: sleep in
            // [delay/2, delay], doubling the (capped) delay per attempt.
            let exp = retry.base.saturating_mul(1u32 << attempt.min(16));
            let delay = exp.min(retry.cap);
            let half = (delay.as_nanos() / 2) as u64;
            let sleep = Duration::from_nanos(half + rng.gen_range(0..=half.max(1)));
            if started.elapsed() + sleep >= retry.deadline {
                return Ok(response);
            }
            std::thread::sleep(sleep);
            attempt += 1;
        }
    }

    /// Decode the next frame out of the receive buffer, reading from the
    /// socket as needed.
    fn next_server_frame(&mut self) -> io::Result<ServerFrame> {
        loop {
            let decoded = frame::next_frame(&self.recv_buf[self.recv_pos..], DEFAULT_MAX_FRAME_LEN)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            if let Some((view, consumed)) = decoded {
                // Resolve the borrowed view into an owned frame before
                // advancing the cursor.
                let owned = match view {
                    FrameView::Response(response) => ServerFrame::Response(response),
                    FrameView::TableInfo(info) => {
                        let mut ndvs = Vec::new();
                        info.read_ndvs_into(&mut ndvs);
                        ServerFrame::TableInfo {
                            request_id: info.request_id,
                            status: info.status,
                            table_id: info.table_id,
                            ndvs,
                        }
                    }
                    FrameView::Request(_)
                    | FrameView::TableQuery(_)
                    | FrameView::Ingest(_)
                    | FrameView::Feedback(_) => ServerFrame::Other,
                };
                self.recv_pos += consumed;
                if self.recv_pos == self.recv_buf.len() {
                    self.recv_buf.clear();
                    self.recv_pos = 0;
                }
                if let ServerFrame::Other = owned {
                    continue;
                }
                return Ok(owned);
            }
            // Need more bytes: compact the consumed prefix, then block on
            // the socket.
            if self.recv_pos > 0 {
                self.recv_buf.copy_within(self.recv_pos.., 0);
                let remaining = self.recv_buf.len() - self.recv_pos;
                self.recv_buf.truncate(remaining);
                self.recv_pos = 0;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed by server",
                ));
            }
            self.recv_buf.extend_from_slice(&chunk[..n]);
        }
    }
}
