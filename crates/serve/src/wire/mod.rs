//! `duet-wire`: the TCP front door and its compact binary protocol.
//!
//! The wire layer puts the serving stack behind a socket without changing
//! any of its semantics: a frame that decodes to an estimation request goes
//! through the **same** shard queues, admission control, micro-batchers,
//! and metrics as an in-process [`crate::DuetServer::estimate`] call, and
//! overload outcomes ([`crate::ServeError::Overloaded`],
//! [`crate::ServeError::DeadlineExceeded`]) come back as wire status codes
//! rather than dropped connections.
//!
//! The module splits along the boundary that makes it simulable:
//!
//! * [`frame`] — the pure codec: length-prefixed frames, typed decode
//!   errors, zero-copy request views. No I/O, no clock.
//! * `conn` (via [`WireConn`]) — the per-connection state machine:
//!   preamble handshake, byte-queue in, byte-queue out, pipelined in-flight
//!   tracking. Transport-agnostic: it consumes byte slices and produces
//!   byte slices, so the deterministic simulator drives the exact code the
//!   TCP listener runs.
//! * `listener` (via [`crate::DuetServer::serve_wire`]) — the only part
//!   that touches `std::net`: nonblocking accept + read/write sweeps.
//! * [`client`] — a minimal blocking client for tests, benches, and
//!   examples.

pub mod client;
pub(crate) mod conn;
pub mod frame;
pub(crate) mod listener;

pub use client::{RetryConfig, TableSpec, WireClient};
pub use conn::{ConnConfig, Outbox, WireConn};
pub use frame::{DecodeError, FrameView, ResponseFrame, Status};
pub use listener::{WireConfig, WireHandle};
