//! The per-connection state machine of the wire layer: preamble handshake,
//! frame decode, admission, and out-of-order response multiplexing.
//!
//! [`WireConn`] is deliberately **transport- and clock-agnostic**: it never
//! touches a socket or reads wall time. Bytes go in through
//! [`WireConn::feed`] (however they arrived — split, partial, coalesced),
//! decoded work is admitted and completed responses are encoded during
//! [`WireConn::pump`], and produced bytes come back out through
//! [`WireConn::output`]/[`WireConn::consume_output`]. The production
//! listener drives it from nonblocking sockets under the [`SystemClock`];
//! the deterministic harness ([`crate::sim`]) drives the *identical* code
//! from in-memory byte chunks under a [`VirtualClock`] — which is what makes
//! the socket boundary replay-testable.
//!
//! [`SystemClock`]: crate::SystemClock
//! [`VirtualClock`]: crate::VirtualClock
//!
//! ## Pipelining and flow control
//!
//! A connection may have many requests in flight (each tagged with a client
//! request id); shard workers complete them in whatever order batches
//! execute, and each completion lands in the connection's [`Outbox`], to be
//! encoded as a response frame on the next pump — responses multiplex back
//! **out of order**. Flow control is admission control: a request that
//! would overflow its shard's bounded queue (or the connection's own
//! pipeline window) is answered immediately with an
//! [`Status::Overloaded`](crate::wire::Status) frame instead of queueing
//! unboundedly, and a request whose deadline budget expires while queued
//! comes back as `Status::DeadlineExceeded`.
//!
//! ## Zero allocation after warm-up
//!
//! Every request decoded on a warm connection reuses a pooled
//! [`RoutedRequest`] (predicate/interval buffers included) recycled by the
//! shard worker after execution; inbound/outbound byte queues, the
//! in-flight table, and the completion scratch all retain their capacity.
//! `tests/zero_alloc.rs` drives a warmed connection through decode →
//! admission → batch execution → response encode and asserts zero heap
//! traffic.

use crate::metrics::ServeMetrics;
use crate::online::OnlineDirectory;
use crate::router::{Clock, ReplyTo, RoutedRequest, Router, ShedReason, TableResources};
use crate::wire::frame::{
    self, DecodeError, FrameView, Status, DEFAULT_MAX_FRAME_LEN, PREAMBLE_LEN,
};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A contiguous FIFO of bytes with an explicit consumed prefix, reused
/// across reads so a warm connection never reallocates: consuming resets
/// the buffer when it empties, and pushing compacts the unconsumed tail to
/// the front (a `copy_within`, not an allocation) before appending.
#[derive(Debug, Default)]
pub(crate) struct ByteQueue {
    data: Vec<u8>,
    start: usize,
}

impl ByteQueue {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// The unconsumed bytes.
    pub(crate) fn bytes(&self) -> &[u8] {
        &self.data[self.start..]
    }

    pub(crate) fn len(&self) -> usize {
        self.data.len() - self.start
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.start == self.data.len()
    }

    /// Mark the first `n` unconsumed bytes as consumed.
    pub(crate) fn consume(&mut self, n: usize) {
        self.start += n;
        debug_assert!(self.start <= self.data.len());
        if self.start == self.data.len() {
            self.data.clear();
            self.start = 0;
        }
    }

    /// Append bytes, compacting the consumed prefix away first so the
    /// buffer's high-water capacity is the largest *unconsumed* span ever
    /// held, not the total traffic.
    pub(crate) fn push(&mut self, bytes: &[u8]) {
        if self.start > 0 {
            self.data.copy_within(self.start.., 0);
            self.data.truncate(self.data.len() - self.start);
            self.start = 0;
        }
        self.data.extend_from_slice(bytes);
    }

    /// The underlying buffer for in-place appends (encoders push frames
    /// straight into the outbound queue); only valid while `start == 0` or
    /// appended bytes follow the unconsumed tail, which `push`/`consume`
    /// maintain.
    fn tail_mut(&mut self) -> &mut Vec<u8> {
        &mut self.data
    }
}

/// A connection's completion mailbox and request pool, shared with the
/// shard workers executing its requests.
///
/// Workers `complete` outcomes as batches finish (any order); the
/// connection's next pump drains them into response frames. Executed
/// requests are `recycle`d here with their predicate/interval buffers
/// intact, so the connection's next decode reuses them — the
/// allocation-free steady state.
#[derive(Debug, Default)]
pub struct Outbox {
    completions: Mutex<Vec<(u64, Result<f64, ShedReason>)>>,
    pool: Mutex<Vec<RoutedRequest>>,
}

impl Outbox {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    // Both locks tolerate poisoning (`into_inner` on the error) instead of
    // panicking: shard workers touch the outbox inside the supervised
    // `catch_unwind` region, so a panic between lock and unlock marks the
    // mutex poisoned even though supervision keeps the process alive. The
    // guarded data stays structurally valid across such a panic — a
    // completions vec or request pool is never left mid-mutation by a push —
    // so continuing with the inner value is sound, and the alternative
    // (propagating the poison) would wedge the connection forever on a
    // fault the worker already recovered from.

    /// Record the outcome of request `request_id` (called by shard workers).
    pub(crate) fn complete(&self, request_id: u64, outcome: Result<f64, ShedReason>) {
        self.completions.lock().unwrap_or_else(|e| e.into_inner()).push((request_id, outcome));
    }

    /// Move all pending completions into `into` (capacity-reusing drain).
    pub(crate) fn drain_completions(&self, into: &mut Vec<(u64, Result<f64, ShedReason>)>) {
        let mut completions = self.completions.lock().unwrap_or_else(|e| e.into_inner());
        into.append(&mut completions);
    }

    /// Return an executed request's carcass to the pool for reuse.
    pub(crate) fn recycle(&self, request: RoutedRequest) {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).push(request);
    }

    /// Take a pooled request (buffers warm) or build a fresh empty one.
    pub(crate) fn take_pooled(&self) -> RoutedRequest {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop().unwrap_or(RoutedRequest {
            table_id: 0,
            slot_uid: 0,
            preds: Vec::new(),
            intervals: Vec::new(),
            key: None,
            deadline: None,
            reply: ReplyTo::Discard,
        })
    }
}

/// Connection-level tuning shared by the listener and the sim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnConfig {
    /// Largest accepted frame body; a declared length beyond this is a
    /// protocol error and closes the connection.
    pub max_frame_len: usize,
    /// Most requests one connection may have in flight; request number
    /// `max_pipeline + 1` is answered `Overloaded` immediately (per-client
    /// flow control in front of the shared shard queues).
    pub max_pipeline: usize,
}

impl Default for ConnConfig {
    fn default() -> Self {
        Self { max_frame_len: DEFAULT_MAX_FRAME_LEN, max_pipeline: 256 }
    }
}

/// Lifecycle of a connection's byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waiting for the 8-byte magic/version preamble.
    Handshake,
    /// Preamble validated; decoding frames.
    Open,
}

/// The server-side state machine of one wire connection (see the
/// [`crate::wire`] module docs).
#[derive(Debug)]
pub struct WireConn {
    phase: Phase,
    config: ConnConfig,
    inbound: ByteQueue,
    outbound: ByteQueue,
    outbox: Arc<Outbox>,
    /// `(request_id, admitted_at_ns)` for every in-flight request; order is
    /// irrelevant (completions `swap_remove`), length is the pipeline depth.
    inflight: Vec<(u64, u64)>,
    /// Reused drain target for outbox completions.
    completions: Vec<(u64, Result<f64, ShedReason>)>,
    /// Reused per-column ndv staging for table-info responses.
    ndv_scratch: Vec<u32>,
    /// Reused value-id staging for ingest frames.
    ids_scratch: Vec<u32>,
    /// Reused predicate/interval staging for feedback frames (feedback is
    /// copied into the online table's queue, not routed, so it does not use
    /// the pooled request carcasses).
    preds_scratch: Vec<Vec<duet_core::IdPredicate>>,
    intervals_scratch: Vec<(u32, u32)>,
}

impl WireConn {
    /// A fresh connection awaiting its preamble.
    pub fn new(config: ConnConfig) -> Self {
        Self {
            phase: Phase::Handshake,
            config,
            inbound: ByteQueue::new(),
            outbound: ByteQueue::new(),
            outbox: Arc::new(Outbox::new()),
            inflight: Vec::new(),
            completions: Vec::new(),
            ndv_scratch: Vec::new(),
            ids_scratch: Vec::new(),
            preds_scratch: Vec::new(),
            intervals_scratch: Vec::new(),
        }
    }

    /// Append bytes received from the transport (any chunking).
    pub fn feed(&mut self, bytes: &[u8]) {
        self.inbound.push(bytes);
    }

    /// Encoded response bytes awaiting transmission.
    pub fn output(&self) -> &[u8] {
        self.outbound.bytes()
    }

    /// Mark `n` output bytes as transmitted.
    pub fn consume_output(&mut self, n: usize) {
        self.outbound.consume(n);
    }

    /// Requests currently in flight on this connection.
    pub fn inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Whether the connection still owes the transport bytes.
    pub fn has_output(&self) -> bool {
        !self.outbound.is_empty()
    }

    /// Run the connection forward: finish the handshake if pending, decode
    /// and admit every complete inbound frame, then drain completed
    /// requests into response frames.
    ///
    /// Returns whether any progress was made (a frame decoded or a response
    /// encoded) — the listener's idle heuristic. A [`DecodeError`] means
    /// the byte stream is unrecoverable and the connection must be closed;
    /// in-flight requests still complete harmlessly into the outbox (their
    /// `Arc` keeps it alive) and are dropped with it.
    pub(crate) fn pump(
        &mut self,
        router: &Router,
        tables: &[TableResources],
        online: &OnlineDirectory,
        clock: &dyn Clock,
        metrics: &ServeMetrics,
    ) -> Result<bool, DecodeError> {
        let mut progressed = false;

        if self.phase == Phase::Handshake {
            if self.inbound.len() < PREAMBLE_LEN {
                // Not an error: the preamble itself may arrive split.
                self.drain_responses(clock, metrics);
                return Ok(false);
            }
            frame::decode_preamble(self.inbound.bytes())?;
            self.inbound.consume(PREAMBLE_LEN);
            self.phase = Phase::Open;
            progressed = true;
        }

        // Decode/admit every complete frame currently buffered. The frame
        // view borrows `self.inbound`, so the handlers are free functions
        // over the *other* fields (disjoint borrows).
        loop {
            let consumed = {
                match frame::next_frame(self.inbound.bytes(), self.config.max_frame_len)? {
                    None => break,
                    Some((view, consumed)) => {
                        metrics.record_frame_in();
                        match view {
                            FrameView::Request(request) => admit(
                                request,
                                &self.config,
                                &self.outbox,
                                &mut self.inflight,
                                &mut self.outbound,
                                router,
                                tables,
                                clock,
                                metrics,
                            ),
                            FrameView::TableQuery(query) => resolve_table(
                                query,
                                &mut self.ndv_scratch,
                                &mut self.outbound,
                                tables,
                                metrics,
                            ),
                            FrameView::Ingest(ingest) => handle_ingest(
                                ingest,
                                &mut self.ids_scratch,
                                &mut self.outbound,
                                tables,
                                online,
                                metrics,
                            ),
                            FrameView::Feedback(feedback) => handle_feedback(
                                feedback,
                                &mut self.preds_scratch,
                                &mut self.intervals_scratch,
                                &mut self.outbound,
                                tables,
                                online,
                                metrics,
                            ),
                            // A server connection ignores server-to-client
                            // frames echoed back at it; they are
                            // structurally valid, just meaningless here.
                            FrameView::Response(_) | FrameView::TableInfo(_) => {}
                        }
                        consumed
                    }
                }
            };
            self.inbound.consume(consumed);
            progressed = true;
        }

        progressed |= self.drain_responses(clock, metrics);
        Ok(progressed)
    }

    /// Encode every completed request as a response frame; returns whether
    /// anything was drained.
    fn drain_responses(&mut self, clock: &dyn Clock, metrics: &ServeMetrics) -> bool {
        self.outbox.drain_completions(&mut self.completions);
        if self.completions.is_empty() {
            return false;
        }
        let now_ns = clock.now().as_nanos().min(u128::from(u64::MAX)) as u64;
        for (request_id, outcome) in self.completions.drain(..) {
            if let Some(at) = self.inflight.iter().position(|&(id, _)| id == request_id) {
                let (_, admitted_ns) = self.inflight.swap_remove(at);
                metrics.record_request(Duration::from_nanos(now_ns.saturating_sub(admitted_ns)));
            }
            let (status, value) = match outcome {
                Ok(value) => (Status::Ok, value),
                Err(ShedReason::DeadlineExpired) => (Status::DeadlineExceeded, 0.0),
                Err(ShedReason::QueueFull) => (Status::Overloaded, 0.0),
                // The table id this client resolved was re-registered while
                // the request sat queued: its binding is gone, so tell the
                // client to re-resolve the table.
                Err(ShedReason::StaleRegistration) => (Status::UnknownTable, 0.0),
                // Supervision caught a panic in the request's batch; the
                // worker respawned and a retry usually succeeds.
                Err(ShedReason::WorkerPanicked) => (Status::Internal, 0.0),
            };
            frame::encode_response(self.outbound.tail_mut(), request_id, status, value);
            metrics.record_frame_out();
        }
        true
    }
}

/// Admit one decoded request to its table's shard, or answer it immediately
/// with a typed status frame. A free function over [`WireConn`]'s fields so
/// it can run while the request view still borrows the inbound buffer.
#[allow(clippy::too_many_arguments)]
fn admit(
    request: frame::RequestView<'_>,
    config: &ConnConfig,
    outbox: &Arc<Outbox>,
    inflight: &mut Vec<(u64, u64)>,
    outbound: &mut ByteQueue,
    router: &Router,
    tables: &[TableResources],
    clock: &dyn Clock,
    metrics: &ServeMetrics,
) {
    let request_id = request.request_id;
    let Some(resources) = tables.get(request.table_id as usize) else {
        frame::encode_response(outbound.tail_mut(), request_id, Status::UnknownTable, 0.0);
        metrics.record_frame_out();
        return;
    };
    if inflight.len() >= config.max_pipeline {
        // Per-connection flow control: the pipeline window is full.
        metrics.record_shed_overload();
        frame::encode_response(outbound.tail_mut(), request_id, Status::Overloaded, 0.0);
        metrics.record_frame_out();
        return;
    }

    let mut holder = outbox.take_pooled();
    request.read_into(&mut holder.preds, &mut holder.intervals);
    holder.table_id = request.table_id;
    // Bind the request to the table's *current registration*: if the table
    // is re-registered before a worker dequeues it, the uid mismatch rejects
    // it there instead of decoding it against the wrong schema.
    holder.slot_uid = resources.slot.uid();
    // The wire path bypasses the result cache: a remote client gets the
    // batched forward pass directly (the cache fronts the in-process
    // `DuetServer::estimate` API, whose callers hold a schema and can
    // canonicalize keys; wire requests go straight to the shards).
    holder.key = None;
    holder.deadline = if request.deadline_us > 0 {
        Some(clock.now() + Duration::from_micros(u64::from(request.deadline_us)))
    } else {
        router.admission_deadline()
    };
    holder.reply = ReplyTo::Wire { outbox: outbox.clone(), request_id };

    let shard = crate::router::shard_for(&resources.name, router.num_shards());
    match router.shard(shard).try_push(holder) {
        Ok(_depth) => {
            let now_ns = clock.now().as_nanos().min(u128::from(u64::MAX)) as u64;
            inflight.push((request_id, now_ns));
            metrics.record_pipeline_depth(inflight.len());
        }
        Err(mut rejected) => {
            // Shard queue full: recycle the holder (reply detached so the
            // pool holds no self-reference) and shed on the wire.
            metrics.record_shed_overload();
            rejected.reply = ReplyTo::Discard;
            outbox.recycle(rejected);
            frame::encode_response(outbound.tail_mut(), request_id, Status::Overloaded, 0.0);
            metrics.record_frame_out();
        }
    }
}

/// Answer a table-resolution query: linear scan over the directory
/// (resolution happens once per client at connection setup, not on the
/// request hot path).
fn resolve_table(
    query: frame::TableQueryView<'_>,
    ndv_scratch: &mut Vec<u32>,
    outbound: &mut ByteQueue,
    tables: &[TableResources],
    metrics: &ServeMetrics,
) {
    match tables.iter().position(|r| r.name.as_ref() == query.name) {
        Some(table_id) => {
            // Resolution may lazily reload an evicted model (the reply
            // carries per-column NDVs from its schema); a failed reload
            // answers UnknownTable so the client can retry resolution.
            let was_resident = tables[table_id].slot.is_resident();
            let Ok(estimator) = tables[table_id].slot.try_current() else {
                frame::encode_table_info(
                    outbound.tail_mut(),
                    query.request_id,
                    Status::UnknownTable,
                    0,
                    &[],
                );
                metrics.record_frame_out();
                return;
            };
            if !was_resident {
                metrics.record_model_reload();
            }
            let schema = estimator.schema();
            ndv_scratch.clear();
            for column in schema.columns() {
                ndv_scratch.push(column.ndv().min(u32::MAX as usize) as u32);
            }
            frame::encode_table_info(
                outbound.tail_mut(),
                query.request_id,
                Status::Ok,
                table_id as u32,
                ndv_scratch,
            );
        }
        None => {
            frame::encode_table_info(
                outbound.tail_mut(),
                query.request_id,
                Status::UnknownTable,
                0,
                &[],
            );
        }
    }
    metrics.record_frame_out();
}

/// Apply one ingest frame to the table's online state and acknowledge it:
/// `Ok` with the new row count, `UnknownTable` when the table is missing or
/// not online-enabled, `Rejected` when the row itself is invalid.
fn handle_ingest(
    ingest: frame::IngestView<'_>,
    ids_scratch: &mut Vec<u32>,
    outbound: &mut ByteQueue,
    tables: &[TableResources],
    online: &OnlineDirectory,
    metrics: &ServeMetrics,
) {
    let request_id = ingest.request_id;
    let (status, value) = if tables.get(ingest.table_id as usize).is_none() {
        (Status::UnknownTable, 0.0)
    } else {
        match online.get(ingest.table_id as usize) {
            None => (Status::UnknownTable, 0.0),
            Some(table) => {
                ingest.read_ids_into(ids_scratch);
                match table.lock().expect("online table poisoned").ingest_row(ids_scratch) {
                    Ok(rows) => (Status::Ok, rows as f64),
                    Err(_) => (Status::Rejected, 0.0),
                }
            }
        }
    };
    frame::encode_response(outbound.tail_mut(), request_id, status, value);
    metrics.record_frame_out();
}

/// Queue one feedback frame on the table's online state and acknowledge it.
/// The feedback is stamped with the uid of the slot *currently* registered
/// under the table id; if the online state is bound to an older registration
/// the stamp mismatches and the feedback is `Rejected` (the wire face of the
/// stale-registration path).
fn handle_feedback(
    feedback: frame::FeedbackView<'_>,
    preds_scratch: &mut Vec<Vec<duet_core::IdPredicate>>,
    intervals_scratch: &mut Vec<(u32, u32)>,
    outbound: &mut ByteQueue,
    tables: &[TableResources],
    online: &OnlineDirectory,
    metrics: &ServeMetrics,
) {
    let request_id = feedback.request_id;
    let status = match tables.get(feedback.table_id as usize) {
        None => Status::UnknownTable,
        Some(resources) => match online.get(feedback.table_id as usize) {
            None => Status::UnknownTable,
            Some(table) => {
                feedback.read_into(preds_scratch, intervals_scratch);
                let pushed = table.lock().expect("online table poisoned").push_feedback(
                    resources.slot.uid(),
                    preds_scratch.clone(),
                    intervals_scratch.clone(),
                    feedback.actual,
                );
                match pushed {
                    Ok(()) => Status::Ok,
                    Err(_) => Status::Rejected,
                }
            }
        },
    };
    frame::encode_response(outbound.tail_mut(), request_id, status, 0.0);
    metrics.record_frame_out();
}
