//! The TCP front door: nonblocking acceptor threads driving [`WireConn`]
//! state machines over real sockets.
//!
//! One `std::net::TcpListener` in nonblocking mode is shared (via
//! `try_clone`) by a small pool of acceptor threads — by default one per
//! core — and each thread owns the connections it accepted outright: it
//! reads their sockets into a reused stack buffer, feeds/pumps their
//! [`WireConn`]s, and writes pending response bytes back out,
//! `WouldBlock`-aware in both directions. No connection ever migrates
//! between threads, so the per-connection state needs no locking; the only
//! cross-thread traffic is the shard queues (already synchronized) and each
//! connection's outbox (a mutex the shard workers push completions
//! through).
//!
//! This is a poll loop, not an epoll reactor: with a handful of pipelined
//! connections per thread the scan is cheap, and when a full sweep moves no
//! bytes the thread sleeps for [`WireConfig::poll_wait`] — idle connections
//! cost a few wakeups per millisecond, not a spinning core.

use crate::metrics::ServeMetrics;
use crate::online::OnlineDirectory;
use crate::router::{Clock, Router, TableResources};
use crate::wire::conn::{ConnConfig, WireConn};
use crate::wire::frame::DEFAULT_MAX_FRAME_LEN;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs of the wire front door.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireConfig {
    /// Acceptor/IO threads; `0` means one per available core.
    pub acceptors: usize,
    /// Largest accepted frame body (bytes); larger declared lengths are a
    /// protocol error and close the connection.
    pub max_frame_len: usize,
    /// Most in-flight requests per connection before it is answered
    /// `Overloaded` (per-client flow control).
    pub max_pipeline: usize,
    /// Sleep after an idle sweep (no bytes moved on any connection).
    pub poll_wait: Duration,
    /// Graceful-drain budget: after a stop is requested, acceptor threads
    /// keep sweeping their owned connections (no new accepts) until every
    /// connection has zero in-flight requests and no unwritten response
    /// bytes, or this much time has passed — whichever comes first.
    pub drain: Duration,
}

impl Default for WireConfig {
    fn default() -> Self {
        Self {
            acceptors: 0,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            max_pipeline: 256,
            poll_wait: Duration::from_micros(200),
            drain: Duration::from_millis(500),
        }
    }
}

/// A running wire listener; dropping it (or calling
/// [`WireHandle::shutdown`]) stops the acceptors and closes every
/// connection.
#[derive(Debug)]
pub struct WireHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl WireHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, close every connection, and join the acceptors.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        for thread in self.threads.drain(..) {
            let _ = thread.join();
        }
    }

    /// A clone of the stop flag, so [`crate::DuetServer::shutdown`] can
    /// request a drain without owning (or joining) this handle.
    pub(crate) fn stop_flag(&self) -> Arc<AtomicBool> {
        self.stop.clone()
    }
}

impl Drop for WireHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Everything an acceptor thread shares with the server.
pub(crate) struct WireShared {
    pub(crate) router: Arc<Router>,
    pub(crate) directory: Arc<RwLock<Vec<TableResources>>>,
    pub(crate) online: Arc<OnlineDirectory>,
    pub(crate) clock: Arc<dyn Clock>,
    pub(crate) metrics: Arc<ServeMetrics>,
}

/// Bind `addr` and start the acceptor pool. Called by
/// [`crate::DuetServer::serve_wire`].
pub(crate) fn serve(
    addr: impl ToSocketAddrs,
    config: WireConfig,
    shared: WireShared,
) -> std::io::Result<WireHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let acceptors = if config.acceptors > 0 {
        config.acceptors
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    };
    let shared = Arc::new(shared);
    let threads = (0..acceptors)
        .map(|i| {
            let listener = listener.try_clone()?;
            let (stop, shared) = (stop.clone(), shared.clone());
            std::thread::Builder::new()
                .name(format!("duet-wire-{i}"))
                .spawn(move || acceptor_loop(listener, config, &stop, &shared))
        })
        .collect::<std::io::Result<Vec<_>>>()?;
    Ok(WireHandle { addr, stop, threads })
}

/// One accepted connection owned by an acceptor thread.
struct Connection {
    stream: TcpStream,
    conn: WireConn,
}

/// The acceptor/IO loop: accept new sockets, then sweep owned connections
/// (read → pump → write); sleep when a whole sweep moves nothing.
fn acceptor_loop(
    listener: TcpListener,
    config: WireConfig,
    stop: &AtomicBool,
    shared: &WireShared,
) {
    let conn_config =
        ConnConfig { max_frame_len: config.max_frame_len, max_pipeline: config.max_pipeline };
    let mut connections: Vec<Connection> = Vec::new();
    // Reused read buffer: one socket read lands here before feeding the
    // connection's own (growable, reused) inbound queue.
    let mut read_buf = [0u8; 16 * 1024];

    while !stop.load(Ordering::Acquire) {
        let mut moved = false;

        // Accept everything currently pending (all acceptors share the
        // nonblocking listener; the kernel hands each socket to exactly one
        // accept call).
        loop {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    shared.metrics.record_conn_opened();
                    connections.push(Connection { stream, conn: WireConn::new(conn_config) });
                    moved = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break, // transient accept error: retry next sweep
            }
        }

        // Sweep every owned connection.
        let mut i = 0;
        while i < connections.len() {
            match sweep_connection(&mut connections[i], &mut read_buf, shared) {
                Ok(progressed) => {
                    moved |= progressed;
                    i += 1;
                }
                Err(()) => {
                    // EOF or protocol error: close and forget.
                    shared.metrics.record_conn_closed();
                    connections.swap_remove(i);
                    moved = true;
                }
            }
        }

        if !moved {
            std::thread::sleep(config.poll_wait);
        }
    }

    // Graceful drain: no more accepts, but keep sweeping the connections
    // this thread already owns so every admitted request gets its response
    // flushed. A connection is closed as soon as it is quiescent (nothing
    // in flight, nothing left to write); whatever is still busy when the
    // drain budget runs out is closed anyway.
    let drain_deadline = std::time::Instant::now() + config.drain;
    while !connections.is_empty() && std::time::Instant::now() < drain_deadline {
        let mut moved = false;
        let mut i = 0;
        while i < connections.len() {
            if connections[i].conn.inflight() == 0 && !connections[i].conn.has_output() {
                shared.metrics.record_conn_closed();
                connections.swap_remove(i);
                moved = true;
                continue;
            }
            match sweep_connection(&mut connections[i], &mut read_buf, shared) {
                Ok(progressed) => {
                    moved |= progressed;
                    i += 1;
                }
                Err(()) => {
                    shared.metrics.record_conn_closed();
                    connections.swap_remove(i);
                    moved = true;
                }
            }
        }
        if !moved {
            std::thread::sleep(config.poll_wait);
        }
    }

    // Past the deadline (or already quiescent): drop (close) the rest.
    for _ in connections.drain(..) {
        shared.metrics.record_conn_closed();
    }
}

/// Read, pump, and write one connection. `Err(())` means close it.
fn sweep_connection(
    connection: &mut Connection,
    read_buf: &mut [u8],
    shared: &WireShared,
) -> Result<bool, ()> {
    let mut progressed = false;

    // Read until the socket would block (or EOF).
    loop {
        match connection.stream.read(read_buf) {
            Ok(0) => return Err(()), // peer closed
            Ok(n) => {
                connection.conn.feed(&read_buf[..n]);
                progressed = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }

    // Decode/admit/respond.
    {
        let tables = shared.directory.read().expect("directory poisoned");
        match connection.conn.pump(
            &shared.router,
            &tables,
            &shared.online,
            shared.clock.as_ref(),
            &shared.metrics,
        ) {
            Ok(p) => progressed |= p,
            Err(_decode) => {
                shared.metrics.record_wire_decode_error();
                return Err(());
            }
        }
    }

    // Write pending response bytes until the socket would block.
    while connection.conn.has_output() {
        match connection.stream.write(connection.conn.output()) {
            Ok(0) => return Err(()),
            Ok(n) => {
                connection.conn.consume_output(n);
                progressed = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }

    Ok(progressed)
}
