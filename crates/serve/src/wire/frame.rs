//! The `duet-wire` frame codec: a compact, length-prefixed binary protocol
//! for estimation requests and responses.
//!
//! Design constraints, in order:
//!
//! 1. **No serde on the hot path.** Every frame is hand-packed little-endian
//!    integers; encoding appends to a caller-owned `Vec<u8>` and decoding
//!    yields borrowed [`FrameView`]s over the connection's read buffer, so a
//!    warmed connection moves requests and responses without a single heap
//!    allocation (proven by `tests/zero_alloc.rs`).
//! 2. **Sim-replayable framing.** The decoder is a pure function of the byte
//!    buffer: [`next_frame`] either returns a complete frame and how many
//!    bytes it consumed, `None` ("need more bytes" — the split-read case), or
//!    a typed [`DecodeError`]. Nothing depends on how the bytes arrived, so
//!    the deterministic harness ([`crate::sim`]) can drive the very same
//!    codec with seeded split/coalesced byte chunks.
//! 3. **Canonical request form.** A request carries exactly what the serving
//!    cache and batcher already treat as canonical: the dense table id,
//!    per-column id-space predicates, and per-column valid-id intervals —
//!    the same triple `duet_core::query_to_id_predicates` +
//!    `Query::column_intervals` produce in-process.
//!
//! ## Wire format
//!
//! A connection opens with an 8-byte preamble, then carries a stream of
//! frames (all integers little-endian):
//!
//! ```text
//! preamble:  "DUET"  u16 version  u16 reserved(0)
//!
//! frame:     u32 body_len   body (body_len bytes, first byte = kind)
//!
//! Request    (kind 1): u64 request_id  u32 table_id  u32 deadline_us
//!                      u16 num_columns  num_columns x column
//!            column:   u16 num_preds  num_preds x (u8 op, u32 value_id)
//!                      u32 interval_lo  u32 interval_hi
//! Response   (kind 2): u64 request_id  u8 status  f64 value
//! TableQuery (kind 3): u64 request_id  u16 name_len  name (utf-8)
//! TableInfo  (kind 4): u64 request_id  u8 status  u32 table_id
//!                      u16 num_columns  num_columns x u32 ndv
//! Ingest     (kind 5): u64 request_id  u32 table_id
//!                      u16 num_columns  num_columns x u32 value_id
//! Feedback   (kind 6): u64 request_id  u32 table_id  f64 actual
//!                      u16 num_columns  num_columns x column
//! ```
//!
//! Requests and responses are correlated by `request_id`, which is what
//! makes connections **pipelined**: a client may have many requests in
//! flight and responses come back in whatever order shard workers complete
//! them. `deadline_us` is a per-request budget in microseconds measured from
//! admission (`0` defers to the server's configured default).
//!
//! Ingest and feedback frames feed the online-learning loop
//! ([`crate::online`]): an ingest appends one dictionary-encoded row (the
//! answering response's `value` is the table's new row count), and a
//! feedback reports the observed true cardinality of an executed query
//! (`actual`), using the same per-column predicate layout as a request.
//! Both are acknowledged with a plain response frame.

use duet_core::IdPredicate;
use duet_query::PredOp;

/// Connection magic: the first four bytes every conforming client sends.
pub const MAGIC: [u8; 4] = *b"DUET";

/// Protocol version carried in the preamble.
pub const VERSION: u16 = 1;

/// Byte length of the connection preamble.
pub const PREAMBLE_LEN: usize = 8;

/// Default cap on a frame body; a declared length beyond the cap is a
/// [`DecodeError::Oversized`] protocol error (it can never be satisfied by
/// waiting for more bytes).
pub const DEFAULT_MAX_FRAME_LEN: usize = 1 << 20;

/// Frame body length of every [`encode_response`] frame (fixed-size).
pub const RESPONSE_BODY_LEN: usize = 1 + 8 + 1 + 8;

const KIND_REQUEST: u8 = 1;
const KIND_RESPONSE: u8 = 2;
const KIND_TABLE_QUERY: u8 = 3;
const KIND_TABLE_INFO: u8 = 4;
const KIND_INGEST: u8 = 5;
const KIND_FEEDBACK: u8 = 6;

/// Outcome of one wire request, as carried in a response frame's status
/// byte. Mirrors the typed in-process [`crate::ServeError`] surface:
/// admission control and deadline shedding become first-class wire statuses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The request was served; the frame's `value` is the estimate.
    Ok = 0,
    /// Shed at admission: the table's shard queue (or the connection's
    /// pipeline window) was full. The in-process `ServeError::Overloaded`.
    Overloaded = 1,
    /// The deadline budget expired while the request was queued; it was
    /// dropped at dequeue. The in-process `ServeError::DeadlineExceeded`.
    DeadlineExceeded = 2,
    /// No table is registered under the requested id or name.
    UnknownTable = 3,
    /// The payload was understood but refused: an ingest row with the wrong
    /// width or an out-of-dictionary value id, or feedback bound to a stale
    /// slot (the table was re-registered mid-flight — the wire face of the
    /// in-process `FeedbackError::StaleSlot`).
    Rejected = 4,
    /// The request's batch hit an internal fault (a panic caught by shard
    /// supervision); the worker was respawned. The wire face of the
    /// in-process `ServeError::Internal` — retrying usually succeeds.
    Internal = 5,
}

impl Status {
    fn from_u8(byte: u8) -> Result<Self, DecodeError> {
        match byte {
            0 => Ok(Status::Ok),
            1 => Ok(Status::Overloaded),
            2 => Ok(Status::DeadlineExceeded),
            3 => Ok(Status::UnknownTable),
            4 => Ok(Status::Rejected),
            5 => Ok(Status::Internal),
            other => Err(DecodeError::UnknownStatus(other)),
        }
    }
}

/// Why a byte stream failed to decode. Every variant is a *protocol* error:
/// the connection is beyond repair and must be closed (an incomplete frame
/// is not an error — [`next_frame`] reports it as `Ok(None)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The connection preamble did not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The preamble carried a version this server does not speak.
    UnsupportedVersion(u16),
    /// A frame body began with an unknown kind byte.
    UnknownKind(u8),
    /// A frame declared a body length larger than the configured cap.
    Oversized {
        /// Declared body length.
        len: usize,
        /// Configured cap.
        max: usize,
    },
    /// A request predicate carried an operator byte outside the known set.
    UnknownOp(u8),
    /// A response carried a status byte outside the known set.
    UnknownStatus(u8),
    /// A frame body's internal structure disagreed with its declared length
    /// (truncated field, trailing bytes, bad utf-8, ...).
    Malformed(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic(got) => write!(f, "bad connection magic {got:02x?}"),
            DecodeError::UnsupportedVersion(v) => write!(f, "unsupported protocol version {v}"),
            DecodeError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            DecodeError::Oversized { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte cap")
            }
            DecodeError::UnknownOp(op) => write!(f, "unknown predicate operator byte {op}"),
            DecodeError::UnknownStatus(s) => write!(f, "unknown response status byte {s}"),
            DecodeError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn op_to_u8(op: PredOp) -> u8 {
    op as u8
}

fn op_from_u8(byte: u8) -> Result<PredOp, DecodeError> {
    match byte {
        0 => Ok(PredOp::Eq),
        1 => Ok(PredOp::Gt),
        2 => Ok(PredOp::Lt),
        3 => Ok(PredOp::Ge),
        4 => Ok(PredOp::Le),
        other => Err(DecodeError::UnknownOp(other)),
    }
}

// ---------------------------------------------------------------------------
// Encoding: append-only writers over a caller-owned buffer.
// ---------------------------------------------------------------------------

#[inline]
fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

#[inline]
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Reserve a 4-byte length prefix, returning its offset; [`finish_frame`]
/// backfills it once the body is written.
fn start_frame(buf: &mut Vec<u8>) -> usize {
    let at = buf.len();
    put_u32(buf, 0);
    at
}

fn finish_frame(buf: &mut [u8], len_at: usize) {
    let body_len = (buf.len() - len_at - 4) as u32;
    buf[len_at..len_at + 4].copy_from_slice(&body_len.to_le_bytes());
}

/// Append the 8-byte connection preamble (magic + version).
pub fn encode_preamble(buf: &mut Vec<u8>) {
    buf.extend_from_slice(&MAGIC);
    put_u16(buf, VERSION);
    put_u16(buf, 0); // reserved
}

/// Validate a connection preamble (`bytes` must hold at least
/// [`PREAMBLE_LEN`] bytes; only the first [`PREAMBLE_LEN`] are read).
pub fn decode_preamble(bytes: &[u8]) -> Result<(), DecodeError> {
    debug_assert!(bytes.len() >= PREAMBLE_LEN);
    if bytes[..4] != MAGIC {
        return Err(DecodeError::BadMagic([bytes[0], bytes[1], bytes[2], bytes[3]]));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion(version));
    }
    Ok(())
}

/// Append one estimation-request frame.
///
/// `preds[c]` / `intervals[c]` are the canonical per-column id-space
/// predicates and valid-id interval of column `c` (the encoder-facing form;
/// see the [module docs](self)). `deadline_us == 0` means "use the server's
/// default deadline budget".
pub fn encode_request(
    buf: &mut Vec<u8>,
    request_id: u64,
    table_id: u32,
    deadline_us: u32,
    preds: &[Vec<IdPredicate>],
    intervals: &[(u32, u32)],
) {
    debug_assert_eq!(preds.len(), intervals.len(), "one interval per column");
    let frame = start_frame(buf);
    buf.push(KIND_REQUEST);
    put_u64(buf, request_id);
    put_u32(buf, table_id);
    put_u32(buf, deadline_us);
    put_u16(buf, preds.len() as u16);
    for (col_preds, &(lo, hi)) in preds.iter().zip(intervals) {
        put_u16(buf, col_preds.len() as u16);
        for p in col_preds {
            buf.push(op_to_u8(p.op));
            put_u32(buf, p.value_id);
        }
        put_u32(buf, lo);
        put_u32(buf, hi);
    }
    finish_frame(buf, frame);
}

/// Append one response frame (fixed [`RESPONSE_BODY_LEN`]-byte body).
pub fn encode_response(buf: &mut Vec<u8>, request_id: u64, status: Status, value: f64) {
    let frame = start_frame(buf);
    buf.push(KIND_RESPONSE);
    put_u64(buf, request_id);
    buf.push(status as u8);
    buf.extend_from_slice(&value.to_le_bytes());
    finish_frame(buf, frame);
}

/// Append one table-resolution query frame (name → dense table id + schema).
pub fn encode_table_query(buf: &mut Vec<u8>, request_id: u64, name: &str) {
    let frame = start_frame(buf);
    buf.push(KIND_TABLE_QUERY);
    put_u64(buf, request_id);
    put_u16(buf, name.len() as u16);
    buf.extend_from_slice(name.as_bytes());
    finish_frame(buf, frame);
}

/// Append one table-info response frame: the dense table id plus the
/// per-column distinct-value counts a client needs to build valid id-space
/// predicates and intervals.
pub fn encode_table_info(
    buf: &mut Vec<u8>,
    request_id: u64,
    status: Status,
    table_id: u32,
    ndvs: &[u32],
) {
    let frame = start_frame(buf);
    buf.push(KIND_TABLE_INFO);
    put_u64(buf, request_id);
    buf.push(status as u8);
    put_u32(buf, table_id);
    put_u16(buf, ndvs.len() as u16);
    for &ndv in ndvs {
        put_u32(buf, ndv);
    }
    finish_frame(buf, frame);
}

/// Append one ingest frame: a dictionary-encoded row (`ids[c]` is column
/// `c`'s value id) to append to table `table_id`. Acknowledged with a
/// response frame whose `value` is the table's new row count.
pub fn encode_ingest(buf: &mut Vec<u8>, request_id: u64, table_id: u32, ids: &[u32]) {
    let frame = start_frame(buf);
    buf.push(KIND_INGEST);
    put_u64(buf, request_id);
    put_u32(buf, table_id);
    put_u16(buf, ids.len() as u16);
    for &id in ids {
        put_u32(buf, id);
    }
    finish_frame(buf, frame);
}

/// Append one feedback frame: the observed true cardinality `actual` of an
/// executed query against table `table_id`, in the same canonical per-column
/// predicate/interval layout as [`encode_request`]. Acknowledged with a
/// response frame.
pub fn encode_feedback(
    buf: &mut Vec<u8>,
    request_id: u64,
    table_id: u32,
    actual: f64,
    preds: &[Vec<IdPredicate>],
    intervals: &[(u32, u32)],
) {
    debug_assert_eq!(preds.len(), intervals.len(), "one interval per column");
    let frame = start_frame(buf);
    buf.push(KIND_FEEDBACK);
    put_u64(buf, request_id);
    put_u32(buf, table_id);
    buf.extend_from_slice(&actual.to_le_bytes());
    put_u16(buf, preds.len() as u16);
    for (col_preds, &(lo, hi)) in preds.iter().zip(intervals) {
        put_u16(buf, col_preds.len() as u16);
        for p in col_preds {
            buf.push(op_to_u8(p.op));
            put_u32(buf, p.value_id);
        }
        put_u32(buf, lo);
        put_u32(buf, hi);
    }
    finish_frame(buf, frame);
}

// ---------------------------------------------------------------------------
// Decoding: borrowed views over the connection buffer.
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian cursor over one frame body.
struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.bytes.len() - self.at < n {
            return Err(DecodeError::Malformed(what));
        }
        let out = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    fn u8(&mut self, what: &'static str) -> Result<u8, DecodeError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &'static str) -> Result<u16, DecodeError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &'static str) -> Result<u32, DecodeError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &'static str) -> Result<u64, DecodeError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    fn f64(&mut self, what: &'static str) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn done(&self, what: &'static str) -> Result<(), DecodeError> {
        if self.at != self.bytes.len() {
            return Err(DecodeError::Malformed(what));
        }
        Ok(())
    }
}

/// A decoded estimation request, borrowing the column payload from the
/// connection buffer. The column region is fully validated at decode time,
/// so [`RequestView::read_into`] is infallible.
#[derive(Debug, Clone, Copy)]
pub struct RequestView<'a> {
    /// Client-chosen correlation id echoed in the response.
    pub request_id: u64,
    /// Dense registry id of the target table.
    pub table_id: u32,
    /// Deadline budget in microseconds from admission (0 = server default).
    pub deadline_us: u32,
    num_columns: u16,
    columns: &'a [u8],
}

impl RequestView<'_> {
    /// Number of columns carried by this request.
    pub fn num_columns(&self) -> usize {
        self.num_columns as usize
    }

    /// Materialize the request's predicates and intervals into reusable
    /// buffers: inner `Vec`s keep their capacity across calls, so decoding a
    /// steady stream of same-shaped requests allocates nothing once warm.
    pub fn read_into(&self, preds: &mut Vec<Vec<IdPredicate>>, intervals: &mut Vec<(u32, u32)>) {
        read_columns(self.columns, self.num_columns as usize, preds, intervals);
    }
}

/// Materialize a pre-validated column region (the shared request/feedback
/// layout) into reusable buffers — see [`RequestView::read_into`].
fn read_columns(
    columns: &[u8],
    ncols: usize,
    preds: &mut Vec<Vec<IdPredicate>>,
    intervals: &mut Vec<(u32, u32)>,
) {
    // Reuse the live prefix's inner allocations; only a shape change
    // (different column count than the previous request) reallocates.
    if preds.len() > ncols {
        preds.truncate(ncols);
    }
    for col in preds.iter_mut() {
        col.clear();
    }
    while preds.len() < ncols {
        preds.push(Vec::new());
    }
    intervals.clear();

    let mut r = Reader::new(columns);
    for col in preds.iter_mut() {
        let npreds = r.u16("validated").expect("column region validated at decode");
        for _ in 0..npreds {
            let op =
                op_from_u8(r.u8("validated").expect("validated")).expect("ops validated at decode");
            let value_id = r.u32("validated").expect("validated");
            col.push(IdPredicate { op, value_id });
        }
        let lo = r.u32("validated").expect("validated");
        let hi = r.u32("validated").expect("validated");
        intervals.push((lo, hi));
    }
}

/// Walk (and thereby validate) a `num_columns`-column region of the shared
/// request/feedback layout; errors make the frame malformed at decode time
/// so the later `read_columns` pass is infallible.
fn validate_columns(r: &mut Reader<'_>, num_columns: u16) -> Result<(), DecodeError> {
    for _ in 0..num_columns {
        let npreds = r.u16("predicate count truncated")?;
        for _ in 0..npreds {
            op_from_u8(r.u8("predicate truncated")?)?;
            r.u32("predicate value truncated")?;
        }
        r.u32("interval lo truncated")?;
        r.u32("interval hi truncated")?;
    }
    Ok(())
}

/// A decoded response frame (fixed-size, so it is owned rather than
/// borrowed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseFrame {
    /// Correlation id of the request this answers.
    pub request_id: u64,
    /// Outcome of the request.
    pub status: Status,
    /// The estimate when `status` is [`Status::Ok`]; `0.0` otherwise.
    pub value: f64,
}

/// A decoded table-resolution query.
#[derive(Debug, Clone, Copy)]
pub struct TableQueryView<'a> {
    /// Correlation id echoed in the [`TableInfoView`] response.
    pub request_id: u64,
    /// Registered table name to resolve.
    pub name: &'a str,
}

/// A decoded table-info response.
#[derive(Debug, Clone, Copy)]
pub struct TableInfoView<'a> {
    /// Correlation id of the query this answers.
    pub request_id: u64,
    /// [`Status::Ok`] or [`Status::UnknownTable`].
    pub status: Status,
    /// Dense table id (meaningless unless `status` is `Ok`).
    pub table_id: u32,
    ndvs: &'a [u8],
}

impl TableInfoView<'_> {
    /// Number of columns in the resolved table's schema.
    pub fn num_columns(&self) -> usize {
        self.ndvs.len() / 4
    }

    /// Copy the per-column distinct-value counts into `out`.
    pub fn read_ndvs_into(&self, out: &mut Vec<u32>) {
        out.clear();
        for chunk in self.ndvs.chunks_exact(4) {
            out.push(u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
    }
}

/// A decoded ingest frame: one dictionary-encoded row to append.
#[derive(Debug, Clone, Copy)]
pub struct IngestView<'a> {
    /// Correlation id echoed in the acknowledging response.
    pub request_id: u64,
    /// Dense registry id of the target table.
    pub table_id: u32,
    ids: &'a [u8],
}

impl IngestView<'_> {
    /// Number of columns in the ingested row.
    pub fn num_columns(&self) -> usize {
        self.ids.len() / 4
    }

    /// Copy the row's per-column value ids into `out` (capacity-reusing).
    pub fn read_ids_into(&self, out: &mut Vec<u32>) {
        out.clear();
        for chunk in self.ids.chunks_exact(4) {
            out.push(u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
    }
}

/// A decoded feedback frame: an executed query's canonical predicates plus
/// its observed true cardinality. The column region is validated at decode
/// time, so [`FeedbackView::read_into`] is infallible.
#[derive(Debug, Clone, Copy)]
pub struct FeedbackView<'a> {
    /// Correlation id echoed in the acknowledging response.
    pub request_id: u64,
    /// Dense registry id of the target table.
    pub table_id: u32,
    /// Observed true cardinality of the query.
    pub actual: f64,
    num_columns: u16,
    columns: &'a [u8],
}

impl FeedbackView<'_> {
    /// Number of columns carried by this feedback's query.
    pub fn num_columns(&self) -> usize {
        self.num_columns as usize
    }

    /// Materialize the query's predicates and intervals into reusable
    /// buffers (same capacity-reuse contract as [`RequestView::read_into`]).
    pub fn read_into(&self, preds: &mut Vec<Vec<IdPredicate>>, intervals: &mut Vec<(u32, u32)>) {
        read_columns(self.columns, self.num_columns as usize, preds, intervals);
    }
}

/// One complete, validated frame borrowed from the connection buffer.
#[derive(Debug, Clone, Copy)]
pub enum FrameView<'a> {
    /// An estimation request (client → server).
    Request(RequestView<'a>),
    /// An estimation response (server → client).
    Response(ResponseFrame),
    /// A table-resolution query (client → server).
    TableQuery(TableQueryView<'a>),
    /// A table-resolution response (server → client).
    TableInfo(TableInfoView<'a>),
    /// A row-ingest command (client → server, online learning).
    Ingest(IngestView<'a>),
    /// A true-cardinality feedback report (client → server, online
    /// learning).
    Feedback(FeedbackView<'a>),
}

/// Decode the next frame from `buf`.
///
/// Returns `Ok(None)` when `buf` holds only a partial frame (read more
/// bytes and retry — the split-read case), `Ok(Some((frame, consumed)))`
/// for a complete frame (`consumed` covers the length prefix and body), or a
/// typed [`DecodeError`] when the stream is unrecoverable.
pub fn next_frame(
    buf: &[u8],
    max_len: usize,
) -> Result<Option<(FrameView<'_>, usize)>, DecodeError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let body_len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if body_len > max_len {
        return Err(DecodeError::Oversized { len: body_len, max: max_len });
    }
    if body_len == 0 {
        return Err(DecodeError::Malformed("empty frame body"));
    }
    if buf.len() < 4 + body_len {
        return Ok(None);
    }
    let body = &buf[4..4 + body_len];
    let frame = decode_body(body)?;
    Ok(Some((frame, 4 + body_len)))
}

fn decode_body(body: &[u8]) -> Result<FrameView<'_>, DecodeError> {
    let mut r = Reader::new(body);
    let kind = r.u8("missing frame kind")?;
    match kind {
        KIND_REQUEST => {
            let request_id = r.u64("request id truncated")?;
            let table_id = r.u32("table id truncated")?;
            let deadline_us = r.u32("deadline truncated")?;
            let num_columns = r.u16("column count truncated")?;
            let columns_at = r.at;
            // Validate the whole column region now, so read_into() is
            // infallible later.
            validate_columns(&mut r, num_columns)?;
            r.done("trailing bytes after request columns")?;
            Ok(FrameView::Request(RequestView {
                request_id,
                table_id,
                deadline_us,
                num_columns,
                columns: &body[columns_at..],
            }))
        }
        KIND_RESPONSE => {
            let request_id = r.u64("response id truncated")?;
            let status = Status::from_u8(r.u8("response status truncated")?)?;
            let value = r.f64("response value truncated")?;
            r.done("trailing bytes after response")?;
            Ok(FrameView::Response(ResponseFrame { request_id, status, value }))
        }
        KIND_TABLE_QUERY => {
            let request_id = r.u64("table query id truncated")?;
            let name_len = r.u16("table name length truncated")? as usize;
            let name_bytes = r.take(name_len, "table name truncated")?;
            r.done("trailing bytes after table name")?;
            let name = std::str::from_utf8(name_bytes)
                .map_err(|_| DecodeError::Malformed("table name is not utf-8"))?;
            Ok(FrameView::TableQuery(TableQueryView { request_id, name }))
        }
        KIND_TABLE_INFO => {
            let request_id = r.u64("table info id truncated")?;
            let status = Status::from_u8(r.u8("table info status truncated")?)?;
            let table_id = r.u32("table info id field truncated")?;
            let num_columns = r.u16("table info column count truncated")? as usize;
            let ndvs = r.take(4 * num_columns, "table info ndvs truncated")?;
            r.done("trailing bytes after table info")?;
            Ok(FrameView::TableInfo(TableInfoView { request_id, status, table_id, ndvs }))
        }
        KIND_INGEST => {
            let request_id = r.u64("ingest id truncated")?;
            let table_id = r.u32("ingest table id truncated")?;
            let num_columns = r.u16("ingest column count truncated")? as usize;
            let ids = r.take(4 * num_columns, "ingest ids truncated")?;
            r.done("trailing bytes after ingest ids")?;
            Ok(FrameView::Ingest(IngestView { request_id, table_id, ids }))
        }
        KIND_FEEDBACK => {
            let request_id = r.u64("feedback id truncated")?;
            let table_id = r.u32("feedback table id truncated")?;
            let actual = r.f64("feedback cardinality truncated")?;
            let num_columns = r.u16("feedback column count truncated")?;
            let columns_at = r.at;
            validate_columns(&mut r, num_columns)?;
            r.done("trailing bytes after feedback columns")?;
            Ok(FrameView::Feedback(FeedbackView {
                request_id,
                table_id,
                actual,
                num_columns,
                columns: &body[columns_at..],
            }))
        }
        other => Err(DecodeError::UnknownKind(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request_bytes() -> Vec<u8> {
        let preds = vec![
            vec![IdPredicate { op: PredOp::Ge, value_id: 3 }],
            vec![],
            vec![
                IdPredicate { op: PredOp::Eq, value_id: 7 },
                IdPredicate { op: PredOp::Le, value_id: 9 },
            ],
        ];
        let intervals = vec![(3u32, 12u32), (0, 40), (7, 10)];
        let mut buf = Vec::new();
        encode_request(&mut buf, 42, 1, 250, &preds, &intervals);
        buf
    }

    #[test]
    fn request_round_trips() {
        let buf = sample_request_bytes();
        let (frame, consumed) = next_frame(&buf, DEFAULT_MAX_FRAME_LEN).unwrap().unwrap();
        assert_eq!(consumed, buf.len());
        let FrameView::Request(req) = frame else { panic!("expected request") };
        assert_eq!((req.request_id, req.table_id, req.deadline_us), (42, 1, 250));
        assert_eq!(req.num_columns(), 3);
        let (mut preds, mut intervals) = (Vec::new(), Vec::new());
        req.read_into(&mut preds, &mut intervals);
        assert_eq!(intervals, vec![(3, 12), (0, 40), (7, 10)]);
        assert_eq!(preds[0], vec![IdPredicate { op: PredOp::Ge, value_id: 3 }]);
        assert!(preds[1].is_empty());
        assert_eq!(preds[2].len(), 2);
    }

    #[test]
    fn partial_frames_ask_for_more_bytes() {
        let buf = sample_request_bytes();
        for cut in 0..buf.len() {
            assert!(
                next_frame(&buf[..cut], DEFAULT_MAX_FRAME_LEN).unwrap().is_none(),
                "prefix of {cut} bytes must be incomplete, not an error"
            );
        }
    }

    #[test]
    fn response_preserves_value_bits() {
        let mut buf = Vec::new();
        let value = f64::from_bits(0x7ff8_0000_dead_beef); // a NaN payload
        encode_response(&mut buf, 9, Status::Ok, value);
        let (frame, _) = next_frame(&buf, DEFAULT_MAX_FRAME_LEN).unwrap().unwrap();
        let FrameView::Response(resp) = frame else { panic!("expected response") };
        assert_eq!(resp.request_id, 9);
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.value.to_bits(), value.to_bits());
    }

    #[test]
    fn typed_errors_for_corruption() {
        // Unknown kind.
        let mut buf = Vec::new();
        let at = start_frame(&mut buf);
        buf.push(99);
        finish_frame(&mut buf, at);
        assert_eq!(
            next_frame(&buf, DEFAULT_MAX_FRAME_LEN).unwrap_err(),
            DecodeError::UnknownKind(99)
        );

        // Oversized declared length.
        let huge = (DEFAULT_MAX_FRAME_LEN as u32 + 1).to_le_bytes().to_vec();
        assert!(matches!(
            next_frame(&huge, DEFAULT_MAX_FRAME_LEN).unwrap_err(),
            DecodeError::Oversized { .. }
        ));

        // Truncated interior: declare a column but omit its bytes.
        let mut buf = Vec::new();
        let at = start_frame(&mut buf);
        buf.push(KIND_REQUEST);
        put_u64(&mut buf, 1);
        put_u32(&mut buf, 0);
        put_u32(&mut buf, 0);
        put_u16(&mut buf, 1); // one column ...
        finish_frame(&mut buf, at); // ... but no column bytes
        assert!(matches!(
            next_frame(&buf, DEFAULT_MAX_FRAME_LEN).unwrap_err(),
            DecodeError::Malformed(_)
        ));

        // Bad preamble.
        let mut pre = Vec::new();
        encode_preamble(&mut pre);
        assert!(decode_preamble(&pre).is_ok());
        pre[0] = b'X';
        assert!(matches!(decode_preamble(&pre).unwrap_err(), DecodeError::BadMagic(_)));
        let mut pre = Vec::new();
        encode_preamble(&mut pre);
        pre[4] = 9;
        assert_eq!(decode_preamble(&pre).unwrap_err(), DecodeError::UnsupportedVersion(9));
    }

    #[test]
    fn ingest_round_trips_and_rejects_truncation() {
        let mut buf = Vec::new();
        encode_ingest(&mut buf, 77, 3, &[1, 0, 9, 2]);
        let (frame, consumed) = next_frame(&buf, DEFAULT_MAX_FRAME_LEN).unwrap().unwrap();
        assert_eq!(consumed, buf.len());
        let FrameView::Ingest(ingest) = frame else { panic!("expected ingest") };
        assert_eq!((ingest.request_id, ingest.table_id, ingest.num_columns()), (77, 3, 4));
        let mut ids = Vec::new();
        ingest.read_ids_into(&mut ids);
        assert_eq!(ids, vec![1, 0, 9, 2]);
        // Every strict byte prefix is "need more", never an error.
        for cut in 0..buf.len() {
            assert!(next_frame(&buf[..cut], DEFAULT_MAX_FRAME_LEN).unwrap().is_none());
        }
        // A declared column count the body cannot satisfy is malformed.
        let mut bad = Vec::new();
        let at = start_frame(&mut bad);
        bad.push(KIND_INGEST);
        put_u64(&mut bad, 1);
        put_u32(&mut bad, 0);
        put_u16(&mut bad, 2); // two columns ...
        put_u32(&mut bad, 5); // ... one id
        finish_frame(&mut bad, at);
        assert!(matches!(
            next_frame(&bad, DEFAULT_MAX_FRAME_LEN).unwrap_err(),
            DecodeError::Malformed(_)
        ));
    }

    #[test]
    fn feedback_round_trips_with_request_shaped_columns() {
        let preds = vec![vec![IdPredicate { op: PredOp::Eq, value_id: 4 }], vec![]];
        let intervals = vec![(4u32, 5u32), (0, 12)];
        let mut buf = Vec::new();
        encode_feedback(&mut buf, 21, 1, 12345.0, &preds, &intervals);
        let (frame, consumed) = next_frame(&buf, DEFAULT_MAX_FRAME_LEN).unwrap().unwrap();
        assert_eq!(consumed, buf.len());
        let FrameView::Feedback(fb) = frame else { panic!("expected feedback") };
        assert_eq!((fb.request_id, fb.table_id, fb.num_columns()), (21, 1, 2));
        assert_eq!(fb.actual, 12345.0);
        let (mut got_preds, mut got_intervals) = (Vec::new(), Vec::new());
        fb.read_into(&mut got_preds, &mut got_intervals);
        assert_eq!(got_preds, preds);
        assert_eq!(got_intervals, intervals);
        for cut in 0..buf.len() {
            assert!(next_frame(&buf[..cut], DEFAULT_MAX_FRAME_LEN).unwrap().is_none());
        }
    }

    #[test]
    fn rejected_status_round_trips() {
        let mut buf = Vec::new();
        encode_response(&mut buf, 2, Status::Rejected, 0.0);
        let (frame, _) = next_frame(&buf, DEFAULT_MAX_FRAME_LEN).unwrap().unwrap();
        let FrameView::Response(resp) = frame else { panic!("expected response") };
        assert_eq!(resp.status, Status::Rejected);
        assert_eq!(Status::from_u8(5), Ok(Status::Internal));
        assert_eq!(Status::from_u8(6), Err(DecodeError::UnknownStatus(6)));
    }

    #[test]
    fn table_query_and_info_round_trip() {
        let mut buf = Vec::new();
        encode_table_query(&mut buf, 5, "census");
        encode_table_info(&mut buf, 5, Status::Ok, 2, &[10, 20, 30]);
        let (frame, used) = next_frame(&buf, DEFAULT_MAX_FRAME_LEN).unwrap().unwrap();
        let FrameView::TableQuery(q) = frame else { panic!("expected table query") };
        assert_eq!((q.request_id, q.name), (5, "census"));
        let (frame, _) = next_frame(&buf[used..], DEFAULT_MAX_FRAME_LEN).unwrap().unwrap();
        let FrameView::TableInfo(info) = frame else { panic!("expected table info") };
        assert_eq!((info.request_id, info.status, info.table_id), (5, Status::Ok, 2));
        let mut ndvs = Vec::new();
        info.read_ndvs_into(&mut ndvs);
        assert_eq!(ndvs, vec![10, 20, 30]);
    }
}
