//! Sharded LRU result cache keyed on canonicalized predicate intervals.
//!
//! A Duet estimate is a pure function of (a) the id-space predicates fed to
//! the encoder and (b) the per-column valid-id intervals used for the
//! probability mask — the textual form of the query is irrelevant. The cache
//! key therefore encodes exactly those two, plus the model generation, so:
//!
//! * queries that differ only in predicate order across columns, or in
//!   literals that map to the same dictionary ids, share one entry;
//! * a hit is guaranteed to return the very value a miss would have
//!   computed (same model inputs, deterministic forward pass);
//! * entries computed against an old model die with its generation — a
//!   hot-swap invalidates the whole table implicitly, with no flush stall.
//!
//! The store is a vector of independently locked LRU shards, selected by key
//! hash, so concurrent clients rarely contend on the same mutex.

use duet_core::{query_to_id_predicates, DuetEstimator, IdPredicate};
use duet_data::Table;
use duet_query::Query;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A canonical, hashable description of one estimation request.
///
/// The hash over the key words is computed once at construction and reused
/// for both shard selection and the shard map's probe, so a lookup never
/// hashes the word slice twice. Equality still compares the words, so hash
/// collisions cannot alias two different requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    words: Box<[u64]>,
    hash: u64,
}

impl Hash for CacheKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

impl CacheKey {
    fn new(words: Vec<u64>) -> Self {
        let mut hasher = DefaultHasher::new();
        words.hash(&mut hasher);
        Self { words: words.into_boxed_slice(), hash: hasher.finish() }
    }

    /// The same request re-labelled with a different model generation.
    ///
    /// The batch worker uses this to store results under the generation of
    /// the weights it *actually* ran, which can be newer than the generation
    /// the client observed when it built the key (a swap may land while the
    /// request is queued).
    pub fn with_generation(&self, generation: u64) -> CacheKey {
        if self.words[0] == generation {
            return self.clone();
        }
        let mut words = self.words.to_vec();
        words[0] = generation;
        CacheKey::new(words)
    }
}

/// Build the canonical key for `query` against `estimator`'s schema at the
/// given model `generation`.
///
/// Layout (all `u64` words): the generation, then for every constrained
/// column its index, its predicate list as `(op, value_id)` pairs in query
/// order (order matters to the encoder when no MPSN is configured), then the
/// column's canonical valid-id interval.
pub fn canonical_key(estimator: &DuetEstimator, generation: u64, query: &Query) -> CacheKey {
    let schema = estimator.schema();
    let preds = query_to_id_predicates(schema, query);
    let intervals = query.column_intervals(schema);
    canonical_key_from_parts(schema, generation, &preds, &intervals)
}

/// [`canonical_key`] for a query whose id-space predicates and column
/// intervals were already computed — the serving hot path uses this so the
/// same encoding feeds the key *and* the batched forward pass.
pub fn canonical_key_from_parts(
    schema: &Table,
    generation: u64,
    preds: &[Vec<IdPredicate>],
    intervals: &[(u32, u32)],
) -> CacheKey {
    let num_preds: usize = preds.iter().map(Vec::len).sum();
    let mut words = Vec::with_capacity(1 + 3 * num_preds + 2);
    words.push(generation);
    for (col, col_preds) in preds.iter().enumerate() {
        let (lo, hi) = intervals[col];
        let full = lo == 0 && hi as usize == schema.column(col).ndv();
        if col_preds.is_empty() && full {
            continue; // unconstrained column: contributes nothing
        }
        words.push((col as u64) << 32 | col_preds.len() as u64);
        for p in col_preds {
            words.push((p.op as u64) << 32 | u64::from(p.value_id));
        }
        words.push(u64::from(lo) << 32 | u64::from(hi));
    }
    CacheKey::new(words)
}

/// One entry of a [`HotSet`] snapshot: a hot request's canonical key
/// (generation 0) plus everything needed to re-estimate it under a new
/// model.
#[derive(Debug, Clone)]
pub struct HotQuery {
    /// Canonical cache key of the request, re-labelled to generation 0 (the
    /// per-generation label is re-applied at insert time).
    pub key: CacheKey,
    /// Per-column id-space predicates of the request.
    pub preds: Vec<Vec<IdPredicate>>,
    /// Per-column valid-id intervals of the request.
    pub intervals: Vec<(u32, u32)>,
    /// Observations recorded for this request (aged, not exact).
    pub hits: u64,
}

// Snapshots feed `DuetEstimator::estimate_encoded_batch_with` directly.
impl AsRef<[Vec<IdPredicate>]> for HotQuery {
    fn as_ref(&self) -> &[Vec<IdPredicate>] {
        &self.preds
    }
}

impl AsRef<[(u32, u32)]> for HotQuery {
    fn as_ref(&self) -> &[(u32, u32)] {
        &self.intervals
    }
}

/// A small, aged frequency tracker of a table's hottest cache keys, used to
/// **replay the hot set into the cache after a model hot-swap**.
///
/// A swap invalidates the whole result cache at once (keys embed the model
/// generation), so without help the post-swap window serves every request
/// through a forward pass — a p99 cliff exactly when the system also pays
/// for swap bookkeeping. The server records each cacheable request here at
/// admission (hit or miss, so the hottest keys — which by definition are
/// served from cache and never reach a worker — still accumulate counts),
/// and [`crate::DuetServer::hot_swap`] re-estimates the tracked set under
/// the new weights, seeding the fresh generation's cache before traffic
/// asks for it.
///
/// Replacement is LFU with aging: a new key observed while the set is full
/// decays the coldest entry's count and takes its slot once that reaches
/// zero, so yesterday's hot keys cannot squat forever. The set is
/// deliberately tiny (default 64 entries, see
/// [`crate::ServeConfig::hot_keys`]) — it exists to absorb the post-swap
/// stampede on the head of the popularity distribution, not to mirror the
/// cache.
#[derive(Debug)]
pub struct HotSet {
    capacity: usize,
    entries: Mutex<Vec<HotQuery>>,
}

impl HotSet {
    /// A tracker keeping at most `capacity` hot keys (0 disables tracking).
    pub fn new(capacity: usize) -> Self {
        Self { capacity, entries: Mutex::new(Vec::with_capacity(capacity)) }
    }

    /// Record one observation of `key` (any generation). The encodings are
    /// cloned only when the key first enters the set; a repeat observation
    /// is a counter bump under the lock.
    ///
    /// **Best-effort under contention**: the tracker sits on the serving
    /// front door, ahead of the sharded cache, so it must never become the
    /// serialization point the cache sharding exists to avoid. If another
    /// thread holds the lock the observation is simply dropped — a
    /// popularity *sample* loses nothing from subsampling under load, and
    /// the hot path never blocks here.
    pub fn observe(&self, key: &CacheKey, preds: &[Vec<IdPredicate>], intervals: &[(u32, u32)]) {
        if self.capacity == 0 {
            return;
        }
        let Ok(mut entries) = self.entries.try_lock() else { return };
        // Generation-invariant match: compare every key word but the
        // generation label (word 0).
        if let Some(entry) = entries.iter_mut().find(|e| e.key.words[1..] == key.words[1..]) {
            entry.hits += 1;
            return;
        }
        if entries.len() < self.capacity {
            entries.push(HotQuery {
                key: key.with_generation(0),
                preds: preds.to_vec(),
                intervals: intervals.to_vec(),
                hits: 1,
            });
            return;
        }
        // Full: age the coldest entry; replace it once its count drains.
        let coldest = entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.hits)
            .map(|(i, _)| i)
            .expect("capacity > 0");
        let entry = &mut entries[coldest];
        entry.hits = entry.hits.saturating_sub(1);
        if entry.hits == 0 {
            *entry = HotQuery {
                key: key.with_generation(0),
                preds: preds.to_vec(),
                intervals: intervals.to_vec(),
                hits: 1,
            };
        }
    }

    /// The current hot set, hottest first (clones; the tracker keeps
    /// recording while the caller replays).
    pub fn snapshot(&self) -> Vec<HotQuery> {
        let mut out = self.entries.lock().expect("hot set poisoned").clone();
        out.sort_by_key(|q| std::cmp::Reverse(q.hits));
        out
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("hot set poisoned").len()
    }

    /// True if nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

const NIL: usize = usize::MAX;

struct Node {
    key: CacheKey,
    value: f64,
    prev: usize,
    next: usize,
}

/// One independently locked LRU shard: hash map into an intrusive
/// doubly-linked recency list stored in a slab.
struct LruShard {
    map: HashMap<CacheKey, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl LruShard {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity),
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn get(&mut self, key: &CacheKey) -> Option<f64> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(self.nodes[idx].value)
    }

    fn insert(&mut self, key: CacheKey, value: f64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.nodes[idx].value = value;
            self.unlink(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            self.unlink(victim);
            let node = &self.nodes[victim];
            self.map.remove(&node.key);
            self.free.push(victim);
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Node { key: key.clone(), value, prev: NIL, next: NIL };
                i
            }
            None => {
                self.nodes.push(Node { key: key.clone(), value, prev: NIL, next: NIL });
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
    }

    fn clear(&mut self) {
        self.map.clear();
        self.nodes.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

/// A sharded LRU cache of estimation results with hit/miss accounting.
///
/// The cache carries an **epoch counter** bumped by
/// [`ShardedCache::invalidate`] (which the server calls on every hot-swap).
/// A batch worker snapshots the epoch *before* resolving the model for a
/// batch and labels its inserts with it via [`ShardedCache::insert_tagged`]:
/// an insert whose epoch is stale by the time it reaches the shard lock is
/// dropped, and one that races ahead of the bump is removed by the purge
/// that follows it — so a swap landing mid-batch can no longer strand
/// unreachable old-generation entries in the LRU.
///
/// ```
/// use duet_core::{DuetConfig, DuetEstimator};
/// use duet_data::datasets::census_like;
/// use duet_query::WorkloadSpec;
/// use duet_serve::{canonical_key, ShardedCache};
///
/// let table = census_like(200, 2);
/// let cfg = DuetConfig::small().with_epochs(1);
/// let estimator = DuetEstimator::train_data_only(&table, &cfg, 2);
/// let query = WorkloadSpec::random(&table, 1, 3).generate(&table).remove(0);
///
/// let cache = ShardedCache::new(128, 4);
/// let key = canonical_key(&estimator, 0, &query); // generation 0 of this model
/// assert_eq!(cache.get(&key), None);
/// cache.insert(key.clone(), 42.0);
/// assert_eq!(cache.get(&key), Some(42.0));
///
/// // The hot-swap protocol: workers tag inserts with a pre-batch epoch
/// // snapshot; an invalidation in between drops the stale insert.
/// let epoch = cache.epoch();
/// cache.invalidate();
/// cache.insert_tagged(key.clone(), 7.0, epoch);
/// assert_eq!(cache.get(&key), None, "stale insert was rejected");
/// assert_eq!(cache.hits(), 1);
/// assert_eq!(cache.misses(), 2);
/// ```
pub struct ShardedCache {
    shards: Vec<Mutex<LruShard>>,
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShardedCache {
    /// A cache holding up to `capacity` entries total, spread over
    /// `num_shards` independently locked shards (`num_shards` floored at 1;
    /// a zero `capacity` disables storage but keeps accounting).
    ///
    /// The capacity is distributed exactly: when it does not divide evenly,
    /// the first `capacity % num_shards` shards hold one extra entry, so the
    /// sum never exceeds `capacity`. With fewer entries than shards the
    /// shard count is clamped to the capacity, so no shard is a dead
    /// zero-capacity region that its keys could never cache into.
    pub fn new(capacity: usize, num_shards: usize) -> Self {
        let num_shards = num_shards.clamp(1, capacity.max(1));
        let (base, remainder) = (capacity / num_shards, capacity % num_shards);
        Self {
            shards: (0..num_shards)
                .map(|i| Mutex::new(LruShard::new(base + usize::from(i < remainder))))
                .collect(),
            epoch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    // Shard locks tolerate poisoning (`into_inner`): workers insert into the
    // cache inside the supervised `catch_unwind` region, and the intrusive
    // LRU mutates only after its reads, so a panic between lock and unlock
    // leaves the shard structurally valid. Worst case is a stale or missing
    // entry — a cache is allowed both — while propagating the poison would
    // take down every later request that hashes to the shard.
    fn shard(&self, key: &CacheKey) -> &Mutex<LruShard> {
        &self.shards[(key.hash as usize) % self.shards.len()]
    }

    /// Look up a cached estimate, counting the hit or miss.
    pub fn get(&self, key: &CacheKey) -> Option<f64> {
        let result = self.shard(key).lock().unwrap_or_else(|e| e.into_inner()).get(key);
        match result {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    /// Store an estimate, evicting the least recently used entry of the
    /// target shard when full.
    pub fn insert(&self, key: CacheKey, value: f64) {
        self.shard(&key).lock().unwrap_or_else(|e| e.into_inner()).insert(key, value);
    }

    /// Whether `key` is currently cached, **without** touching the LRU
    /// recency order or the hit/miss counters.
    ///
    /// This is an inspection hook for tests and invariant checks (e.g. the
    /// epoch-tagging proptests, which must observe the cache state after a
    /// simulated swap race without perturbing the statistics they also
    /// assert on); serving paths use [`ShardedCache::get`].
    pub fn contains(&self, key: &CacheKey) -> bool {
        self.shard(key).lock().unwrap_or_else(|e| e.into_inner()).map.contains_key(key)
    }

    /// The current invalidation epoch. Snapshot it *before* resolving the
    /// model a batch will run on, and hand it back to
    /// [`ShardedCache::insert_tagged`] with each result.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// [`ShardedCache::insert`], but only if no [`ShardedCache::invalidate`]
    /// has happened since `epoch` was snapshotted. The epoch is re-checked
    /// under the target shard's lock, so an insert either observes the bump
    /// (and is dropped) or completes before the purge locks that shard (and
    /// is removed by it) — never both missed.
    pub fn insert_tagged(&self, key: CacheKey, value: f64, epoch: u64) {
        let mut shard = self.shard(&key).lock().unwrap_or_else(|e| e.into_inner());
        if self.epoch.load(Ordering::Acquire) == epoch {
            shard.insert(key, value);
        }
    }

    /// Bump the epoch, then drop every entry: the full invalidation a model
    /// hot-swap performs. In-flight [`ShardedCache::insert_tagged`] calls
    /// holding the old epoch can no longer land after this returns.
    pub fn invalidate(&self) {
        self.epoch.fetch_add(1, Ordering::AcqRel);
        self.clear();
    }

    /// Drop every entry (hit/miss counters and the epoch are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// Number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).map.len()).sum()
    }

    /// True if no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0 before the first lookup.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }
}

impl std::fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duet_core::{DuetConfig, DuetEstimator};
    use duet_data::datasets::census_like;
    use duet_data::Value;
    use duet_query::{PredOp, WorkloadSpec};

    fn key_of(words: &[u64]) -> CacheKey {
        CacheKey::new(words.to_vec())
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut shard = LruShard::new(2);
        shard.insert(key_of(&[1]), 1.0);
        shard.insert(key_of(&[2]), 2.0);
        assert_eq!(shard.get(&key_of(&[1])), Some(1.0)); // 1 is now most recent
        shard.insert(key_of(&[3]), 3.0); // evicts 2
        assert_eq!(shard.get(&key_of(&[2])), None);
        assert_eq!(shard.get(&key_of(&[1])), Some(1.0));
        assert_eq!(shard.get(&key_of(&[3])), Some(3.0));
    }

    #[test]
    fn reinsert_updates_value_without_growth() {
        let mut shard = LruShard::new(4);
        shard.insert(key_of(&[7]), 1.0);
        shard.insert(key_of(&[7]), 2.0);
        assert_eq!(shard.map.len(), 1);
        assert_eq!(shard.get(&key_of(&[7])), Some(2.0));
    }

    #[test]
    fn sharded_cache_counts_hits_and_misses() {
        let cache = ShardedCache::new(64, 4);
        let k = key_of(&[1, 2, 3]);
        assert_eq!(cache.get(&k), None);
        cache.insert(k.clone(), 42.0);
        assert_eq!(cache.get(&k), Some(42.0));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-9);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits(), 1, "clear keeps counters");
    }

    #[test]
    fn capacity_is_respected_across_shards() {
        for (capacity, shards) in [(8, 4), (10, 8), (3, 8), (0, 4)] {
            let cache = ShardedCache::new(capacity, shards);
            for i in 0..1000u64 {
                cache.insert(key_of(&[i]), i as f64);
            }
            assert!(
                cache.len() <= capacity,
                "len {} exceeds capacity {capacity} ({shards} shards)",
                cache.len()
            );
        }
    }

    #[test]
    fn tagged_inserts_are_rejected_after_invalidate() {
        let cache = ShardedCache::new(16, 2);
        let epoch = cache.epoch();
        cache.insert_tagged(key_of(&[1]), 1.0, epoch);
        assert_eq!(cache.get(&key_of(&[1])), Some(1.0));

        cache.invalidate();
        assert!(cache.is_empty());
        assert_eq!(cache.epoch(), epoch + 1);

        // A worker that snapshotted its epoch before the swap cannot strand
        // an entry, no matter when its insert lands.
        cache.insert_tagged(key_of(&[2]), 2.0, epoch);
        assert_eq!(cache.len(), 0, "stale-epoch insert must be dropped");

        // Inserts tagged with the current epoch land normally.
        cache.insert_tagged(key_of(&[3]), 3.0, cache.epoch());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn invalidate_bumps_epoch_even_when_empty() {
        let cache = ShardedCache::new(4, 1);
        let e0 = cache.epoch();
        cache.invalidate();
        cache.invalidate();
        assert_eq!(cache.epoch(), e0 + 2);
        // Plain clear keeps the epoch.
        cache.clear();
        assert_eq!(cache.epoch(), e0 + 2);
    }

    #[test]
    fn hot_set_counts_across_generations_and_ages_out_cold_keys() {
        let hot = HotSet::new(2);
        let (preds_a, ints_a) = (vec![vec![]], vec![(0u32, 3u32)]);
        let key_a_gen0 = key_of(&[0, 7]);
        let key_a_gen5 = key_a_gen0.with_generation(5);

        hot.observe(&key_a_gen0, &preds_a, &ints_a);
        hot.observe(&key_a_gen5, &preds_a, &ints_a); // same request, newer generation
        hot.observe(&key_of(&[0, 8]), &preds_a, &ints_a);
        assert_eq!(hot.len(), 2);
        let snap = hot.snapshot();
        assert_eq!(snap[0].hits, 2, "generation must not split a key's count");
        assert_eq!(snap[0].key, key_a_gen0);

        // A third key only displaces the cold slot after its count drains.
        let key_c = key_of(&[0, 9]);
        hot.observe(&key_c, &preds_a, &ints_a); // ages [0,8] from 1 -> 0, replaced next
        hot.observe(&key_c, &preds_a, &ints_a);
        let snap = hot.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap.iter().any(|q| q.key == key_c.with_generation(0)));
        assert!(snap.iter().any(|q| q.key == key_a_gen0), "the hot key survives");
    }

    #[test]
    fn hot_set_zero_capacity_is_inert() {
        let hot = HotSet::new(0);
        hot.observe(&key_of(&[1, 2]), &[], &[]);
        assert!(hot.is_empty());
        assert!(hot.snapshot().is_empty());
    }

    #[test]
    fn canonical_key_identifies_equivalent_queries() {
        let table = census_like(400, 3);
        let cfg = DuetConfig::small().with_epochs(1);
        let est = DuetEstimator::train_data_only(&table, &cfg, 7);

        // Same predicates written in a different cross-column order.
        let a = Query::all().and(0, PredOp::Le, Value::Int(30)).and(3, PredOp::Ge, Value::Int(2));
        let b = Query::all().and(3, PredOp::Ge, Value::Int(2)).and(0, PredOp::Le, Value::Int(30));
        assert_eq!(canonical_key(&est, 0, &a), canonical_key(&est, 0, &b));

        // A different literal is a different key.
        let c = Query::all().and(0, PredOp::Le, Value::Int(31)).and(3, PredOp::Ge, Value::Int(2));
        assert_ne!(canonical_key(&est, 0, &a), canonical_key(&est, 0, &c));

        // A different generation is a different key.
        assert_ne!(canonical_key(&est, 0, &a), canonical_key(&est, 1, &a));
    }

    #[test]
    fn canonical_key_distinguishes_real_workload_queries() {
        let table = census_like(500, 4);
        let cfg = DuetConfig::small().with_epochs(1);
        let est = DuetEstimator::train_data_only(&table, &cfg, 9);
        let queries = WorkloadSpec::random(&table, 50, 11).generate(&table);
        let keys: Vec<CacheKey> = queries.iter().map(|q| canonical_key(&est, 0, q)).collect();
        // Spot-check: keyed estimates agree whenever keys collide.
        let mut est_mut = est.clone();
        use duet_query::CardinalityEstimator;
        for i in 0..queries.len() {
            for j in 0..queries.len() {
                if keys[i] == keys[j] {
                    assert_eq!(est_mut.estimate(&queries[i]), est_mut.estimate(&queries[j]));
                }
            }
        }
    }
}
