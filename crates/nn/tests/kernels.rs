//! Property tests for the blocked/packed matmul kernels: **exact** (bitwise)
//! equality against naive triple-loop references, across tile-boundary
//! shapes.
//!
//! The kernels promise bit-identity for finite inputs because every path
//! accumulates each output element in the same ascending shared-dimension
//! order (see `duet_nn::kernels`). These tests hold them to it:
//!
//! * random shapes spanning the `MR`/`NR` tile boundaries, plus directed
//!   edge shapes (`1 x n`, `m x 1` products, prime dimensions, exact
//!   multiples and off-by-one neighbours of the tile sizes);
//! * inputs with exact zeros mixed in, so the zero-skipping naive paths,
//!   the dense blocked path, and the strip-dropping packed path are all
//!   exercised against each other;
//! * the fused bias + activation epilogue compared against an unfused
//!   matmul → bias broadcast → activation pipeline;
//! * the public `Matrix` APIs at shapes straddling the dispatch thresholds,
//!   so whatever path the dispatcher picks must agree with the reference.

use duet_nn::kernels::{
    addmm_blocked, addmm_packed, matmul_nt_blocked, matmul_tn_blocked, PackedWeight, MR, NR,
};
use duet_nn::{with_tile, Activation, Matrix, SparseRows, Tile};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::Rng;

/// Every register-tile variant the runtime dispatch can select. Both run on
/// any machine: the AVX2 variant falls back to a baseline-compiled
/// instantiation of the same 6×16 arithmetic when the feature is absent, so
/// these tests exercise every tile shape everywhere.
const TILES: [Tile; 2] = [Tile::Sse4x8, Tile::Avx6x16];

/// Deterministic matrix with a mix of exact zeros (probability ~1/3) and
/// small signed values — zeros exercise the sparse-skip paths.
fn matrix_with_zeros(rows: usize, cols: usize, rng: &mut SmallRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        if rng.gen_range(0u32..3) == 0 {
            0.0
        } else {
            rng.gen_range(-2.0f32..2.0)
        }
    })
}

/// Textbook reference: `out[i][j] = sum_p a[i][p] * b[p][j]` in ascending
/// `p` order, then bias, then activation — the element-wise sequence every
/// kernel must reproduce exactly.
fn reference_addmm(a: &Matrix, b: &Matrix, bias: Option<&[f32]>, act: Activation) -> Matrix {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.get(i, p) * b.get(p, j);
            }
            if let Some(bias) = bias {
                acc += bias[j];
            }
            let mut cell = [acc];
            act.apply(&mut cell);
            out.set(i, j, cell[0]);
        }
    }
    out
}

fn assert_bit_identical(got: &Matrix, want: &Matrix, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape mismatch");
    for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{what}: element {i} differs: got {g} ({:#x}), want {w} ({:#x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

/// Run every kernel path for one `(m, k, n)` shape and compare bitwise,
/// under every register-tile variant.
fn check_shape(m: usize, k: usize, n: usize, rng: &mut SmallRng) {
    let a = matrix_with_zeros(m, k, rng);
    let b = matrix_with_zeros(k, n, rng);
    let bias: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    for tile in TILES {
        with_tile(tile, || check_shape_current_tile(&a, &b, &bias, m, k, n));
    }
}

fn check_shape_current_tile(a: &Matrix, b: &Matrix, bias: &[f32], m: usize, k: usize, n: usize) {
    // Row-sparse capture of the left operand for the fused sparse-input
    // kernels (skipping a zero drops a `+ 0.0` from an accumulator that
    // started at +0.0, which cannot change the bits for finite inputs).
    let mut sparse_a = SparseRows::new();
    sparse_a.capture_from(a);
    for (bias_opt, act) in [
        (None, Activation::Identity),
        (Some(bias), Activation::Identity),
        (Some(bias), Activation::Relu),
        (None, Activation::Relu),
    ] {
        let want = reference_addmm(a, b, bias_opt, act);

        // Public dispatching API (whatever path the dispatcher picks).
        let mut got = Matrix::zeros(0, 0);
        a.addmm_bias_act_into(b, bias_opt, act, &mut got);
        assert_bit_identical(&got, &want, "addmm_bias_act_into");

        // Forced dense blocked path.
        let mut got = Matrix::zeros(m, n);
        addmm_blocked(a.as_slice(), m, k, b.as_slice(), n, bias_opt, act, got.as_mut_slice());
        assert_bit_identical(&got, &want, "addmm_blocked");

        // Forced packed path (strip-dropping pack of the same operand).
        let mut packed = PackedWeight::new();
        packed.fill_from(b.as_slice(), k, n);
        let mut got = Matrix::zeros(m, n);
        addmm_packed(a.as_slice(), m, &packed, bias_opt, act, got.as_mut_slice());
        assert_bit_identical(&got, &want, "addmm_packed");

        // Packed path through the public Matrix API.
        let mut got = Matrix::zeros(0, 0);
        a.addmm_packed_bias_act_into(&packed, bias_opt, act, &mut got);
        assert_bit_identical(&got, &want, "addmm_packed_bias_act_into");

        // Fused sparse-input path (the first-layer training kernel).
        let mut got = Matrix::zeros(0, 0);
        sparse_a.addmm_bias_act_into(b, bias_opt, act, &mut got);
        assert_bit_identical(&got, &want, "sparse addmm_bias_act_into");
    }

    // matmul_nt: a @ b'^T with b' = b^T, so the reference product is the same.
    let bt = b.transpose();
    let want = reference_addmm(a, b, None, Activation::Identity);
    let mut got = Matrix::zeros(0, 0);
    a.matmul_nt_into(&bt, &mut got);
    assert_bit_identical(&got, &want, "matmul_nt_into");
    let mut got = Matrix::zeros(m, n);
    matmul_nt_blocked(a.as_slice(), m, k, bt.as_slice(), n, got.as_mut_slice());
    assert_bit_identical(&got, &want, "matmul_nt_blocked");

    // matmul_tn: a'^T @ b with a' = a^T.
    let at = a.transpose();
    let mut got = Matrix::zeros(0, 0);
    at.matmul_tn_into(b, &mut got);
    assert_bit_identical(&got, &want, "matmul_tn_into");
    let mut got = Matrix::zeros(m, n);
    matmul_tn_blocked(at.as_slice(), k, m, b.as_slice(), n, got.as_mut_slice());
    assert_bit_identical(&got, &want, "matmul_tn_blocked");

    // Sparse-input weight-gradient kernel: `at` captured row-sparse, then
    // `at^T @ b` — the backward counterpart of the fused first layer.
    let mut sparse_at = SparseRows::new();
    sparse_at.capture_from(&at);
    let mut got = Matrix::zeros(0, 0);
    sparse_at.matmul_tn_into(b, &mut got);
    assert_bit_identical(&got, &want, "sparse matmul_tn_into");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random shapes spanning the MR/NR tile boundaries and the dispatch
    /// thresholds (m crosses MIN_BLOCK_ROWS = 8, n crosses NR).
    #[test]
    fn kernels_match_reference_on_random_shapes(
        m in 1usize..3 * MR + 2,
        k in 1usize..24,
        n in 1usize..3 * NR + 2,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = duet_nn::seeded_rng(seed);
        check_shape(m, k, n, &mut rng);
    }

    /// Larger batched shapes (everything on the blocked/packed side of the
    /// dispatch) with non-multiple-of-tile dimensions.
    #[test]
    fn kernels_match_reference_on_batched_shapes(
        m in 8usize..40,
        k in 2usize..48,
        n in 8usize..80,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = duet_nn::seeded_rng(seed ^ 0xb10c);
        check_shape(m, k, n, &mut rng);
    }
}

/// Directed edge shapes: row/column vectors, prime dimensions, exact tile
/// multiples and their off-by-one neighbours.
#[test]
fn kernels_match_reference_on_edge_shapes() {
    let mut rng = duet_nn::seeded_rng(0xedfe);
    let primes = [1usize, 2, 3, 5, 7, 13, 17, 31, 37];
    for &m in &primes {
        for &n in &primes {
            check_shape(m, 5, n, &mut rng);
        }
    }
    for &m in &[MR - 1, MR, MR + 1, 2 * MR - 1, 2 * MR, 2 * MR + 1] {
        for &n in &[NR - 1, NR, NR + 1, 2 * NR - 1, 2 * NR, 2 * NR + 1] {
            check_shape(m, 11, n, &mut rng);
            check_shape(m, 1, n, &mut rng);
        }
    }
    // Nx1 and 1xN extremes around the dispatch thresholds.
    for &m in &[1usize, 7, 8, 9, 33] {
        check_shape(m, 3, 1, &mut rng);
        check_shape(1, 3, m, &mut rng);
    }
}

/// A pack built under one tile variant keeps producing exact results after
/// the thread's tile changes: the pack carries its own tile, so dispatch
/// follows the data, not the ambient setting.
#[test]
fn packed_weight_survives_tile_changes() {
    let mut rng = duet_nn::seeded_rng(0x7171);
    let (m, k, n) = (13, 19, 29);
    let a = matrix_with_zeros(m, k, &mut rng);
    let b = matrix_with_zeros(k, n, &mut rng);
    let want = reference_addmm(&a, &b, None, Activation::Identity);
    for pack_tile in TILES {
        let mut packed = PackedWeight::new();
        with_tile(pack_tile, || packed.fill_from(b.as_slice(), k, n));
        assert_eq!(packed.tile(), pack_tile);
        for run_tile in TILES {
            let mut got = Matrix::zeros(m, n);
            with_tile(run_tile, || {
                addmm_packed(
                    a.as_slice(),
                    m,
                    &packed,
                    None,
                    Activation::Identity,
                    got.as_mut_slice(),
                )
            });
            assert_bit_identical(&got, &want, "packed across tiles");
        }
    }
}

/// An all-zero weight matrix packs to zero strips and still produces the
/// exact reference result (pure bias/activation).
#[test]
fn packed_all_zero_weight_is_bias_only() {
    let mut rng = duet_nn::seeded_rng(0x00);
    let a = matrix_with_zeros(9, 6, &mut rng);
    let b = Matrix::zeros(6, 20);
    let bias: Vec<f32> = (0..20).map(|j| j as f32 - 10.0).collect();
    let mut packed = PackedWeight::new();
    packed.fill_from(b.as_slice(), 6, 20);
    assert_eq!(packed.density(), 0.0);
    let mut got = Matrix::zeros(9, 20);
    addmm_packed(a.as_slice(), 9, &packed, Some(&bias), Activation::Relu, got.as_mut_slice());
    let want = reference_addmm(&a, &b, Some(&bias), Activation::Relu);
    assert_bit_identical(&got, &want, "all-zero packed");
}

/// The exact input profile of the fused first layer: a batch of
/// concatenated one-hot blocks (binary value bits + operator one-hots), far
/// above the sparse-dispatch threshold. The captured view must agree with
/// every dense path bitwise, under both runtime tiles, and a recapture at a
/// different shape must keep agreeing (the buffers are reused in training).
#[test]
fn sparse_capture_matches_dense_on_onehot_batches() {
    let mut rng = duet_nn::seeded_rng(0x51a7);
    let mut sparse = SparseRows::new();
    for (batch, blocks, block_width, n) in
        [(17usize, 9usize, 15usize, 16usize), (5, 3, 7, 29), (1, 4, 31, 8)]
    {
        let k = blocks * block_width;
        // One hot bit per block per row, like `DuetModel::fill_input`.
        let a = Matrix::from_fn(batch, k, |r, c| {
            let block = c / block_width;
            let hot = (r * 31 + block * 7) % block_width;
            if c % block_width == hot {
                1.0
            } else {
                0.0
            }
        });
        let b = matrix_with_zeros(k, n, &mut rng);
        let bias: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();

        sparse.capture_from(&a);
        assert!(
            sparse.is_sparse_enough(),
            "one-hot batches must qualify for the sparse dispatch (density {})",
            sparse.density()
        );
        let want = reference_addmm(&a, &b, Some(&bias), Activation::Identity);
        for tile in TILES {
            with_tile(tile, || {
                let mut got = Matrix::zeros(0, 0);
                sparse.addmm_bias_act_into(&b, Some(&bias), Activation::Identity, &mut got);
                assert_bit_identical(&got, &want, "one-hot sparse addmm");
            });
        }
    }
}

/// The pooled (parallel) path splits rows across worker threads and must
/// still be bit-identical to the serial run — chunk boundaries never change
/// per-row results.
#[test]
fn pooled_kernels_match_serial_bitwise() {
    let pool = duet_nn::ComputePool::new(3);
    let mut rng = duet_nn::seeded_rng(0x9001);
    // Big enough to cross PAR_THRESHOLD (m * k * n >= 2^22).
    let (m, k, n) = (210, 150, 150);
    let a = matrix_with_zeros(m, k, &mut rng);
    let b = matrix_with_zeros(k, n, &mut rng);
    let serial = a.matmul(&b);
    let before = pool.dispatched_jobs();
    let pooled = duet_nn::with_pool(&pool, || a.matmul(&b));
    assert!(pool.dispatched_jobs() > before, "the pooled path must actually dispatch");
    assert_bit_identical(&pooled, &serial, "pooled matmul");

    let mut packed = PackedWeight::new();
    packed.fill_from(b.as_slice(), k, n);
    let mut serial_packed = Matrix::zeros(m, n);
    addmm_packed(
        a.as_slice(),
        m,
        &packed,
        None,
        Activation::Identity,
        serial_packed.as_mut_slice(),
    );
    let mut pooled_packed = Matrix::zeros(m, n);
    duet_nn::with_pool(&pool, || {
        addmm_packed(
            a.as_slice(),
            m,
            &packed,
            None,
            Activation::Identity,
            pooled_packed.as_mut_slice(),
        );
    });
    assert_bit_identical(&pooled_packed, &serial_packed, "pooled packed");
    assert_bit_identical(&serial_packed, &serial, "packed vs dense");
}
