//! Property tests for the blocked/packed matmul kernels: **exact** (bitwise)
//! equality against naive triple-loop references, across tile-boundary
//! shapes.
//!
//! The kernels promise bit-identity for finite inputs because every path
//! accumulates each output element in the same ascending shared-dimension
//! order (see `duet_nn::kernels`). These tests hold them to it:
//!
//! * random shapes spanning the `MR`/`NR` tile boundaries, plus directed
//!   edge shapes (`1 x n`, `m x 1` products, prime dimensions, exact
//!   multiples and off-by-one neighbours of the tile sizes);
//! * inputs with exact zeros mixed in, so the zero-skipping naive paths,
//!   the dense blocked path, and the strip-dropping packed path are all
//!   exercised against each other;
//! * the fused bias + activation epilogue compared against an unfused
//!   matmul → bias broadcast → activation pipeline;
//! * the public `Matrix` APIs at shapes straddling the dispatch thresholds,
//!   so whatever path the dispatcher picks must agree with the reference.

use duet_nn::kernels::{
    addmm_blocked, addmm_packed, addmm_packed_half, matmul_nt_blocked, matmul_tn_blocked,
    PackedWeight, PackedWeightHalf, MR, NR,
};
use duet_nn::{f16_to_f32, f32_to_f16, with_tile, Activation, Matrix, SparseRows, Tile};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::Rng;

/// Every register-tile variant the runtime dispatch can select. Both run on
/// any machine: the AVX2 variant falls back to a baseline-compiled
/// instantiation of the same 6×16 arithmetic when the feature is absent, so
/// these tests exercise every tile shape everywhere.
const TILES: [Tile; 2] = [Tile::Sse4x8, Tile::Avx6x16];

/// Deterministic matrix with a mix of exact zeros (probability ~1/3) and
/// small signed values — zeros exercise the sparse-skip paths.
fn matrix_with_zeros(rows: usize, cols: usize, rng: &mut SmallRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| {
        if rng.gen_range(0u32..3) == 0 {
            0.0
        } else {
            rng.gen_range(-2.0f32..2.0)
        }
    })
}

/// Textbook reference: `out[i][j] = sum_p a[i][p] * b[p][j]` in ascending
/// `p` order, then bias, then activation — the element-wise sequence every
/// kernel must reproduce exactly.
fn reference_addmm(a: &Matrix, b: &Matrix, bias: Option<&[f32]>, act: Activation) -> Matrix {
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.get(i, p) * b.get(p, j);
            }
            if let Some(bias) = bias {
                acc += bias[j];
            }
            let mut cell = [acc];
            act.apply(&mut cell);
            out.set(i, j, cell[0]);
        }
    }
    out
}

fn assert_bit_identical(got: &Matrix, want: &Matrix, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape mismatch");
    for (i, (g, w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{what}: element {i} differs: got {g} ({:#x}), want {w} ({:#x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

/// Run every kernel path for one `(m, k, n)` shape and compare bitwise,
/// under every register-tile variant.
fn check_shape(m: usize, k: usize, n: usize, rng: &mut SmallRng) {
    let a = matrix_with_zeros(m, k, rng);
    let b = matrix_with_zeros(k, n, rng);
    let bias: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    for tile in TILES {
        with_tile(tile, || check_shape_current_tile(&a, &b, &bias, m, k, n));
    }
}

fn check_shape_current_tile(a: &Matrix, b: &Matrix, bias: &[f32], m: usize, k: usize, n: usize) {
    // Row-sparse capture of the left operand for the fused sparse-input
    // kernels (skipping a zero drops a `+ 0.0` from an accumulator that
    // started at +0.0, which cannot change the bits for finite inputs).
    let mut sparse_a = SparseRows::new();
    sparse_a.capture_from(a);
    for (bias_opt, act) in [
        (None, Activation::Identity),
        (Some(bias), Activation::Identity),
        (Some(bias), Activation::Relu),
        (None, Activation::Relu),
    ] {
        let want = reference_addmm(a, b, bias_opt, act);

        // Public dispatching API (whatever path the dispatcher picks).
        let mut got = Matrix::zeros(0, 0);
        a.addmm_bias_act_into(b, bias_opt, act, &mut got);
        assert_bit_identical(&got, &want, "addmm_bias_act_into");

        // Forced dense blocked path.
        let mut got = Matrix::zeros(m, n);
        addmm_blocked(a.as_slice(), m, k, b.as_slice(), n, bias_opt, act, got.as_mut_slice());
        assert_bit_identical(&got, &want, "addmm_blocked");

        // Forced packed path (strip-dropping pack of the same operand).
        let mut packed = PackedWeight::new();
        packed.fill_from(b.as_slice(), k, n);
        let mut got = Matrix::zeros(m, n);
        addmm_packed(a.as_slice(), m, &packed, bias_opt, act, got.as_mut_slice());
        assert_bit_identical(&got, &want, "addmm_packed");

        // Packed path through the public Matrix API.
        let mut got = Matrix::zeros(0, 0);
        a.addmm_packed_bias_act_into(&packed, bias_opt, act, &mut got);
        assert_bit_identical(&got, &want, "addmm_packed_bias_act_into");

        // Fused sparse-input path (the first-layer training kernel).
        let mut got = Matrix::zeros(0, 0);
        sparse_a.addmm_bias_act_into(b, bias_opt, act, &mut got);
        assert_bit_identical(&got, &want, "sparse addmm_bias_act_into");
    }

    // matmul_nt: a @ b'^T with b' = b^T, so the reference product is the same.
    let bt = b.transpose();
    let want = reference_addmm(a, b, None, Activation::Identity);
    let mut got = Matrix::zeros(0, 0);
    a.matmul_nt_into(&bt, &mut got);
    assert_bit_identical(&got, &want, "matmul_nt_into");
    let mut got = Matrix::zeros(m, n);
    matmul_nt_blocked(a.as_slice(), m, k, bt.as_slice(), n, got.as_mut_slice());
    assert_bit_identical(&got, &want, "matmul_nt_blocked");

    // matmul_tn: a'^T @ b with a' = a^T.
    let at = a.transpose();
    let mut got = Matrix::zeros(0, 0);
    at.matmul_tn_into(b, &mut got);
    assert_bit_identical(&got, &want, "matmul_tn_into");
    let mut got = Matrix::zeros(m, n);
    matmul_tn_blocked(at.as_slice(), k, m, b.as_slice(), n, got.as_mut_slice());
    assert_bit_identical(&got, &want, "matmul_tn_blocked");

    // Sparse-input weight-gradient kernel: `at` captured row-sparse, then
    // `at^T @ b` — the backward counterpart of the fused first layer.
    let mut sparse_at = SparseRows::new();
    sparse_at.capture_from(&at);
    let mut got = Matrix::zeros(0, 0);
    sparse_at.matmul_tn_into(b, &mut got);
    assert_bit_identical(&got, &want, "sparse matmul_tn_into");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random shapes spanning the MR/NR tile boundaries and the dispatch
    /// thresholds (m crosses MIN_BLOCK_ROWS = 8, n crosses NR).
    #[test]
    fn kernels_match_reference_on_random_shapes(
        m in 1usize..3 * MR + 2,
        k in 1usize..24,
        n in 1usize..3 * NR + 2,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = duet_nn::seeded_rng(seed);
        check_shape(m, k, n, &mut rng);
    }

    /// Larger batched shapes (everything on the blocked/packed side of the
    /// dispatch) with non-multiple-of-tile dimensions.
    #[test]
    fn kernels_match_reference_on_batched_shapes(
        m in 8usize..40,
        k in 2usize..48,
        n in 8usize..80,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = duet_nn::seeded_rng(seed ^ 0xb10c);
        check_shape(m, k, n, &mut rng);
    }
}

/// Directed edge shapes: row/column vectors, prime dimensions, exact tile
/// multiples and their off-by-one neighbours.
#[test]
fn kernels_match_reference_on_edge_shapes() {
    let mut rng = duet_nn::seeded_rng(0xedfe);
    let primes = [1usize, 2, 3, 5, 7, 13, 17, 31, 37];
    for &m in &primes {
        for &n in &primes {
            check_shape(m, 5, n, &mut rng);
        }
    }
    for &m in &[MR - 1, MR, MR + 1, 2 * MR - 1, 2 * MR, 2 * MR + 1] {
        for &n in &[NR - 1, NR, NR + 1, 2 * NR - 1, 2 * NR, 2 * NR + 1] {
            check_shape(m, 11, n, &mut rng);
            check_shape(m, 1, n, &mut rng);
        }
    }
    // Nx1 and 1xN extremes around the dispatch thresholds.
    for &m in &[1usize, 7, 8, 9, 33] {
        check_shape(m, 3, 1, &mut rng);
        check_shape(1, 3, m, &mut rng);
    }
}

/// A pack built under one tile variant keeps producing exact results after
/// the thread's tile changes: the pack carries its own tile, so dispatch
/// follows the data, not the ambient setting.
#[test]
fn packed_weight_survives_tile_changes() {
    let mut rng = duet_nn::seeded_rng(0x7171);
    let (m, k, n) = (13, 19, 29);
    let a = matrix_with_zeros(m, k, &mut rng);
    let b = matrix_with_zeros(k, n, &mut rng);
    let want = reference_addmm(&a, &b, None, Activation::Identity);
    for pack_tile in TILES {
        let mut packed = PackedWeight::new();
        with_tile(pack_tile, || packed.fill_from(b.as_slice(), k, n));
        assert_eq!(packed.tile(), pack_tile);
        for run_tile in TILES {
            let mut got = Matrix::zeros(m, n);
            with_tile(run_tile, || {
                addmm_packed(
                    a.as_slice(),
                    m,
                    &packed,
                    None,
                    Activation::Identity,
                    got.as_mut_slice(),
                )
            });
            assert_bit_identical(&got, &want, "packed across tiles");
        }
    }
}

/// An all-zero weight matrix packs to zero strips and still produces the
/// exact reference result (pure bias/activation).
#[test]
fn packed_all_zero_weight_is_bias_only() {
    let mut rng = duet_nn::seeded_rng(0x00);
    let a = matrix_with_zeros(9, 6, &mut rng);
    let b = Matrix::zeros(6, 20);
    let bias: Vec<f32> = (0..20).map(|j| j as f32 - 10.0).collect();
    let mut packed = PackedWeight::new();
    packed.fill_from(b.as_slice(), 6, 20);
    assert_eq!(packed.density(), 0.0);
    let mut got = Matrix::zeros(9, 20);
    addmm_packed(a.as_slice(), 9, &packed, Some(&bias), Activation::Relu, got.as_mut_slice());
    let want = reference_addmm(&a, &b, Some(&bias), Activation::Relu);
    assert_bit_identical(&got, &want, "all-zero packed");
}

/// The exact input profile of the fused first layer: a batch of
/// concatenated one-hot blocks (binary value bits + operator one-hots), far
/// above the sparse-dispatch threshold. The captured view must agree with
/// every dense path bitwise, under both runtime tiles, and a recapture at a
/// different shape must keep agreeing (the buffers are reused in training).
#[test]
fn sparse_capture_matches_dense_on_onehot_batches() {
    let mut rng = duet_nn::seeded_rng(0x51a7);
    let mut sparse = SparseRows::new();
    for (batch, blocks, block_width, n) in
        [(17usize, 9usize, 15usize, 16usize), (5, 3, 7, 29), (1, 4, 31, 8)]
    {
        let k = blocks * block_width;
        // One hot bit per block per row, like `DuetModel::fill_input`.
        let a = Matrix::from_fn(batch, k, |r, c| {
            let block = c / block_width;
            let hot = (r * 31 + block * 7) % block_width;
            if c % block_width == hot {
                1.0
            } else {
                0.0
            }
        });
        let b = matrix_with_zeros(k, n, &mut rng);
        let bias: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();

        sparse.capture_from(&a);
        assert!(
            sparse.is_sparse_enough(),
            "one-hot batches must qualify for the sparse dispatch (density {})",
            sparse.density()
        );
        let want = reference_addmm(&a, &b, Some(&bias), Activation::Identity);
        for tile in TILES {
            with_tile(tile, || {
                let mut got = Matrix::zeros(0, 0);
                sparse.addmm_bias_act_into(&b, Some(&bias), Activation::Identity, &mut got);
                assert_bit_identical(&got, &want, "one-hot sparse addmm");
            });
        }
    }
}

/// The pooled (parallel) path splits rows across worker threads and must
/// still be bit-identical to the serial run — chunk boundaries never change
/// per-row results.
#[test]
fn pooled_kernels_match_serial_bitwise() {
    let pool = duet_nn::ComputePool::new(3);
    let mut rng = duet_nn::seeded_rng(0x9001);
    // Big enough to cross PAR_THRESHOLD (m * k * n >= 2^22).
    let (m, k, n) = (210, 150, 150);
    let a = matrix_with_zeros(m, k, &mut rng);
    let b = matrix_with_zeros(k, n, &mut rng);
    let serial = a.matmul(&b);
    let before = pool.dispatched_jobs();
    let pooled = duet_nn::with_pool(&pool, || a.matmul(&b));
    assert!(pool.dispatched_jobs() > before, "the pooled path must actually dispatch");
    assert_bit_identical(&pooled, &serial, "pooled matmul");

    let mut packed = PackedWeight::new();
    packed.fill_from(b.as_slice(), k, n);
    let mut serial_packed = Matrix::zeros(m, n);
    addmm_packed(
        a.as_slice(),
        m,
        &packed,
        None,
        Activation::Identity,
        serial_packed.as_mut_slice(),
    );
    let mut pooled_packed = Matrix::zeros(m, n);
    duet_nn::with_pool(&pool, || {
        addmm_packed(
            a.as_slice(),
            m,
            &packed,
            None,
            Activation::Identity,
            pooled_packed.as_mut_slice(),
        );
    });
    assert_bit_identical(&pooled_packed, &serial_packed, "pooled packed");
    assert_bit_identical(&serial_packed, &serial, "packed vs dense");
}

// ---------------------------------------------------------------------------
// f16 warm tier: conversion exactness and the half-storage packed kernel.
// ---------------------------------------------------------------------------

/// Directed round-to-nearest-even cases for `f32_to_f16`: signed zeros, exact
/// powers of two, the overflow and subnormal boundaries, ties in both
/// directions, and class preservation for infinities and NaN.
#[test]
fn f32_to_f16_directed_rounding_cases() {
    assert_eq!(f32_to_f16(0.0), 0x0000);
    assert_eq!(f32_to_f16(-0.0), 0x8000);
    assert_eq!(f32_to_f16(1.0), 0x3C00);
    assert_eq!(f32_to_f16(-2.0), 0xC000);
    // Largest finite half; one ulp above it still rounds down.
    assert_eq!(f32_to_f16(65504.0), 0x7BFF);
    assert_eq!(f32_to_f16(65505.0), 0x7BFF);
    // Past the overflow midpoint: saturates to the signed infinity.
    assert_eq!(f32_to_f16(1.0e6), 0x7C00);
    assert_eq!(f32_to_f16(-1.0e6), 0xFC00);
    assert_eq!(f32_to_f16(f32::INFINITY), 0x7C00);
    assert_eq!(f32_to_f16(f32::NEG_INFINITY), 0xFC00);
    let nan = f32_to_f16(f32::NAN);
    assert_eq!(nan & 0x7C00, 0x7C00, "NaN keeps an all-ones exponent");
    assert_ne!(nan & 0x03FF, 0, "NaN keeps a non-zero mantissa");
    // Subnormal range: the smallest subnormal is 2^-24; half of it is a tie
    // with zero (even), and anything above the midpoint rounds up.
    assert_eq!(f32_to_f16(2.0f32.powi(-24)), 0x0001);
    assert_eq!(
        f32_to_f16(2.0f32.powi(-25)),
        0x0000,
        "tie at the underflow midpoint goes to even (zero)"
    );
    assert_eq!(f32_to_f16(1.5 * 2.0f32.powi(-25)), 0x0001);
    assert_eq!(f32_to_f16(-2.0f32.powi(-25)), 0x8000, "underflow keeps the sign");
    // Largest subnormal (1023/1024 * 2^-14), then the smallest normal.
    assert_eq!(f32_to_f16(1023.0 / 1024.0 * 2.0f32.powi(-14)), 0x03FF);
    assert_eq!(f32_to_f16(2.0f32.powi(-14)), 0x0400);
    // Ties to even in the normal range: 1 + 2^-11 sits exactly between
    // 0x3C00 (even) and 0x3C01; 1 + 3*2^-11 between 0x3C01 and 0x3C02 (even).
    assert_eq!(f32_to_f16(1.0 + 2.0f32.powi(-11)), 0x3C00);
    assert_eq!(f32_to_f16(1.0 + 3.0 * 2.0f32.powi(-11)), 0x3C02);
}

/// `f16_to_f32` is exact, so the f32→f16→f32→f16 loop must be the identity
/// on every non-NaN bit pattern (and preserve the NaN class on the rest).
/// The whole 16-bit space is small enough to sweep exhaustively.
#[test]
fn f16_roundtrip_is_exact_for_every_bit_pattern() {
    for h in 0..=u16::MAX {
        let widened = f16_to_f32(h);
        let is_nan = h & 0x7C00 == 0x7C00 && h & 0x03FF != 0;
        if is_nan {
            assert!(widened.is_nan(), "{h:#06x} must widen to NaN");
            let back = f32_to_f16(widened);
            assert_eq!(back & 0x7C00, 0x7C00);
            assert_ne!(back & 0x03FF, 0);
        } else {
            assert_eq!(f32_to_f16(widened), h, "{h:#06x} must survive the round trip");
        }
    }
}

/// The half-storage packed kernel's contract: bit-identical to the naive
/// reference computed over *dequantized* weights (each weight rounded
/// through f16 and widened back), for every (pack tile, run tile) pairing.
/// Widening is exact and accumulation stays f32 in ascending-`k` order, so
/// the only difference from the f32 path is the one-time weight rounding.
fn check_shape_half(m: usize, k: usize, n: usize, rng: &mut SmallRng) {
    let a = matrix_with_zeros(m, k, rng);
    let b = matrix_with_zeros(k, n, rng);
    let bias: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let dequantized = Matrix::from_fn(k, n, |p, j| f16_to_f32(f32_to_f16(b.get(p, j))));
    let full = reference_addmm(&a, &b, Some(&bias), Activation::Relu);
    let want = reference_addmm(&a, &dequantized, Some(&bias), Activation::Relu);

    for pack_tile in TILES {
        let mut packed = PackedWeightHalf::new();
        with_tile(pack_tile, || packed.fill_from(b.as_slice(), k, n));
        assert_eq!(packed.shape(), (k, n));
        assert_eq!(packed.tile(), pack_tile);
        for run_tile in TILES {
            let mut got = Matrix::zeros(m, n);
            with_tile(run_tile, || {
                addmm_packed_half(
                    a.as_slice(),
                    m,
                    &packed,
                    Some(&bias),
                    Activation::Relu,
                    got.as_mut_slice(),
                );
            });
            assert_bit_identical(&got, &want, "addmm_packed_half vs dequantized reference");
        }
    }

    // Bounded drift against the full-precision result: each weight rounds
    // with relative error <= 2^-11 (plus subnormal flushes below 2^-24), so
    // the output error is bounded by the absolute-value product at that
    // relative scale.
    for i in 0..m {
        for j in 0..n {
            let abs_sum: f32 = (0..k).map(|p| (a.get(i, p) * b.get(p, j)).abs()).sum();
            let bound = 5.0e-4 * abs_sum + 1.0e-5;
            let diff = (want.get(i, j) - full.get(i, j)).abs();
            assert!(
                diff <= bound,
                "half tier drifted past the rounding bound at ({i},{j}): {diff} > {bound}"
            );
        }
    }
}

/// Directed half-kernel shapes mirroring the f32 edge sweep: vectors, prime
/// dimensions, and tile-multiple neighbours.
#[test]
fn packed_half_matches_dequantized_reference_on_edge_shapes() {
    let mut rng = duet_nn::seeded_rng(0xa1f ^ 0xf16);
    for &(m, k, n) in &[
        (1usize, 1usize, 1usize),
        (1, 7, NR + 1),
        (MR, 13, NR),
        (MR + 1, 24, 2 * NR + 1),
        (2 * MR, 5, NR - 1),
        (13, 19, 29),
    ] {
        check_shape_half(m, k, n, &mut rng);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random shapes and values: the half pack must agree bitwise with the
    /// dequantized reference under every tile pairing, and stay within the
    /// f16 rounding envelope of the full-precision result.
    #[test]
    fn packed_half_matches_reference_on_random_shapes(
        m in 1usize..2 * MR + 2,
        k in 1usize..24,
        n in 1usize..2 * NR + 2,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = duet_nn::seeded_rng(seed ^ 0xf16);
        check_shape_half(m, k, n, &mut rng);
    }
}
