//! Property tests for the fast transcendental kernels: the documented error
//! bounds of `fast_exp` / `SoftmaxMode::Fast` are enforced here, against
//! `f64` references, over the input ranges softmax actually evaluates.

use duet_nn::math::{fast_exp_slice, softmax_block_into, softmax_restricted_mass, SoftmaxMode};
use duet_nn::{softmax_into, Matrix};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::Rng;

/// A random logit block like the ones the probability-masking step sees:
/// raw network outputs in a modest range, occasionally spiked.
fn logit_block(len: usize, rng: &mut SmallRng) -> Vec<f32> {
    (0..len)
        .map(|_| {
            let base = rng.gen_range(-20.0f32..20.0);
            if rng.gen_range(0u32..8) == 0 {
                base * 3.0
            } else {
                base
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// `fast_exp` tracks the f64 exponential to ≤ 1e-6 relative error over
    /// the shifted-logit range softmax evaluates (`x = l - max(l) ≤ 0`,
    /// down to the underflow clamp).
    #[test]
    fn fast_exp_relative_error_within_1e6(x in -87.0f32..=0.0) {
        let mut out = [0.0f32];
        fast_exp_slice(&[x], &mut out);
        let want = (x as f64).exp();
        let rel = ((out[0] as f64 - want) / want).abs();
        prop_assert!(rel <= 1e-6, "x={x}: fast {got}, want {want}, rel {rel}", got = out[0]);
    }

    /// Fast and exact softmax agree elementwise to 1e-6, both sum to 1, and
    /// their restricted masses over any sub-range agree to 1e-6.
    #[test]
    fn fast_softmax_mass_within_1e6_of_exact(
        len in 2usize..80,
        lo_frac in 0.0f64..1.0,
        hi_frac in 0.0f64..1.0,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = duet_nn::seeded_rng(seed);
        let logits = logit_block(len, &mut rng);
        let mut fast = vec![0.0f32; len];
        let mut exact = vec![0.0f32; len];
        softmax_block_into(&logits, &mut fast, SoftmaxMode::Fast);
        softmax_block_into(&logits, &mut exact, SoftmaxMode::Exact);

        let sum_fast: f64 = fast.iter().map(|&p| p as f64).sum();
        let sum_exact: f64 = exact.iter().map(|&p| p as f64).sum();
        prop_assert!((sum_fast - 1.0).abs() < 1e-5, "fast mass sums to {sum_fast}");
        prop_assert!((sum_exact - 1.0).abs() < 1e-5, "exact mass sums to {sum_exact}");
        for (i, (f, e)) in fast.iter().zip(exact.iter()).enumerate() {
            prop_assert!((f - e).abs() <= 1e-6, "p[{i}]: fast {f} vs exact {e}");
        }

        // Restricted mass (the quantity the estimation path consumes).
        let (a, b) = ((lo_frac * len as f64) as usize, (hi_frac * len as f64) as usize);
        let (lo, hi) = (a.min(b).min(len), a.max(b).min(len));
        let mut scratch = Vec::new();
        let mass_fast = softmax_restricted_mass(&logits, &mut scratch, lo, hi, SoftmaxMode::Fast);
        let mass_exact = softmax_restricted_mass(&logits, &mut scratch, lo, hi, SoftmaxMode::Exact);
        prop_assert!(
            (mass_fast - mass_exact).abs() <= 1e-6,
            "mass fast {mass_fast} vs exact {mass_exact} over {lo}..{hi}"
        );
        // ... and the ratio-of-sums mass matches the normalized-probability
        // mass the old kernel computed.
        let normalized: f64 = exact[lo..hi].iter().map(|&p| p as f64).sum();
        prop_assert!((mass_exact - normalized).abs() <= 1e-6);
    }

    /// The exact mode of the new single-pass kernel is bit-for-bit the
    /// historical `softmax_into`.
    #[test]
    fn exact_mode_is_bit_identical_to_softmax_into(
        len in 1usize..64,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = duet_nn::seeded_rng(seed ^ 0x50f7);
        let logits = logit_block(len, &mut rng);
        let mut reference = vec![0.0f32; len];
        softmax_into(&logits, &mut reference);
        let mut exact = vec![0.0f32; len];
        softmax_block_into(&logits, &mut exact, SoftmaxMode::Exact);
        for (i, (r, e)) in reference.iter().zip(exact.iter()).enumerate() {
            prop_assert!(r.to_bits() == e.to_bits(), "element {i}: {r} vs {e}");
        }
    }
}

/// `softmax_blocks_inplace` agrees with per-block `softmax_block_into` and
/// reuses its offset scratch without reallocation.
#[test]
fn blocks_inplace_matches_per_block_kernel() {
    let mut rng = duet_nn::seeded_rng(0xb10c5);
    let blocks = [3usize, 1, 7, 5];
    let total: usize = blocks.iter().sum();
    let rows = 6;
    let data = logit_block(rows * total, &mut rng);
    let m = Matrix::from_vec(rows, total, data);
    for mode in [SoftmaxMode::Fast, SoftmaxMode::Exact] {
        let mut inplace = m.clone();
        let mut offsets = Vec::new();
        duet_nn::softmax_blocks_inplace(&mut inplace, &blocks, &mut offsets, mode);
        for r in 0..rows {
            let mut off = 0;
            for &b in &blocks {
                let mut want = vec![0.0f32; b];
                softmax_block_into(&m.row(r)[off..off + b], &mut want, mode);
                assert_eq!(&inplace.row(r)[off..off + b], want.as_slice(), "{mode:?}");
                off += b;
            }
        }
    }
}
