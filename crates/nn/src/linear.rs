//! Fully connected layers: plain [`Linear`] and [`MaskedLinear`] (the building
//! block of MADE, where a binary mask enforces the autoregressive property).
//!
//! Both layers implement the training [`Layer`] trait (which caches the input
//! for `backward`) and the allocation-free [`InferLayer`] trait; the
//! `infer_raw` methods are the borrow-friendly building blocks composite
//! networks (`Mlp`, `Made`) use to chain layers through one workspace.

use crate::activation::Activation;
use crate::init::Init;
use crate::kernels::SparseRows;
use crate::param::{cache_input, InferLayer, Layer, Param, WeightKey};
use crate::tensor::Matrix;
use crate::workspace::ForwardWorkspace;
use rand::rngs::SmallRng;

/// `y = x @ W + b`, with `W` of shape `(in_features, out_features)`.
#[derive(Debug, Clone)]
pub struct Linear {
    weight: Param,
    bias: Param,
    cached_input: Option<Matrix>,
}

impl Linear {
    /// Create a layer with the given initialization.
    pub fn new(in_features: usize, out_features: usize, init: Init, rng: &mut SmallRng) -> Self {
        Self {
            weight: Param::new(init.matrix(in_features, out_features, rng)),
            bias: Param::new(Matrix::zeros(1, out_features)),
            cached_input: None,
        }
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.weight.data.rows()
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.weight.data.cols()
    }

    /// Immutable access to the weight matrix (for inspection / merging).
    pub fn weight(&self) -> &Matrix {
        &self.weight.data
    }

    /// Mutable access to the weight matrix (used by the merged-MPSN builder).
    pub fn weight_mut(&mut self) -> &mut Matrix {
        &mut self.weight.data
    }

    /// Immutable access to the bias row vector.
    pub fn bias(&self) -> &Matrix {
        &self.bias.data
    }

    /// Mutable access to the bias row vector.
    pub fn bias_mut(&mut self) -> &mut Matrix {
        &mut self.bias.data
    }

    /// Forward pass that does not cache activations (inference-only path).
    pub fn forward_inference(&self, input: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.infer_raw(input, Activation::Identity, &mut out);
        out
    }

    /// Allocation-free fused forward: `out = act(input @ W + b)` written into
    /// a caller buffer (reshaped, heap reused). The building block the
    /// composite networks chain through their workspace.
    pub fn infer_raw(&self, input: &Matrix, act: Activation, out: &mut Matrix) {
        input.addmm_bias_act_into(&self.weight.data, Some(self.bias.data.as_slice()), act, out);
    }

    /// Scratch-buffer backward: the allocation-free replacement for
    /// [`Layer::backward`]. Stages `dW = input^T @ grad_out` in `dw` and the
    /// bias column sums in `db` before accumulating both into the parameter
    /// gradients (the staging keeps the accumulation order — and therefore
    /// the bits — identical to the allocating path), and writes the input
    /// gradient `grad_out @ W^T` into `grad_in` when the caller needs one.
    ///
    /// # Panics
    /// Panics if called before a training forward cached the input.
    pub fn backward_scratch(
        &mut self,
        grad_out: &Matrix,
        dw: &mut Matrix,
        db: &mut Vec<f32>,
        grad_in: Option<&mut Matrix>,
    ) {
        let input = self.cached_input.as_ref().expect("Linear::backward called before forward");
        input.matmul_tn_into(grad_out, dw);
        self.weight.grad.add_assign(dw);
        grad_out.column_sums_into(db);
        for (g, d) in self.bias.grad.as_mut_slice().iter_mut().zip(db.iter()) {
            *g += *d;
        }
        if let Some(grad_in) = grad_in {
            grad_out.matmul_nt_into(&self.weight.data, grad_in);
        }
    }
}

impl InferLayer for Linear {
    fn infer_into<'w>(&self, input: &Matrix, ws: &'w mut ForwardWorkspace) -> &'w Matrix {
        ws.rewind();
        {
            let (_cur, next, _aux) = ws.split();
            self.infer_raw(input, Activation::Identity, next);
        }
        ws.flip();
        ws.output()
    }
}

impl Layer for Linear {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut out = input.matmul(&self.weight.data);
        out.add_row_vector(self.bias.data.as_slice());
        cache_input(&mut self.cached_input, input);
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let input = self.cached_input.as_ref().expect("Linear::backward called before forward");
        // dW = input^T @ grad_out
        let dw = input.matmul_tn(grad_out);
        self.weight.grad.add_assign(&dw);
        // db = column sums of grad_out
        let db = grad_out.column_sums();
        for (g, d) in self.bias.grad.as_mut_slice().iter_mut().zip(db.iter()) {
            *g += *d;
        }
        // dX = grad_out @ W^T
        grad_out.matmul_nt(&self.weight.data)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

/// A linear layer whose weight matrix is element-wise multiplied by a fixed
/// binary mask: `y = x @ (W ⊙ M) + b`.
///
/// The mask is what turns a stack of fully connected layers into a MADE: it
/// zeroes the connections that would violate the autoregressive ordering.
///
/// Each instance carries a [`WeightKey`] so downstream caches of the masked
/// effective weight (`W ⊙ M`) — see
/// [`MaskedWeightCache`](crate::workspace::MaskedWeightCache) — can validate
/// against the exact weights that produced them. The key's version bumps on
/// every `visit_params` (the only mutable route to the weights), and clones
/// get a fresh identity, which is what invalidates workspace caches across
/// optimizer steps, checkpoint loads, and serving hot-swaps.
#[derive(Debug)]
pub struct MaskedLinear {
    weight: Param,
    bias: Param,
    mask: Matrix,
    cached_input: Option<Matrix>,
    key: WeightKey,
}

impl Clone for MaskedLinear {
    /// Clones carry the same weights but a **fresh** [`WeightKey`]: the
    /// clone's parameters can diverge from the original's (that is what
    /// checkpoint hot-swap does), so cached effective weights must never be
    /// shared between them.
    fn clone(&self) -> Self {
        Self {
            weight: self.weight.clone(),
            bias: self.bias.clone(),
            mask: self.mask.clone(),
            cached_input: self.cached_input.clone(),
            key: WeightKey::fresh(),
        }
    }
}

impl MaskedLinear {
    /// Create a masked layer. `mask` must have shape `(in_features, out_features)`
    /// and contain only 0.0 / 1.0 entries.
    pub fn new(
        in_features: usize,
        out_features: usize,
        mask: Matrix,
        init: Init,
        rng: &mut SmallRng,
    ) -> Self {
        assert_eq!(mask.shape(), (in_features, out_features), "mask shape must match weight shape");
        debug_assert!(mask.as_slice().iter().all(|&x| x == 0.0 || x == 1.0), "mask must be binary");
        Self {
            weight: Param::new(init.matrix(in_features, out_features, rng)),
            bias: Param::new(Matrix::zeros(1, out_features)),
            mask,
            cached_input: None,
            key: WeightKey::fresh(),
        }
    }

    /// The current identity/version key of this layer's weights (see
    /// [`WeightKey`]); cached masked effective weights are valid exactly as
    /// long as this key is unchanged.
    pub fn weight_key(&self) -> WeightKey {
        self.key
    }

    /// Materialize the masked effective weight `W ⊙ M` into `out` (reshaped,
    /// buffer reused). This is the fill callback for
    /// [`MaskedWeightCache::get_or_fill`](crate::workspace::MaskedWeightCache::get_or_fill).
    pub fn fill_masked(&self, out: &mut Matrix) {
        self.weight.data.masked_into(&self.mask, out);
    }

    /// Fused forward against an already-materialized effective weight:
    /// `out = act(input @ w + b)`. `w` must be this layer's masked effective
    /// weight (typically a [`MaskedWeightCache`] hit); results are
    /// bit-identical to [`MaskedLinear::infer_raw`], which materializes the
    /// same matrix before running the same fused kernel.
    ///
    /// [`MaskedWeightCache`]: crate::workspace::MaskedWeightCache
    pub fn infer_with_weight(&self, input: &Matrix, act: Activation, w: &Matrix, out: &mut Matrix) {
        debug_assert_eq!(w.shape(), self.weight.data.shape());
        input.addmm_bias_act_into(w, Some(self.bias.data.as_slice()), act, out);
    }

    /// Fused forward against a cached entry for this layer's effective
    /// weight, picking the fastest kernel for the batch: dense batches run
    /// the mask-aware **packed** kernel (all-zero weight strips skipped, no
    /// per-call packing), sparse or small batches run the naive kernel
    /// against the cached dense weight (whose zero-*input* skipping wins
    /// there). All paths are bit-identical for finite inputs.
    ///
    /// `entry` must come from [`MaskedWeightCache::entry`] keyed by this
    /// layer's [`MaskedLinear::weight_key`].
    ///
    /// [`MaskedWeightCache::entry`]: crate::workspace::MaskedWeightCache::entry
    pub fn infer_with_entry(
        &self,
        input: &Matrix,
        act: Activation,
        entry: &mut crate::workspace::MaskedEntry,
        out: &mut Matrix,
    ) {
        self.infer_with_entry_mode(input, act, crate::workspace::WeightMode::Full, entry, out);
    }

    /// [`MaskedLinear::infer_with_entry`] with an explicit weight storage
    /// tier. [`WeightMode::Full`] is the exact path described there;
    /// [`WeightMode::Half`] routes the batched dense case through the
    /// f16-storage pack (`entry.packed_half()`) instead — bounded per-weight
    /// rounding error, half the weight memory traffic. Paths the half tier
    /// does not cover (sparse inputs, shape-ineligible batches) fall back to
    /// the exact f32 kernels in either mode: the tier is a storage choice
    /// for the batched hot loop, not a change to the dispatch shape.
    ///
    /// [`WeightMode::Full`]: crate::workspace::WeightMode::Full
    /// [`WeightMode::Half`]: crate::workspace::WeightMode::Half
    pub fn infer_with_entry_mode(
        &self,
        input: &Matrix,
        act: Activation,
        mode: crate::workspace::WeightMode,
        entry: &mut crate::workspace::MaskedEntry,
        out: &mut Matrix,
    ) {
        let (m, k) = input.shape();
        let n = self.out_features();
        if crate::kernels::use_packed(m, k, n) {
            // One density scan decides both this dispatch and (via the
            // hint) the dense kernel's own blocked-vs-naive choice.
            if crate::kernels::mostly_dense(input.as_slice()) {
                match mode {
                    crate::workspace::WeightMode::Full => input.addmm_packed_bias_act_into(
                        entry.packed(),
                        Some(self.bias.data.as_slice()),
                        act,
                        out,
                    ),
                    crate::workspace::WeightMode::Half => input.addmm_packed_half_bias_act_into(
                        entry.packed_half(),
                        Some(self.bias.data.as_slice()),
                        act,
                        out,
                    ),
                }
            } else {
                input.addmm_dispatch(
                    entry.weight(),
                    Some(self.bias.data.as_slice()),
                    act,
                    Some(false),
                    out,
                );
            }
        } else {
            // Shape-ineligible: the inner dispatch short-circuits before
            // any scan (same shape predicate).
            self.infer_with_weight(input, act, entry.weight(), out);
        }
    }

    /// Training forward through a cached masked-weight entry: caches the
    /// input for [`Layer::backward`], then computes
    /// `out = input @ (W ⊙ M) + b` (no activation — the caller applies it so
    /// the pre-activation stays available for its ReLU gate) into a reused
    /// caller buffer.
    ///
    /// This is the allocation-free replacement for the training
    /// [`Layer::forward`], which materialized a fresh effective weight and a
    /// fresh output every call: the effective weight comes from `entry`
    /// (re-materialized in place only when the [`WeightKey`] moved, i.e.
    /// once per optimizer step), the output buffer is the caller's, and the
    /// input cache reuses its previous allocation. Bit-identical to
    /// [`Layer::forward`] for finite inputs (fused/packed kernel contract,
    /// see `duet_nn::kernels`), and `backward` works exactly as after a
    /// `forward` call.
    pub fn train_forward_entry(
        &mut self,
        input: &Matrix,
        entry: &mut crate::workspace::MaskedEntry,
        out: &mut Matrix,
    ) {
        cache_input(&mut self.cached_input, input);
        self.infer_with_entry(input, Activation::Identity, entry, out);
    }

    /// Training forward consuming a sparse row capture of the input instead
    /// of the dense matrix: `out = input @ (W ⊙ M) + b`, touching only the
    /// nonzero input entries. Bit-identical to [`train_forward_entry`] for
    /// finite inputs (the sparse kernel accumulates in the same column-index
    /// order the dense zero-skip path does; see `duet_nn::kernels`).
    ///
    /// The dense input is **not** cached — the sparse capture replaces it, so
    /// the matching backward is [`backward_scratch_sparse`] with the same
    /// capture. A subsequent [`Layer::backward`] (or dense
    /// [`backward_scratch`](Self::backward_scratch)) panics rather than
    /// silently using a stale input.
    ///
    /// [`train_forward_entry`]: Self::train_forward_entry
    /// [`backward_scratch_sparse`]: Self::backward_scratch_sparse
    pub fn train_forward_sparse(
        &mut self,
        input: &SparseRows,
        entry: &mut crate::workspace::MaskedEntry,
        out: &mut Matrix,
    ) {
        debug_assert_eq!(input.cols(), self.in_features());
        self.cached_input = None;
        input.addmm_bias_act_into(
            entry.weight(),
            Some(self.bias.data.as_slice()),
            Activation::Identity,
            out,
        );
    }

    /// Scratch-buffer backward against an already-materialized effective
    /// weight `w` (a [`MaskedWeightCache`](crate::workspace::MaskedWeightCache)
    /// hit — backward runs before the optimizer bumps the
    /// [`WeightKey`], so the cached entry is exactly `W ⊙ M`). Stages the
    /// masked `dW` in `dw` and the bias column sums in `db` before
    /// accumulating into the parameter gradients, preserving the allocating
    /// path's accumulation order bit for bit; writes `grad_out @ w^T` into
    /// `grad_in` when the caller needs the input gradient.
    ///
    /// # Panics
    /// Panics if called before a dense training forward cached the input.
    pub fn backward_scratch(
        &mut self,
        grad_out: &Matrix,
        w: &Matrix,
        dw: &mut Matrix,
        db: &mut Vec<f32>,
        grad_in: Option<&mut Matrix>,
    ) {
        let input =
            self.cached_input.as_ref().expect("MaskedLinear::backward called before forward");
        input.matmul_tn_into(grad_out, dw);
        self.finish_backward_scratch(grad_out, w, dw, db, grad_in);
    }

    /// Sparse-input variant of [`backward_scratch`](Self::backward_scratch):
    /// `dW` is computed from the sparse row capture the matching
    /// [`train_forward_sparse`](Self::train_forward_sparse) consumed,
    /// touching only nonzero input entries. Bit-identical to the dense
    /// variant for finite inputs.
    pub fn backward_scratch_sparse(
        &mut self,
        grad_out: &Matrix,
        input: &SparseRows,
        w: &Matrix,
        dw: &mut Matrix,
        db: &mut Vec<f32>,
        grad_in: Option<&mut Matrix>,
    ) {
        debug_assert_eq!(input.cols(), self.in_features());
        input.matmul_tn_into(grad_out, dw);
        self.finish_backward_scratch(grad_out, w, dw, db, grad_in);
    }

    /// Shared tail of the scratch backwards: mask `dW`, accumulate both
    /// parameter gradients (via staging, keeping the rounding order of the
    /// allocating path), and optionally produce the input gradient.
    fn finish_backward_scratch(
        &mut self,
        grad_out: &Matrix,
        w: &Matrix,
        dw: &mut Matrix,
        db: &mut Vec<f32>,
        grad_in: Option<&mut Matrix>,
    ) {
        debug_assert_eq!(w.shape(), self.weight.data.shape());
        dw.mul_assign(&self.mask);
        self.weight.grad.add_assign(dw);
        grad_out.column_sums_into(db);
        for (g, d) in self.bias.grad.as_mut_slice().iter_mut().zip(db.iter()) {
            *g += *d;
        }
        if let Some(grad_in) = grad_in {
            grad_out.matmul_nt_into(w, grad_in);
        }
    }

    /// The binary connectivity mask.
    pub fn mask(&self) -> &Matrix {
        &self.mask
    }

    /// Number of trainable scalars (weight + bias), computable without
    /// mutable access — sizes come from the stored shapes, not from
    /// materializing the effective weight.
    pub fn num_parameters(&self) -> usize {
        self.weight.data.len() + self.bias.data.len()
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.weight.data.rows()
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.weight.data.cols()
    }

    /// The effective (masked) weight matrix actually used by the forward pass.
    pub fn effective_weight(&self) -> Matrix {
        let mut w = self.weight.data.clone();
        w.mul_assign(&self.mask);
        w
    }

    /// Forward pass without caching (inference-only path).
    pub fn forward_inference(&self, input: &Matrix) -> Matrix {
        let mut wscratch = Matrix::zeros(0, 0);
        let mut out = Matrix::zeros(0, 0);
        self.infer_raw(input, Activation::Identity, &mut wscratch, &mut out);
        out
    }

    /// Allocation-free fused forward: the masked effective weight is
    /// materialized into `wscratch` (no allocation once warm) and
    /// `out = act(input @ (W ⊙ M) + b)` is computed in one fused pass.
    pub fn infer_raw(
        &self,
        input: &Matrix,
        act: Activation,
        wscratch: &mut Matrix,
        out: &mut Matrix,
    ) {
        self.weight.data.masked_into(&self.mask, wscratch);
        input.addmm_bias_act_into(wscratch, Some(self.bias.data.as_slice()), act, out);
    }
}

impl InferLayer for MaskedLinear {
    fn infer_into<'w>(&self, input: &Matrix, ws: &'w mut ForwardWorkspace) -> &'w Matrix {
        ws.rewind();
        {
            let (_cur, next, _aux, masked) = ws.split_masked();
            let entry = masked.entry(0, self.key, |out| self.fill_masked(out));
            self.infer_with_entry(input, Activation::Identity, entry, next);
        }
        ws.flip();
        ws.output()
    }
}

impl Layer for MaskedLinear {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let w = self.effective_weight();
        let mut out = input.matmul(&w);
        out.add_row_vector(self.bias.data.as_slice());
        cache_input(&mut self.cached_input, input);
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let input =
            self.cached_input.as_ref().expect("MaskedLinear::backward called before forward");
        let mut dw = input.matmul_tn(grad_out);
        dw.mul_assign(&self.mask);
        self.weight.grad.add_assign(&dw);
        let db = grad_out.column_sums();
        for (g, d) in self.bias.grad.as_mut_slice().iter_mut().zip(db.iter()) {
            *g += *d;
        }
        let w = self.effective_weight();
        grad_out.matmul_nt(&w)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        // Handing out `&mut Param` may mutate the weights (optimizer step,
        // checkpoint load): conservatively invalidate derived caches.
        self.key.bump();
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;

    #[test]
    fn linear_forward_shape_and_bias() {
        let mut rng = seeded_rng(1);
        let mut layer = Linear::new(3, 2, Init::Zeros, &mut rng);
        layer.bias_mut().as_mut_slice().copy_from_slice(&[1.0, -1.0]);
        let x = Matrix::full(4, 3, 2.0);
        let y = layer.forward(&x);
        assert_eq!(y.shape(), (4, 2));
        // Zero weights => output equals bias.
        assert_eq!(y.row(0), &[1.0, -1.0]);
    }

    #[test]
    fn linear_backward_accumulates_grads() {
        let mut rng = seeded_rng(2);
        let mut layer = Linear::new(2, 2, Init::KaimingUniform, &mut rng);
        let x = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let _ = layer.forward(&x);
        let g = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let gin = layer.backward(&g);
        assert_eq!(gin.shape(), (1, 2));
        let mut count = 0;
        layer.visit_params(&mut |p| {
            count += 1;
            assert!(p.grad.max_abs() > 0.0 || p.data.max_abs() == 0.0);
        });
        assert_eq!(count, 2);
    }

    #[test]
    fn masked_linear_blocks_connections() {
        let mut rng = seeded_rng(3);
        // Mask that blocks input 0 from reaching output 0.
        let mask = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 1.0]);
        let mut layer = MaskedLinear::new(2, 2, mask, Init::KaimingUniform, &mut rng);
        let base = layer.forward(&Matrix::from_vec(1, 2, vec![0.0, 1.0]));
        let moved = layer.forward(&Matrix::from_vec(1, 2, vec![100.0, 1.0]));
        // Output 0 must be unchanged when only input 0 changes.
        assert!((base.get(0, 0) - moved.get(0, 0)).abs() < 1e-6);
        // Output 1 is allowed to change (with overwhelming probability).
        assert!((base.get(0, 1) - moved.get(0, 1)).abs() > 1e-3);
    }

    #[test]
    fn masked_linear_grad_respects_mask() {
        let mut rng = seeded_rng(4);
        let mask = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let mut layer = MaskedLinear::new(2, 2, mask.clone(), Init::KaimingUniform, &mut rng);
        let x = Matrix::from_vec(1, 2, vec![1.0, 1.0]);
        let _ = layer.forward(&x);
        let _ = layer.backward(&Matrix::full(1, 2, 1.0));
        layer.visit_params(&mut |p| {
            if p.data.shape() == (2, 2) {
                // Weight gradient must be zero wherever the mask is zero.
                for i in 0..2 {
                    for j in 0..2 {
                        if mask.get(i, j) == 0.0 {
                            assert_eq!(p.grad.get(i, j), 0.0);
                        }
                    }
                }
            }
        });
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_before_forward_panics() {
        let mut rng = seeded_rng(5);
        let mut layer = Linear::new(2, 2, Init::KaimingUniform, &mut rng);
        let _ = layer.backward(&Matrix::zeros(1, 2));
    }
}
