//! Scratch buffers for the allocation-free inference path.
//!
//! A [`ForwardWorkspace`] owns every intermediate buffer a forward pass
//! needs: two ping-pong activation matrices, an auxiliary matrix (residual
//! skip / hidden state), and a scratch matrix for materializing masked
//! effective weights. Layers implementing
//! [`InferLayer`](crate::param::InferLayer) thread their activations through
//! these buffers instead of allocating per call, so once the buffers have
//! grown to the widest layer of a network (after the first batch), repeated
//! forward passes perform **zero heap allocation**.
//!
//! Ownership rules:
//!
//! * the workspace belongs to the *caller* (one per serving worker thread /
//!   bench loop), never to a model — models stay shareable (`&self`
//!   inference) and a workspace is never aliased by two concurrent passes;
//! * a workspace may be reused freely across models and batch shapes; the
//!   buffers reshape on the fly, reusing their heap capacity;
//! * the output reference returned by `infer_into` borrows the workspace and
//!   is valid until the next pass overwrites the buffers.

use crate::tensor::Matrix;

/// Reusable scratch buffers for one in-flight forward pass.
#[derive(Debug, Clone, Default)]
pub struct ForwardWorkspace {
    /// Ping-pong activation buffers; `live` indexes the one holding the
    /// current activation (the previous layer's output).
    bufs: [Matrix; 2],
    live: usize,
    /// Extra buffer for stages that need a third activation (the hidden
    /// state of a residual block).
    aux: Matrix,
    /// Scratch for masked effective weights (`W ⊙ M`).
    wscratch: Matrix,
}

impl ForwardWorkspace {
    /// An empty workspace; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }

    /// The buffer holding the most recent layer output.
    pub fn output(&self) -> &Matrix {
        &self.bufs[self.live]
    }

    /// Split the workspace into `(current, next, aux, wscratch)` for one
    /// layer step: read the activation from `current`, write into `next`
    /// (and/or `aux`), then call [`ForwardWorkspace::flip`] to make `next`
    /// the new current.
    pub fn split(&mut self) -> (&mut Matrix, &mut Matrix, &mut Matrix, &mut Matrix) {
        let Self { bufs, live, aux, wscratch } = self;
        let (a, b) = bufs.split_at_mut(1);
        let (cur, next) = if *live == 0 { (&mut a[0], &mut b[0]) } else { (&mut b[0], &mut a[0]) };
        (cur, next, aux, wscratch)
    }

    /// Promote the `next` buffer of the last [`ForwardWorkspace::split`] to
    /// the current activation.
    pub fn flip(&mut self) {
        self.live ^= 1;
    }

    /// Reset the ping-pong parity so a fresh pass always assigns the same
    /// buffer to the same stage index. Networks with an odd stage count
    /// would otherwise swap the two buffers' roles on every pass, forcing
    /// each buffer to grow to *every* stage width before the workspace stops
    /// allocating; with a fixed parity one warm-up pass suffices.
    pub fn rewind(&mut self) {
        self.live = 0;
    }
}

impl Matrix {
    /// Compute the masked effective weight `self ⊙ mask` into `out`
    /// (reshaped, buffer reused). The inference-path replacement for
    /// materializing a fresh masked weight matrix per forward call.
    pub fn masked_into(&self, mask: &Matrix, out: &mut Matrix) {
        out.copy_from(self);
        out.mul_assign(mask);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_pairs_alternate_with_flip() {
        let mut ws = ForwardWorkspace::new();
        {
            let (_cur, next, _aux, _w) = ws.split();
            next.reset(2, 3);
            next.fill(7.0);
        }
        ws.flip();
        assert_eq!(ws.output().shape(), (2, 3));
        assert_eq!(ws.output().get(1, 2), 7.0);
        {
            let (cur, next, _aux, _w) = ws.split();
            assert_eq!(cur.shape(), (2, 3), "current must be the buffer just written");
            next.reset(1, 1);
        }
        ws.flip();
        assert_eq!(ws.output().shape(), (1, 1));
    }

    #[test]
    fn masked_into_matches_clone_and_mul() {
        let w = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let m = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let mut out = Matrix::zeros(0, 0);
        w.masked_into(&m, &mut out);
        let mut expected = w.clone();
        expected.mul_assign(&m);
        assert_eq!(out, expected);
    }
}
