//! Scratch buffers for the allocation-free inference path.
//!
//! A [`ForwardWorkspace`] owns every intermediate buffer a forward pass
//! needs: two ping-pong activation matrices, an auxiliary matrix (residual
//! skip / hidden state), and a [`MaskedWeightCache`] that **memoizes** the
//! masked effective weights across batches. Layers implementing
//! [`InferLayer`](crate::param::InferLayer) thread their activations through
//! these buffers instead of allocating per call, so once the buffers have
//! grown to the widest layer of a network (after the first batch), repeated
//! forward passes perform **zero heap allocation**.
//!
//! Ownership rules:
//!
//! * the workspace belongs to the *caller* (one per serving worker thread /
//!   bench loop), never to a model — models stay shareable (`&self`
//!   inference) and a workspace is never aliased by two concurrent passes;
//! * a workspace may be reused freely across models and batch shapes; the
//!   buffers reshape on the fly, reusing their heap capacity, and the masked
//!   weight cache re-validates per layer via [`WeightKey`]s — so reuse
//!   across models, optimizer steps, or checkpoint hot-swaps can never serve
//!   stale weights;
//! * the output reference returned by `infer_into` borrows the workspace and
//!   is valid until the next pass overwrites the buffers.
//!
//! # Example
//!
//! ```
//! use duet_nn::{seeded_rng, ForwardWorkspace, InferLayer, Matrix, Mlp};
//!
//! let mut rng = seeded_rng(7);
//! let mlp = Mlp::new(&[4, 16, 2], &mut rng);
//! let mut ws = ForwardWorkspace::new();
//!
//! // One warm-up pass grows the buffers; afterwards the workspace is
//! // reused allocation-free, across batch sizes and (keyed) models.
//! let full = mlp.infer_into(&Matrix::zeros(8, 4), &mut ws).clone();
//! let small = mlp.infer_into(&Matrix::zeros(3, 4), &mut ws);
//! assert_eq!(full.shape(), (8, 2));
//! assert_eq!(small.shape(), (3, 2));
//! assert_eq!(full.row(0), small.row(0), "row results are batch-independent");
//! ```

use crate::kernels::{PackedWeight, PackedWeightHalf};
use crate::param::WeightKey;
use crate::tensor::Matrix;

/// Which storage tier the batched packed kernels read weights from.
///
/// [`Full`](WeightMode::Full) (the default) is the exact f32 pack —
/// bit-identical to the dense path. [`Half`](WeightMode::Half) is the
/// compressed warm tier: weights stored as f16 bits with f32 accumulation,
/// halving resident bytes and strip memory traffic at the cost of a bounded
/// one-time per-weight rounding (see
/// [`PackedWeightHalf`]). The mode lives on the *workspace* (per serving
/// worker), never on the model, so a fleet can serve the same shared model
/// at different tiers. Training always runs `Full`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightMode {
    /// Exact f32 packed weights (bit-identical to the dense path).
    #[default]
    Full,
    /// f16-storage packed weights with f32 accumulation (bounded error).
    Half,
}

/// One memoized masked effective weight (`W ⊙ M`) plus the key of the
/// weights it was materialized from, with lazily maintained mask-aware
/// packed forms for both storage tiers (see [`PackedWeight`] and
/// [`PackedWeightHalf`]).
#[derive(Debug, Clone, Default)]
pub struct MaskedEntry {
    key: Option<WeightKey>,
    weight: Matrix,
    /// Key the packed form was derived under; `packed` is valid iff this
    /// equals `key`. Lazy so single-row paths that never run the packed
    /// kernel never pay for packing.
    packed_key: Option<WeightKey>,
    packed: PackedWeight,
    /// Key the f16 pack was derived under (same protocol as `packed_key`).
    /// Lazy so workspaces that never switch to [`WeightMode::Half`] never
    /// pay for the compressed pack.
    half_key: Option<WeightKey>,
    half: PackedWeightHalf,
}

impl MaskedEntry {
    /// The dense masked effective weight.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// The mask-aware packed form of [`MaskedEntry::weight`], packing it now
    /// if the cached pack is missing or from older weights. Repacking reuses
    /// the pack buffers, so a steady-state refill (e.g. after a hot-swap)
    /// does not allocate.
    pub fn packed(&mut self) -> &PackedWeight {
        if self.packed_key != self.key {
            self.packed.fill_from(self.weight.as_slice(), self.weight.rows(), self.weight.cols());
            self.packed_key = self.key;
        }
        &self.packed
    }

    /// The f16-storage packed form of [`MaskedEntry::weight`] (the
    /// compressed warm tier), packing it now if missing or from older
    /// weights. Same lazy/reuse protocol as [`MaskedEntry::packed`].
    pub fn packed_half(&mut self) -> &PackedWeightHalf {
        if self.half_key != self.key {
            self.half.fill_from(self.weight.as_slice(), self.weight.rows(), self.weight.cols());
            self.half_key = self.key;
        }
        &self.half
    }
}

/// A per-workspace memo of masked effective weights, indexed by the masked
/// layer's position (slot) in its network.
///
/// MADE-style networks multiply every weight matrix by a binary mask on each
/// forward pass; materializing `W ⊙ M` per batch costs a full pass over the
/// parameters. Because inference never mutates weights, the materialized
/// product is reusable across batches — this cache keeps one per masked
/// layer, validated by the layer's [`WeightKey`] (identity + mutation
/// version). A hot-swap or optimizer step changes the key, so the next pass
/// refills the slot in place (same shape ⇒ still allocation-free); a key
/// match skips the materialization entirely.
#[derive(Debug, Clone, Default)]
pub struct MaskedWeightCache {
    slots: Vec<MaskedEntry>,
    /// Storage tier the batched packed path should read from; layers consult
    /// this when dispatching (see [`WeightMode`]).
    mode: WeightMode,
}

impl MaskedWeightCache {
    /// The storage tier the batched packed path reads from.
    pub fn mode(&self) -> WeightMode {
        self.mode
    }

    /// Select the storage tier for subsequent passes (see [`WeightMode`]).
    /// Cached packs of *both* tiers stay valid across switches — flipping
    /// modes never re-materializes anything already built.
    pub fn set_mode(&mut self, mode: WeightMode) {
        self.mode = mode;
    }

    /// The cached entry for `slot`, refilled via `fill` first if the slot is
    /// empty or was materialized from differently-keyed weights.
    ///
    /// The slot vector grows on first use per network depth (a warm-up
    /// event); steady-state hits touch only the key comparison. The entry
    /// gives access to both the dense weight and its packed form.
    pub fn entry(
        &mut self,
        slot: usize,
        key: WeightKey,
        fill: impl FnOnce(&mut Matrix),
    ) -> &mut MaskedEntry {
        if slot >= self.slots.len() {
            self.slots.resize_with(slot + 1, MaskedEntry::default);
        }
        let entry = &mut self.slots[slot];
        if entry.key != Some(key) {
            fill(&mut entry.weight);
            entry.key = Some(key);
        }
        entry
    }

    /// The cached dense masked weight for `slot` (see
    /// [`MaskedWeightCache::entry`]).
    pub fn get_or_fill(
        &mut self,
        slot: usize,
        key: WeightKey,
        fill: impl FnOnce(&mut Matrix),
    ) -> &Matrix {
        &self.entry(slot, key, fill).weight
    }

    /// Number of slots materialized so far.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Drop every memoized weight's key (buffers are kept for reuse). The
    /// next pass re-materializes. Callers normally never need this — key
    /// validation is automatic — but it makes invalidation testable.
    pub fn invalidate(&mut self) {
        for slot in &mut self.slots {
            slot.key = None;
            slot.packed_key = None;
            slot.half_key = None;
        }
    }
}

/// Reusable scratch buffers for one in-flight forward pass.
#[derive(Debug, Clone, Default)]
pub struct ForwardWorkspace {
    /// Ping-pong activation buffers; `live` indexes the one holding the
    /// current activation (the previous layer's output).
    bufs: [Matrix; 2],
    live: usize,
    /// Extra buffer for stages that need a third activation (the hidden
    /// state of a residual block).
    aux: Matrix,
    /// Memoized masked effective weights, validated by [`WeightKey`].
    masked: MaskedWeightCache,
}

impl ForwardWorkspace {
    /// An empty workspace; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }

    /// The buffer holding the most recent layer output.
    pub fn output(&self) -> &Matrix {
        &self.bufs[self.live]
    }

    /// Split the workspace into `(current, next, aux)` for one layer step:
    /// read the activation from `current`, write into `next` (and/or
    /// `aux`), then call [`ForwardWorkspace::flip`] to make `next` the new
    /// current.
    pub fn split(&mut self) -> (&mut Matrix, &mut Matrix, &mut Matrix) {
        let Self { bufs, live, aux, .. } = self;
        let (a, b) = bufs.split_at_mut(1);
        let (cur, next) = if *live == 0 { (&mut a[0], &mut b[0]) } else { (&mut b[0], &mut a[0]) };
        (cur, next, aux)
    }

    /// [`ForwardWorkspace::split`] for masked networks: additionally exposes
    /// the masked weight cache, so a stage can look its effective weight up
    /// (or refill it) while writing activations.
    pub fn split_masked(
        &mut self,
    ) -> (&mut Matrix, &mut Matrix, &mut Matrix, &mut MaskedWeightCache) {
        let Self { bufs, live, aux, masked, .. } = self;
        let (a, b) = bufs.split_at_mut(1);
        let (cur, next) = if *live == 0 { (&mut a[0], &mut b[0]) } else { (&mut b[0], &mut a[0]) };
        (cur, next, aux, masked)
    }

    /// The masked weight cache (inspection / explicit invalidation).
    pub fn masked_cache_mut(&mut self) -> &mut MaskedWeightCache {
        &mut self.masked
    }

    /// Select the weight storage tier for subsequent passes through this
    /// workspace (see [`WeightMode`]). Sticky until changed; defaults to
    /// [`WeightMode::Full`].
    pub fn set_weight_mode(&mut self, mode: WeightMode) {
        self.masked.set_mode(mode);
    }

    /// The weight storage tier currently selected (see [`WeightMode`]).
    pub fn weight_mode(&self) -> WeightMode {
        self.masked.mode()
    }

    /// Promote the `next` buffer of the last [`ForwardWorkspace::split`] to
    /// the current activation.
    pub fn flip(&mut self) {
        self.live ^= 1;
    }

    /// Reset the ping-pong parity so a fresh pass always assigns the same
    /// buffer to the same stage index. Networks with an odd stage count
    /// would otherwise swap the two buffers' roles on every pass, forcing
    /// each buffer to grow to *every* stage width before the workspace stops
    /// allocating; with a fixed parity one warm-up pass suffices.
    pub fn rewind(&mut self) {
        self.live = 0;
    }
}

/// Scratch buffers for the allocation-free **training** step: activation
/// checkpointing for the forward pass and gradient ping-pong buffers for
/// the backward pass.
///
/// The inference [`ForwardWorkspace`] ping-pongs two buffers because nothing
/// downstream needs intermediate activations; the training forward must keep
/// *every* stage output alive for the backward pass, so this workspace holds
/// one persistent activation matrix per network stage plus an auxiliary
/// buffer (the hidden state of a residual block) and the same
/// [`MaskedWeightCache`] memo of masked effective weights. The backward pass
/// rotates through three gradient buffers (`grads`) instead of allocating a
/// fresh `Matrix` per stage, staging weight and bias gradients in `dw`/`db`
/// before accumulating them into the parameters.
///
/// Ownership mirrors [`ForwardWorkspace`]: the workspace belongs to the
/// caller (the trainer's step scratch), buffers grow to the network's
/// shapes on the first batch and are reused allocation-free afterwards, and
/// the weight memo re-validates per layer by [`WeightKey`] — an optimizer
/// step (which bumps every key through `visit_params`) re-materializes the
/// masked weights **in place**, costing the same arithmetic as the old
/// per-forward materialization but none of its allocations.
#[derive(Debug, Clone, Default)]
pub struct TrainWorkspace {
    /// One checkpointed activation per stage: stage `i` reads `acts[i-1]`
    /// (or the input) and writes `acts[i]`.
    acts: Vec<Matrix>,
    /// Residual-block hidden state (`relu(fc1(x))`).
    aux: Matrix,
    /// Memoized masked effective weights, validated by [`WeightKey`].
    masked: MaskedWeightCache,
    /// Gradient ping-pong buffers for the scratch backward pass. Three, not
    /// two: a residual stage needs its incoming gradient alive (for the skip
    /// add) while `fc2`-backward writes one buffer and `fc1`-backward
    /// another.
    grads: [Matrix; 3],
    /// Weight-gradient staging (`input^T @ grad`, masked in place before
    /// accumulation into the parameter gradient).
    dw: Matrix,
    /// Bias-gradient staging (column sums of the incoming gradient).
    db: Vec<f32>,
    /// Which of `grads` holds the gradient w.r.t. the network input after
    /// the most recent backward pass.
    input_grad: usize,
}

impl TrainWorkspace {
    /// An empty workspace; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }

    /// Split into the per-stage activation slots (grown to `stages`), the
    /// auxiliary buffer, and the masked weight cache — disjoint borrows for
    /// one forward pass.
    pub(crate) fn parts(
        &mut self,
        stages: usize,
    ) -> (&mut [Matrix], &mut Matrix, &mut MaskedWeightCache) {
        if self.acts.len() < stages {
            self.acts.resize_with(stages, Matrix::default);
        }
        let Self { acts, aux, masked, .. } = self;
        (&mut acts[..stages], aux, masked)
    }

    /// Disjoint borrows for one scratch backward pass: the gradient
    /// ping-pong buffers, the weight-gradient staging matrix, the
    /// bias-gradient staging vector, and the masked weight cache (whose
    /// entries, still keyed from the forward pass, provide the effective
    /// weights without re-materializing them).
    #[allow(clippy::type_complexity)]
    pub(crate) fn backward_parts(
        &mut self,
    ) -> (&mut [Matrix; 3], &mut Matrix, &mut Vec<f32>, &mut MaskedWeightCache) {
        let Self { masked, grads, dw, db, .. } = self;
        (grads, dw, db, masked)
    }

    /// Record which gradient buffer ended the backward pass holding the
    /// input gradient (set by the network's `backward_scratch`).
    pub(crate) fn set_input_grad_slot(&mut self, slot: usize) {
        self.input_grad = slot;
    }

    /// The gradient w.r.t. the network input, as left by the most recent
    /// backward pass that was asked to produce it (`need_input_grad`).
    /// Borrow-only: the buffer is owned by the workspace and overwritten by
    /// the next backward pass.
    pub fn input_grad(&self) -> &Matrix {
        &self.grads[self.input_grad]
    }

    /// The masked weight cache (inspection / explicit invalidation).
    pub fn masked_cache_mut(&mut self) -> &mut MaskedWeightCache {
        &mut self.masked
    }
}

impl Matrix {
    /// Compute the masked effective weight `self ⊙ mask` into `out`
    /// (reshaped, buffer reused). The inference-path replacement for
    /// materializing a fresh masked weight matrix per forward call.
    pub fn masked_into(&self, mask: &Matrix, out: &mut Matrix) {
        out.copy_from(self);
        out.mul_assign(mask);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_pairs_alternate_with_flip() {
        let mut ws = ForwardWorkspace::new();
        {
            let (_cur, next, _aux) = ws.split();
            next.reset(2, 3);
            next.fill(7.0);
        }
        ws.flip();
        assert_eq!(ws.output().shape(), (2, 3));
        assert_eq!(ws.output().get(1, 2), 7.0);
        {
            let (cur, next, _aux) = ws.split();
            assert_eq!(cur.shape(), (2, 3), "current must be the buffer just written");
            next.reset(1, 1);
        }
        ws.flip();
        assert_eq!(ws.output().shape(), (1, 1));
    }

    #[test]
    fn masked_into_matches_clone_and_mul() {
        let w = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let m = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        let mut out = Matrix::zeros(0, 0);
        w.masked_into(&m, &mut out);
        let mut expected = w.clone();
        expected.mul_assign(&m);
        assert_eq!(out, expected);
    }

    #[test]
    fn masked_cache_fills_once_per_key() {
        let mut cache = MaskedWeightCache::default();
        let key = WeightKey::fresh();
        let mut fills = 0;
        for _ in 0..3 {
            let w = cache.get_or_fill(0, key, |out| {
                fills += 1;
                out.reset(2, 2);
                out.fill(1.5);
            });
            assert_eq!(w.get(1, 1), 1.5);
        }
        assert_eq!(fills, 1, "a matching key must not re-materialize");

        let mut other_key = key;
        other_key.bump();
        cache.get_or_fill(0, other_key, |out| {
            fills += 1;
            out.fill(2.5);
        });
        assert_eq!(fills, 2, "a bumped version must re-materialize");

        cache.invalidate();
        cache.get_or_fill(0, other_key, |_| fills += 1);
        assert_eq!(fills, 3, "explicit invalidation must re-materialize");
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }
}
