//! A persistent worker pool for data-parallel kernel execution.
//!
//! Before this module existed, every matmul large enough to parallelize
//! spawned fresh threads through `std::thread::scope` — paying thread
//! start-up latency *and* heap allocations on the supposedly
//! allocation-free inference path whenever a batch crossed the parallelism
//! threshold. A [`ComputePool`] replaces that with a fixed set of **parked
//! worker threads**: submitting a job is a mutex/condvar wake-up, chunks are
//! claimed from an epoch-tagged atomic dispenser, and completion is
//! signalled by an atomic counter — no heap allocation anywhere on the
//! submit/execute/wait path, so very large batches stay inside the
//! zero-allocation envelope (`tests/zero_alloc.rs` asserts this through the
//! pool).
//!
//! One pool is shared by everything in the process — the trainer, the
//! `duet-serve` shard workers, bench loops — via [`ComputePool::global`],
//! which sizes itself to the machine. Kernels pick the pool up through a
//! thread-local *current pool* reference, so tests and benches can run a
//! scoped pool of any size with [`with_pool`] (e.g. to exercise the parallel
//! path deterministically on a single-core CI runner).
//!
//! Scheduling is intentionally simple and deterministic-friendly: the job is
//! a `Fn(chunk_index)` closure, workers and the submitting thread race to
//! claim chunk indices, and *which* thread runs a chunk never affects the
//! result — kernels map chunk indices to fixed disjoint row ranges, so
//! outputs are bit-identical to a serial run. Per-worker scratch (e.g. the
//! packed-panel buffers of the blocked matmul kernels) lives in
//! thread-locals on the worker threads and is likewise reused across jobs.
//!
//! # Example
//!
//! ```
//! use duet_nn::pool::ComputePool;
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let pool = ComputePool::new(2); // two parked workers + the caller
//! assert_eq!(pool.parallelism(), 3);
//!
//! let cells: Vec<AtomicU64> = (0..8).map(|_| AtomicU64::new(0)).collect();
//! pool.run(8, &|chunk| cells[chunk].store((chunk * chunk) as u64, Ordering::Relaxed));
//! assert_eq!(cells[7].load(Ordering::Relaxed), 49);
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A type-erased pending job: a shim function that downcasts the data
/// pointer back to the caller's closure type, plus the chunk count.
///
/// The raw pointer references a closure on the submitting thread's stack;
/// [`ComputePool::run`] does not return until every chunk has completed, so
/// workers never observe it dangling.
#[derive(Clone, Copy)]
struct JobDesc {
    call: unsafe fn(*const (), usize),
    data: *const (),
    num_chunks: usize,
}

// SAFETY: the closure behind `data` is `Sync` (enforced by `run`'s bound)
// and outlives the job (enforced by `run` blocking until completion).
unsafe impl Send for JobDesc {}

unsafe fn call_shim<F: Fn(usize) + Sync>(data: *const (), chunk: usize) {
    // SAFETY: `data` was produced from `&F` in `run` and is still alive.
    unsafe { (*(data as *const F))(chunk) };
}

/// The chunk dispenser packs the job epoch (high 32 bits) next to the next
/// chunk index (low 32 bits), so claiming a chunk and checking that it
/// belongs to the claimer's job is **one** atomic compare-exchange. A
/// straggler worker that is still looping when a new job is published can
/// therefore never steal (or corrupt the count of) the new job's chunks —
/// its CAS fails on the epoch bits and it goes back to sleep.
fn pack(epoch: u32, chunk: u32) -> u64 {
    (u64::from(epoch) << 32) | u64::from(chunk)
}

fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// State broadcast from the submitter to the parked workers.
struct JobState {
    /// Bumped once per submitted job; workers wake when it moves.
    epoch: u32,
    /// The job for the current epoch.
    job: Option<JobDesc>,
}

/// Everything shared between the pool handle and its worker threads.
struct Shared {
    state: Mutex<JobState>,
    work_ready: Condvar,
    /// Epoch-tagged chunk dispenser (see [`pack`]).
    dispenser: AtomicU64,
    /// Chunks not yet finished; the submitter spins on this reaching zero.
    remaining: AtomicUsize,
    /// Set when a chunk panicked; the submitter re-raises after the job
    /// completes (see [`ComputePool::run`]).
    poisoned: AtomicBool,
    shutdown: AtomicBool,
}

impl Shared {
    /// Claim and run chunks of `job` (published under `epoch`) until the
    /// dispenser is exhausted or a newer job replaces it.
    ///
    /// Never unwinds: a panicking chunk is caught, recorded in `poisoned`,
    /// and still counted as finished. This is load-bearing for memory
    /// safety — the job's closure and output buffer live on the submitting
    /// thread's stack, and the SAFETY contract that `run` outlives every
    /// chunk only holds if neither a worker (which would die holding an
    /// undecremented chunk, hanging the submitter) nor the submitter itself
    /// (which would tear the frame down under the workers) can unwind
    /// mid-job.
    fn run_chunks(&self, epoch: u32, job: &JobDesc) {
        loop {
            let current = self.dispenser.load(Ordering::Acquire);
            let (seen_epoch, chunk) = unpack(current);
            if seen_epoch != epoch || chunk as usize >= job.num_chunks {
                return;
            }
            if self
                .dispenser
                .compare_exchange_weak(
                    current,
                    pack(epoch, chunk + 1),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_err()
            {
                continue; // lost the race for this chunk; try the next
            }
            // SAFETY: the submitter blocks in `run` until `remaining` hits
            // zero, so the closure behind the pointer is still alive.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
                (job.call)(job.data, chunk as usize)
            }));
            if outcome.is_err() {
                self.poisoned.store(true, Ordering::Release);
            }
            self.remaining.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// A fixed set of parked worker threads executing data-parallel jobs.
///
/// See the [module docs](self) for the design; in short: persistent threads,
/// allocation-free submission, chunk outputs bit-identical to a serial run.
pub struct ComputePool {
    shared: Arc<Shared>,
    /// Serializes submissions: one job occupies the pool at a time. A
    /// concurrent submitter falls back to running its job inline (same
    /// result, no blocking, no deadlock).
    submit: Mutex<()>,
    /// Jobs that were actually dispatched to the workers (observability for
    /// tests asserting the parallel path ran).
    dispatched: AtomicU64,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ComputePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComputePool").field("workers", &self.handles.len()).finish()
    }
}

impl ComputePool {
    /// A pool with `workers` parked threads (plus the submitting thread,
    /// which always participates in its own jobs).
    ///
    /// `workers == 0` is valid: every job runs inline on the caller.
    pub fn new(workers: usize) -> Self {
        // Pool init is the natural once-per-process moment to pick the
        // kernels' register-tile variant from the CPU, so the first hot-path
        // matmul never pays for feature detection.
        let _ = crate::kernels::native_tile();
        let shared = Arc::new(Shared {
            state: Mutex::new(JobState { epoch: 0, job: None }),
            work_ready: Condvar::new(),
            dispenser: AtomicU64::new(pack(0, 0)),
            remaining: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("duet-compute-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn compute worker")
            })
            .collect();
        Self { shared, submit: Mutex::new(()), dispatched: AtomicU64::new(0), handles }
    }

    /// The process-wide pool shared by training, serving, and benches:
    /// `available_parallelism - 1` workers, created on first use and kept
    /// for the lifetime of the process.
    pub fn global() -> &'static ComputePool {
        static POOL: OnceLock<ComputePool> = OnceLock::new();
        POOL.get_or_init(|| {
            let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
            ComputePool::new(threads.saturating_sub(1))
        })
    }

    /// Number of threads a job can occupy: the workers plus the caller.
    pub fn parallelism(&self) -> usize {
        self.handles.len() + 1
    }

    /// Number of jobs that were dispatched to the worker threads (jobs run
    /// inline — zero/one chunk, zero workers, or a busy pool — don't count).
    pub fn dispatched_jobs(&self) -> u64 {
        self.dispatched.load(Ordering::Relaxed)
    }

    /// Execute `task(0..num_chunks)` across the pool and the calling thread,
    /// returning once **every** chunk has completed.
    ///
    /// Chunks may run in any order on any thread, so `task` must map the
    /// chunk index to work that is independent of execution order (the
    /// kernels map it to disjoint output row ranges). The submit path
    /// performs no heap allocation. If another thread's job currently
    /// occupies the pool, the task runs inline on the caller instead —
    /// same chunks, same results, no waiting.
    ///
    /// # Panics
    ///
    /// If any chunk panics, the panic is caught where it happened (workers
    /// survive, the job still runs to completion so no chunk is left
    /// uncounted) and re-raised from this method once every chunk has
    /// finished — so the caller's closure and buffers are never torn down
    /// while another thread might still reference them.
    pub fn run<F: Fn(usize) + Sync>(&self, num_chunks: usize, task: &F) {
        if num_chunks <= 1 || self.handles.is_empty() {
            for chunk in 0..num_chunks {
                task(chunk);
            }
            return;
        }
        let Ok(_guard) = self.submit.try_lock() else {
            for chunk in 0..num_chunks {
                task(chunk);
            }
            return;
        };
        self.dispatched.fetch_add(1, Ordering::Relaxed);
        let desc =
            JobDesc { call: call_shim::<F>, data: task as *const F as *const (), num_chunks };
        // Publish order: completion counter, then the epoch-tagged dispenser,
        // then the job + epoch under the mutex (which is what wakes workers).
        // A worker that sees the new epoch through the mutex therefore also
        // sees the dispenser and counter for this job; a straggler from the
        // previous job has no pending decrements (its final decrement is what
        // let the previous `run` return) and cannot pass the dispenser's
        // epoch check.
        self.shared.remaining.store(num_chunks, Ordering::Relaxed);
        let epoch = {
            let mut state = self.shared.state.lock().expect("compute pool poisoned");
            let epoch = state.epoch.wrapping_add(1);
            self.shared.dispenser.store(pack(epoch, 0), Ordering::Release);
            state.epoch = epoch;
            state.job = Some(desc);
            epoch
        };
        self.shared.work_ready.notify_all();

        // Participate: the submitter is one of the pool's compute threads.
        self.shared.run_chunks(epoch, &desc);

        // Wait for straggler workers. Spin briefly (chunks are sized to
        // finish together), then yield so an oversubscribed machine can
        // schedule the workers we are waiting on.
        let mut spins = 0u32;
        while self.shared.remaining.load(Ordering::Acquire) != 0 {
            spins += 1;
            if spins < 128 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        // Every chunk has finished — no thread references the task or the
        // caller's buffers anymore, so unwinding is safe now.
        if self.shared.poisoned.swap(false, Ordering::AcqRel) {
            panic!("a ComputePool task panicked (re-raised on the submitting thread)");
        }
    }
}

impl Drop for ComputePool {
    fn drop(&mut self) {
        {
            let _state = self.shared.state.lock().expect("compute pool poisoned");
            self.shared.shutdown.store(true, Ordering::Release);
        }
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u32;
    loop {
        let (epoch, job) = {
            let mut state = shared.state.lock().expect("compute pool poisoned");
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    break (state.epoch, state.job.expect("epoch bumped without a job"));
                }
                state = shared.work_ready.wait(state).expect("compute pool poisoned");
            }
        };
        shared.run_chunks(epoch, &job);
    }
}

thread_local! {
    /// The pool kernels on this thread dispatch into; `None` means the
    /// process-global pool.
    static CURRENT: Cell<Option<*const ComputePool>> = const { Cell::new(None) };
}

/// Run `f` with `pool` installed as the *current* compute pool on this
/// thread: every parallel kernel executed inside `f` dispatches into `pool`
/// instead of [`ComputePool::global`]. Restores the previous pool on exit
/// (also on panic).
///
/// This is how tests and benches pin kernel parallelism regardless of the
/// machine (e.g. forcing the pooled path on a single-core CI runner).
pub fn with_pool<R>(pool: &ComputePool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<*const ComputePool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|current| current.set(self.0));
        }
    }
    let _restore = Restore(CURRENT.with(|current| current.replace(Some(pool as *const _))));
    f()
}

/// Invoke `f` with this thread's current pool: the [`with_pool`] override if
/// one is active, the process-global pool otherwise.
pub(crate) fn with_current<R>(f: impl FnOnce(&ComputePool) -> R) -> R {
    let override_ptr = CURRENT.with(|current| current.get());
    match override_ptr {
        // SAFETY: the pointer was installed by `with_pool`, whose stack
        // frame (and therefore the pool borrow) is still live while any
        // nested code runs.
        Some(pool) => f(unsafe { &*pool }),
        None => f(ComputePool::global()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_chunk_exactly_once() {
        let pool = ComputePool::new(3);
        let counts: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool.run(64, &|chunk| {
            counts[chunk].fetch_add(1, Ordering::Relaxed);
        });
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "chunk {i} must run exactly once");
        }
    }

    #[test]
    fn zero_workers_runs_inline() {
        let pool = ComputePool::new(0);
        assert_eq!(pool.parallelism(), 1);
        let hits = AtomicUsize::new(0);
        pool.run(5, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 5);
        assert_eq!(pool.dispatched_jobs(), 0, "inline jobs are not dispatched");
    }

    #[test]
    fn reuses_workers_across_many_jobs() {
        let pool = ComputePool::new(2);
        let total = AtomicUsize::new(0);
        for round in 0..100 {
            pool.run(8, &|chunk| {
                total.fetch_add(chunk + 1, Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::Relaxed), 36 * (round + 1));
        }
        assert_eq!(pool.dispatched_jobs(), 100);
    }

    #[test]
    fn concurrent_submitters_fall_back_inline() {
        let pool = Arc::new(ComputePool::new(1));
        let total = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (pool, total) = (pool.clone(), total.clone());
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        pool.run(4, &|chunk| {
                            total.fetch_add(chunk + 1, Ordering::Relaxed);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // 4 threads x 50 jobs x (1+2+3+4): every chunk ran exactly once no
        // matter which submissions won the pool and which ran inline.
        assert_eq!(total.load(Ordering::Relaxed), 4 * 50 * 10);
    }

    #[test]
    fn with_pool_overrides_and_restores() {
        let pool = ComputePool::new(1);
        with_current(|p| assert!(std::ptr::eq(p, ComputePool::global())));
        with_pool(&pool, || {
            with_current(|p| assert!(std::ptr::eq(p, &pool)));
        });
        with_current(|p| assert!(std::ptr::eq(p, ComputePool::global())));
    }

    #[test]
    fn panicking_task_poisons_job_but_workers_survive() {
        let pool = ComputePool::new(2);
        let ran = AtomicUsize::new(0);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(8, &|chunk| {
                ran.fetch_add(1, Ordering::Relaxed);
                if chunk == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(outcome.is_err(), "the chunk panic must re-raise from run()");
        assert_eq!(ran.load(Ordering::Relaxed), 8, "the job still runs every chunk to completion");

        // The pool is fully usable afterwards: workers survived, the poison
        // flag was consumed, and new jobs run clean.
        let total = AtomicUsize::new(0);
        pool.run(8, &|chunk| {
            total.fetch_add(chunk + 1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 36);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ComputePool::new(2);
        let hits = AtomicUsize::new(0);
        pool.run(4, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        drop(pool); // must not hang
        assert_eq!(hits.load(Ordering::Relaxed), 4);
    }
}
