//! Weight initialization schemes.
//!
//! The Duet / Naru models are ReLU MLPs, so Kaiming (He) initialization is the
//! default. Xavier/Glorot is provided for the linear output heads and the
//! LSTM-style gates of the recurrent MPSN.

use crate::tensor::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Initialization scheme for a weight matrix of shape `(fan_in, fan_out)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Init {
    /// Kaiming/He uniform, suited for layers followed by ReLU.
    KaimingUniform,
    /// Xavier/Glorot uniform, suited for linear or sigmoid/tanh layers.
    XavierUniform,
    /// All zeros (used for biases and for testing).
    Zeros,
}

impl Init {
    /// Sample a `(fan_in, fan_out)` weight matrix using this scheme.
    pub fn matrix(self, fan_in: usize, fan_out: usize, rng: &mut SmallRng) -> Matrix {
        match self {
            Init::Zeros => Matrix::zeros(fan_in, fan_out),
            Init::KaimingUniform => {
                let bound = (6.0 / fan_in.max(1) as f32).sqrt();
                uniform_matrix(fan_in, fan_out, bound, rng)
            }
            Init::XavierUniform => {
                let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                uniform_matrix(fan_in, fan_out, bound, rng)
            }
        }
    }
}

fn uniform_matrix(rows: usize, cols: usize, bound: f32, rng: &mut SmallRng) -> Matrix {
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        data.push(rng.gen_range(-bound..=bound));
    }
    Matrix::from_vec(rows, cols, data)
}

/// Deterministic RNG used across the workspace so experiments are repeatable.
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaiming_bound_respected() {
        let mut rng = seeded_rng(7);
        let m = Init::KaimingUniform.matrix(64, 32, &mut rng);
        let bound = (6.0 / 64.0f32).sqrt() + 1e-6;
        assert!(m.as_slice().iter().all(|x| x.abs() <= bound));
        // Not all zero.
        assert!(m.max_abs() > 0.0);
    }

    #[test]
    fn xavier_bound_respected() {
        let mut rng = seeded_rng(8);
        let m = Init::XavierUniform.matrix(10, 30, &mut rng);
        let bound = (6.0 / 40.0f32).sqrt() + 1e-6;
        assert!(m.as_slice().iter().all(|x| x.abs() <= bound));
    }

    #[test]
    fn zeros_is_zero() {
        let mut rng = seeded_rng(9);
        let m = Init::Zeros.matrix(4, 4, &mut rng);
        assert_eq!(m.max_abs(), 0.0);
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        let xa: f32 = a.gen();
        let xb: f32 = b.gen();
        assert_eq!(xa, xb);
    }
}
