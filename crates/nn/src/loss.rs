//! Softmax, cross-entropy and the grouped (per-column-block) variants used by
//! autoregressive cardinality estimators.

use crate::tensor::Matrix;

/// Numerically stable softmax over a slice, written into `out`.
pub fn softmax_into(logits: &[f32], out: &mut [f32]) {
    debug_assert_eq!(logits.len(), out.len());
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0f32;
    for (o, &l) in out.iter_mut().zip(logits.iter()) {
        let e = (l - max).exp();
        *o = e;
        sum += e;
    }
    if sum > 0.0 {
        let inv = 1.0 / sum;
        out.iter_mut().for_each(|o| *o *= inv);
    } else {
        let uniform = 1.0 / out.len().max(1) as f32;
        out.iter_mut().for_each(|o| *o = uniform);
    }
}

/// Softmax of a slice, returning a fresh vector.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; logits.len()];
    softmax_into(logits, &mut out);
    out
}

/// Row-wise softmax of a whole matrix.
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    let cols = logits.cols();
    for row in out.as_mut_slice().chunks_exact_mut(cols) {
        let copy: Vec<f32> = row.to_vec();
        softmax_into(&copy, row);
    }
    out
}

/// Softmax applied independently to each column block of each row.
///
/// `blocks[i]` is the number of logits belonging to column `i`; the blocks are
/// laid out consecutively in each row.
pub fn softmax_blocks(logits: &Matrix, blocks: &[usize]) -> Matrix {
    let total: usize = blocks.iter().sum();
    assert_eq!(logits.cols(), total, "block sizes do not cover the logit width");
    let mut out = logits.clone();
    for row in out.as_mut_slice().chunks_exact_mut(total) {
        let mut off = 0;
        for &b in blocks {
            let copy: Vec<f32> = row[off..off + b].to_vec();
            softmax_into(&copy, &mut row[off..off + b]);
            off += b;
        }
    }
    out
}

/// Per-column-block cross-entropy between `logits` and integer `labels`.
///
/// * `logits`: `(batch, sum(blocks))`
/// * `labels[r][i]`: index (within block `i`) of the true distinct value of
///   column `i` for example `r`.
///
/// Returns `(mean loss, dL/dlogits)` where the loss is averaged over the batch
/// and *summed* over columns (matching Naru/Duet's `sum_i CE_i`).
#[allow(clippy::needless_range_loop)] // `r` indexes logits, grad and labels in lockstep
pub fn grouped_cross_entropy(
    logits: &Matrix,
    blocks: &[usize],
    labels: &[Vec<usize>],
) -> (f32, Matrix) {
    let total: usize = blocks.iter().sum();
    assert_eq!(logits.cols(), total, "block sizes do not cover the logit width");
    assert_eq!(logits.rows(), labels.len(), "one label vector per batch row required");
    let batch = logits.rows().max(1);
    let mut grad = Matrix::zeros(logits.rows(), logits.cols());
    let mut loss = 0.0f64;
    let scale = 1.0 / batch as f32;

    for r in 0..logits.rows() {
        let row = logits.row(r);
        let grow = grad.row_mut(r);
        let mut off = 0;
        for (i, &b) in blocks.iter().enumerate() {
            let label = labels[r][i];
            assert!(label < b, "label {label} out of range for block {i} of size {b}");
            let probs = softmax(&row[off..off + b]);
            let p = probs[label].max(1e-12);
            loss += -(p.ln()) as f64;
            for (k, &pk) in probs.iter().enumerate() {
                let indicator = if k == label { 1.0 } else { 0.0 };
                grow[off + k] = scale * (pk - indicator);
            }
            off += b;
        }
    }
    ((loss / batch as f64) as f32, grad)
}

/// Mean squared error between predictions and targets (used by MSCN-lite).
/// Returns `(loss, dL/dpred)`.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.len().max(1) as f32;
    let mut grad = Matrix::zeros(pred.rows(), pred.cols());
    let mut loss = 0.0f64;
    for ((g, &p), &t) in
        grad.as_mut_slice().iter_mut().zip(pred.as_slice().iter()).zip(target.as_slice().iter())
    {
        let d = p - t;
        loss += (d * d) as f64;
        *g = 2.0 * d / n;
    }
    ((loss / n as f64) as f32, grad)
}

/// The Q-Error metric: `max(est, actual) / min(est, actual)`, both clamped to
/// at least `floor` so empty results do not divide by zero.
pub fn q_error(estimate: f64, actual: f64, floor: f64) -> f64 {
    let e = estimate.max(floor);
    let a = actual.max(floor);
    if e >= a {
        e / a
    } else {
        a / e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let s: f32 = p.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_handles_large_values() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn softmax_blocks_normalizes_each_block() {
        let logits = Matrix::from_vec(1, 5, vec![0.0, 1.0, 5.0, 5.0, 5.0]);
        let p = softmax_blocks(&logits, &[2, 3]);
        let row = p.row(0);
        assert!((row[0] + row[1] - 1.0).abs() < 1e-6);
        assert!((row[2] + row[3] + row[4] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn grouped_cross_entropy_prefers_correct_label() {
        // Confident, correct prediction should have near-zero loss.
        let good = Matrix::from_vec(1, 3, vec![10.0, -10.0, -10.0]);
        let (loss_good, _) = grouped_cross_entropy(&good, &[3], &[vec![0]]);
        let bad = Matrix::from_vec(1, 3, vec![-10.0, 10.0, -10.0]);
        let (loss_bad, _) = grouped_cross_entropy(&bad, &[3], &[vec![0]]);
        assert!(loss_good < 1e-3);
        assert!(loss_bad > 5.0);
    }

    #[test]
    fn grouped_cross_entropy_gradient_sums_to_zero_per_block() {
        let logits =
            Matrix::from_vec(2, 5, vec![0.1, 0.2, 0.3, 0.4, 0.5, 1.0, -1.0, 0.0, 2.0, 0.5]);
        let (_, grad) = grouped_cross_entropy(&logits, &[2, 3], &[vec![1, 0], vec![0, 2]]);
        for r in 0..2 {
            let row = grad.row(r);
            assert!((row[0] + row[1]).abs() < 1e-6);
            assert!((row[2] + row[3] + row[4]).abs() < 1e-6);
        }
    }

    #[test]
    fn mse_basic() {
        let pred = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let target = Matrix::from_vec(1, 2, vec![0.0, 2.0]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 0.5).abs() < 1e-6);
        assert!((grad.get(0, 0) - 1.0).abs() < 1e-6);
        assert_eq!(grad.get(0, 1), 0.0);
    }

    #[test]
    fn q_error_is_symmetric_and_at_least_one() {
        assert_eq!(q_error(10.0, 100.0, 1.0), 10.0);
        assert_eq!(q_error(100.0, 10.0, 1.0), 10.0);
        assert_eq!(q_error(5.0, 5.0, 1.0), 1.0);
        assert_eq!(q_error(0.0, 10.0, 1.0), 10.0); // floor applies
    }
}
