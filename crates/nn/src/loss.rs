//! Softmax, cross-entropy and the grouped (per-column-block) variants used by
//! autoregressive cardinality estimators.
//!
//! The transcendental kernels themselves live in [`crate::math`]; the
//! functions here are the loss-facing entry points. The plain `softmax*`
//! forms are **exact** ([`SoftmaxMode::Exact`]) so training gradients keep
//! using the same libm exponential the loss derivation assumes; inference
//! paths opt into [`SoftmaxMode::Fast`] through the mode-taking kernels in
//! [`crate::math`].

use crate::math::{softmax_block_inplace, softmax_block_into, softmax_blocks_inplace, SoftmaxMode};
use crate::tensor::Matrix;

/// Numerically stable softmax over a slice, written into `out`.
///
/// Exact mode (libm `exp`); see [`crate::math`] for the fast variant.
pub fn softmax_into(logits: &[f32], out: &mut [f32]) {
    softmax_block_into(logits, out, SoftmaxMode::Exact);
}

/// Softmax of a slice, returning a fresh vector.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0; logits.len()];
    softmax_into(logits, &mut out);
    out
}

/// Row-wise softmax of a whole matrix, in place — no per-row staging copy.
pub fn softmax_rows_inplace(m: &mut Matrix, mode: SoftmaxMode) {
    let cols = m.cols().max(1);
    for row in m.as_mut_slice().chunks_exact_mut(cols) {
        softmax_block_inplace(row, mode);
    }
}

/// Row-wise softmax of a whole matrix (allocating wrapper over
/// [`softmax_rows_inplace`]).
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    softmax_rows_inplace(&mut out, SoftmaxMode::Exact);
    out
}

/// Softmax applied independently to each column block of each row
/// (allocating wrapper over [`crate::math::softmax_blocks_inplace`]).
///
/// `blocks[i]` is the number of logits belonging to column `i`; the blocks are
/// laid out consecutively in each row.
pub fn softmax_blocks(logits: &Matrix, blocks: &[usize]) -> Matrix {
    let mut out = logits.clone();
    softmax_blocks_inplace(&mut out, blocks, &mut Vec::new(), SoftmaxMode::Exact);
    out
}

/// Per-column-block cross-entropy between `logits` and integer `labels`.
///
/// * `logits`: `(batch, sum(blocks))`
/// * `labels[r].as_ref()[i]`: index (within block `i`) of the true distinct
///   value of column `i` for example `r`.
///
/// Returns the mean loss (averaged over the batch and *summed* over columns,
/// matching Naru/Duet's `sum_i CE_i`) and writes `dL/dlogits` into `grad`
/// (reshaped, heap buffer reused — **zero allocation once warm**). The
/// probabilities are staged directly in the gradient rows, so no per-block
/// scratch exists at all.
#[allow(clippy::needless_range_loop)] // `r` indexes logits, grad and labels in lockstep
pub fn grouped_cross_entropy_with<L: AsRef<[usize]>>(
    logits: &Matrix,
    blocks: &[usize],
    labels: &[L],
    grad: &mut Matrix,
) -> f32 {
    let total: usize = blocks.iter().sum();
    assert_eq!(logits.cols(), total, "block sizes do not cover the logit width");
    assert_eq!(logits.rows(), labels.len(), "one label vector per batch row required");
    let batch = logits.rows().max(1);
    // Every element of every block is overwritten below, so skip the zeroing.
    grad.resize_for_overwrite(logits.rows(), logits.cols());
    let mut loss = 0.0f64;
    let scale = 1.0 / batch as f32;

    for r in 0..logits.rows() {
        let row = logits.row(r);
        let grow = grad.row_mut(r);
        let row_labels = labels[r].as_ref();
        let mut off = 0;
        for (i, &b) in blocks.iter().enumerate() {
            let label = row_labels[i];
            assert!(label < b, "label {label} out of range for block {i} of size {b}");
            // Probabilities staged in the gradient block, then fixed up.
            softmax_block_into(&row[off..off + b], &mut grow[off..off + b], SoftmaxMode::Exact);
            let p = grow[off + label].max(1e-12);
            loss += -(p.ln()) as f64;
            for (k, g) in grow[off..off + b].iter_mut().enumerate() {
                let indicator = if k == label { 1.0 } else { 0.0 };
                *g = scale * (*g - indicator);
            }
            off += b;
        }
    }
    (loss / batch as f64) as f32
}

/// [`grouped_cross_entropy_with`] allocating the gradient matrix.
pub fn grouped_cross_entropy(
    logits: &Matrix,
    blocks: &[usize],
    labels: &[Vec<usize>],
) -> (f32, Matrix) {
    let mut grad = Matrix::zeros(0, 0);
    let loss = grouped_cross_entropy_with(logits, blocks, labels, &mut grad);
    (loss, grad)
}

/// Mean squared error writing `dL/dpred` into a caller buffer (reshaped,
/// heap reused — zero allocation once warm). Returns the loss.
pub fn mse_with(pred: &Matrix, target: &Matrix, grad: &mut Matrix) -> f32 {
    assert_eq!(pred.shape(), target.shape(), "mse shape mismatch");
    let n = pred.len().max(1) as f32;
    // Every element is overwritten below, so skip the zeroing.
    grad.resize_for_overwrite(pred.rows(), pred.cols());
    let mut loss = 0.0f64;
    for ((g, &p), &t) in
        grad.as_mut_slice().iter_mut().zip(pred.as_slice().iter()).zip(target.as_slice().iter())
    {
        let d = p - t;
        loss += (d * d) as f64;
        *g = 2.0 * d / n;
    }
    (loss / n as f64) as f32
}

/// Mean squared error between predictions and targets (used by MSCN-lite).
/// Returns `(loss, dL/dpred)` ([`mse_with`] allocating the gradient).
pub fn mse(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    let mut grad = Matrix::zeros(0, 0);
    let loss = mse_with(pred, target, &mut grad);
    (loss, grad)
}

/// The Q-Error metric: `max(est, actual) / min(est, actual)`, both clamped to
/// at least `floor` so empty results do not divide by zero.
pub fn q_error(estimate: f64, actual: f64, floor: f64) -> f64 {
    let e = estimate.max(floor);
    let a = actual.max(floor);
    if e >= a {
        e / a
    } else {
        a / e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        let s: f32 = p.iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_handles_large_values() {
        let p = softmax(&[1000.0, 1000.0]);
        assert!((p[0] - 0.5).abs() < 1e-6);
        assert!(p.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn softmax_blocks_normalizes_each_block() {
        let logits = Matrix::from_vec(1, 5, vec![0.0, 1.0, 5.0, 5.0, 5.0]);
        let p = softmax_blocks(&logits, &[2, 3]);
        let row = p.row(0);
        assert!((row[0] + row[1] - 1.0).abs() < 1e-6);
        assert!((row[2] + row[3] + row[4] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_matches_per_row_softmax() {
        let logits = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let rows = softmax_rows(&logits);
        for r in 0..2 {
            assert_eq!(rows.row(r), softmax(logits.row(r)).as_slice());
        }
    }

    #[test]
    fn grouped_cross_entropy_prefers_correct_label() {
        // Confident, correct prediction should have near-zero loss.
        let good = Matrix::from_vec(1, 3, vec![10.0, -10.0, -10.0]);
        let (loss_good, _) = grouped_cross_entropy(&good, &[3], &[vec![0]]);
        let bad = Matrix::from_vec(1, 3, vec![-10.0, 10.0, -10.0]);
        let (loss_bad, _) = grouped_cross_entropy(&bad, &[3], &[vec![0]]);
        assert!(loss_good < 1e-3);
        assert!(loss_bad > 5.0);
    }

    #[test]
    fn grouped_cross_entropy_gradient_sums_to_zero_per_block() {
        let logits =
            Matrix::from_vec(2, 5, vec![0.1, 0.2, 0.3, 0.4, 0.5, 1.0, -1.0, 0.0, 2.0, 0.5]);
        let (_, grad) = grouped_cross_entropy(&logits, &[2, 3], &[vec![1, 0], vec![0, 2]]);
        for r in 0..2 {
            let row = grad.row(r);
            assert!((row[0] + row[1]).abs() < 1e-6);
            assert!((row[2] + row[3] + row[4]).abs() < 1e-6);
        }
    }

    #[test]
    fn grouped_cross_entropy_with_reuses_grad_buffer() {
        let logits = Matrix::from_vec(2, 4, vec![0.1, 0.2, 0.3, 0.4, 1.0, -1.0, 0.5, 0.0]);
        let labels = [vec![1usize, 0], vec![0, 1]];
        let (want_loss, want_grad) = grouped_cross_entropy(&logits, &[2, 2], &labels);
        let mut grad = Matrix::zeros(7, 3); // wrong shape on purpose
        let loss = grouped_cross_entropy_with(&logits, &[2, 2], &labels, &mut grad);
        assert_eq!(loss, want_loss);
        assert_eq!(grad, want_grad);
    }

    #[test]
    fn mse_basic() {
        let pred = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let target = Matrix::from_vec(1, 2, vec![0.0, 2.0]);
        let (loss, grad) = mse(&pred, &target);
        assert!((loss - 0.5).abs() < 1e-6);
        assert!((grad.get(0, 0) - 1.0).abs() < 1e-6);
        assert_eq!(grad.get(0, 1), 0.0);
    }

    #[test]
    fn mse_with_reuses_grad_buffer() {
        let pred = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let target = Matrix::from_vec(1, 2, vec![0.0, 2.0]);
        let (want_loss, want_grad) = mse(&pred, &target);
        let mut grad = Matrix::zeros(5, 3); // wrong shape on purpose
        let loss = mse_with(&pred, &target, &mut grad);
        assert_eq!(loss, want_loss);
        assert_eq!(grad, want_grad);
    }

    #[test]
    fn q_error_is_symmetric_and_at_least_one() {
        assert_eq!(q_error(10.0, 100.0, 1.0), 10.0);
        assert_eq!(q_error(100.0, 10.0, 1.0), 10.0);
        assert_eq!(q_error(5.0, 5.0, 1.0), 1.0);
        assert_eq!(q_error(0.0, 10.0, 1.0), 10.0); // floor applies
    }
}
