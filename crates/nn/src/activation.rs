//! Element-wise activation layers.

use crate::param::{Layer, Param};
use crate::tensor::Matrix;

/// Element-wise activation applied by the fused
/// [`Matrix::addmm_bias_act_into`](crate::tensor::Matrix::addmm_bias_act_into)
/// kernel on the inference path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// No activation (final layers).
    Identity,
    /// `max(0, x)`, the clamp every hidden layer in this workspace uses.
    Relu,
}

impl Activation {
    /// Apply the activation in place.
    ///
    /// ReLU is branchless (`max(x, 0.0)` compiles to a vector max): the
    /// clamp runs on ~50%-negative pre-activations, where a conditional
    /// store mispredicts constantly and can cost more than the matmul it
    /// follows. Numerics note: `max` maps `-0.0` to `+0.0` and `NaN` to
    /// `0.0`, both of which the old branch preserved — indistinguishable
    /// for every finite computation downstream (only `NaN` inputs, which no
    /// trained model produces, could tell).
    #[inline]
    pub fn apply(self, xs: &mut [f32]) {
        match self {
            Activation::Identity => {}
            Activation::Relu => xs.iter_mut().for_each(|x| *x = x.max(0.0)),
        }
    }
}

/// Rectified linear unit: `y = max(0, x)`.
#[derive(Debug, Clone, Default)]
pub struct ReLU {
    cached_mask: Option<Matrix>,
}

impl ReLU {
    /// Create a new ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gate a gradient in place against the mask cached by the last
    /// [`Layer::forward`]: the allocation-free equivalent of
    /// [`Layer::backward`] (which clones before the same multiply),
    /// bit-identical to it.
    ///
    /// # Panics
    /// Panics if called before a training forward cached the mask.
    pub fn gate_inplace(&self, grad: &mut Matrix) {
        let mask = self.cached_mask.as_ref().expect("ReLU::backward called before forward");
        grad.mul_assign(mask);
    }

    /// Apply ReLU without caching (inference-only path).
    pub fn forward_inference(&self, input: &Matrix) -> Matrix {
        let mut out = input.clone();
        out.as_mut_slice().iter_mut().for_each(|x| {
            if *x < 0.0 {
                *x = 0.0;
            }
        });
        out
    }
}

impl Layer for ReLU {
    fn forward(&mut self, input: &Matrix) -> Matrix {
        let mut out = input.clone();
        let mut mask = Matrix::zeros(input.rows(), input.cols());
        for (o, m) in out.as_mut_slice().iter_mut().zip(mask.as_mut_slice().iter_mut()) {
            if *o > 0.0 {
                *m = 1.0;
            } else {
                *o = 0.0;
            }
        }
        self.cached_mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Matrix) -> Matrix {
        let mask = self.cached_mask.as_ref().expect("ReLU::backward called before forward");
        let mut grad = grad_out.clone();
        grad.mul_assign(mask);
        grad
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

/// Numerically stable sigmoid, used by the LSTM-style recurrent MPSN.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Hyperbolic tangent wrapper (for symmetry with [`sigmoid`]).
#[inline]
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut relu = ReLU::new();
        let x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 0.5, 2.0]);
        let y = relu.forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 0.5, 2.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let mut relu = ReLU::new();
        let x = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 0.5, 2.0]);
        let _ = relu.forward(&x);
        let g = relu.backward(&Matrix::full(1, 4, 1.0));
        assert_eq!(g.as_slice(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn relu_inference_matches_training_path() {
        let mut relu = ReLU::new();
        let x = Matrix::from_vec(2, 2, vec![-3.0, 1.0, 0.25, -0.25]);
        assert_eq!(relu.forward(&x).as_slice(), relu.forward_inference(&x).as_slice());
    }

    #[test]
    fn sigmoid_is_bounded_and_monotone() {
        assert!(sigmoid(-100.0) >= 0.0);
        assert!(sigmoid(100.0) <= 1.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(1.0) > sigmoid(-1.0));
        assert!((tanh(0.0)).abs() < 1e-6);
    }
}
