//! Blocked (register/cache-tiled) matmul kernels behind the `Matrix::*_into`
//! APIs.
//!
//! The naive kernels in [`crate::tensor`] stream the full `B` operand from
//! memory once **per output row** and read-modify-write the output row on
//! every step of the shared dimension. That is fine for single-row inference
//! but wasteful for batches: for an `m x k @ k x n` product the traffic is
//! `O(m·k·n)` loads *and* stores. The blocked kernels here restore the
//! classic GEMM shape:
//!
//! * `B` is **packed** into column panels of `NR` consecutive columns,
//!   zero-padded, so the innermost loop reads one contiguous, cache- and
//!   vector-friendly `NR`-wide strip per step of `k`;
//! * rows are processed `MR` at a time with an `MR x NR` **register
//!   accumulator**, so each packed strip is reused `MR` times and the
//!   output is written exactly once per element;
//! * for masked layers the pack is **cached and mask-aware**
//!   ([`PackedWeight`]): all-zero strips are dropped at pack time, so the
//!   autoregressive masking that zeroes roughly half of every MADE weight
//!   matrix removes that fraction of the inner-loop work outright, and the
//!   packing cost itself is paid once per weight version instead of once
//!   per call;
//! * above the parallelism threshold the row blocks are fanned out over the
//!   persistent [`crate::pool::ComputePool`] (packing happens once, on the
//!   submitting thread, and is shared read-only by all workers).
//!
//! # Runtime tile selection
//!
//! The micro-kernel is generic over its `MR x NR` tile, and the tile is
//! picked **at runtime** from the CPU ([`Tile`], selected once via
//! `is_x86_feature_detected!` when the compute pool initializes):
//!
//! * [`Tile::Sse4x8`] — the baseline `4 x 8` tile sized for the 16-register
//!   SSE2 file (8 accumulator registers plus the strip and broadcast);
//! * [`Tile::Avx6x16`] — a `6 x 16` tile for AVX2 machines: 12 YMM
//!   accumulators of 8 lanes each, compiled in a `#[target_feature(enable =
//!   "avx2")]` instantiation so the autovectorizer actually emits 256-bit
//!   ops regardless of the baseline build target.
//!
//! The AVX2 instantiation only runs when the feature is detected; forcing
//! the 6×16 *shape* without the feature (e.g. [`with_tile`] in a test on an
//! SSE2 host) runs a baseline-compiled instantiation of the same code —
//! same arithmetic, same results, just without the wider registers. Every
//! tile accumulates in the same ascending-`k` order, so **results are
//! bit-identical across tiles** (the proptests in `crates/nn/tests/kernels.rs`
//! assert exact equality for every variant).
//!
//! The bias/activation epilogue runs as a **separate pass** over the
//! finished output rows rather than inside the accumulation loops: keeping
//! the hot loop free of anything that takes a reference into the
//! accumulator is what lets LLVM hold the `MR x NR` tile in vector
//! registers.
//!
//! # Numerical contract
//!
//! Every output element accumulates its `k` products **in strictly
//! ascending `k` order, one rounding per step**, then adds the bias, then
//! applies the activation — exactly the element-wise sequence of the naive
//! kernels and of a textbook triple loop. The results are therefore
//! **bit-identical** to the naive kernels for all finite inputs (the
//! property tests in `crates/nn/tests/kernels.rs` assert exact equality
//! across tile-boundary shapes and across tile variants; Rust performs no
//! floating-point contraction, so the AVX2 instantiation cannot introduce
//! FMAs). Documented divergence for non-finite inputs only: the naive
//! kernels *skip* multiplicands that are exactly `0.0` and the packed
//! kernels skip all-zero weight strips, so a `NaN`/`Inf` on the other side
//! of such a term does not propagate on every path. (For finite inputs a
//! skipped term contributes `±0.0` to an accumulator that starts at `+0.0`,
//! which cannot change any bit of the result.)

// Kernel code trades clippy's stylistic preferences for codegen control:
// the GEMM entry points legitimately take (a, dims.., bias, act, out)
// parameter lists, and the micro-kernels index fixed-size accumulator
// arrays with plain counted loops — the exact shape LLVM unrolls and keeps
// in registers (see the module docs and docs/PERFORMANCE.md).
#![allow(clippy::too_many_arguments, clippy::needless_range_loop)]

use crate::activation::Activation;
use crate::pool;
use std::cell::{Cell, RefCell};
use std::ops::Range;
use std::sync::OnceLock;

/// Rows per register block of the **baseline** tile (micro-kernel height).
///
/// Together with [`NR`] this is sized for the baseline x86-64 register file
/// (16 SIMD registers): a `4 x 8` f32 accumulator occupies 8 vector
/// registers, leaving room for the packed strip and the broadcast
/// multiplier, so the accumulator never spills to the stack. Wider-vector
/// machines select a bigger tile at runtime — see [`Tile`].
pub const MR: usize = 4;
/// Columns per packed panel of the **baseline** tile (micro-kernel width; a
/// multiple of common f32 vector widths so the inner loop autovectorizes).
pub const NR: usize = 8;

/// Minimum rows before the register-blocked path pays for itself (below it
/// the per-call pack, or the lost `MR`-row strip reuse, outweighs the win).
const MIN_BLOCK_ROWS: usize = 8;

/// Minimum output columns before a panel is worth packing (independent of
/// the selected tile, so kernel dispatch never changes with the CPU — only
/// the inner tile shape does).
const MIN_PANEL_COLS: usize = 8;

/// Minimum number of multiply-accumulate operations before a kernel is worth
/// fanning out over the compute pool.
pub(crate) const PAR_THRESHOLD: usize = 1 << 22;

/// Fraction of exact zeros in the left operand above which the naive
/// kernel's row-skip beats the dense blocked kernel (measured on the
/// serving shapes; see `docs/PERFORMANCE.md`). The sparse-capture first
/// layer dispatches on the same boundary (`made.rs`), so whether a training
/// batch runs the CSR kernel or the register-blocked kernel flips at exactly
/// the density where the dense dispatch itself would change paths.
pub(crate) const SPARSE_DISPATCH_THRESHOLD: f64 = 0.4;

/// Minimum packed elements before panel packing fans out over the compute
/// pool. Packing is pure data movement, so the bar is far lower than the
/// multiply-accumulate threshold [`PAR_THRESHOLD`] — but still high enough
/// that the park/wake round trip never dominates a small pack.
const PACK_PAR_THRESHOLD: usize = 1 << 18;

/// How many `NR`-wide strips ahead of the accumulation loop the micro-kernel
/// issues a software prefetch. One strip is at most 64 bytes (a cache line),
/// so 8 strips keeps the request roughly one line's latency ahead without
/// thrashing the L1 fill buffers.
const PREFETCH_STRIPS: usize = 8;

/// The register-tile variant the blocked kernels run with.
///
/// Selected once per process from the CPU (see [`native_tile`]) — eagerly at
/// [`crate::pool::ComputePool`] construction — and overridable per thread
/// for tests via [`with_tile`]. Both variants are plain safe Rust with
/// identical accumulation order; the AVX2 variant additionally carries a
/// `#[target_feature(enable = "avx2")]` instantiation used when (and only
/// when) the CPU supports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tile {
    /// `4 x 8` — sized for the 16-register SSE2 baseline file.
    Sse4x8,
    /// `6 x 16` — sized for AVX2's 16 YMM registers (12 accumulators of 8
    /// lanes, two strip loads, one broadcast).
    Avx6x16,
}

impl Tile {
    /// Micro-kernel height (rows per register block).
    pub fn mr(self) -> usize {
        match self {
            Tile::Sse4x8 => 4,
            Tile::Avx6x16 => 6,
        }
    }

    /// Packed panel width (columns per register block).
    pub fn nr(self) -> usize {
        match self {
            Tile::Sse4x8 => 8,
            Tile::Avx6x16 => 16,
        }
    }
}

/// The tile variant matching this machine, detected once per process.
///
/// [`crate::pool::ComputePool`] forces the detection at pool init, so the
/// first hot-path kernel call never pays for it.
pub fn native_tile() -> Tile {
    static TILE: OnceLock<Tile> = OnceLock::new();
    *TILE.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            return Tile::Avx6x16;
        }
        Tile::Sse4x8
    })
}

thread_local! {
    /// Per-thread tile override installed by [`with_tile`] (tests/benches).
    static TILE_OVERRIDE: Cell<Option<Tile>> = const { Cell::new(None) };
}

/// Run `f` with `tile` forced as the register-tile variant on this thread
/// (restored on exit, also on panic). Results are bit-identical across
/// tiles, so this is purely a way for tests and benches to pin a code path
/// regardless of the machine.
pub fn with_tile<R>(tile: Tile, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Tile>);
    impl Drop for Restore {
        fn drop(&mut self) {
            TILE_OVERRIDE.with(|t| t.set(self.0));
        }
    }
    let _restore = Restore(TILE_OVERRIDE.with(|t| t.replace(Some(tile))));
    f()
}

/// The tile the current thread's kernels run with.
fn current_tile() -> Tile {
    TILE_OVERRIDE.with(|t| t.get()).unwrap_or_else(native_tile)
}

/// Whether the blocked path is profitable for an `m x k @ k x n` product:
/// enough rows to amortize the per-call pack, and wide enough that a panel
/// is not mostly padding.
pub fn use_blocked(m: usize, k: usize, n: usize) -> bool {
    m >= MIN_BLOCK_ROWS && n >= MIN_PANEL_COLS && k >= 2
}

/// Whether the cached packed-weight path is profitable. Deliberately the
/// same rule as [`use_blocked`] (the pack is free on this path, but below
/// `MIN_BLOCK_ROWS` rows the naive kernel's input-zero skipping wins on the
/// sparse activations this workspace produces) — and the masked-layer
/// dispatch in `MaskedLinear::infer_with_entry` relies on the two
/// predicates agreeing, so keep them delegating.
pub fn use_packed(m: usize, k: usize, n: usize) -> bool {
    use_blocked(m, k, n)
}

/// Whether `a` is dense enough for the blocked kernels to win over the
/// naive kernel's zero-skipping: predicate encodings (wildcard-heavy) and
/// strongly sparse activations go to the skip path, dense batches to the
/// register-blocked path. The scan is `O(len)` — two to three orders of
/// magnitude cheaper than the product it steers — and both paths produce
/// bit-identical results for finite inputs, so this is purely a performance
/// decision (and a deterministic one: same input, same path).
pub fn mostly_dense(a: &[f32]) -> bool {
    if a.is_empty() {
        return false;
    }
    let zeros = a.iter().filter(|v| **v == 0.0).count();
    (zeros as f64) < SPARSE_DISPATCH_THRESHOLD * a.len() as f64
}

thread_local! {
    /// Per-thread packing scratch: `a` holds a transposed copy of the left
    /// operand (only for the `tn` variant), `b` the packed right-operand
    /// panels. Grows to the largest shapes seen on this thread, then is
    /// reused allocation-free.
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

#[derive(Default)]
struct Scratch {
    a: Vec<f32>,
    b: Vec<f32>,
}

/// Fan per-panel packing work out over the current compute pool, or run it
/// serially below [`PACK_PAR_THRESHOLD`]. Each panel owns the disjoint
/// contiguous region `jp * panel_len..(jp + 1) * panel_len` of `packed`, so
/// the parallel and serial schedules write byte-identical results — packing
/// is pure data movement and carries no bit-identity risk.
fn fan_out_panels<F>(panels: usize, panel_len: usize, packed: &mut [f32], pack_panel: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    pool::with_current(|pool| {
        let threads = pool.parallelism();
        if panels < 2 || threads <= 1 || panels * panel_len < PACK_PAR_THRESHOLD {
            for jp in 0..panels {
                pack_panel(jp, &mut packed[jp * panel_len..(jp + 1) * panel_len]);
            }
            return;
        }
        let chunks = threads.min(panels);
        let panels_per_chunk = panels.div_ceil(chunks);
        let num_chunks = panels.div_ceil(panels_per_chunk);
        let base = SendPtr(packed.as_mut_ptr());
        let task = |chunk: usize| {
            let start = chunk * panels_per_chunk;
            let end = (start + panels_per_chunk).min(panels);
            for jp in start..end {
                // SAFETY: panels are disjoint contiguous regions of
                // `packed`, which outlives the pool job (`run` blocks until
                // completion).
                let dst = unsafe {
                    std::slice::from_raw_parts_mut(base.get().add(jp * panel_len), panel_len)
                };
                pack_panel(jp, dst);
            }
        };
        pool.run(num_chunks, &task);
    });
}

/// Pack `b` (`k x n`, row-major) into `n.div_ceil(nr)` panels of `k x nr`,
/// zero-padding the last panel's missing columns. Panels fan out over the
/// compute pool when the pack is large (see [`fan_out_panels`]).
fn pack_b_panels(b: &[f32], k: usize, n: usize, nr: usize, packed: &mut Vec<f32>) {
    let panels = n.div_ceil(nr);
    packed.clear();
    packed.resize(panels * k * nr, 0.0);
    fan_out_panels(panels, k * nr, packed, |jp, dst| {
        let col0 = jp * nr;
        let vis = nr.min(n - col0);
        for p in 0..k {
            dst[p * nr..p * nr + vis].copy_from_slice(&b[p * n + col0..p * n + col0 + vis]);
        }
    });
}

/// Pack `bt` (`n x k`, row-major — i.e. the transpose of the logical `k x n`
/// right operand) into the same panel layout as [`pack_b_panels`].
fn pack_bt_panels(bt: &[f32], k: usize, n: usize, nr: usize, packed: &mut Vec<f32>) {
    let panels = n.div_ceil(nr);
    packed.clear();
    packed.resize(panels * k * nr, 0.0);
    fan_out_panels(panels, k * nr, packed, |jp, dst| {
        let col0 = jp * nr;
        let vis = nr.min(n - col0);
        for (lane, row) in bt[col0 * k..(col0 + vis) * k].chunks_exact(k).enumerate() {
            for (p, &v) in row.iter().enumerate() {
                dst[p * nr + lane] = v;
            }
        }
    });
}

/// Transpose `a` (`k x m`, row-major) into `out` (`m x k`, row-major).
fn pack_a_transposed(a: &[f32], k: usize, m: usize, out: &mut Vec<f32>) {
    out.clear();
    out.resize(m * k, 0.0);
    for t in 0..k {
        let row = &a[t * m..(t + 1) * m];
        for (i, &v) in row.iter().enumerate() {
            out[i * k + t] = v;
        }
    }
}

/// A right-hand matmul operand packed into `NR`-wide panels **with
/// all-zero strips dropped**.
///
/// MADE-style masked layers multiply their weights by a binary mask that
/// zeroes every connection violating the autoregressive order — typically
/// around *half* of the matrix, in a block-structured pattern (for a given
/// output column, every hidden unit of too-high degree). Packing the masked
/// effective weight once per weight version (the workspace's
/// `MaskedWeightCache` keys it) lets the kernel skip those strips entirely:
/// each panel stores only the strips with at least one nonzero, plus their
/// original row indices, so the inner loop does `density()` of the dense
/// work while accumulating the surviving terms in the same ascending-`k`
/// order — bit-identical to the dense kernels for finite inputs (a dropped
/// strip only ever contributes `±0.0`).
///
/// The pack records the [`Tile`] it was built for (the panel width is the
/// tile's `nr`), and the matmul entry points dispatch on it — so a pack
/// built under one tile and executed after a [`with_tile`] change still runs
/// the matching micro-kernel.
///
/// The buffers are reused across refills (a hot-swap repacks in place), so
/// steady-state serving never allocates for packing.
///
/// Invariant (relied on by unsafe code in the kernels): every entry of
/// `rows` is `< k`, and panel `jp`'s strip range `strips[jp]..strips[jp+1]`
/// indexes `rows` and (scaled by `tile.nr()`) `data` in bounds. Only
/// [`PackedWeight::fill_from`] writes these fields.
#[derive(Debug, Clone)]
pub struct PackedWeight {
    k: usize,
    n: usize,
    /// Tile variant the pack was built for (defines the strip width).
    tile: Tile,
    /// Concatenated kept strips, `tile.nr()` floats each (panel-major).
    data: Vec<f32>,
    /// Original row (shared-dimension) index of each kept strip.
    rows: Vec<u32>,
    /// Panel `jp` owns strips `strips[jp]..strips[jp + 1]`.
    strips: Vec<usize>,
}

impl Default for PackedWeight {
    fn default() -> Self {
        Self {
            k: 0,
            n: 0,
            tile: Tile::Sse4x8,
            data: Vec::new(),
            rows: Vec::new(),
            strips: Vec::new(),
        }
    }
}

impl PackedWeight {
    /// An empty pack; [`PackedWeight::fill_from`] populates it.
    pub fn new() -> Self {
        Self::default()
    }

    /// `(k, n)` of the packed operand.
    pub fn shape(&self) -> (usize, usize) {
        (self.k, self.n)
    }

    /// The tile variant this pack was built for.
    pub fn tile(&self) -> Tile {
        self.tile
    }

    /// Fraction of strips kept (1.0 = fully dense); for observability and
    /// tests.
    pub fn density(&self) -> f64 {
        let total = self.k * self.n.div_ceil(self.tile.nr());
        if total == 0 {
            return 1.0;
        }
        self.rows.len() as f64 / total as f64
    }

    /// Re-pack from `w` (`k x n`, row-major) under the current thread's
    /// tile, reusing the existing buffers.
    pub fn fill_from(&mut self, w: &[f32], k: usize, n: usize) {
        assert_eq!(w.len(), k * n, "packed weight shape mismatch");
        let tile = current_tile();
        let nr = tile.nr();
        self.k = k;
        self.n = n;
        self.tile = tile;
        self.data.clear();
        self.rows.clear();
        self.strips.clear();
        let panels = n.div_ceil(nr);
        self.strips.push(0);
        for jp in 0..panels {
            let col0 = jp * nr;
            let vis = nr.min(n - col0);
            for p in 0..k {
                let src = &w[p * n + col0..p * n + col0 + vis];
                if src.iter().any(|v| *v != 0.0) {
                    let start = self.data.len();
                    self.data.resize(start + nr, 0.0);
                    self.data[start..start + vis].copy_from_slice(src);
                    self.rows.push(p as u32);
                }
            }
            self.strips.push(self.rows.len());
        }
    }
}

/// Convert an `f32` to IEEE 754 binary16 bits with round-to-nearest-even —
/// the storage format of the compressed weight tier ([`PackedWeightHalf`]).
/// Hand-rolled (no external crates): normals round the 23-bit mantissa to 10
/// bits with the carry propagating into the exponent (which also yields the
/// correct round-to-infinity at the top of the range), values below the
/// half subnormal range flush to signed zero, and Inf/NaN preserve their
/// class.
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        // Inf / NaN: keep the class, truncating the NaN payload (quieted).
        let payload = if man != 0 { 0x0200 | ((man >> 13) as u16 & 0x03ff) } else { 0 };
        return sign | 0x7c00 | payload;
    }
    let unbiased = exp - 127;
    if unbiased >= 16 {
        return sign | 0x7c00; // overflow -> infinity
    }
    if unbiased >= -14 {
        // Normal halves: round the mantissa from 23 to 10 bits (RNE).
        let mut half = (((unbiased + 15) as u32) << 10) | (man >> 13);
        let rem = man & 0x1fff;
        if rem > 0x1000 || (rem == 0x1000 && (half & 1) == 1) {
            half += 1;
        }
        return sign | half as u16;
    }
    if unbiased >= -25 {
        // Subnormal halves: the value in units of 2^-24, rounded RNE; a
        // carry out of the 10-bit field lands exactly on the smallest
        // normal encoding.
        let mant = man | 0x0080_0000;
        let shift = (-unbiased - 1) as u32; // 14..=24
        let mut half = mant >> shift;
        let halfway = 1u32 << (shift - 1);
        let rem = mant & ((1u32 << shift) - 1);
        if rem > halfway || (rem == halfway && (half & 1) == 1) {
            half += 1;
        }
        return sign | half as u16;
    }
    sign // underflow -> signed zero
}

/// Convert IEEE 754 binary16 bits to `f32`. **Exact** for every finite input
/// and for infinities (every binary16 value is representable in binary32),
/// which is what makes the half-tier kernels deterministic: the only error
/// in the compressed path is the one-time weight rounding in
/// [`f32_to_f16`], never the per-call decode. Matches the hardware `F16C`
/// conversion bit for bit on those inputs (NaNs differ in payload only, and
/// packs built from finite weights never store one).
pub fn f16_to_f32(bits: u16) -> f32 {
    let sign = ((bits as u32) & 0x8000) << 16;
    let exp = ((bits >> 10) & 0x1f) as u32;
    let man = (bits & 0x03ff) as u32;
    let magnitude = if exp == 0 {
        // Zero / subnormal: man * 2^-24, exact in f32.
        man as f32 * f32::from_bits(0x3380_0000)
    } else if exp == 0x1f {
        if man == 0 {
            f32::INFINITY
        } else {
            f32::NAN
        }
    } else {
        f32::from_bits(((exp + 112) << 23) | (man << 13))
    };
    f32::from_bits(magnitude.to_bits() | sign)
}

/// A masked weight packed like [`PackedWeight`] but stored as **f16 bits**
/// with f32 accumulation in the micro-kernel — the compressed warm tier.
///
/// Layout and strip-dropping are identical to [`PackedWeight`] (same panel
/// order, same kept-strip row indices, the drop test applied to the
/// *converted* values so the pack computes exactly what a dense half-weight
/// matmul would); only the element storage differs, halving the resident
/// bytes and the per-strip memory traffic. Each strip is widened to f32
/// **once per strip** (shared by all `MR` rows of the register block) and
/// then accumulated in the same strictly ascending-`k` f32 order as every
/// other kernel, so for a given pack the results are deterministic and
/// identical across tiles and across the scalar / `F16C` decode paths
/// (f16→f32 widening is exact — see [`f16_to_f32`]). Relative to the f32
/// tier the only divergence is the one-time [`f32_to_f16`] rounding of each
/// weight (≤ 2⁻¹¹ relative per element), which the bounded-error tests in
/// `tests/compressed_tier.rs` gate end to end.
///
/// Invariant (relied on by unsafe code in the kernels): every entry of
/// `rows` is `< k`, and panel `jp`'s strip range `strips[jp]..strips[jp+1]`
/// indexes `rows` and (scaled by `tile.nr()`) `data` in bounds. Only
/// [`PackedWeightHalf::fill_from`] writes these fields.
#[derive(Debug, Clone)]
pub struct PackedWeightHalf {
    k: usize,
    n: usize,
    /// Tile variant the pack was built for (defines the strip width).
    tile: Tile,
    /// Concatenated kept strips, `tile.nr()` f16 bit patterns each
    /// (panel-major).
    data: Vec<u16>,
    /// Original row (shared-dimension) index of each kept strip.
    rows: Vec<u32>,
    /// Panel `jp` owns strips `strips[jp]..strips[jp + 1]`.
    strips: Vec<usize>,
}

impl Default for PackedWeightHalf {
    fn default() -> Self {
        Self {
            k: 0,
            n: 0,
            tile: Tile::Sse4x8,
            data: Vec::new(),
            rows: Vec::new(),
            strips: Vec::new(),
        }
    }
}

impl PackedWeightHalf {
    /// An empty pack; [`PackedWeightHalf::fill_from`] populates it.
    pub fn new() -> Self {
        Self::default()
    }

    /// `(k, n)` of the packed operand.
    pub fn shape(&self) -> (usize, usize) {
        (self.k, self.n)
    }

    /// The tile variant this pack was built for.
    pub fn tile(&self) -> Tile {
        self.tile
    }

    /// Resident bytes of the packed strip data (the compression headline:
    /// half of the equivalent f32 pack's).
    pub fn data_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<u16>()
    }

    /// Re-pack from `w` (`k x n`, row-major f32) under the current thread's
    /// tile, converting to f16 storage and reusing the existing buffers.
    pub fn fill_from(&mut self, w: &[f32], k: usize, n: usize) {
        assert_eq!(w.len(), k * n, "packed weight shape mismatch");
        let tile = current_tile();
        let nr = tile.nr();
        self.k = k;
        self.n = n;
        self.tile = tile;
        self.data.clear();
        self.rows.clear();
        self.strips.clear();
        let panels = n.div_ceil(nr);
        self.strips.push(0);
        for jp in 0..panels {
            let col0 = jp * nr;
            let vis = nr.min(n - col0);
            for p in 0..k {
                let src = &w[p * n + col0..p * n + col0 + vis];
                // Drop strips whose *converted* values are all zero: tiny
                // weights that flush to f16 zero contribute nothing, exactly
                // as in a dense half-weight product.
                let halves = src.iter().map(|&v| f32_to_f16(v));
                if halves.clone().any(|h| h & 0x7fff != 0) {
                    let start = self.data.len();
                    self.data.resize(start + nr, 0);
                    for (d, h) in self.data[start..start + vis].iter_mut().zip(halves) {
                        *d = h;
                    }
                    self.rows.push(p as u32);
                }
            }
            self.strips.push(self.rows.len());
        }
    }
}

/// Widen one f16 strip to f32 (scalar decode; exact, see [`f16_to_f32`]).
#[inline(always)]
fn widen_strip<const TNR: usize>(strip: &[u16]) -> [f32; TNR] {
    let mut out = [0.0f32; TNR];
    for l in 0..TNR {
        out[l] = f16_to_f32(strip[l]);
    }
    out
}

/// Run the half-storage packed micro-kernel over `rows` of the output,
/// bias/act epilogue included. Identical loop structure to
/// [`run_rows_packed_t`]; each kept strip is widened to f32 once and shared
/// by all `TMR` rows of the register block, and accumulation is plain f32 in
/// ascending-`k` order.
#[inline(always)]
fn run_rows_packed_half_t<const TMR: usize, const TNR: usize>(
    a: &[f32],
    k: usize,
    packed: &PackedWeightHalf,
    n: usize,
    bias: Option<&[f32]>,
    act: Activation,
    rows: Range<usize>,
    out_rows: &mut [f32],
) {
    debug_assert_eq!(packed.tile.nr(), TNR);
    let out_base = rows.start;
    let panels = n.div_ceil(TNR);
    let mut i = rows.start;
    while i + TMR <= rows.end {
        // SAFETY precondition for the unchecked loads below: each slice has
        // length exactly `k`, and every strip row index stored in a
        // `PackedWeightHalf` is `< k` (struct invariant).
        let ar: [&[f32]; TMR] = std::array::from_fn(|r| &a[(i + r) * k..(i + r + 1) * k]);
        for jp in 0..panels {
            let col0 = jp * TNR;
            let vis = TNR.min(n - col0);
            let sr = packed.strips[jp]..packed.strips[jp + 1];
            let sdata = &packed.data[sr.start * TNR..sr.end * TNR];
            let srows = &packed.rows[sr];
            let mut acc = [[0.0f32; TNR]; TMR];
            for (strip, &p) in sdata.chunks_exact(TNR).zip(srows.iter()) {
                let ws = widen_strip::<TNR>(strip);
                let p = p as usize;
                for r in 0..TMR {
                    // SAFETY: `p < k == ar[r].len()` (struct invariant).
                    let av = unsafe { *ar[r].get_unchecked(p) };
                    for l in 0..TNR {
                        acc[r][l] += av * ws[l];
                    }
                }
            }
            for r in 0..TMR {
                let dst = (i + r - out_base) * n + col0;
                out_rows[dst..dst + vis].copy_from_slice(&acc[r][..vis]);
            }
        }
        i += TMR;
    }
    while i < rows.end {
        let arow = &a[i * k..(i + 1) * k];
        for jp in 0..panels {
            let col0 = jp * TNR;
            let vis = TNR.min(n - col0);
            let sr = packed.strips[jp]..packed.strips[jp + 1];
            let sdata = &packed.data[sr.start * TNR..sr.end * TNR];
            let srows = &packed.rows[sr];
            let mut acc = [0.0f32; TNR];
            for (strip, &p) in sdata.chunks_exact(TNR).zip(srows.iter()) {
                let ws = widen_strip::<TNR>(strip);
                // SAFETY: `p < k == arow.len()` (struct invariant).
                let av = unsafe { *arow.get_unchecked(p as usize) };
                for l in 0..TNR {
                    acc[l] += av * ws[l];
                }
            }
            let dst = (i - out_base) * n + col0;
            out_rows[dst..dst + vis].copy_from_slice(&acc[..vis]);
        }
        i += 1;
    }
    epilogue(out_rows, n, bias, act);
}

/// `F16C` + AVX2 instantiation of the half-storage 6×16 micro-kernel: the
/// strip decode runs through the hardware `vcvtph2ps` (bit-identical to the
/// scalar [`f16_to_f32`] for everything a pack can store — widening is
/// exact), the accumulation is the same ascending-`k` f32 order with 256-bit
/// codegen. Results are therefore bit-identical to the baseline
/// instantiation.
///
/// # Safety
/// The caller must have verified `is_x86_feature_detected!("avx2")` and
/// `is_x86_feature_detected!("f16c")`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,f16c")]
unsafe fn run_rows_packed_half_f16c(
    a: &[f32],
    k: usize,
    packed: &PackedWeightHalf,
    n: usize,
    bias: Option<&[f32]>,
    act: Activation,
    rows: Range<usize>,
    out_rows: &mut [f32],
) {
    use std::arch::x86_64::{_mm256_cvtph_ps, _mm256_storeu_ps, _mm_loadu_si128};
    const TMR: usize = 6;
    const TNR: usize = 16;
    debug_assert_eq!(packed.tile.nr(), TNR);
    // Hardware strip decode: 16 halves -> 16 singles via two vcvtph2ps.
    #[inline(always)]
    unsafe fn widen16(strip: &[u16]) -> [f32; TNR] {
        debug_assert_eq!(strip.len(), TNR);
        let mut out = [0.0f32; TNR];
        let ptr = strip.as_ptr();
        // SAFETY (caller-checked): `strip` holds 16 u16s; loadu/storeu are
        // unaligned; f16c is enabled on this fn's target features.
        unsafe {
            let lo = _mm256_cvtph_ps(_mm_loadu_si128(ptr as *const _));
            let hi = _mm256_cvtph_ps(_mm_loadu_si128(ptr.add(8) as *const _));
            _mm256_storeu_ps(out.as_mut_ptr(), lo);
            _mm256_storeu_ps(out.as_mut_ptr().add(8), hi);
        }
        out
    }
    let out_base = rows.start;
    let panels = n.div_ceil(TNR);
    let mut i = rows.start;
    while i + TMR <= rows.end {
        // SAFETY preconditions as in `run_rows_packed_half_t`.
        let ar: [&[f32]; TMR] = std::array::from_fn(|r| &a[(i + r) * k..(i + r + 1) * k]);
        for jp in 0..panels {
            let col0 = jp * TNR;
            let vis = TNR.min(n - col0);
            let sr = packed.strips[jp]..packed.strips[jp + 1];
            let sdata = &packed.data[sr.start * TNR..sr.end * TNR];
            let srows = &packed.rows[sr];
            let mut acc = [[0.0f32; TNR]; TMR];
            for (strip, &p) in sdata.chunks_exact(TNR).zip(srows.iter()) {
                // SAFETY: strip is exactly TNR wide (chunks_exact).
                let ws = unsafe { widen16(strip) };
                let p = p as usize;
                for r in 0..TMR {
                    // SAFETY: `p < k == ar[r].len()` (struct invariant).
                    let av = unsafe { *ar[r].get_unchecked(p) };
                    for l in 0..TNR {
                        acc[r][l] += av * ws[l];
                    }
                }
            }
            for r in 0..TMR {
                let dst = (i + r - out_base) * n + col0;
                out_rows[dst..dst + vis].copy_from_slice(&acc[r][..vis]);
            }
        }
        i += TMR;
    }
    while i < rows.end {
        let arow = &a[i * k..(i + 1) * k];
        for jp in 0..panels {
            let col0 = jp * TNR;
            let vis = TNR.min(n - col0);
            let sr = packed.strips[jp]..packed.strips[jp + 1];
            let sdata = &packed.data[sr.start * TNR..sr.end * TNR];
            let srows = &packed.rows[sr];
            let mut acc = [0.0f32; TNR];
            for (strip, &p) in sdata.chunks_exact(TNR).zip(srows.iter()) {
                // SAFETY: strip is exactly TNR wide (chunks_exact).
                let ws = unsafe { widen16(strip) };
                // SAFETY: `p < k == arow.len()` (struct invariant).
                let av = unsafe { *arow.get_unchecked(p as usize) };
                for l in 0..TNR {
                    acc[l] += av * ws[l];
                }
            }
            let dst = (i - out_base) * n + col0;
            out_rows[dst..dst + vis].copy_from_slice(&acc[..vis]);
        }
        i += 1;
    }
    epilogue(out_rows, n, bias, act);
}

/// Tile-dispatched half-storage packed kernel (the tile comes from the pack
/// itself), preferring the `F16C` hardware decode when the CPU has it.
fn run_rows_packed_half(
    a: &[f32],
    k: usize,
    packed: &PackedWeightHalf,
    n: usize,
    bias: Option<&[f32]>,
    act: Activation,
    rows: Range<usize>,
    out_rows: &mut [f32],
) {
    match packed.tile {
        Tile::Sse4x8 => run_rows_packed_half_t::<4, 8>(a, k, packed, n, bias, act, rows, out_rows),
        Tile::Avx6x16 => {
            #[cfg(target_arch = "x86_64")]
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("f16c")
            {
                // SAFETY: feature presence just checked.
                return unsafe {
                    run_rows_packed_half_f16c(a, k, packed, n, bias, act, rows, out_rows)
                };
            }
            run_rows_packed_half_t::<6, 16>(a, k, packed, n, bias, act, rows, out_rows)
        }
    }
}

/// Fused `out = act(a @ w + bias)` against a pre-packed **f16-storage**
/// right operand (see [`PackedWeightHalf`]): the compressed-tier sibling of
/// [`addmm_packed`], dispatched the same way and fanned out over the same
/// compute pool. Deterministic for a given pack; differs from the f32 tier
/// only by the one-time weight rounding recorded in the pack.
pub fn addmm_packed_half(
    a: &[f32],
    m: usize,
    packed: &PackedWeightHalf,
    bias: Option<&[f32]>,
    act: Activation,
    out: &mut [f32],
) {
    let (k, n) = packed.shape();
    assert_eq!(a.len(), m * k);
    assert_eq!(out.len(), m * n);
    let total_work = m.saturating_mul(packed.rows.len()).saturating_mul(packed.tile.nr());
    fan_out_rows(m, n, total_work, out, |rows, out_rows| {
        run_rows_packed_half(a, k, packed, n, bias, act, rows, out_rows)
    });
}

/// Hint the CPU to pull `data[index..]` toward L1 ahead of the accumulation
/// loop. Architecturally a no-op — a prefetch never faults, never writes,
/// and never changes a result — so it needs no bit-identity argument; the
/// bounds check only keeps the hint from wandering past the operand.
#[inline(always)]
fn prefetch_read(data: &[f32], index: usize) {
    #[cfg(target_arch = "x86_64")]
    if index < data.len() {
        // SAFETY: `index` is in bounds (checked above), and `_mm_prefetch`
        // has no architectural effect beyond a cache hint.
        unsafe {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            _mm_prefetch(data.as_ptr().add(index) as *const i8, _MM_HINT_T0);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (data, index);
    }
}

/// The bias/activation epilogue, applied to finished output rows in a
/// separate pass (see the module docs for why it is not fused into the
/// accumulation loop). Per element this runs after the full `k`
/// accumulation, preserving the naive kernels' element-wise sequence.
fn epilogue(out_rows: &mut [f32], n: usize, bias: Option<&[f32]>, act: Activation) {
    if bias.is_none() && act == Activation::Identity {
        return;
    }
    for row in out_rows.chunks_exact_mut(n) {
        if let Some(bias) = bias {
            for (d, bv) in row.iter_mut().zip(bias.iter()) {
                *d += *bv;
            }
        }
        act.apply(row);
    }
}

/// Run the dense blocked micro-kernel over `rows` of the output (`out_rows`
/// is the `rows.len() x n` slice starting at row `rows.start`), bias/act
/// epilogue included. Generic over the register tile; `#[inline(always)]`
/// so the `#[target_feature]` instantiation below compiles this body with
/// AVX2 codegen.
#[inline(always)]
fn run_rows_blocked_t<const TMR: usize, const TNR: usize>(
    a: &[f32],
    k: usize,
    packed: &[f32],
    n: usize,
    bias: Option<&[f32]>,
    act: Activation,
    rows: Range<usize>,
    out_rows: &mut [f32],
) {
    debug_assert_eq!(packed.len(), n.div_ceil(TNR) * k * TNR);
    let out_base = rows.start;
    let panels = n.div_ceil(TNR);
    let mut i = rows.start;
    while i + TMR <= rows.end {
        // SAFETY precondition for the unchecked loads below: each of these
        // slices has length exactly `k`, and the strip index `p` enumerates
        // `chunks_exact(TNR)` of a panel of length `k * TNR`, so `p < k`.
        let ar: [&[f32]; TMR] = std::array::from_fn(|r| &a[(i + r) * k..(i + r + 1) * k]);
        for jp in 0..panels {
            let col0 = jp * TNR;
            let vis = TNR.min(n - col0);
            let panel = &packed[jp * k * TNR..(jp + 1) * k * TNR];
            let mut acc = [[0.0f32; TNR]; TMR];
            for (p, strip) in panel.chunks_exact(TNR).enumerate() {
                prefetch_read(panel, (p + PREFETCH_STRIPS) * TNR);
                for r in 0..TMR {
                    // SAFETY: `p < k == ar[r].len()` (see above).
                    let av = unsafe { *ar[r].get_unchecked(p) };
                    for l in 0..TNR {
                        acc[r][l] += av * strip[l];
                    }
                }
            }
            for r in 0..TMR {
                let dst = (i + r - out_base) * n + col0;
                out_rows[dst..dst + vis].copy_from_slice(&acc[r][..vis]);
            }
        }
        i += TMR;
    }
    while i < rows.end {
        let arow = &a[i * k..(i + 1) * k];
        for jp in 0..panels {
            let col0 = jp * TNR;
            let vis = TNR.min(n - col0);
            let panel = &packed[jp * k * TNR..(jp + 1) * k * TNR];
            let mut acc = [0.0f32; TNR];
            for (p, strip) in panel.chunks_exact(TNR).enumerate() {
                prefetch_read(panel, (p + PREFETCH_STRIPS) * TNR);
                // SAFETY: `p < k == arow.len()` (same argument as above).
                let av = unsafe { *arow.get_unchecked(p) };
                for l in 0..TNR {
                    acc[l] += av * strip[l];
                }
            }
            let dst = (i - out_base) * n + col0;
            out_rows[dst..dst + vis].copy_from_slice(&acc[..vis]);
        }
        i += 1;
    }
    epilogue(out_rows, n, bias, act);
}

/// Run the mask-aware packed micro-kernel over `rows` of the output,
/// bias/act epilogue included. Generic over the register tile (see
/// [`run_rows_blocked_t`]).
#[inline(always)]
fn run_rows_packed_t<const TMR: usize, const TNR: usize>(
    a: &[f32],
    k: usize,
    packed: &PackedWeight,
    n: usize,
    bias: Option<&[f32]>,
    act: Activation,
    rows: Range<usize>,
    out_rows: &mut [f32],
) {
    debug_assert_eq!(packed.tile.nr(), TNR);
    let out_base = rows.start;
    let panels = n.div_ceil(TNR);
    let mut i = rows.start;
    while i + TMR <= rows.end {
        // SAFETY precondition for the unchecked loads below: each slice has
        // length exactly `k`, and every strip row index stored in a
        // `PackedWeight` is `< k` (struct invariant).
        let ar: [&[f32]; TMR] = std::array::from_fn(|r| &a[(i + r) * k..(i + r + 1) * k]);
        for jp in 0..panels {
            let col0 = jp * TNR;
            let vis = TNR.min(n - col0);
            let sr = packed.strips[jp]..packed.strips[jp + 1];
            let sdata = &packed.data[sr.start * TNR..sr.end * TNR];
            let srows = &packed.rows[sr];
            let mut acc = [[0.0f32; TNR]; TMR];
            for (s, (strip, &p)) in sdata.chunks_exact(TNR).zip(srows.iter()).enumerate() {
                prefetch_read(sdata, (s + PREFETCH_STRIPS) * TNR);
                let p = p as usize;
                for r in 0..TMR {
                    // SAFETY: `p < k == ar[r].len()` (struct invariant).
                    let av = unsafe { *ar[r].get_unchecked(p) };
                    for l in 0..TNR {
                        acc[r][l] += av * strip[l];
                    }
                }
            }
            for r in 0..TMR {
                let dst = (i + r - out_base) * n + col0;
                out_rows[dst..dst + vis].copy_from_slice(&acc[r][..vis]);
            }
        }
        i += TMR;
    }
    while i < rows.end {
        let arow = &a[i * k..(i + 1) * k];
        for jp in 0..panels {
            let col0 = jp * TNR;
            let vis = TNR.min(n - col0);
            let sr = packed.strips[jp]..packed.strips[jp + 1];
            let sdata = &packed.data[sr.start * TNR..sr.end * TNR];
            let srows = &packed.rows[sr];
            let mut acc = [0.0f32; TNR];
            for (s, (strip, &p)) in sdata.chunks_exact(TNR).zip(srows.iter()).enumerate() {
                prefetch_read(sdata, (s + PREFETCH_STRIPS) * TNR);
                // SAFETY: `p < k == arow.len()` (struct invariant).
                let av = unsafe { *arow.get_unchecked(p as usize) };
                for l in 0..TNR {
                    acc[l] += av * strip[l];
                }
            }
            let dst = (i - out_base) * n + col0;
            out_rows[dst..dst + vis].copy_from_slice(&acc[..vis]);
        }
        i += 1;
    }
    epilogue(out_rows, n, bias, act);
}

/// AVX2 instantiation of the dense 6×16 micro-kernel: same source, same
/// arithmetic order, compiled with 256-bit vectors. Rust performs no FP
/// contraction, so no FMA can sneak in — results stay bit-identical to the
/// baseline instantiation.
///
/// # Safety
/// The caller must have verified `is_x86_feature_detected!("avx2")`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn run_rows_blocked_avx2(
    a: &[f32],
    k: usize,
    packed: &[f32],
    n: usize,
    bias: Option<&[f32]>,
    act: Activation,
    rows: Range<usize>,
    out_rows: &mut [f32],
) {
    run_rows_blocked_t::<6, 16>(a, k, packed, n, bias, act, rows, out_rows)
}

/// AVX2 instantiation of the packed 6×16 micro-kernel (see
/// [`run_rows_blocked_avx2`]).
///
/// # Safety
/// The caller must have verified `is_x86_feature_detected!("avx2")`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn run_rows_packed_avx2(
    a: &[f32],
    k: usize,
    packed: &PackedWeight,
    n: usize,
    bias: Option<&[f32]>,
    act: Activation,
    rows: Range<usize>,
    out_rows: &mut [f32],
) {
    run_rows_packed_t::<6, 16>(a, k, packed, n, bias, act, rows, out_rows)
}

/// Tile-dispatched dense kernel: picks the micro-kernel instantiation for
/// `tile`, preferring the `target_feature` build when the CPU allows it.
fn run_rows_blocked(
    tile: Tile,
    a: &[f32],
    k: usize,
    packed: &[f32],
    n: usize,
    bias: Option<&[f32]>,
    act: Activation,
    rows: Range<usize>,
    out_rows: &mut [f32],
) {
    match tile {
        Tile::Sse4x8 => run_rows_blocked_t::<4, 8>(a, k, packed, n, bias, act, rows, out_rows),
        Tile::Avx6x16 => {
            #[cfg(target_arch = "x86_64")]
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: feature presence just checked.
                return unsafe {
                    run_rows_blocked_avx2(a, k, packed, n, bias, act, rows, out_rows)
                };
            }
            // Forced 6×16 shape without the feature (tests on older CPUs):
            // baseline codegen, identical arithmetic.
            run_rows_blocked_t::<6, 16>(a, k, packed, n, bias, act, rows, out_rows)
        }
    }
}

/// Tile-dispatched packed kernel (the tile comes from the pack itself).
fn run_rows_packed(
    a: &[f32],
    k: usize,
    packed: &PackedWeight,
    n: usize,
    bias: Option<&[f32]>,
    act: Activation,
    rows: Range<usize>,
    out_rows: &mut [f32],
) {
    match packed.tile {
        Tile::Sse4x8 => run_rows_packed_t::<4, 8>(a, k, packed, n, bias, act, rows, out_rows),
        Tile::Avx6x16 => {
            #[cfg(target_arch = "x86_64")]
            if std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: feature presence just checked.
                return unsafe { run_rows_packed_avx2(a, k, packed, n, bias, act, rows, out_rows) };
            }
            run_rows_packed_t::<6, 16>(a, k, packed, n, bias, act, rows, out_rows)
        }
    }
}

/// A raw output pointer smuggled into a pool task; chunks write disjoint
/// row ranges, so concurrent access never aliases.
#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Taking `self` (not the field) keeps closures capturing the whole
    /// `Sync` wrapper rather than the raw pointer inside it.
    fn get(self) -> *mut f32 {
        self.0
    }
}

/// Fan `run_rows(range, out_rows)` out over the current compute pool in
/// `MR`-aligned row chunks, or run it serially below the work threshold.
/// Shared by the blocked kernels here and the naive kernels in
/// [`crate::tensor`]. Chunk boundaries are aligned to the baseline `MR`
/// purely as a sizing heuristic — per-row results never depend on chunk
/// boundaries (a taller tile simply handles boundary rows in its per-row
/// tail), so alignment is not load-bearing for bit-identity.
pub(crate) fn fan_out_rows<F>(m: usize, n: usize, total_work: usize, out: &mut [f32], run_rows: F)
where
    F: Fn(Range<usize>, &mut [f32]) + Sync,
{
    pool::with_current(|pool| {
        let threads = pool.parallelism();
        if total_work < PAR_THRESHOLD || threads <= 1 || m < 2 * MR {
            run_rows(0..m, out);
            return;
        }
        let chunks = threads.min(m.div_ceil(MR));
        let rows_per_chunk = m.div_ceil(chunks).next_multiple_of(MR);
        let num_chunks = m.div_ceil(rows_per_chunk);
        let base = SendPtr(out.as_mut_ptr());
        let task = |chunk: usize| {
            let start = chunk * rows_per_chunk;
            let end = (start + rows_per_chunk).min(m);
            // SAFETY: chunks cover disjoint row ranges of `out`, which
            // outlives the pool job (`run` blocks until completion).
            let out_rows = unsafe {
                std::slice::from_raw_parts_mut(base.get().add(start * n), (end - start) * n)
            };
            run_rows(start..end, out_rows);
        };
        pool.run(num_chunks, &task);
    });
}

/// Blocked fused `out = act(a @ b + bias)` for `a: m x k`, `b: k x n`
/// (both row-major, `out` pre-sized to `m x n`). Packs `b` into per-thread
/// scratch on every call; for cached operands use [`addmm_packed`].
/// Bit-identical to the naive fused kernel for finite inputs (see the
/// module docs).
pub fn addmm_blocked(
    a: &[f32],
    m: usize,
    k: usize,
    b: &[f32],
    n: usize,
    bias: Option<&[f32]>,
    act: Activation,
    out: &mut [f32],
) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(out.len(), m * n);
    let tile = current_tile();
    SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        pack_b_panels(b, k, n, tile.nr(), &mut scratch.b);
        let packed = &scratch.b;
        fan_out_rows(m, n, m * k * n, out, |rows, out_rows| {
            run_rows_blocked(tile, a, k, packed, n, bias, act, rows, out_rows)
        });
    });
}

/// Fused `out = act(a @ w + bias)` against a pre-packed right operand (see
/// [`PackedWeight`]): no per-call packing, all-zero weight strips skipped.
/// Bit-identical to the dense kernels for finite inputs.
pub fn addmm_packed(
    a: &[f32],
    m: usize,
    packed: &PackedWeight,
    bias: Option<&[f32]>,
    act: Activation,
    out: &mut [f32],
) {
    let (k, n) = packed.shape();
    assert_eq!(a.len(), m * k);
    assert_eq!(out.len(), m * n);
    let total_work = m.saturating_mul(packed.rows.len()).saturating_mul(packed.tile.nr());
    fan_out_rows(m, n, total_work, out, |rows, out_rows| {
        run_rows_packed(a, k, packed, n, bias, act, rows, out_rows)
    });
}

/// Blocked `out = a @ bt^T` for `a: m x k`, `bt: n x k` (row-major; the
/// right operand is supplied transposed, as in [`Matrix::matmul_nt`]).
///
/// [`Matrix::matmul_nt`]: crate::tensor::Matrix::matmul_nt
pub fn matmul_nt_blocked(a: &[f32], m: usize, k: usize, bt: &[f32], n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k);
    assert_eq!(bt.len(), n * k);
    assert_eq!(out.len(), m * n);
    let tile = current_tile();
    SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        pack_bt_panels(bt, k, n, tile.nr(), &mut scratch.b);
        let packed = &scratch.b;
        fan_out_rows(m, n, m * k * n, out, |rows, out_rows| {
            run_rows_blocked(tile, a, k, packed, n, None, Activation::Identity, rows, out_rows)
        });
    });
}

/// Blocked `out = a^T @ b` for `a: k x m`, `b: k x n` (row-major; the left
/// operand is supplied transposed, as in [`Matrix::matmul_tn`]).
///
/// [`Matrix::matmul_tn`]: crate::tensor::Matrix::matmul_tn
pub fn matmul_tn_blocked(a: &[f32], k: usize, m: usize, b: &[f32], n: usize, out: &mut [f32]) {
    assert_eq!(a.len(), k * m);
    assert_eq!(b.len(), k * n);
    assert_eq!(out.len(), m * n);
    let tile = current_tile();
    SCRATCH.with(|scratch| {
        let mut scratch = scratch.borrow_mut();
        let Scratch { a: packed_a, b: packed_b } = &mut *scratch;
        pack_a_transposed(a, k, m, packed_a);
        pack_b_panels(b, k, n, tile.nr(), packed_b);
        let (packed_a, packed_b) = (&*packed_a, &*packed_b);
        fan_out_rows(m, n, m * k * n, out, |rows, out_rows| {
            run_rows_blocked(
                tile,
                packed_a,
                k,
                packed_b,
                n,
                None,
                Activation::Identity,
                rows,
                out_rows,
            )
        });
    });
}

/// A batch of rows in compressed-sparse-row form: per row, the column
/// indices (ascending) and values of its nonzero entries.
///
/// This is the input format of the fused encode→matmul first-layer kernels
/// ([`addmm_sparse`], [`matmul_tn_sparse`]): the predicate encoder emits
/// mostly-zero one-hot rows, and capturing them once at encode time lets the
/// first layer's forward *and* its weight-gradient matmul consume exactly
/// the nonzero terms — no per-call density scan, no per-element zero test.
/// The kernels accumulate those terms in the same ascending-index order as
/// the naive zero-skipping kernels, so results are **bit-identical** to
/// every dense path for finite inputs (a skipped term contributes `±0.0` to
/// an accumulator that starts at `+0.0`; see the module docs).
///
/// [`SparseRows::begin`] reserves the dense worst case up front, so a
/// capture over fixed-shape batches never reallocates after the first call —
/// the zero-allocation training loop relies on this.
#[derive(Debug, Clone, Default)]
pub struct SparseRows {
    rows: usize,
    cols: usize,
    /// Row `r` owns entries `offsets[r]..offsets[r + 1]`.
    offsets: Vec<usize>,
    /// Column index of each nonzero, ascending within a row.
    idx: Vec<u32>,
    /// Value of each nonzero, parallel to `idx`.
    val: Vec<f32>,
}

impl SparseRows {
    /// An empty capture; [`SparseRows::begin`] + [`SparseRows::push_row`]
    /// populate it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reset to an empty capture of `cols`-wide rows, reserving capacity for
    /// `rows` fully dense rows so the subsequent [`SparseRows::push_row`]
    /// calls never reallocate regardless of how the batch's density turns
    /// out.
    pub fn begin(&mut self, rows: usize, cols: usize) {
        assert!(cols <= u32::MAX as usize, "sparse capture column index overflows u32");
        self.rows = 0;
        self.cols = cols;
        self.offsets.clear();
        self.offsets.reserve(rows + 1);
        self.offsets.push(0);
        let worst = rows * cols;
        self.idx.clear();
        self.idx.reserve(worst);
        self.val.clear();
        self.val.reserve(worst);
    }

    /// Append one dense row, capturing its nonzero entries in ascending
    /// column order.
    pub fn push_row(&mut self, dense: &[f32]) {
        assert_eq!(dense.len(), self.cols, "sparse capture row width mismatch");
        for (j, &v) in dense.iter().enumerate() {
            if v != 0.0 {
                self.idx.push(j as u32);
                self.val.push(v);
            }
        }
        self.rows += 1;
        self.offsets.push(self.idx.len());
    }

    /// Number of captured rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Width of every captured row.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of captured nonzero entries.
    pub fn nnz(&self) -> usize {
        self.val.len()
    }

    /// Fraction of entries that are nonzero (an empty capture counts as
    /// dense, mirroring [`mostly_dense`] on an empty slice).
    pub fn density(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            return 1.0;
        }
        self.val.len() as f64 / total as f64
    }

    /// Whether the dense dispatch would route a matrix of this density to
    /// the zero-skipping path — exactly the complement of [`mostly_dense`],
    /// so swapping in the sparse kernels never changes which *class* of
    /// kernel (skip vs register-blocked) a shape runs.
    pub fn is_sparse_enough(&self) -> bool {
        1.0 - self.density() >= SPARSE_DISPATCH_THRESHOLD
    }

    /// Row `r` as parallel (column-index, value) slices.
    fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let range = self.offsets[r]..self.offsets[r + 1];
        (&self.idx[range.clone()], &self.val[range])
    }
}

/// Fused `out = act(a @ b + bias)` where the left operand is a sparse
/// capture (`a`: `m x k` in CSR form) and `b` is `k x n` row-major (`out`
/// pre-sized to `m x n`). Each output row accumulates exactly its input
/// row's nonzero terms in ascending-`k` order — the identical element-wise
/// sequence to the naive zero-skipping kernel, and therefore (for finite
/// inputs) bit-identical to every dense path. Rows fan out over the compute
/// pool above the usual work threshold, with the work estimate scaled by the
/// capture's actual nonzero count.
pub fn addmm_sparse(
    a: &SparseRows,
    b: &[f32],
    n: usize,
    bias: Option<&[f32]>,
    act: Activation,
    out: &mut [f32],
) {
    let (m, k) = (a.rows(), a.cols());
    assert_eq!(b.len(), k * n, "sparse addmm operand shape mismatch");
    assert_eq!(out.len(), m * n, "sparse addmm output shape mismatch");
    let total_work = a.nnz().saturating_mul(n);
    fan_out_rows(m, n, total_work, out, |rows, out_rows| {
        for (i, out_row) in rows.clone().zip(out_rows.chunks_exact_mut(n)) {
            out_row.fill(0.0);
            let (idx, val) = a.row(i);
            for (&j, &v) in idx.iter().zip(val.iter()) {
                let brow = &b[j as usize * n..(j as usize + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(brow.iter()) {
                    *o += v * bv;
                }
            }
            if let Some(bias) = bias {
                for (o, &bv) in out_row.iter_mut().zip(bias.iter()) {
                    *o += bv;
                }
            }
            act.apply(out_row);
        }
    });
}

/// `out = a^T @ b` where `a` is a sparse capture over `t` rows (`t x m` in
/// CSR form) and `b` is `t x n` row-major (`out` pre-sized to `m x n`) —
/// the weight-gradient product `input^T @ grad` with the input consumed
/// directly from the encode-time capture. Accumulation visits `t` in
/// ascending order (outer loop), matching the naive transposed kernel's
/// element-wise sequence exactly, so results are bit-identical for finite
/// inputs. The scatter over output rows makes this kernel inherently
/// serial, like the naive path it replaces.
pub fn matmul_tn_sparse(a: &SparseRows, b: &[f32], n: usize, out: &mut [f32]) {
    let (t_rows, m) = (a.rows(), a.cols());
    assert_eq!(b.len(), t_rows * n, "sparse tn operand shape mismatch");
    assert_eq!(out.len(), m * n, "sparse tn output shape mismatch");
    out.fill(0.0);
    for t in 0..t_rows {
        let (idx, val) = a.row(t);
        let brow = &b[t * n..(t + 1) * n];
        for (&i, &v) in idx.iter().zip(val.iter()) {
            let orow = &mut out[i as usize * n..(i as usize + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += v * bv;
            }
        }
    }
}
